//! `gcnt` — command-line front end for the GCN testability flow.
//!
//! ```text
//! gcnt generate --nodes 20000 --seed 7 --out design.bench
//! gcnt stats    design.bench
//! gcnt label    design.bench --out labels.json
//! gcnt train    a.bench b.bench c.bench --model model.json
//! gcnt infer    design.bench --model model.json
//! gcnt flow     design.bench --model model.json --out modified.bench
//! gcnt atpg     design.bench
//! gcnt lint     design.bench --format json
//! gcnt serve    --self-test --journal-dir wal/
//! ```
//!
//! Designs are stored in the plain-text `.bench`-style format of
//! [`gcn_testability::netlist::format`]; models and labels are JSON.

use std::collections::HashMap;
use std::error::Error;
use std::fs;
use std::process::ExitCode;

use serde::{Deserialize, Serialize};

use gcn_testability::dft::atpg::{run_random_atpg, AtpgConfig};
use gcn_testability::dft::flow::{run_gcn_opi, FlowBackend, FlowConfig, FlowKernel, ImpactMode};
use gcn_testability::dft::labeler::{label_difficult_to_observe, LabelConfig};
use gcn_testability::gcn::features::FeatureNormalizer;
use gcn_testability::gcn::{
    Gcn, GcnConfig, GraphData, MatrixBackend, MultiStageConfig, MultiStageGcn,
};
use gcn_testability::netlist::{format, generate, profile, DesignPreset, GeneratorConfig, Netlist};
use gcn_testability::report;
use gcn_testability::runtime::{atomic_write, CheckpointStore, MultiStageTrainer};

/// Handles `--metrics-out PATH`: enables the global metrics registry for
/// the rest of the process and returns where to write snapshots. Must run
/// before the instrumented work starts or the counters undercount.
fn metrics_out(options: &HashMap<String, String>) -> Option<std::path::PathBuf> {
    let path = options.get("metrics-out")?;
    gcn_testability::obs::global().enable();
    Some(std::path::PathBuf::from(path))
}

/// A trained model bundle: the cascade plus the feature normaliser it was
/// trained with (both are required for inductive reuse).
#[derive(Serialize, Deserialize)]
struct ModelBundle {
    normalizer: FeatureNormalizer,
    model: MultiStageGcn,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn Error>> {
    let Some(command) = args.first() else {
        print_usage();
        return Err("missing subcommand".into());
    };
    let (positional, options) = split_args(&args[1..]);
    match command.as_str() {
        "generate" => cmd_generate(&options),
        "stats" => cmd_stats(&positional),
        "label" => cmd_label(&positional, &options),
        "train" => cmd_train(&positional, &options),
        "infer" => cmd_infer(&positional, &options),
        "flow" => cmd_flow(&positional, &options),
        "bench-scale" => cmd_bench_scale(&options),
        "atpg" => cmd_atpg(&positional, &options),
        "lint" => cmd_lint(&positional, &options),
        "analyze" => cmd_analyze(&options),
        "serve" => cmd_serve(&options),
        "netserve" => cmd_netserve(&options),
        "loadgen" => cmd_loadgen(&options),
        "store" => cmd_store(&positional, &options),
        "checkpoints" => cmd_checkpoints(&positional),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => {
            print_usage();
            Err(format!("unknown subcommand '{other}'").into())
        }
    }
}

fn print_usage() {
    eprintln!(
        "gcnt — GCN-based testability analysis (DAC'19 reproduction)\n\
         \n\
         usage:\n\
         \x20 gcnt generate --nodes N [--seed S] --out design.bench\n\
         \x20 gcnt stats design.bench\n\
         \x20 gcnt label design.bench [--patterns N] [--threshold F] [--out labels.json]\n\
         \x20 gcnt train a.bench [b.bench ...] --model model.json [--epochs N] [--stages N]\n\
         \x20\x20\x20\x20 [--checkpoint-dir DIR] [--resume] [--checkpoint-every N] [--keep N]\n\
         \x20 gcnt infer design.bench --model model.json [--threshold F]\n\
         \x20 gcnt flow design.bench --model model.json [--out modified.bench] [--skip-budget N]\n\
         \x20\x20\x20\x20 [--impact-mode full|incremental] [--backend serial|partitioned|auto]\n\
         \x20\x20\x20\x20 [--kernel inherit|scalar|blocked|auto] [--metrics-out m.json]\n\
         \x20 gcnt bench-scale [--sizes 1000,10000,100000 | --preset B1..B4] [--parts N]\n\
         \x20\x20\x20\x20 [--repeat N]\n\
         \x20 gcnt atpg design.bench [--patterns N]\n\
         \x20 gcnt lint design.bench [--model model.json] [--format text|json]\n\
         \x20 gcnt analyze [--root DIR] [--format text|json] [--ratchet-update]\n\
         \x20 gcnt serve --self-test [--journal-dir DIR] [--requests N] [--deadline ROWS]\n\
         \x20\x20\x20\x20 [--store-dir DIR] [--compact-after N]\n\
         \x20\x20\x20\x20 [--faults plan.json] [--metrics-out m.json] [--metrics-every N]\n\
         \x20 gcnt netserve [--addr HOST:PORT] [--shards N] [--journal-dir DIR]\n\
         \x20\x20\x20\x20 [--faults plan.json] [--metrics-out m.json]\n\
         \x20 gcnt loadgen [--addr HOST:PORT] [--sessions N] [--workers N] [--shards N]\n\
         \x20\x20\x20\x20 [--flow-jobs N] [--journal-dir DIR] [--faults plan.json]\n\
         \x20\x20\x20\x20 [--metrics-out m.json]\n\
         \x20 gcnt store stat|scrub|compact DIR [--format text|json]\n\
         \x20 gcnt checkpoints DIR\n\
         \n\
         --metrics-out writes a metrics snapshot (JSON, or Prometheus text\n\
         for .prom/.txt paths) at shutdown and, with --metrics-every N,\n\
         every N serve requests. Machine-readable lines use the SELFTEST_*/\n\
         METRICS_* prefix convention (see README, Observability)."
    );
}

fn split_args(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut options = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            // A `--option` followed by another `--option` (or by nothing)
            // is a boolean flag; only a plain token is consumed as value.
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                options.insert(key.to_string(), args[i + 1].clone());
                i += 2;
                continue;
            }
            options.insert(key.to_string(), String::new());
        } else {
            positional.push(args[i].clone());
        }
        i += 1;
    }
    (positional, options)
}

fn opt_usize(options: &HashMap<String, String>, key: &str, default: usize) -> usize {
    options
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn opt_f64(options: &HashMap<String, String>, key: &str, default: f64) -> f64 {
    options
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn load_design(path: &str) -> Result<Netlist, Box<dyn Error>> {
    let text = fs::read_to_string(path)?;
    let net = format::read(&text)?;
    net.validate()?;
    Ok(net)
}

fn cmd_generate(options: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let nodes = opt_usize(options, "nodes", 10_000);
    let seed = opt_usize(options, "seed", 1) as u64;
    let out = options.get("out").ok_or("--out is required")?;
    let net = generate(&GeneratorConfig::sized("generated", seed, nodes));
    fs::write(out, format::write(&net))?;
    println!(
        "wrote {out}: {} nodes, {} edges",
        net.node_count(),
        net.edge_count()
    );
    Ok(())
}

fn cmd_stats(positional: &[String]) -> Result<(), Box<dyn Error>> {
    let path = positional.first().ok_or("expected a design file")?;
    let net = load_design(path)?;
    let stats = net.stats()?;
    println!("design   : {}", net.name());
    println!("nodes    : {}", stats.nodes);
    println!("edges    : {}", stats.edges);
    println!("inputs   : {}", stats.inputs);
    println!("outputs  : {}", stats.outputs);
    println!("flipflops: {}", stats.dffs);
    println!("depth    : {}", stats.max_level);
    println!("{}", profile(&net)?);
    Ok(())
}

fn cmd_label(
    positional: &[String],
    options: &HashMap<String, String>,
) -> Result<(), Box<dyn Error>> {
    let path = positional.first().ok_or("expected a design file")?;
    let net = load_design(path)?;
    let cfg = LabelConfig {
        patterns: opt_usize(options, "patterns", 8192),
        threshold: opt_f64(options, "threshold", 0.0005),
        seed: opt_usize(options, "seed", 0xDF7) as u64,
    };
    let result = label_difficult_to_observe(&net, &cfg)?;
    println!(
        "{} of {} nodes difficult-to-observe ({:.2}%)",
        result.positive_count(),
        net.node_count(),
        100.0 * result.positive_count() as f64 / net.node_count() as f64
    );
    if let Some(out) = options.get("out") {
        fs::write(out, serde_json::to_string_pretty(&result)?)?;
        println!("wrote {out}");
    }
    Ok(())
}

fn cmd_train(
    positional: &[String],
    options: &HashMap<String, String>,
) -> Result<(), Box<dyn Error>> {
    if positional.is_empty() {
        return Err("expected at least one training design".into());
    }
    let model_path = options.get("model").ok_or("--model is required")?;
    let label_cfg = LabelConfig {
        patterns: opt_usize(options, "patterns", 8192),
        threshold: opt_f64(options, "threshold", 0.0005),
        seed: 0xDF7,
    };
    // Load, label, and prepare every design with a shared normaliser.
    let mut nets = Vec::new();
    for path in positional {
        let net = load_design(path)?;
        println!("loaded {path}: {} nodes", net.node_count());
        nets.push(net);
    }
    let mut raw = Vec::new();
    let mut labels = Vec::new();
    for net in &nets {
        raw.push(gcn_testability::gcn::features::raw_features_of(net)?);
        let l = label_difficult_to_observe(net, &label_cfg)?;
        println!("  {}: {} positives", net.name(), l.positive_count());
        labels.push(l.labels);
    }
    let normalizer = FeatureNormalizer::fit(&raw.iter().collect::<Vec<_>>());
    let data: Vec<GraphData> = nets
        .iter()
        .zip(labels)
        .map(|(net, l)| GraphData::from_netlist(net, Some(&normalizer)).map(|d| d.with_labels(l)))
        .collect::<Result<_, _>>()?;

    let ms_cfg = MultiStageConfig {
        stages: opt_usize(options, "stages", 3),
        epochs_per_stage: opt_usize(options, "epochs", 100),
        ..MultiStageConfig::default()
    };
    let refs: Vec<&GraphData> = data.iter().collect();
    let (model, reports) = match options.get("checkpoint-dir") {
        // Resilient path: checksummed checkpoints, divergence guards, and
        // bit-for-bit deterministic resume after an interruption.
        Some(dir) => {
            let store = CheckpointStore::open(dir, opt_usize(options, "keep", 3))?;
            let mut trainer = MultiStageTrainer::new(ms_cfg);
            trainer.guard.checkpoint_every = opt_usize(options, "checkpoint-every", 25);
            trainer.store = Some(&store);
            trainer.resume = options.contains_key("resume");
            let outcome = trainer.run(&refs)?;
            if !outcome.load_findings.is_clean() {
                eprint!("{}", outcome.load_findings);
            }
            if let Some((stage, epoch)) = outcome.resumed_from {
                println!("resumed from stage {stage}, epoch {epoch}");
            }
            for r in &outcome.rollbacks {
                println!(
                    "rollback at epoch {}: {} (lr now {:.6})",
                    r.epoch, r.cause, r.lr_after
                );
            }
            (outcome.model, outcome.reports)
        }
        None => MultiStageGcn::train(&ms_cfg, &refs)?,
    };
    for r in &reports {
        println!(
            "stage {}: {} active ({} pos), pos_weight {:.1}, filtered {}",
            r.stage, r.active, r.positives, r.pos_weight, r.filtered
        );
    }
    let bundle = ModelBundle { normalizer, model };
    atomic_write(
        model_path.as_ref(),
        serde_json::to_string(&bundle)?.as_bytes(),
    )?;
    println!("wrote {model_path}");
    Ok(())
}

fn load_model(options: &HashMap<String, String>) -> Result<ModelBundle, Box<dyn Error>> {
    let model_path = options.get("model").ok_or("--model is required")?;
    let text = fs::read_to_string(model_path)
        .map_err(|e| format!("cannot read model '{model_path}': {e}"))?;
    let bundle: ModelBundle = serde_json::from_str(&text)
        .map_err(|e| format!("model '{model_path}' is not a valid model bundle: {e}"))?;
    // Reject corrupted weights before they poison downstream predictions.
    let report = gcn_testability::lint::lint_multistage(&bundle.model, "model");
    if report.has_errors() {
        return Err(format!("model '{model_path}' failed validation:\n{report}").into());
    }
    Ok(bundle)
}

fn cmd_checkpoints(positional: &[String]) -> Result<(), Box<dyn Error>> {
    let dir = positional
        .first()
        .ok_or("expected a checkpoint directory")?;
    let store = CheckpointStore::open(dir, usize::MAX)?;
    let files = store.list()?;
    if files.is_empty() {
        println!("no checkpoints in {dir}");
        return Ok(());
    }
    let mut bad = 0usize;
    for path in &files {
        match store.load(path, false) {
            Ok(state) => println!(
                "{}: stage {}, epoch {}, lr {:.6}, {} retries used{}",
                path.display(),
                state.stage,
                state.epoch,
                state.lr,
                state.retries_used,
                if state.rng.is_some() {
                    ", resumable cascade"
                } else {
                    ""
                }
            ),
            Err(e) => {
                bad += 1;
                println!("{}: INVALID — {e}", path.display());
            }
        }
    }
    if bad > 0 {
        return Err(format!("{bad} of {} checkpoint(s) failed validation", files.len()).into());
    }
    Ok(())
}

fn cmd_infer(
    positional: &[String],
    options: &HashMap<String, String>,
) -> Result<(), Box<dyn Error>> {
    let path = positional.first().ok_or("expected a design file")?;
    let net = load_design(path)?;
    let bundle = load_model(options)?;
    let threshold = opt_f64(options, "threshold", 0.5) as f32;
    let data = GraphData::from_netlist(&net, Some(&bundle.normalizer))?;
    let probs = bundle.model.predict_proba(&data.tensors, &data.features)?;
    let mut positives: Vec<(usize, f32)> = probs
        .iter()
        .enumerate()
        .filter(|&(_, &p)| p >= threshold)
        .map(|(i, &p)| (i, p))
        .collect();
    positives.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    println!(
        "{} of {} nodes predicted difficult-to-observe",
        positives.len(),
        net.node_count()
    );
    for (i, p) in positives.iter().take(20) {
        println!("  n{i}  p = {p:.3}");
    }
    if positives.len() > 20 {
        println!("  ... and {} more", positives.len() - 20);
    }
    Ok(())
}

fn cmd_flow(
    positional: &[String],
    options: &HashMap<String, String>,
) -> Result<(), Box<dyn Error>> {
    let metrics_path = metrics_out(options);
    let path = positional.first().ok_or("expected a design file")?;
    let mut net = load_design(path)?;
    let bundle = load_model(options)?;
    let impact_mode = match options.get("impact-mode").map(String::as_str) {
        None | Some("incremental") => ImpactMode::Incremental,
        Some("full") => ImpactMode::Full,
        Some(other) => {
            return Err(format!("unknown impact mode '{other}' (use full or incremental)").into())
        }
    };
    let backend = match options.get("backend") {
        Some(s) => s.parse::<FlowBackend>()?,
        None => FlowBackend::Auto,
    };
    // Flag beats env (`GCNT_KERNEL`, honoured by `Inherit`) beats default.
    let kernel = match options.get("kernel") {
        Some(s) => s.parse::<FlowKernel>()?,
        None => FlowKernel::Inherit,
    };
    let cfg = FlowConfig {
        max_iterations: opt_usize(options, "iterations", 12),
        ops_per_iteration: opt_usize(options, "ops-per-iteration", 16),
        skip_budget: opt_usize(options, "skip-budget", 0),
        impact_mode,
        backend,
        kernel,
        ..FlowConfig::default()
    };
    let outcome = run_gcn_opi(&mut net, &bundle.normalizer, &bundle.model, &cfg)?;
    println!(
        "inserted {} observation points in {} iterations (converged: {})",
        outcome.inserted.len(),
        outcome.history.len(),
        outcome.converged
    );
    let inf = &outcome.inference;
    println!(
        "inference: {} calls, {} embedding rows computed of {} full-equivalent ({:.1}x reuse)",
        inf.inferences,
        inf.rows_computed,
        inf.rows_full,
        if inf.rows_computed > 0 {
            inf.rows_full as f64 / inf.rows_computed as f64
        } else {
            1.0
        }
    );
    for stat in &outcome.history {
        println!(
            "  iteration {}: {} positives, {} inserted",
            stat.iteration, stat.positives, stat.inserted
        );
    }
    if !outcome.skipped.is_empty() {
        println!(
            "skipped {} failed insertion(s) under the skip budget",
            outcome.skipped.len()
        );
    }
    if let Some(out) = options.get("out") {
        atomic_write(out.as_ref(), format::write(&net).as_bytes())?;
        println!("wrote {out}");
    }
    if let Some(metrics) = metrics_path {
        report::write_metrics_snapshot(&metrics)?;
    }
    Ok(())
}

/// `gcnt bench-scale`: the scaling curve behind EXPERIMENTS.md. For each
/// design size (or one paper-scale preset), it times a full embedding
/// pass on both the serial and the partitioned backend, checks the two
/// outputs are bit-identical, and emits one `BENCH_SCALE` line per
/// backend × size sample.
fn cmd_bench_scale(options: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let parts = opt_usize(options, "parts", 4).max(1);
    let repeat = opt_usize(options, "repeat", 3).max(1);
    let configs: Vec<GeneratorConfig> = if let Some(p) = options.get("preset") {
        let preset = DesignPreset::ALL
            .iter()
            .copied()
            .find(|d| d.name().eq_ignore_ascii_case(p))
            .ok_or_else(|| format!("unknown preset '{p}' (use B1..B4)"))?;
        vec![preset.paper_config()]
    } else {
        let sizes: Vec<usize> = match options.get("sizes") {
            Some(list) => list
                .split(',')
                .map(|t| t.trim().parse::<usize>())
                .collect::<Result<_, _>>()?,
            None => vec![1_000, 10_000, 100_000],
        };
        sizes
            .into_iter()
            .map(|n| GeneratorConfig::sized("scale", 0x5C, n))
            .collect()
    };
    let model = Gcn::new(
        &GcnConfig::default(),
        &mut gcn_testability::nn::seeded_rng(7),
    );
    for cfg in configs {
        let net = generate(&cfg);
        let data = GraphData::from_netlist(&net, None)?;
        let mut serial = MatrixBackend::serial();
        let mut sharded = MatrixBackend::partitioned(&data.tensors, parts)?;
        let (serial_ms, a) = time_embed(&model, &data, &mut serial, repeat)?;
        let (part_ms, b) = time_embed(&model, &data, &mut sharded, repeat)?;
        let equal = a == b;
        report::bench("SCALE")
            .field("nodes", net.node_count())
            .field("edges", net.edge_count())
            .field("backend", "serial")
            .field("parts", 1)
            .field("embed_ms", format_args!("{serial_ms:.3}"))
            .emit();
        report::bench("SCALE")
            .field("nodes", net.node_count())
            .field("edges", net.edge_count())
            .field("backend", "partitioned")
            .field("parts", sharded.partition_count())
            .field("embed_ms", format_args!("{part_ms:.3}"))
            .field("bitwise_equal", equal)
            .emit();
        println!(
            "{} nodes: serial {serial_ms:.1} ms, partitioned({}) {part_ms:.1} ms, bitwise equal: {equal}",
            net.node_count(),
            sharded.partition_count(),
        );
        if !equal {
            return Err("partitioned embedding diverged from serial".into());
        }
    }
    Ok(())
}

/// Best-of-`repeat` wall time (ms) of one full embedding pass on
/// `backend`, plus the embedding itself for bit-identity checks.
fn time_embed(
    model: &Gcn,
    data: &GraphData,
    backend: &mut MatrixBackend,
    repeat: usize,
) -> Result<(f64, gcn_testability::tensor::Matrix), Box<dyn Error>> {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..repeat {
        let start = std::time::Instant::now();
        let e = model.embed_with(&data.tensors, &data.features, backend)?;
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(e);
    }
    out.map(|e| (best, e))
        .ok_or_else(|| "repeat must be >= 1".into())
}

fn cmd_lint(
    positional: &[String],
    options: &HashMap<String, String>,
) -> Result<(), Box<dyn Error>> {
    let path = positional.first().ok_or("expected a design file")?;
    // Deliberately not load_design(): a netlist that fails validation is
    // exactly what the linter is for, so parse without validating.
    let net = format::read(&fs::read_to_string(path)?)?;
    let mut report = gcn_testability::lint::lint_design(&net);
    if options.contains_key("model") {
        let bundle = load_model(options)?;
        report.merge(gcn_testability::lint::lint_multistage(
            &bundle.model,
            "model",
        ));
    }
    match options.get("format").map(String::as_str) {
        None | Some("text") => print!("{report}"),
        Some("json") => println!("{}", report.to_json()),
        Some(other) => return Err(format!("unknown format '{other}' (use text or json)").into()),
    }
    if report.has_errors() {
        return Err(format!(
            "lint found {} error(s)",
            report.count(gcn_testability::lint::Severity::Error)
        )
        .into());
    }
    Ok(())
}

/// `gcnt analyze`: the source & artifact static-analysis pass. Scans the
/// repo tree (default: the current directory) with the `SA###` rules of
/// `gcnt-analyze` and exits nonzero on any error finding — the same
/// contract CI enforces. `GCNT_ANALYZE_SABOTAGE=1` plants a synthetic
/// violation so the gate can prove it actually fails.
fn cmd_analyze(options: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    use gcn_testability::analyze::{analyze, AnalyzeConfig};

    let root = options.get("root").map(String::as_str).unwrap_or(".");
    let mut cfg = AnalyzeConfig::new(root);
    cfg.sabotage = std::env::var("GCNT_ANALYZE_SABOTAGE").map(|v| v == "1") == Ok(true);
    cfg.update_ratchet = options.contains_key("ratchet-update");
    let report = analyze(&cfg)?;
    match options.get("format").map(String::as_str) {
        None | Some("text") => print!("{report}"),
        Some("json") => print!("{}", report.to_json()),
        Some(other) => return Err(format!("unknown format '{other}' (use text or json)").into()),
    }
    if report.has_errors() {
        return Err("analyze found error findings (see report above)".into());
    }
    Ok(())
}

/// Parses `--faults plan.json` into a [`FaultPlan`]. Deterministic fault
/// injection only exists in `fault-inject` builds; a production binary
/// refuses the flag outright instead of silently ignoring it.
#[cfg(feature = "fault-inject")]
fn load_fault_plan(path: &str) -> Result<gcn_testability::runtime::FaultPlan, Box<dyn Error>> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    gcn_testability::runtime::FaultPlan::from_json(&text)
        .map_err(|e| format!("fault plan '{path}': {e}").into())
}

#[cfg(not(feature = "fault-inject"))]
fn load_fault_plan(_path: &str) -> Result<gcn_testability::runtime::FaultPlan, Box<dyn Error>> {
    Err("--faults requires a binary built with `--features fault-inject`".into())
}

/// `gcnt serve --self-test`: an end-to-end exercise of the serving layer
/// against a deterministic synthetic design and a seeded (untrained)
/// model. It runs a write-ahead-journaled flow job — resuming whatever a
/// previous (possibly killed) run left in the journal — and then a batch
/// of inference requests through the bounded queue and the degradation
/// ladder. The machine-readable `SELFTEST_*` lines are what the kill/
/// resume integration test and the CI fault matrix assert on.
fn cmd_serve(options: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    use gcn_testability::gcn::{features::raw_features_of, Gcn, GcnConfig};
    use gcn_testability::runtime::{fnv1a64, FaultPlan};
    use gcn_testability::serve::{ServeConfig, ServeCore, ServeError, ServeHandle};

    if !options.contains_key("self-test") {
        return Err("gcnt serve currently supports --self-test only (see README)".into());
    }
    // Snapshot cadence: every N admitted requests, plus once at shutdown.
    // (For SIGTERM-triggered graceful drain, use `gcnt netserve`, which
    // installs a handler and drains the shard router before exiting.)
    let metrics_path = metrics_out(options);
    let metrics_every = opt_usize(options, "metrics-every", 0) as u64;
    let plan = match options.get("faults") {
        Some(path) => load_fault_plan(path)?,
        None => FaultPlan::none(),
    };
    let journal_dir = options
        .get("journal-dir")
        .cloned()
        .unwrap_or_else(|| ".".to_string());
    fs::create_dir_all(&journal_dir)?;
    let journal_path = std::path::Path::new(&journal_dir).join("selftest.wal");
    let requests = opt_usize(options, "requests", 4) as u64;
    let deadline = options
        .get("deadline")
        .map(|v| v.parse::<u64>())
        .transpose()
        .map_err(|e| format!("--deadline: {e}"))?;

    // A deterministic fixture: same design, same seeded model, every run —
    // so the flow outcome checksum below is reproducible across restarts.
    let net = generate(&GeneratorConfig::sized("selftest", 7, 400));
    let gcn_cfg = GcnConfig {
        embed_dims: vec![8, 8],
        fc_dims: vec![8],
        ..GcnConfig::default()
    };
    let stages = vec![
        Gcn::new(&gcn_cfg, &mut gcn_testability::nn::seeded_rng(41)),
        Gcn::new(&gcn_cfg, &mut gcn_testability::nn::seeded_rng(42)),
    ];
    let model = MultiStageGcn::from_stages(stages, 0.5);
    let raw = raw_features_of(&net)?;
    let normalizer = FeatureNormalizer::fit(&[&raw]);

    let saturated = plan.queue_saturated();
    let mut core = ServeCore::new(normalizer, model, ServeConfig::default()).with_faults(plan);
    // `--store-dir` opts into store-backed durability: the flow journal
    // compacts into the page store (bounding its on-disk growth) and
    // incremental answers persist their embeddings for warm restarts.
    if let Some(store_dir) = options.get("store-dir") {
        use gcn_testability::serve::{JobStore, StorePolicy};
        let policy = StorePolicy {
            compact_after_records: opt_usize(options, "compact-after", 16) as u64,
            ..StorePolicy::default()
        };
        core = core.with_store(JobStore::open(store_dir.as_ref(), policy)?);
    }

    if saturated {
        // Admission-control drill: every submission must bounce with a
        // typed Overloaded, and nothing may queue up behind the fault.
        let handle = ServeHandle::start(core)?;
        for i in 0..requests {
            match handle.submit_infer(net.clone(), deadline) {
                Err(ServeError::Overloaded { capacity }) => {
                    report::selftest("OVERLOADED")
                        .field("i", i)
                        .field("capacity", capacity)
                        .emit();
                }
                Err(e) => return Err(format!("expected Overloaded, got: {e}").into()),
                Ok(_) => return Err("saturated queue admitted a request".into()),
            }
        }
        let core = handle.shutdown()?;
        report::selftest("DONE")
            .field("admitted", core.admitted())
            .emit();
        if let Some(metrics) = metrics_path {
            report::write_metrics_snapshot(&metrics)?;
        }
        return Ok(());
    }

    // Journaled flow job: resumes whatever the journal already holds.
    // A permissive threshold keeps the untrained model inserting for
    // several iterations, so the journal accumulates enough batch records
    // for a mid-flow kill to land between two of them.
    let flow_cfg = FlowConfig {
        max_iterations: 5,
        ops_per_iteration: 2,
        prob_threshold: 0.05,
        ..FlowConfig::default()
    };
    // The flow job runs without a deadline: a budget-stopped flow is
    // *resumable*, not degradable, and the ladder drill below is about
    // inference. `--deadline` shapes only the per-request budgets.
    let mut flow_net = net.clone();
    let flow = core.run_flow_job(&mut flow_net, &flow_cfg, &journal_path, None)?;
    let outcome_json = serde_json::to_string(&flow.outcome)?;
    let mut digest = outcome_json.into_bytes();
    digest.extend_from_slice(format::write(&flow_net).as_bytes());
    report::selftest("FLOW")
        .field("records", flow.journal_records)
        .field("resumed", flow.resumed_batches)
        .field("torn_tail", flow.recovered_torn_tail)
        .field("checksum", format_args!("{:016x}", fnv1a64(&digest)))
        .emit();

    // Inference requests through the queue and the degradation ladder.
    let handle = ServeHandle::start(core)?;
    for i in 0..requests {
        let resp = handle.infer(net.clone(), deadline)?;
        report::selftest("INFER")
            .field("i", i)
            .field("rung", resp.rung)
            .field("dropped", resp.dropped.len())
            .field("positives", resp.positives)
            .field("spent", resp.spent)
            .field("warm_rows", resp.warm_rows)
            .emit();
        if metrics_every > 0 && (i + 1) % metrics_every == 0 {
            if let Some(metrics) = &metrics_path {
                report::write_metrics_snapshot(metrics)?;
            }
        }
    }
    let core = handle.shutdown()?;

    // Network drill: the same serving semantics over the wire protocol
    // and the in-process loopback transport — handshake, deterministic
    // inference, bit-identical journaled flow resume, typed refusals.
    run_net_selftest(&journal_dir)?;

    // One stable machine-readable digest of the run's own metrics: the
    // schema-snapshot CI step asserts on these fields, and a human gets
    // the reuse story without opening the snapshot file.
    let obs = gcn_testability::obs::global();
    use gcn_testability::obs::counters as c;
    report::selftest("METRICS")
        .field("enabled", obs.is_enabled())
        .field("requests", obs.counter(c::SERVE_REQUESTS))
        .field("spmm_rows", obs.counter(c::TENSOR_SPMM_ROWS))
        .field("flow_rows_computed", obs.counter(c::DFT_FLOW_ROWS_COMPUTED))
        .field("flow_rows_full", obs.counter(c::DFT_FLOW_ROWS_FULL))
        .field("ops_inserted", obs.counter(c::DFT_FLOW_OPS_INSERTED))
        .field("journal_appends", obs.counter(c::SERVE_JOURNAL_APPENDS))
        .field("journal_replayed", obs.counter(c::SERVE_JOURNAL_REPLAYED))
        .field("rung_incremental", obs.counter(c::SERVE_RUNG_INCREMENTAL))
        .field("rung_full_sparse", obs.counter(c::SERVE_RUNG_FULL_SPARSE))
        .field("rung_first_stage", obs.counter(c::SERVE_RUNG_FIRST_STAGE))
        .field("store_rows_saved", obs.counter(c::SERVE_STORE_ROWS_SAVED))
        .field("store_rows_loaded", obs.counter(c::SERVE_STORE_ROWS_LOADED))
        .emit();
    report::selftest("DONE")
        .field("admitted", core.admitted())
        .emit();
    // The shutdown snapshot — the journaled flow job, every request, and
    // the ladder work above are all in it.
    if let Some(metrics) = metrics_path {
        report::write_metrics_snapshot(&metrics)?;
    }
    Ok(())
}

/// The deterministic network-serving fixture: the same synthetic design
/// and the same seeded (untrained) cascade on every shard of every
/// process — so `netserve`, `loadgen`, and the `SELFTEST_NET` drill all
/// agree on outcome checksums across separate runs and machines.
fn net_fixture_cores(
    shards: usize,
) -> Result<(Netlist, Vec<gcn_testability::serve::ServeCore>), Box<dyn Error>> {
    use gcn_testability::gcn::{features::raw_features_of, Gcn, GcnConfig};
    use gcn_testability::serve::{ServeConfig, ServeCore};

    let net = generate(&GeneratorConfig::sized("netfixture", 7, 400));
    let gcn_cfg = GcnConfig {
        embed_dims: vec![8, 8],
        fc_dims: vec![8],
        ..GcnConfig::default()
    };
    let raw = raw_features_of(&net)?;
    let cores = (0..shards)
        .map(|_| {
            let stages = vec![
                Gcn::new(&gcn_cfg, &mut gcn_testability::nn::seeded_rng(41)),
                Gcn::new(&gcn_cfg, &mut gcn_testability::nn::seeded_rng(42)),
            ];
            ServeCore::new(
                FeatureNormalizer::fit(&[&raw]),
                MultiStageGcn::from_stages(stages, 0.5),
                ServeConfig::default(),
            )
        })
        .collect();
    Ok((net, cores))
}

/// The `SELFTEST_NET` drill: a 2-shard server over the in-process
/// loopback transport, exercised end to end by the real client —
/// handshake, deterministic inference, bit-identical journaled flow
/// resume, and a typed refusal for a malformed design.
fn run_net_selftest(journal_dir: &str) -> Result<(), Box<dyn Error>> {
    use gcn_testability::net::{
        local_transport, serve as net_serve, ClientConfig, Dialer, ErrorCode, FlowRequest,
        NetClient, NetError, NetServerConfig, ShardRouter,
    };
    use gcn_testability::runtime::FaultPlan;

    let (design, cores) = net_fixture_cores(2)?;
    let dir = std::path::Path::new(journal_dir).join("net-selftest");
    let router = ShardRouter::start(cores, &dir)?;
    let (listener, dialer) = local_transport();
    let server = std::thread::spawn(move || {
        net_serve(
            listener,
            router,
            NetServerConfig::default(),
            &FaultPlan::none(),
        )
    });

    let mut client = NetClient::connect(Dialer::Local(dialer), ClientConfig::default())?;
    let text = format::write(&design);
    let a = client.infer(&text, 0)?;
    let b = client.infer(&text, 0)?;
    let deterministic = a.probs_checksum == b.probs_checksum && a.shard == b.shard;
    let req = FlowRequest {
        design: text,
        job_id: "net-selftest".to_string(),
        max_iterations: 2,
        ops_per_iteration: 1,
        prob_threshold_milli: 50,
        deadline_rows: 0,
    };
    let f1 = client.flow(&req)?;
    let f2 = client.flow(&req)?;
    let bit_identical = f1.outcome_checksum == f2.outcome_checksum;
    let typed_refusal = matches!(
        client.infer("this is not a netlist", 0),
        Err(NetError::Server {
            code: ErrorCode::BadRequest,
            ..
        })
    );
    client.drain()?;
    drop(client);
    let (summary, _cores) = server
        .join()
        .map_err(|_| "net self-test server thread panicked")??;

    report::selftest("NET")
        .field("shards", 2)
        .field("deterministic", deterministic)
        .field("probs_checksum", &a.probs_checksum)
        .field("flow_checksum", &f1.outcome_checksum)
        .field("flow_resumed", f2.resumed_batches)
        .field("bit_identical_resume", bit_identical)
        .field("typed_refusal", typed_refusal)
        .field("frames", summary.frames_received)
        .field("refusals", summary.refusals)
        .emit();
    if !deterministic || !bit_identical || !typed_refusal {
        return Err("net self-test failed (see SELFTEST_NET line)".into());
    }
    Ok(())
}

/// `gcnt netserve`: the fixture server over real TCP. Emits `NET_READY`
/// once the listener is bound, installs a SIGTERM handler, and serves
/// until a drain is requested (SIGTERM or a client `Drain` frame) —
/// then finishes or journals in-flight jobs, emits `NET_DRAIN` with the
/// lifetime summary, and exits cleanly.
fn cmd_netserve(options: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    use gcn_testability::net::{
        install_term_handler, serve as net_serve, Listener, NetServerConfig, ShardRouter,
    };
    use gcn_testability::runtime::FaultPlan;

    let metrics_path = metrics_out(options);
    let plan = match options.get("faults") {
        Some(path) => load_fault_plan(path)?,
        None => FaultPlan::none(),
    };
    let shards = opt_usize(options, "shards", 2).max(1);
    let addr = options
        .get("addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:0");
    let journal_dir = options
        .get("journal-dir")
        .cloned()
        .unwrap_or_else(|| "netserve-journals".to_string());

    let (_design, cores) = net_fixture_cores(shards)?;
    let router = ShardRouter::start(cores, journal_dir.as_ref())?;
    let listener = Listener::bind_tcp(addr)?;
    let actual = listener
        .local_addr()
        .map_or_else(|| addr.to_string(), |a| a.to_string());
    install_term_handler();
    report::net("READY")
        .field("addr", &actual)
        .field("shards", shards)
        .field("pid", std::process::id())
        .emit();

    let (summary, _cores) = net_serve(listener, router, NetServerConfig::default(), &plan)?;
    report::net("DRAIN")
        .field("connections", summary.connections)
        .field("frames", summary.frames_received)
        .field("jobs", summary.jobs_completed)
        .field("refusals", summary.refusals)
        .field("evictions", summary.slow_loris_evictions)
        .field("pending_at_drain", summary.pending_at_drain)
        .emit();
    if let Some(metrics) = metrics_path {
        report::write_metrics_snapshot(&metrics)?;
    }
    Ok(())
}

/// `gcnt loadgen`: drives many concurrent client sessions against a
/// server — an external one (`--addr`, e.g. a backgrounded `gcnt
/// netserve`) or an in-process fixture server it spins up itself. The
/// first `--flow-jobs` sessions run journaled flow jobs and emit one
/// `LOADGEN_FLOW` line each (checksums are the bit-identity handle for
/// the CI fault matrix); the rest run inference. With `--faults`,
/// session 0 carries the client-side fault plan and the in-process
/// server gets the server-side hooks, so every network fault scenario
/// is reproducible from one JSON file. Ends with `LOADGEN_DONE`
/// carrying error counts and p50/p99/p999 request latency from the
/// `gcnt_net_request_latency_ns` histogram; any *untyped* failure
/// (hang, wrong payload, exhausted retries) makes the exit nonzero.
fn cmd_loadgen(options: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    use gcn_testability::net::{
        serve as net_serve, ClientConfig, Dialer, FlowRequest, Listener, NetClient, NetError,
        NetServerConfig, ShardRouter,
    };
    use gcn_testability::obs::Snapshot;
    use gcn_testability::runtime::FaultPlan;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Arc;

    // Quantiles come from the global histogram, so the registry must be
    // live before the first request regardless of --metrics-out.
    gcn_testability::obs::global().enable();
    let metrics_path = metrics_out(options);
    let plan = match options.get("faults") {
        Some(path) => load_fault_plan(path)?,
        None => FaultPlan::none(),
    };
    let sessions = opt_usize(options, "sessions", 100).max(1);
    let workers = opt_usize(options, "workers", 8).clamp(1, 64);
    let flow_jobs = opt_usize(options, "flow-jobs", 2).min(sessions);
    let shards = opt_usize(options, "shards", 4).max(1);

    // An in-process server is spun up unless --addr points elsewhere.
    let (addr, server) = match options.get("addr") {
        Some(a) => (a.clone(), None),
        None => {
            let journal_dir = options.get("journal-dir").cloned().unwrap_or_else(|| {
                std::env::temp_dir()
                    .join(format!("gcnt-loadgen-{}", std::process::id()))
                    .display()
                    .to_string()
            });
            let (_design, cores) = net_fixture_cores(shards)?;
            let router = ShardRouter::start(cores, journal_dir.as_ref())?;
            let listener = Listener::bind_tcp("127.0.0.1:0")?;
            let actual = listener
                .local_addr()
                .ok_or("in-process listener has no local address")?
                .to_string();
            let server_plan = plan.clone();
            let handle = std::thread::spawn(move || {
                net_serve(listener, router, NetServerConfig::default(), &server_plan)
            });
            (actual, Some(handle))
        }
    };

    // A small pool of deterministic design variants spreads sessions
    // across shards (routing hashes the design text).
    let variants: Arc<Vec<String>> = Arc::new(
        (0..8u64)
            .map(|k| format::write(&generate(&GeneratorConfig::sized("netfixture", 7 + k, 400))))
            .collect(),
    );

    let next = Arc::new(AtomicUsize::new(0));
    let ok = Arc::new(AtomicU64::new(0));
    let typed = Arc::new(AtomicU64::new(0));
    let transport = Arc::new(AtomicU64::new(0));
    let mut pool = Vec::new();
    for _ in 0..workers {
        let next = Arc::clone(&next);
        let ok = Arc::clone(&ok);
        let typed = Arc::clone(&typed);
        let transport = Arc::clone(&transport);
        let variants = Arc::clone(&variants);
        let addr = addr.clone();
        let plan = plan.clone();
        pool.push(std::thread::spawn(move || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= sessions {
                break;
            }
            // Session 0 carries the client-side fault plan; the rest
            // run clean so the run's tail is a pure throughput measure.
            let session_plan = if i == 0 {
                plan.clone()
            } else {
                FaultPlan::none()
            };
            let started = std::time::Instant::now();
            let outcome = (|| -> Result<(), NetError> {
                // A load client is deliberately saturating the server, so
                // it rides out Overloaded refusals with a deeper retry
                // budget than the interactive default.
                let config = ClientConfig {
                    request_retries: 8,
                    ..ClientConfig::default()
                };
                let mut client = NetClient::connect_with_faults(
                    Dialer::Tcp(addr.clone()),
                    config,
                    session_plan,
                )?;
                let design = variants
                    .get(i % variants.len())
                    .ok_or_else(|| NetError::Protocol("variant pool is empty".to_string()))?;
                if i < flow_jobs {
                    let reply = client.flow(&FlowRequest {
                        design: design.clone(),
                        job_id: format!("load-{i}"),
                        max_iterations: 2,
                        ops_per_iteration: 1,
                        prob_threshold_milli: 50,
                        deadline_rows: 0,
                    })?;
                    report::loadgen("FLOW")
                        .field("job", format_args!("load-{i}"))
                        .field("shard", reply.shard)
                        .field("resumed", reply.resumed_batches)
                        .field("checksum", &reply.outcome_checksum)
                        .emit();
                } else {
                    let reply = client.infer(design, 0)?;
                    if reply.probs_len == 0 {
                        return Err(NetError::Protocol("empty inference reply".to_string()));
                    }
                }
                Ok(())
            })();
            let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            gcn_testability::obs::global()
                .observe(gcn_testability::obs::histograms::NET_REQUEST_NS, elapsed);
            match outcome {
                Ok(()) => ok.fetch_add(1, Ordering::Relaxed),
                Err(NetError::Server { .. }) => typed.fetch_add(1, Ordering::Relaxed),
                Err(_) => transport.fetch_add(1, Ordering::Relaxed),
            };
        }));
    }
    for worker in pool {
        worker
            .join()
            .map_err(|_| "a loadgen worker thread panicked")?;
    }

    // Drain the in-process server so its jobs_completed is final.
    if let Some(handle) = server {
        let mut closer = NetClient::connect(Dialer::Tcp(addr), ClientConfig::default())?;
        closer.drain()?;
        drop(closer);
        let (summary, _cores) = handle
            .join()
            .map_err(|_| "loadgen server thread panicked")??;
        report::net("DRAIN")
            .field("connections", summary.connections)
            .field("frames", summary.frames_received)
            .field("jobs", summary.jobs_completed)
            .field("refusals", summary.refusals)
            .field("evictions", summary.slow_loris_evictions)
            .field("pending_at_drain", summary.pending_at_drain)
            .emit();
    }

    let snap = Snapshot::capture(gcn_testability::obs::global());
    let latency = snap.histogram("gcnt_net_request_latency_ns");
    let quantile = |q: f64| latency.map_or(0, |h| h.quantile(q));
    let transport_errors = transport.load(Ordering::Relaxed);
    report::loadgen("DONE")
        .field("sessions", sessions)
        .field("ok", ok.load(Ordering::Relaxed))
        .field("typed_refusals", typed.load(Ordering::Relaxed))
        .field("transport_errors", transport_errors)
        .field("flows", flow_jobs)
        .field("p50_ns", quantile(0.5))
        .field("p99_ns", quantile(0.99))
        .field("p999_ns", quantile(0.999))
        .emit();
    if let Some(metrics) = metrics_path {
        report::write_metrics_snapshot(&metrics)?;
    }
    if transport_errors > 0 {
        return Err(format!("{transport_errors} session(s) failed without a typed refusal").into());
    }
    Ok(())
}

/// `gcnt store`: operator tooling over a [`gcn_testability::store`]
/// directory. `stat` summarises pages/segments, `scrub` re-reads and
/// re-checksums every committed page (nonzero exit on any `PG###` error
/// finding, same contract as `gcnt lint`), and `compact` rewrites live
/// segments into a fresh data file, dropping dead pages.
fn cmd_store(
    positional: &[String],
    options: &HashMap<String, String>,
) -> Result<(), Box<dyn Error>> {
    use gcn_testability::store::PageStore;

    let action = positional
        .first()
        .ok_or("expected an action: stat, scrub, or compact")?;
    let dir = positional.get(1).ok_or("expected a store directory")?;
    let mut store = PageStore::open(dir)?;
    match action.as_str() {
        "stat" => {
            let s = store.stat()?;
            println!("store     : {dir}");
            println!(
                "pages     : {} committed, {} live",
                s.page_count, s.live_pages
            );
            println!("segments  : {}", s.segments);
            println!("live bytes: {}", s.live_bytes);
            println!(
                "data bytes: {} (generation {})",
                s.data_bytes, s.data_generation
            );
            for key in store.keys() {
                println!("  {}", key.display());
            }
            Ok(())
        }
        "scrub" => {
            let report = store.scrub()?;
            match options.get("format").map(String::as_str) {
                None | Some("text") => print!("{report}"),
                Some("json") => println!("{}", report.to_json()),
                Some(other) => {
                    return Err(format!("unknown format '{other}' (use text or json)").into())
                }
            }
            if report.has_errors() {
                return Err(format!(
                    "scrub found {} error(s)",
                    report.count(gcn_testability::lint::Severity::Error)
                )
                .into());
            }
            println!("scrub clean: every committed page verifies");
            Ok(())
        }
        "compact" => {
            let stats = store.compact()?;
            println!(
                "compacted {dir}: {} -> {} pages",
                stats.pages_before, stats.pages_after
            );
            Ok(())
        }
        other => {
            Err(format!("unknown store action '{other}' (use stat, scrub, or compact)").into())
        }
    }
}

fn cmd_atpg(
    positional: &[String],
    options: &HashMap<String, String>,
) -> Result<(), Box<dyn Error>> {
    let path = positional.first().ok_or("expected a design file")?;
    let net = load_design(path)?;
    let cfg = AtpgConfig {
        max_patterns: opt_usize(options, "patterns", 16_384),
        ..Default::default()
    };
    let result = run_random_atpg(&net, &cfg)?;
    println!("faults    : {}", result.total_faults);
    println!("detected  : {}", result.detected);
    println!("coverage  : {:.2}%", result.coverage() * 100.0);
    println!(
        "patterns  : {} kept of {} applied",
        result.patterns_kept, result.patterns_applied
    );
    Ok(())
}
