//! # gcn-testability
//!
//! A from-scratch Rust reproduction of *"High Performance Graph
//! Convolutional Networks with Applications in Testability Analysis"*
//! (Ma, Ren, Khailany, Sikka, Luo, Natarajan, Yu — DAC 2019).
//!
//! The paper trains a scalable, inductive GCN to spot
//! *difficult-to-observe* nodes in gate-level netlists and drives an
//! iterative observation-point insertion flow with it, beating a
//! commercial testability tool by 11% on inserted points and 6% on
//! pattern count at equal fault coverage.
//!
//! This crate is a facade over the workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`netlist`] | gate-level graphs, SCOAP, synthetic design generator, test-point primitives |
//! | [`tensor`] | dense + COO/CSR sparse kernels |
//! | [`nn`] | linear/MLP layers, weighted losses, optimisers |
//! | [`gcn`] | the GCN model, multi-stage cascade, sparse + recursive inference, (parallel) training |
//! | [`mlbase`] | LR / RF / SVM / MLP baselines with cone features |
//! | [`dft`] | logic simulation, CPT, ATPG, labeling, both OP-insertion flows |
//! | [`lint`] | cross-crate static analysis of *runtime data*: netlist, tensor and model invariants with stable rule ids |
//! | [`analyze`] | static analysis of the *source tree and artifacts*: panic/unsafe/atomics/cast policies with a ratchet, cross-artifact consistency |
//! | [`runtime`] | resilience: checksummed checkpoint/resume, divergence guards, fault injection |
//! | [`store`] | crash-safe paged design/embedding store: checksummed fixed-size pages, bounded cache, scrub/compact, quarantine |
//! | [`serve`] | long-lived service: bounded admission, deadlines, degradation ladder, write-ahead journaled flow jobs with store-backed compaction and warm restart |
//! | [`net`] | fault-hardened TCP serving: checksummed wire protocol, shard router across serve cores, graceful drain, network fault matrix |
//! | [`obs`] | observability: global metrics registry, counters/gauges/histograms, JSON + Prometheus snapshots |
//! | [`report`] | machine-readable CLI line convention (`SELFTEST_*`, `METRICS_*`) |
//!
//! ## Quickstart
//!
//! ```
//! use gcn_testability::gcn::{Gcn, GcnConfig, GraphData};
//! use gcn_testability::netlist::{generate, GeneratorConfig};
//!
//! // Generate a synthetic scan design and prepare it for the model.
//! let net = generate(&GeneratorConfig::sized("demo", 1, 1_000));
//! let data = GraphData::from_netlist(&net, None)?;
//!
//! // An untrained model still demonstrates the full inference pipeline.
//! let model = Gcn::new(&GcnConfig::default(), &mut gcn_testability::nn::seeded_rng(0));
//! let probabilities = model.predict_proba(&data.tensors, &data.features)?;
//! assert_eq!(probabilities.len(), net.node_count());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See the `examples/` directory for end-to-end flows: training,
//! multi-stage classification, observation-point insertion and
//! million-node inference.

pub mod report;

pub use gcnt_analyze as analyze;
pub use gcnt_core as gcn;
pub use gcnt_dft as dft;
pub use gcnt_lint as lint;
pub use gcnt_mlbase as mlbase;
pub use gcnt_net as net;
pub use gcnt_netlist as netlist;
pub use gcnt_nn as nn;
pub use gcnt_obs as obs;
pub use gcnt_runtime as runtime;
pub use gcnt_serve as serve;
pub use gcnt_store as store;
pub use gcnt_tensor as tensor;
