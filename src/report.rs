//! Machine-readable CLI reporting with a single stable prefix convention.
//!
//! Every line the `gcnt` binary emits for *machines* — CI greps, the
//! kill/resume integration tests, the fault matrix — goes through this
//! module, so the convention lives in exactly one place:
//!
//! * `SELFTEST_<EVENT> key=value ...` — one event of `gcnt serve
//!   --self-test`. Existing events: `SELFTEST_FLOW`, `SELFTEST_INFER`,
//!   `SELFTEST_OVERLOADED`, `SELFTEST_METRICS`, `SELFTEST_DONE`.
//! * `METRICS_<EVENT> key=value ...` — metrics-snapshot bookkeeping.
//!   Existing events: `METRICS_SNAPSHOT` (a snapshot file was written).
//! * `BENCH_<EVENT> key=value ...` — measurements from `gcnt
//!   bench-scale`. Existing events: `BENCH_SCALE` (one backend × design
//!   size sample).
//! * `NET_<EVENT> key=value ...` — lifecycle of `gcnt netserve` and the
//!   `SELFTEST_NET` drill. Existing events: `NET_READY` (the listener is
//!   bound and accepting), `NET_DRAIN` (graceful drain finished, with
//!   the lifetime summary).
//! * `LOADGEN_<EVENT> key=value ...` — results from `gcnt loadgen`.
//!   Existing events: `LOADGEN_FLOW` (one flow job's outcome checksum),
//!   `LOADGEN_DONE` (session/error totals and latency quantiles).
//!
//! Grammar, kept deliberately grep/awk-trivial:
//!
//! * one event per line, prefix first;
//! * fields are space-separated `key=value` pairs, keys are
//!   `[a-z_]+`, values contain no spaces;
//! * field order within an event is fixed (append-only: new fields go
//!   last, existing fields never move or disappear — CI pipelines pattern
//!   match on them).
//!
//! Human-facing output (tables, summaries) does not come through here and
//! carries no prefix.

use std::error::Error;
use std::fmt::Display;
use std::path::Path;

use gcnt_obs::Snapshot;

/// Builder for one machine-readable line. Construct with [`selftest`] or
/// [`metrics`], chain [`Line::field`], finish with [`Line::emit`].
pub struct Line {
    buf: String,
}

/// Starts a `SELFTEST_<event>` line.
pub fn selftest(event: &str) -> Line {
    Line {
        buf: format!("SELFTEST_{event}"),
    }
}

/// Starts a `METRICS_<event>` line.
pub fn metrics(event: &str) -> Line {
    Line {
        buf: format!("METRICS_{event}"),
    }
}

/// Starts a `BENCH_<event>` line.
pub fn bench(event: &str) -> Line {
    Line {
        buf: format!("BENCH_{event}"),
    }
}

/// Starts a `NET_<event>` line.
pub fn net(event: &str) -> Line {
    Line {
        buf: format!("NET_{event}"),
    }
}

/// Starts a `LOADGEN_<event>` line.
pub fn loadgen(event: &str) -> Line {
    Line {
        buf: format!("LOADGEN_{event}"),
    }
}

impl Line {
    /// Appends one `key=value` field. `value` is rendered with `Display`;
    /// it must not contain spaces (debug-asserted) or the line stops being
    /// machine-parseable.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Display) -> Self {
        let rendered = value.to_string();
        debug_assert!(
            !rendered.contains(' ') && !rendered.contains('\n'),
            "report field value must be atomic: {key}={rendered}"
        );
        self.buf.push(' ');
        self.buf.push_str(key);
        self.buf.push('=');
        self.buf.push_str(&rendered);
        self
    }

    /// Prints the finished line to stdout.
    pub fn emit(self) {
        println!("{}", self.buf);
    }

    /// The finished line without printing it (used by tests).
    pub fn into_string(self) -> String {
        self.buf
    }
}

/// Captures the global metrics registry and writes the snapshot to
/// `path`, emitting a `METRICS_SNAPSHOT` line. The format follows the
/// extension: `.prom` / `.txt` get Prometheus text exposition, anything
/// else (conventionally `.json`) gets the JSON document.
pub fn write_metrics_snapshot(path: &Path) -> Result<(), Box<dyn Error>> {
    let snap = Snapshot::capture(gcnt_obs::global());
    let (format, body) = match path.extension().and_then(|e| e.to_str()) {
        Some("prom") | Some("txt") => ("prometheus", snap.to_prometheus()),
        _ => ("json", snap.to_json()),
    };
    gcnt_runtime::atomic_write(path, body.as_bytes())
        .map_err(|e| format!("cannot write metrics snapshot '{}': {e}", path.display()))?;
    metrics("SNAPSHOT")
        .field("path", path.display())
        .field("format", format)
        .emit();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_grammar_is_stable() {
        let line = selftest("FLOW")
            .field("records", 7)
            .field("resumed", 0)
            .field("torn_tail", false)
            .field("checksum", format_args!("{:016x}", 0xabcd_u64))
            .into_string();
        assert_eq!(
            line,
            "SELFTEST_FLOW records=7 resumed=0 torn_tail=false checksum=000000000000abcd"
        );
        assert_eq!(
            metrics("SNAPSHOT").field("path", "m.json").into_string(),
            "METRICS_SNAPSHOT path=m.json"
        );
        assert_eq!(
            bench("SCALE").field("nodes", 1000).into_string(),
            "BENCH_SCALE nodes=1000"
        );
        assert_eq!(
            net("READY").field("addr", "127.0.0.1:7421").into_string(),
            "NET_READY addr=127.0.0.1:7421"
        );
        assert_eq!(
            loadgen("DONE").field("sessions", 1000).into_string(),
            "LOADGEN_DONE sessions=1000"
        );
    }

    #[test]
    fn snapshot_file_format_follows_extension() {
        let dir = std::env::temp_dir().join(format!("gcnt-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("m.json");
        let prom = dir.join("m.prom");
        write_metrics_snapshot(&json).unwrap();
        write_metrics_snapshot(&prom).unwrap();
        let json_text = std::fs::read_to_string(&json).unwrap();
        let prom_text = std::fs::read_to_string(&prom).unwrap();
        assert!(json_text.starts_with('{'));
        assert!(json_text.contains("\"gcnt_tensor_spmm_rows_total\""));
        assert!(prom_text.starts_with("# HELP "));
        assert!(prom_text.contains("# TYPE gcnt_serve_journal_fsync_ns histogram"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
