#!/usr/bin/env bash
# Runs the gated benchmark suite and records or compares against the
# committed baseline.
#
#   scripts/bench_gate.sh record    # rewrite BENCH_baseline.json in place
#   scripts/bench_gate.sh compare   # exit nonzero on >25% median regression
#
# The gated set is the five benches that exercise the paper-critical paths:
# flow (GCN-guided OP insertion), incremental (dirty-cone embedding reuse),
# serve (admission/ladder/journal), scale (10^5-node embedding, serial vs
# partitioned backend), kernels (scalar vs register-blocked SpMM/GEMM row
# kernels at dims 32/64). GCNT_BENCH_TOLERANCE=<percent> widens or narrows
# the compare gate.

set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-compare}"
baseline="BENCH_baseline.json"
# GCNT_BENCH_LOGDIR keeps the raw bench logs (CI uploads them and records a
# fresh-baseline artifact from them); otherwise they live in a temp dir.
if [ -n "${GCNT_BENCH_LOGDIR:-}" ]; then
    logdir="$GCNT_BENCH_LOGDIR"
    mkdir -p "$logdir"
else
    logdir="$(mktemp -d)"
    trap 'rm -rf "$logdir"' EXIT
fi

# Each suite runs REPEATS times; bench_gate keeps the best median per bench
# id, which is stable against transient machine load where any single run
# is not. A real regression slows every repeat and still trips the gate.
REPEATS="${GCNT_BENCH_REPEATS:-3}"
for bench in flow incremental serve scale kernels; do
    rm -f "$logdir/$bench.log"
    for ((i = 1; i <= REPEATS; i++)); do
        echo "== cargo bench --bench $bench (run $i/$REPEATS) =="
        cargo bench -p gcnt-bench --bench "$bench" | tee -a "$logdir/$bench.log"
    done
done

case "$mode" in
record)
    cargo run -q -p gcnt-bench --bin bench_gate -- record --out "$baseline" \
        "$logdir"/flow.log "$logdir"/incremental.log "$logdir"/serve.log \
        "$logdir"/scale.log "$logdir"/kernels.log
    ;;
compare)
    cargo run -q -p gcnt-bench --bin bench_gate -- compare --baseline "$baseline" \
        "$logdir"/flow.log "$logdir"/incremental.log "$logdir"/serve.log \
        "$logdir"/scale.log "$logdir"/kernels.log
    ;;
*)
    echo "usage: $0 [record|compare]" >&2
    exit 2
    ;;
esac
