#!/usr/bin/env bash
# Regenerates every table and figure of the paper at the canonical
# reproduction scale (see EXPERIMENTS.md). Writes console output to
# results/*.log and machine-readable data to results/*.json.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

run() {
    local name="$1"; shift
    echo "=== $name: $* ==="
    cargo run --release -p gcnt-bench --bin "$name" -- "$@" | tee "results/$name.log"
}

cargo build --release -p gcnt-bench --bins

run table1 --nodes 20000
run fig8   --nodes 3000 --epochs 300 --eval-every 25
run fig9   --nodes 3000 --epochs 100
run table3 --nodes 3000 --epochs 100
run fig10  --max-nodes 1000000
run table2 --nodes 6000 --epochs 300

echo "all experiments complete"
