//! Quickstart: generate a synthetic scan design, label its
//! difficult-to-observe nodes with the DFT substrate, train the paper's
//! GCN on a balanced sample, and evaluate.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gcn_testability::dft::labeler::{label_difficult_to_observe, LabelConfig};
use gcn_testability::gcn::train::{evaluate, train, TrainConfig};
use gcn_testability::gcn::{balanced_indices, Gcn, GcnConfig, GraphData};
use gcn_testability::netlist::{generate, GeneratorConfig};
use gcn_testability::nn::seeded_rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic stand-in for an industrial scan design.
    let net = generate(&GeneratorConfig::sized("quickstart", 42, 4_000));
    let stats = net.stats()?;
    println!(
        "design: {} nodes, {} edges, {} PIs, {} POs, {} DFFs, depth {}",
        stats.nodes, stats.edges, stats.inputs, stats.outputs, stats.dffs, stats.max_level
    );

    // 2. Ground-truth labels from random-pattern observability analysis
    //    (the role a commercial DFT tool plays in the paper).
    let labels = label_difficult_to_observe(&net, &LabelConfig::default())?;
    println!(
        "labeled {} of {} nodes difficult-to-observe ({:.2}%)",
        labels.positive_count(),
        net.node_count(),
        100.0 * labels.positive_count() as f64 / net.node_count() as f64
    );

    // 3. Prepare graph tensors + normalised [LL, C0, C1, O] features.
    let data = GraphData::from_netlist(&net, None)?.with_labels(labels.labels);

    // 4. Train on a balanced sample (all positives + equal negatives).
    let mut rng = seeded_rng(7);
    let mask = balanced_indices(&data.labels, &mut rng);
    println!("training on a balanced sample of {} nodes", mask.len());
    let mut gcn = Gcn::new(&GcnConfig::with_depth(2), &mut rng);
    let history = train(
        &mut gcn,
        &[&data],
        std::slice::from_ref(&mask),
        &TrainConfig {
            epochs: 120,
            lr: 0.05,
            pos_weight: 1.0,
            momentum: 0.0,
        },
    )?;
    let last = history.last().expect("at least one epoch");
    println!(
        "epoch {}: loss {:.4}, train accuracy {:.3}",
        last.epoch, last.loss, last.train_accuracy
    );

    // 5. Evaluate on the balanced sample.
    let confusion = evaluate(&gcn, &data, &mask)?;
    println!(
        "balanced accuracy {:.3}, precision {:.3}, recall {:.3}, F1 {:.3}",
        confusion.accuracy(),
        confusion.precision(),
        confusion.recall(),
        confusion.f1()
    );
    println!(
        "learned aggregation weights: w_pr = {:.3}, w_su = {:.3}",
        gcn.w_pr(),
        gcn.w_su()
    );
    Ok(())
}
