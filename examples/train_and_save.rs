//! Model persistence: train a GCN, save it to JSON, reload it and verify
//! that the reloaded model is bit-for-bit identical — the workflow of
//! deploying a trained testability model inside an EDA flow.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example train_and_save
//! ```

use gcn_testability::dft::labeler::{label_difficult_to_observe, LabelConfig};
use gcn_testability::gcn::train::{train, TrainConfig};
use gcn_testability::gcn::{balanced_indices, Gcn, GcnConfig, GraphData};
use gcn_testability::netlist::{generate, GeneratorConfig};
use gcn_testability::nn::seeded_rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = generate(&GeneratorConfig::sized("persist", 5, 2_000));
    let labels = label_difficult_to_observe(&net, &LabelConfig::default())?;
    let data = GraphData::from_netlist(&net, None)?.with_labels(labels.labels);

    let mut rng = seeded_rng(3);
    let mask = balanced_indices(&data.labels, &mut rng);
    let mut gcn = Gcn::new(&GcnConfig::with_depth(2), &mut rng);
    train(
        &mut gcn,
        &[&data],
        &[mask],
        &TrainConfig {
            epochs: 40,
            lr: 0.05,
            pos_weight: 1.0,
            momentum: 0.0,
        },
    )?;

    // Persist model + normaliser (both are needed for inductive reuse).
    let dir = std::env::temp_dir().join("gcn_testability_example");
    std::fs::create_dir_all(&dir)?;
    let model_path = dir.join("model.json");
    let norm_path = dir.join("normalizer.json");
    std::fs::write(&model_path, serde_json::to_string_pretty(&gcn)?)?;
    std::fs::write(&norm_path, serde_json::to_string_pretty(&data.normalizer)?)?;
    println!("saved model to {}", model_path.display());
    println!("saved normaliser to {}", norm_path.display());

    // Reload and verify identical predictions on an unseen design.
    let reloaded: Gcn = serde_json::from_str(&std::fs::read_to_string(&model_path)?)?;
    assert_eq!(gcn, reloaded);
    let unseen = generate(&GeneratorConfig::sized("unseen", 6, 1_000));
    let unseen_data = GraphData::from_netlist(&unseen, Some(&data.normalizer))?;
    let p1 = gcn.predict_proba(&unseen_data.tensors, &unseen_data.features)?;
    let p2 = reloaded.predict_proba(&unseen_data.tensors, &unseen_data.features)?;
    assert_eq!(p1, p2);
    println!(
        "reloaded model reproduces {} predictions exactly on an unseen design",
        p1.len()
    );
    Ok(())
}
