//! Scalability demonstration (§3.4.1 / Fig. 10): matrix-form inference on
//! a large netlist vs recursion-based inference.
//!
//! Run with an optional node-count argument (default 100 000; the paper's
//! headline is ~1.5 s for one million cells):
//!
//! ```text
//! cargo run --release --example scale_inference -- 1000000
//! ```

use std::time::Instant;

use gcn_testability::gcn::{recursive, Gcn, GcnConfig, GraphData};
use gcn_testability::netlist::{generate, GeneratorConfig};
use gcn_testability::nn::seeded_rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(100_000);

    println!("generating ~{nodes}-node design...");
    let t0 = Instant::now();
    let net = generate(&GeneratorConfig::sized("scale", 77, nodes));
    println!(
        "  {} nodes, {} edges in {:.2?}",
        net.node_count(),
        net.edge_count(),
        t0.elapsed()
    );

    let t0 = Instant::now();
    let data = GraphData::from_netlist(&net, None)?;
    println!(
        "  features + sparse tensors in {:.2?} (adjacency sparsity {:.4}%)",
        t0.elapsed(),
        data.tensors.sparsity() * 100.0
    );

    let gcn = Gcn::new(&GcnConfig::default(), &mut seeded_rng(1));

    // Matrix-form inference over the whole graph.
    let t0 = Instant::now();
    let logits = gcn.predict(&data.tensors, &data.features)?;
    let sparse_time = t0.elapsed();
    println!(
        "matrix-form inference: {} nodes classified in {:.2?}",
        logits.rows(),
        sparse_time
    );

    // Recursion-based inference on a sample, extrapolated (running it on
    // the full graph would take hours at scale — that is the point).
    let sample: Vec<usize> = (0..data.node_count())
        .step_by((data.node_count() / 200).max(1))
        .collect();
    let t0 = Instant::now();
    let _ = recursive::predict_nodes_unmemoized(&gcn, &data.tensors, &data.features, &sample)?;
    let per_node = t0.elapsed() / sample.len() as u32;
    let extrapolated = per_node * data.node_count() as u32;
    println!(
        "recursion-based inference ([12]-style, no reuse): {:.2?}/node over {} sampled nodes; \
         full graph would take ~{:.2?}",
        per_node,
        sample.len(),
        extrapolated
    );
    println!(
        "speedup of the matrix form: ~{:.0}x",
        extrapolated.as_secs_f64() / sparse_time.as_secs_f64()
    );
    Ok(())
}
