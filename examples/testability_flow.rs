//! End-to-end observation-point insertion (§4 of the paper):
//!
//! 1. Train a multi-stage GCN on labeled training designs.
//! 2. Run the iterative impact-ranked OP insertion flow on an unseen
//!    design.
//! 3. Run the testability-analysis baseline on the same design.
//! 4. Grade both through the same random-pattern ATPG and print a Table 3
//!    style comparison row.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example testability_flow
//! ```

use gcn_testability::dft::atpg::AtpgConfig;
use gcn_testability::dft::baseline::{testability_opi, BaselineConfig};
use gcn_testability::dft::flow::{run_gcn_opi, FlowConfig};
use gcn_testability::dft::labeler::{label_difficult_to_observe, LabelConfig};
use gcn_testability::dft::report::{evaluate_insertion, ComparisonRow};
use gcn_testability::gcn::features::FeatureNormalizer;
use gcn_testability::gcn::{GraphData, MultiStageConfig, MultiStageGcn};
use gcn_testability::netlist::{generate, GeneratorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = 3_000;
    let label_cfg = LabelConfig::default();

    // --- Training designs -------------------------------------------------
    println!("== preparing training designs ==");
    let mut train_data = Vec::new();
    let mut raw_mats = Vec::new();
    for seed in [11u64, 12, 13] {
        let net = generate(&GeneratorConfig::sized(format!("train{seed}"), seed, scale));
        let labels = label_difficult_to_observe(&net, &label_cfg)?;
        println!(
            "  {}: {} nodes, {} positives",
            net.name(),
            net.node_count(),
            labels.positive_count()
        );
        let data = GraphData::from_netlist(&net, None)?;
        raw_mats.push(data.raw_features.clone());
        train_data.push((data, labels.labels));
    }
    // One normaliser fitted over all training designs, reused everywhere.
    let normalizer = FeatureNormalizer::fit(&raw_mats.iter().collect::<Vec<_>>());
    let train_data: Vec<GraphData> = train_data
        .into_iter()
        .map(|(data, labels)| {
            let features = normalizer.apply(&data.raw_features);
            GraphData {
                features,
                normalizer: normalizer.clone(),
                ..data
            }
            .with_labels(labels)
        })
        .collect();

    // --- Multi-stage GCN ---------------------------------------------------
    println!("== training 3-stage GCN ==");
    let refs: Vec<&GraphData> = train_data.iter().collect();
    let ms_cfg = MultiStageConfig {
        epochs_per_stage: 60,
        ..MultiStageConfig::default()
    };
    let (model, reports) = MultiStageGcn::train(&ms_cfg, &refs)?;
    for r in &reports {
        println!(
            "  stage {}: {} active ({} pos), pos_weight {:.1}, filtered {}",
            r.stage, r.active, r.positives, r.pos_weight, r.filtered
        );
    }

    // --- Unseen test design ------------------------------------------------
    let original = generate(&GeneratorConfig::sized("unseen", 99, scale));
    println!(
        "== test design: {} nodes, {} edges ==",
        original.node_count(),
        original.edge_count()
    );

    // GCN-guided flow.
    let mut gcn_design = original.clone();
    let outcome = run_gcn_opi(&mut gcn_design, &normalizer, &model, &FlowConfig::default())?;
    println!(
        "GCN flow: {} OPs in {} iterations (converged: {})",
        outcome.inserted.len(),
        outcome.history.len(),
        outcome.converged
    );

    // Baseline testability-analysis flow.
    let mut base_design = original.clone();
    let base = testability_opi(
        &mut base_design,
        &BaselineConfig {
            label: label_cfg,
            ..Default::default()
        },
    )?;
    println!(
        "baseline: {} OPs in {} rounds (converged: {})",
        base.inserted.len(),
        base.iterations,
        base.converged
    );

    // --- Grade both through the same ATPG ----------------------------------
    let atpg = AtpgConfig::default();
    let row = ComparisonRow {
        baseline: evaluate_insertion(&original, &base_design, &atpg)?,
        gcn: evaluate_insertion(&original, &gcn_design, &atpg)?,
    };
    println!("\n                #OPs   #PAs   Coverage");
    println!(
        "Industrial-proxy {:>5}  {:>5}  {:.2}%",
        row.baseline.ops,
        row.baseline.patterns,
        row.baseline.coverage * 100.0
    );
    println!(
        "GCN-Flow         {:>5}  {:>5}  {:.2}%",
        row.gcn.ops,
        row.gcn.patterns,
        row.gcn.coverage * 100.0
    );
    println!(
        "ratios: OPs {:.2}, patterns {:.2}, coverage delta {:.2}pp",
        row.ops_ratio(),
        row.patterns_ratio(),
        row.coverage_delta_pp()
    );
    Ok(())
}
