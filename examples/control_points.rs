//! Control-point insertion (the CP side of test point insertion, paper
//! §2.2 / Fig. 2): find nodes that random patterns can almost never set to
//! 0 or 1, fix them with AND/OR control points, and verify that
//!
//! 1. controllability actually improves,
//! 2. ATPG coverage goes up, and
//! 3. the design's function is untouched while the test inputs are
//!    inactive (checked with random equivalence checking).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example control_points
//! ```

use gcn_testability::dft::atpg::{run_random_atpg_on, AtpgConfig};
use gcn_testability::dft::cp::{
    insert_control_points, label_difficult_to_control, ControlLabelConfig, CpInsertionConfig,
};
use gcn_testability::dft::equiv::check_preserves_function;
use gcn_testability::dft::fault::collapsed_faults;
use gcn_testability::netlist::{generate, CellKind, GeneratorConfig, NodeId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut gen_cfg = GeneratorConfig::sized("cp-demo", 77, 3_000);
    gen_cfg.shadow_regions = 6; // deep AND cascades: hard-to-control logic
    let original = generate(&gen_cfg);
    println!(
        "design: {} nodes, {} edges",
        original.node_count(),
        original.edge_count()
    );

    // 1. Controllability analysis.
    let label_cfg = ControlLabelConfig::default();
    let before = label_difficult_to_control(&original, &label_cfg)?;
    println!(
        "difficult-to-control nodes before insertion: {}",
        before.positive_count()
    );

    // 2. Iterative CP insertion.
    let mut modified = original.clone();
    let inserted = insert_control_points(
        &mut modified,
        &CpInsertionConfig {
            label: label_cfg.clone(),
            ..Default::default()
        },
    )?;
    println!("inserted {} control points", inserted.len());
    let after = label_difficult_to_control(&modified, &label_cfg)?;
    println!(
        "difficult-to-control nodes after insertion: {}",
        after.positive_count()
    );

    // 3. ATPG coverage before/after, on the original fault list.
    let faults = collapsed_faults(&original);
    let atpg_cfg = AtpgConfig::default();
    let cov_before = run_random_atpg_on(&original, &faults, &atpg_cfg)?;
    let cov_after = run_random_atpg_on(&modified, &faults, &atpg_cfg)?;
    println!(
        "stuck-at coverage: {:.2}% -> {:.2}%",
        cov_before.coverage() * 100.0,
        cov_after.coverage() * 100.0
    );

    // 4. Functional equivalence with test inputs inactive.
    let fixed: Vec<(NodeId, bool)> = inserted
        .iter()
        .map(|cp| (cp.control_input, modified.kind(cp.gate) == CellKind::And))
        .collect();
    let verdict = check_preserves_function(&original, &modified, &fixed, 2_048, 1)?;
    println!(
        "function preserved with inactive test inputs: {}",
        verdict.is_equivalent()
    );
    assert!(verdict.is_equivalent());
    Ok(())
}
