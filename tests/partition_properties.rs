//! Property-based tests for the partitioned matrix backend: the sharded
//! kernels must be *bit-identical* to the serial ones on arbitrary
//! graphs, at every partition count, and through every inference path
//! (full, backend-threaded, incremental) — the invariant that makes the
//! backend a pure performance choice with no numerical consequences.

use proptest::prelude::*;

use gcn_testability::dft::flow::{run_gcn_opi, FlowBackend, FlowConfig};
use gcn_testability::gcn::{Gcn, GcnConfig, GraphData, GraphTensors, MatrixBackend};
use gcn_testability::netlist::{generate, GeneratorConfig, Netlist};
use gcn_testability::nn::seeded_rng;
use gcn_testability::tensor::{Budget, Matrix, PartitionedCsr};

/// Strategy: a small random DAG netlist (same construction as
/// `tests/properties.rs`).
fn arb_netlist() -> impl Strategy<Value = Netlist> {
    (2usize..12, 5usize..60, any::<u64>()).prop_map(|(inputs, gates, seed)| {
        let cfg = GeneratorConfig {
            inputs,
            gates,
            seed,
            shadow_regions: 0,
            ..GeneratorConfig::default()
        };
        generate(&cfg)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sharded SpMM equals serial SpMM bit for bit, on both adjacency
    /// directions, for every partition count from 1 to 8.
    #[test]
    fn partitioned_spmm_is_bitwise_serial(
        net in arb_netlist(),
        parts in 1usize..9,
        seed in any::<u64>(),
    ) {
        let t = GraphTensors::from_netlist(&net);
        let n = t.node_count();
        use rand::Rng as _;
        let mut rng = seeded_rng(seed);
        let x = Matrix::from_fn(n, 5, |_, _| rng.gen_range(-1.0f32..1.0));
        for (name, csr) in [("pred", t.pred()), ("succ", t.succ())] {
            let sharded = PartitionedCsr::from_csr(csr, parts).unwrap();
            let serial = csr.spmm(&x).unwrap();
            let parallel = sharded.spmm(&x).unwrap();
            prop_assert_eq!(
                serial.as_slice(),
                parallel.as_slice(),
                "{} diverged at {} partitions",
                name,
                parts
            );
        }
    }

    /// The three inference paths agree bit for bit: a plain full embed, a
    /// partitioned-backend embed, and a dirty-halo incremental update of
    /// a cache that was *built on the partitioned backend*.
    #[test]
    fn embed_full_partitioned_incremental_agree(
        net in arb_netlist(),
        seed in any::<u64>(),
        parts in 1usize..9,
        dirty_picks in proptest::collection::vec(any::<u32>(), 1..5),
    ) {
        let data = GraphData::from_netlist(&net, None).unwrap();
        let gcn = Gcn::new(
            &GcnConfig {
                embed_dims: vec![6, 5],
                fc_dims: vec![4],
                ..GcnConfig::default()
            },
            &mut seeded_rng(seed),
        );
        let n = data.node_count();
        let mut backend = MatrixBackend::partitioned(&data.tensors, parts).unwrap();

        // Full serial vs backend-threaded full pass.
        let full = gcn.embed(&data.tensors, &data.features).unwrap();
        let backed = gcn
            .embed_with(&data.tensors, &data.features, &mut backend)
            .unwrap();
        prop_assert_eq!(&full, &backed);

        // A cache built through the partitioned backend, updated by the
        // serial dirty-halo engine, must land exactly where a serial
        // from-scratch recompute lands.
        let mut x = data.features.clone();
        let mut cache = gcn
            .embed_cached_budgeted_with(
                &data.tensors,
                &x,
                &Budget::unlimited(),
                &mut backend,
            )
            .unwrap();
        let serial_cache = gcn.embed_cached(&data.tensors, &x).unwrap();
        prop_assert_eq!(cache.layers(), serial_cache.layers());
        let dirty: Vec<usize> = dirty_picks.iter().map(|&p| p as usize % n).collect();
        for &r in &dirty {
            x.set(r, 3, x.get(r, 3) + 0.5);
        }
        gcn.embed_incremental(&data.tensors, &x, &mut cache, &dirty)
            .unwrap();
        let fresh = gcn.embed(&data.tensors, &x).unwrap();
        prop_assert_eq!(cache.final_embedding(), &fresh);
    }
}

proptest! {
    // Each case runs two full flows; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The OP-insertion flow is outcome-identical across matrix backends:
    /// same insertions, same history, same final netlist.
    #[test]
    fn flow_outcome_is_backend_invariant(net in arb_netlist(), seed in any::<u64>()) {
        let data = GraphData::from_netlist(&net, None).unwrap();
        let gcn = Gcn::new(
            &GcnConfig {
                embed_dims: vec![8, 8],
                fc_dims: vec![8],
                ..GcnConfig::default()
            },
            &mut seeded_rng(seed),
        );
        let cfg = FlowConfig {
            max_iterations: 3,
            ops_per_iteration: 2,
            candidate_limit: 6,
            ..FlowConfig::default()
        };
        let mut net_serial = net.clone();
        let serial = run_gcn_opi(
            &mut net_serial,
            &data.normalizer,
            &gcn,
            &FlowConfig { backend: FlowBackend::Serial, ..cfg.clone() },
        )
        .unwrap();
        let mut net_part = net.clone();
        let part = run_gcn_opi(
            &mut net_part,
            &data.normalizer,
            &gcn,
            &FlowConfig { backend: FlowBackend::Partitioned, ..cfg },
        )
        .unwrap();
        prop_assert_eq!(serial.inserted, part.inserted);
        prop_assert_eq!(serial.converged, part.converged);
        prop_assert_eq!(serial.remaining_positives, part.remaining_positives);
        prop_assert_eq!(serial.history, part.history);
        prop_assert_eq!(serial.skipped, part.skipped);
        prop_assert_eq!(net_serial, net_part);
    }
}
