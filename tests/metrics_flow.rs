//! Acceptance check for the observability layer: running the GCN-guided
//! OP-insertion flow with metrics enabled must produce nonzero SpMM-row,
//! cache-reuse, and insertion counters whose values are consistent with the
//! flow's own `FlowOutcome::inference` accounting. The reference design is
//! the seeded 9-level/400-node netlist used by BENCH_flow.json and
//! EXPERIMENTS.md.

use gcn_testability::dft::flow::{run_gcn_opi, FlowConfig, ImpactMode};
use gcn_testability::gcn::{Gcn, GcnConfig, GraphData};
use gcn_testability::netlist::{generate, GeneratorConfig};
use gcn_testability::nn::seeded_rng;
use gcn_testability::obs::catalog::counters;

/// Counter deltas rather than absolutes: the global registry is process-wide
/// and other tests in this binary could in principle record into it.
fn counter_deltas<const N: usize>(
    ids: [gcn_testability::obs::CounterId; N],
    run: impl FnOnce(),
) -> [u64; N] {
    let registry = gcn_testability::obs::global();
    let before = ids.map(|id| registry.counter(id));
    run();
    let after = ids.map(|id| registry.counter(id));
    let mut delta = [0u64; N];
    for i in 0..N {
        delta[i] = after[i] - before[i];
    }
    delta
}

#[test]
fn flow_metrics_match_inference_accounting() {
    let net = generate(&GeneratorConfig::sized("x", 9, 400));
    let data = GraphData::from_netlist(&net, None).expect("acyclic");
    let gcn = Gcn::new(
        &GcnConfig {
            embed_dims: vec![32, 32],
            fc_dims: vec![32],
            ..GcnConfig::default()
        },
        &mut seeded_rng(9),
    );
    let cfg = FlowConfig {
        max_iterations: 2,
        ops_per_iteration: 4,
        impact_mode: ImpactMode::Incremental,
        ..FlowConfig::default()
    };

    gcn_testability::obs::global().enable();
    let mut outcome = None;
    let [spmm_rows, rows_computed, rows_full, inferences, ops_inserted, rows_reused] =
        counter_deltas(
            [
                counters::TENSOR_SPMM_ROWS,
                counters::DFT_FLOW_ROWS_COMPUTED,
                counters::DFT_FLOW_ROWS_FULL,
                counters::DFT_FLOW_INFERENCES,
                counters::DFT_FLOW_OPS_INSERTED,
                counters::CORE_INCR_ROWS_REUSED,
            ],
            || {
                outcome = Some(
                    run_gcn_opi(&mut net.clone(), &data.normalizer, &gcn, &cfg).expect("flow runs"),
                );
            },
        );
    let outcome = outcome.unwrap();

    // The counters are recorded at the same funnel that fills
    // `FlowOutcome::inference`, so on a fresh run they must agree exactly.
    assert_eq!(rows_computed, outcome.inference.rows_computed);
    assert_eq!(rows_full, outcome.inference.rows_full);
    assert_eq!(inferences, outcome.inference.inferences);
    assert_eq!(ops_inserted, outcome.inserted.len() as u64);

    // Nonzero work actually flowed through each layer.
    assert!(spmm_rows > 0, "GCN inference must drive SpMM rows");
    assert!(ops_inserted > 0, "the flow must insert observation points");
    assert!(
        rows_reused > 0,
        "incremental impact mode must reuse cached embedding rows"
    );
    // Reuse is the whole point of incremental mode: strictly fewer rows
    // computed than a full-pass flow would have needed.
    assert!(
        rows_computed < rows_full,
        "incremental mode must compute fewer rows than full equivalents \
         ({rows_computed} vs {rows_full})"
    );
}
