//! Cross-crate integration tests: netlist -> DFT labeling -> GCN training
//! -> iterative OP insertion -> ATPG grading, exercised through the public
//! facade exactly as a downstream user would.

use gcn_testability::dft::atpg::{run_random_atpg, run_random_atpg_on, AtpgConfig};
use gcn_testability::dft::fault::collapsed_faults;
use gcn_testability::dft::flow::{run_gcn_opi, FlowConfig};
use gcn_testability::dft::labeler::{label_difficult_to_observe, LabelConfig};
use gcn_testability::gcn::train::{evaluate, train, TrainConfig};
use gcn_testability::gcn::{balanced_indices, Gcn, GcnConfig, GraphData};
use gcn_testability::netlist::{generate, GeneratorConfig, Scoap};
use gcn_testability::nn::seeded_rng;

fn small_cfg() -> GcnConfig {
    GcnConfig {
        embed_dims: vec![8, 16],
        fc_dims: vec![8],
        ..GcnConfig::default()
    }
}

/// Train on one design, apply to an unseen design (the inductive claim of
/// §2.1): accuracy on the unseen design's balanced set must clearly beat
/// chance.
#[test]
fn inductive_generalization_to_unseen_design() {
    let label_cfg = LabelConfig {
        patterns: 2_048,
        threshold: 0.002,
        seed: 3,
    };
    let train_net = generate(&GeneratorConfig::sized("train", 201, 2_500));
    let train_labels = label_difficult_to_observe(&train_net, &label_cfg).unwrap();
    let train_data = GraphData::from_netlist(&train_net, None)
        .unwrap()
        .with_labels(train_labels.labels);

    let test_net = generate(&GeneratorConfig::sized("test", 202, 2_500));
    let test_labels = label_difficult_to_observe(&test_net, &label_cfg).unwrap();
    // Normalised with the *training* statistics — inductive application.
    let test_data = GraphData::from_netlist(&test_net, Some(&train_data.normalizer))
        .unwrap()
        .with_labels(test_labels.labels);

    let mut rng = seeded_rng(1);
    let train_mask = balanced_indices(&train_data.labels, &mut rng);
    let test_mask = balanced_indices(&test_data.labels, &mut rng);
    assert!(train_mask.len() >= 20, "not enough positives to train on");
    assert!(test_mask.len() >= 20, "not enough positives to test on");

    let mut gcn = Gcn::new(&small_cfg(), &mut rng);
    train(
        &mut gcn,
        &[&train_data],
        &[train_mask],
        &TrainConfig {
            epochs: 80,
            lr: 0.1,
            pos_weight: 1.0,
            momentum: 0.0,
        },
    )
    .unwrap();
    let acc = evaluate(&gcn, &test_data, &test_mask).unwrap().accuracy();
    assert!(acc > 0.75, "unseen-design balanced accuracy {acc}");
}

/// The full §4 loop with a *trained* model (not an oracle): the flow must
/// converge and the modified design must reach higher ATPG coverage than
/// the original.
#[test]
fn trained_flow_improves_coverage() {
    let label_cfg = LabelConfig {
        patterns: 2_048,
        threshold: 0.002,
        seed: 5,
    };
    let train_net = generate(&GeneratorConfig::sized("train", 211, 2_000));
    let labels = label_difficult_to_observe(&train_net, &label_cfg).unwrap();
    let train_data = GraphData::from_netlist(&train_net, None)
        .unwrap()
        .with_labels(labels.labels);
    let mut rng = seeded_rng(2);
    let mask = balanced_indices(&train_data.labels, &mut rng);
    let mut gcn = Gcn::new(&small_cfg(), &mut rng);
    train(
        &mut gcn,
        &[&train_data],
        &[mask],
        &TrainConfig {
            epochs: 80,
            lr: 0.1,
            pos_weight: 1.0,
            momentum: 0.0,
        },
    )
    .unwrap();

    let original = generate(&GeneratorConfig::sized("victim", 212, 2_000));
    let mut modified = original.clone();
    let outcome = run_gcn_opi(
        &mut modified,
        &train_data.normalizer,
        &gcn,
        &FlowConfig {
            max_iterations: 10,
            ..FlowConfig::default()
        },
    )
    .unwrap();
    assert!(!outcome.inserted.is_empty(), "flow inserted nothing");
    modified.validate().unwrap();

    let atpg_cfg = AtpgConfig {
        max_patterns: 4_096,
        ..Default::default()
    };
    let faults = collapsed_faults(&original);
    let before = run_random_atpg_on(&original, &faults, &atpg_cfg).unwrap();
    let after = run_random_atpg_on(&modified, &faults, &atpg_cfg).unwrap();
    assert!(
        after.coverage() >= before.coverage(),
        "coverage {} -> {}",
        before.coverage(),
        after.coverage()
    );
}

/// Incremental graph maintenance across the whole pipeline: inserting OPs
/// through the flow keeps netlist, tensors and SCOAP mutually consistent
/// with a from-scratch rebuild.
#[test]
fn flow_state_matches_rebuild() {
    let mut net = generate(&GeneratorConfig::sized("consistency", 221, 1_200));
    let raw = gcn_testability::gcn::features::raw_features_of(&net).unwrap();
    let normalizer = gcn_testability::gcn::features::FeatureNormalizer::fit(&[&raw]);
    let oracle = |_t: &gcn_testability::gcn::GraphTensors, f: &gcn_testability::tensor::Matrix| {
        Ok((0..f.rows())
            .map(|r| if f.get(r, 3) > 2.0 { 0.9f32 } else { 0.1 })
            .collect::<Vec<f32>>())
    };
    let outcome = run_gcn_opi(&mut net, &normalizer, oracle, &FlowConfig::default()).unwrap();
    net.validate().unwrap();
    // Tensors rebuilt from the mutated netlist must match what incremental
    // maintenance produced: check node/edge counts via a fresh build.
    let fresh = gcn_testability::gcn::GraphTensors::from_netlist(&net);
    assert_eq!(fresh.node_count(), net.node_count());
    // Every inserted OP is observable at zero cost in a fresh SCOAP.
    let scoap = Scoap::compute(&net).unwrap();
    for &v in &outcome.inserted {
        assert_eq!(scoap.co(v), 0);
    }
}

/// ATPG sanity at the facade level: random ATPG on a generated design
/// reports plausible coverage and pattern counts, deterministically.
#[test]
fn atpg_deterministic_and_plausible() {
    let net = generate(&GeneratorConfig::sized("atpg", 231, 1_500));
    let cfg = AtpgConfig::default();
    let a = run_random_atpg(&net, &cfg).unwrap();
    let b = run_random_atpg(&net, &cfg).unwrap();
    assert_eq!(a, b);
    assert!(a.coverage() > 0.7, "coverage {}", a.coverage());
    assert!(a.patterns_kept > 0);
    assert!(a.patterns_kept <= a.patterns_applied);
}

/// Text-format round trip composed with the model pipeline: a design
/// written to text, re-read and re-featurised produces an identical node
/// count and SCOAP profile, so models transfer across serialisation.
#[test]
fn format_round_trip_preserves_pipeline_inputs() {
    let net = generate(&GeneratorConfig::sized("fmt", 241, 800));
    let text = gcn_testability::netlist::format::write(&net);
    let back = gcn_testability::netlist::format::read(&text).unwrap();
    assert_eq!(back.node_count(), net.node_count());
    assert_eq!(back.edge_count(), net.edge_count());
    let d1 = GraphData::from_netlist(&net, None).unwrap();
    let d2 = GraphData::from_netlist(&back, None).unwrap();
    // Same multiset of feature rows (node numbering may differ).
    let mut s1: Vec<String> = (0..d1.features.rows())
        .map(|r| format!("{:?}", d1.raw_features.row(r)))
        .collect();
    let mut s2: Vec<String> = (0..d2.features.rows())
        .map(|r| format!("{:?}", d2.raw_features.row(r)))
        .collect();
    s1.sort();
    s2.sort();
    assert_eq!(s1, s2);
}
