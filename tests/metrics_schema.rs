//! The metric schema is a CI-guarded contract: every snapshot emits every
//! catalog metric (zeroes included), in a key set that must match the
//! committed golden list exactly. Renaming, adding, or removing a metric is
//! allowed — but only together with an intentional edit to
//! `tests/golden/metrics_keys.txt`, so dashboards and the CI schema step
//! never drift silently.

use std::collections::BTreeSet;

use gcn_testability::obs::{MetricsRegistry, Snapshot};

const GOLDEN: &str = include_str!("golden/metrics_keys.txt");

/// `kind name` lines, exactly as the golden file records them.
fn snapshot_keys() -> BTreeSet<String> {
    let snapshot = Snapshot::capture(&MetricsRegistry::new());
    let mut keys = BTreeSet::new();
    for (name, _) in &snapshot.counters {
        keys.insert(format!("counter {name}"));
    }
    for (name, _) in &snapshot.gauges {
        keys.insert(format!("gauge {name}"));
    }
    for hist in &snapshot.histograms {
        keys.insert(format!("histogram {}", hist.name));
    }
    keys
}

#[test]
fn snapshot_key_set_matches_golden_list() {
    let golden: BTreeSet<String> = GOLDEN
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    let actual = snapshot_keys();

    let missing: Vec<_> = golden.difference(&actual).collect();
    let unexpected: Vec<_> = actual.difference(&golden).collect();
    assert!(
        missing.is_empty() && unexpected.is_empty(),
        "metric schema drifted from tests/golden/metrics_keys.txt\n\
         missing from snapshot: {missing:?}\n\
         not in golden list:    {unexpected:?}\n\
         If the change is intentional, update the golden file."
    );
}

#[test]
fn json_and_prometheus_expose_the_same_metrics() {
    let registry = MetricsRegistry::new();
    let snapshot = Snapshot::capture(&registry);
    let json = snapshot.to_json();
    let prom = snapshot.to_prometheus();
    for (name, _) in &snapshot.counters {
        assert!(
            json.contains(&format!("\"{name}\"")),
            "{name} missing in JSON"
        );
        assert!(prom.contains(name), "{name} missing in Prometheus text");
    }
    for hist in &snapshot.histograms {
        assert!(
            json.contains(&format!("\"{}\"", hist.name)),
            "{} missing in JSON",
            hist.name
        );
        assert!(
            prom.contains(&format!("{}_bucket", hist.name)),
            "{} buckets missing in Prometheus text",
            hist.name
        );
    }
}
