//! Property-based tests for the kernel dispatch layer: the blocked
//! kernels must be *bit-identical* to the scalar reference on arbitrary
//! shapes — every product (sparse, row-sliced, partitioned, dense), at
//! every dimension around the blocking breakpoints (the 4-coefficient
//! fusion gate, the 64-column tile edge, the 32/64 fixed GEMM widths) —
//! the invariant that makes `KernelPolicy` a pure performance choice.
//!
//! The CI kernel-equivalence matrix runs this file under
//! `GCNT_KERNEL=scalar` and `GCNT_KERNEL=blocked` and again under
//! `RUSTFLAGS="-C target-cpu=native"`; the assertions themselves bypass
//! the global policy via the explicit `*_with_kernel` entry points, so
//! both kernels are exercised regardless of the environment.

use proptest::prelude::*;

use gcn_testability::tensor::{
    CooMatrix, CsrMatrix, KernelPolicy, Matrix, PartitionScratch, PartitionedCsr,
};

/// Dense widths straddling every dispatch breakpoint: each narrow
/// fixed GEMM path (1..=8) plus just past it, the 32/64 fixed paths,
/// and the 64-column tile edge.
const DIMS: &[usize] = &[1, 2, 3, 4, 5, 6, 7, 8, 9, 31, 32, 33, 63, 64, 65];

/// Strategy: a random sparse matrix as (rows, cols, entries). Entry
/// values avoid exact zeros so the matrix's stored pattern is what the
/// kernels actually see; row fill spans empty rows through rows dense
/// enough to cross the 4-coefficient fusion gate several times over.
fn arb_sparse() -> impl Strategy<Value = CsrMatrix> {
    (
        1usize..24,
        1usize..24,
        proptest::collection::vec((any::<u32>(), any::<u32>(), -8i32..8), 0..160),
    )
        .prop_map(|(rows, cols, es)| {
            let mut coo = CooMatrix::new(rows, cols);
            for (r, c, v) in es {
                coo.push(
                    r as usize % rows,
                    c as usize % cols,
                    v as f32 * 0.375 + 0.0625,
                );
            }
            CsrMatrix::from_coo(&coo)
        })
}

/// Strategy: a random *square* sparse matrix (the partitioned backend
/// shards adjacency matrices, which are n × n by construction).
fn arb_square_sparse() -> impl Strategy<Value = CsrMatrix> {
    (
        1usize..24,
        proptest::collection::vec((any::<u32>(), any::<u32>(), -8i32..8), 0..160),
    )
        .prop_map(|(n, es)| {
            let mut coo = CooMatrix::new(n, n);
            for (r, c, v) in es {
                coo.push(r as usize % n, c as usize % n, v as f32 * 0.375 + 0.0625);
            }
            CsrMatrix::from_coo(&coo)
        })
}

/// A deterministic dense operand with negative, positive and fractional
/// values (exact in f32, so accumulation-order bugs surface as real bit
/// differences rather than vanishing in rounding noise).
fn dense_operand(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        ((r * 31 + c * 7 + salt * 13) % 23) as f32 * 0.4375 - 4.8125
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sparse × dense: blocked equals scalar bit for bit at every width.
    #[test]
    fn spmm_blocked_is_bitwise_scalar(csr in arb_sparse(), salt in 0usize..64) {
        for &dim in DIMS {
            let rhs = dense_operand(csr.cols(), dim, salt);
            let scalar = csr.spmm_with_kernel(&rhs, KernelPolicy::Scalar).unwrap();
            let blocked = csr.spmm_with_kernel(&rhs, KernelPolicy::Blocked).unwrap();
            prop_assert_eq!(
                scalar.as_slice(),
                blocked.as_slice(),
                "spmm diverged at dim {}",
                dim
            );
        }
    }

    /// Row-sliced sparse × dense (the incremental engine's primitive):
    /// blocked equals scalar on an arbitrary row subset.
    #[test]
    fn spmm_rows_blocked_is_bitwise_scalar(
        csr in arb_sparse(),
        salt in 0usize..64,
        picks in proptest::collection::vec(any::<u32>(), 1..12),
    ) {
        let rows: Vec<usize> = picks.iter().map(|&p| p as usize % csr.rows()).collect();
        for &dim in DIMS {
            let rhs = dense_operand(csr.cols(), dim, salt);
            let scalar = csr
                .spmm_rows_with_kernel(&rhs, &rows, KernelPolicy::Scalar)
                .unwrap();
            let blocked = csr
                .spmm_rows_with_kernel(&rhs, &rows, KernelPolicy::Blocked)
                .unwrap();
            prop_assert_eq!(
                scalar.as_slice(),
                blocked.as_slice(),
                "spmm_rows diverged at dim {}",
                dim
            );
        }
    }

    /// Partitioned sparse × dense: the blocked kernel threaded through
    /// the halo-exchange workers equals the serial scalar product, at
    /// every partition count.
    #[test]
    fn partitioned_spmm_blocked_is_bitwise_scalar(
        csr in arb_square_sparse(),
        salt in 0usize..64,
        parts in 1usize..7,
    ) {
        let sharded = PartitionedCsr::from_csr(&csr, parts).unwrap();
        let mut scratch = PartitionScratch::new();
        for &dim in DIMS {
            let rhs = dense_operand(csr.cols(), dim, salt);
            let scalar = csr.spmm_with_kernel(&rhs, KernelPolicy::Scalar).unwrap();
            let blocked = sharded
                .spmm_with_kernel(&rhs, &mut scratch, KernelPolicy::Blocked)
                .unwrap();
            prop_assert_eq!(
                scalar.as_slice(),
                blocked.as_slice(),
                "partitioned spmm diverged at dim {} / {} partitions",
                dim,
                parts
            );
        }
    }

    /// Dense × dense (the embed loop's GEMM): blocked equals scalar,
    /// including through the zero-skip path (post-ReLU activations are
    /// mostly zero, so the lhs is sprinkled with exact zeros here).
    #[test]
    fn matmul_blocked_is_bitwise_scalar(
        rows in 1usize..24,
        k in 1usize..24,
        salt in 0usize..64,
        zero_every in 2usize..5,
    ) {
        for &dim in DIMS {
            let mut lhs = dense_operand(rows, k, salt);
            for r in 0..rows {
                for c in 0..k {
                    if (r + c) % zero_every == 0 {
                        lhs.set(r, c, 0.0);
                    }
                }
            }
            let rhs = dense_operand(k, dim, salt + 1);
            let scalar = lhs.matmul_with_kernel(&rhs, KernelPolicy::Scalar).unwrap();
            let blocked = lhs.matmul_with_kernel(&rhs, KernelPolicy::Blocked).unwrap();
            prop_assert_eq!(
                scalar.as_slice(),
                blocked.as_slice(),
                "matmul diverged at dim {}",
                dim
            );
        }
    }
}
