//! Property-based tests (proptest) over the core data structures and the
//! invariants the paper's pipeline depends on.

use proptest::prelude::*;

use gcn_testability::dft::flow::{run_gcn_opi, FlowConfig, ImpactMode};
use gcn_testability::gcn::{recursive, Gcn, GcnConfig, GraphData, GraphTensors};
use gcn_testability::lint::{lint_csr, lint_netlist, lint_scoap, RuleId};
use gcn_testability::netlist::{generate, CellKind, GeneratorConfig, Netlist, Scoap, SCOAP_INF};
use gcn_testability::nn::seeded_rng;
use gcn_testability::tensor::{CooMatrix, CsrMatrix, Matrix};

/// Strategy: a small random DAG netlist built the same way the generator
/// guarantees acyclicity (fanins only from earlier nodes), with all
/// dangling nodes promoted to primary outputs.
fn arb_netlist() -> impl Strategy<Value = Netlist> {
    (2usize..12, 5usize..60, any::<u64>()).prop_map(|(inputs, gates, seed)| {
        let cfg = GeneratorConfig {
            inputs,
            gates,
            seed,
            shadow_regions: 0,
            ..GeneratorConfig::default()
        };
        generate(&cfg)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated netlist validates and levelises.
    #[test]
    fn generated_netlists_validate(net in arb_netlist()) {
        net.validate().unwrap();
        let order = net.topo_order().unwrap();
        prop_assert_eq!(order.len(), net.node_count());
        // Topological property: every non-pseudo-input node appears after
        // all of its fanins.
        let pos: Vec<usize> = {
            let mut p = vec![0; net.node_count()];
            for (i, id) in order.iter().enumerate() {
                p[id.index()] = i;
            }
            p
        };
        for v in net.nodes() {
            if net.kind(v).is_pseudo_input() {
                continue;
            }
            for &u in net.fanin(v) {
                prop_assert!(pos[u.index()] < pos[v.index()]);
            }
        }
    }

    /// SCOAP invariants: pseudo inputs cost 1/1, all costs are in
    /// [1, SCOAP_INF], and a node driving a primary output has CO = 0.
    #[test]
    fn scoap_invariants(net in arb_netlist()) {
        let scoap = Scoap::compute(&net).unwrap();
        for v in net.nodes() {
            let kind = net.kind(v);
            if kind.is_pseudo_input() {
                prop_assert_eq!(scoap.cc0(v), 1);
                prop_assert_eq!(scoap.cc1(v), 1);
            } else {
                prop_assert!(scoap.cc0(v) >= 1);
                prop_assert!(scoap.cc1(v) >= 1);
            }
            prop_assert!(scoap.cc0(v) <= SCOAP_INF);
            prop_assert!(scoap.cc1(v) <= SCOAP_INF);
            if net.fanout(v).iter().any(|&u| net.kind(u) == CellKind::Output) {
                prop_assert_eq!(scoap.co(v), 0);
            }
        }
    }

    /// Observation-point insertion only improves observability, never
    /// worsens it, and leaves controllability untouched.
    #[test]
    fn observation_point_is_monotone(net in arb_netlist(), pick in any::<u32>()) {
        let candidates: Vec<_> = net
            .nodes()
            .filter(|&v| net.kind(v) != CellKind::Output)
            .collect();
        prop_assume!(!candidates.is_empty());
        let target = candidates[pick as usize % candidates.len()];
        let before = Scoap::compute(&net).unwrap();
        let mut net2 = net.clone();
        let op = net2.insert_observation_point(target).unwrap();
        let mut after = before.clone();
        after.observe(&net2, target, op);
        for v in net.nodes() {
            prop_assert!(after.co(v) <= before.co(v), "co worsened at {}", v);
            prop_assert_eq!(after.cc0(v), before.cc0(v));
            prop_assert_eq!(after.cc1(v), before.cc1(v));
        }
        prop_assert_eq!(after.co(target), 0);
        // Incremental result matches full recompute.
        let full = Scoap::compute(&net2).unwrap();
        prop_assert_eq!(&after, &full);
    }

    /// The aggregation operator and its backward are adjoint:
    /// <A e, d> == <e, A^T d> for random dense matrices.
    #[test]
    fn aggregate_adjointness(
        net in arb_netlist(),
        w_pr in -1.0f32..1.0,
        w_su in -1.0f32..1.0,
        seed in any::<u64>(),
    ) {
        let t = GraphTensors::from_netlist(&net);
        let n = t.node_count();
        use rand::Rng as _;
        let mut rng = seeded_rng(seed);
        let e = Matrix::from_fn(n, 3, |_, _| rng.gen_range(-1.0f32..1.0));
        let d = Matrix::from_fn(n, 3, |_, _| rng.gen_range(-1.0f32..1.0));
        let (g, _, _) = t.aggregate(&e, w_pr, w_su).unwrap();
        let de = t.aggregate_backward(&d, w_pr, w_su).unwrap();
        let lhs = g.dot(&d).unwrap() as f64;
        let rhs = e.dot(&de).unwrap() as f64;
        let scale = 1.0 + lhs.abs().max(rhs.abs());
        prop_assert!(((lhs - rhs) / scale).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    /// Matrix-form inference equals recursion-based inference on random
    /// graphs and random (untrained) models — the §3.4.1 equivalence.
    #[test]
    fn matrix_and_recursive_inference_agree(net in arb_netlist(), seed in any::<u64>()) {
        let data = GraphData::from_netlist(&net, None).unwrap();
        let gcn = Gcn::new(
            &GcnConfig {
                embed_dims: vec![5, 6],
                fc_dims: vec![4],
                ..GcnConfig::default()
            },
            &mut seeded_rng(seed),
        );
        let fast = gcn.predict(&data.tensors, &data.features).unwrap();
        let nodes: Vec<usize> = (0..data.node_count()).step_by(7).collect();
        let slow = recursive::predict_nodes(&gcn, &data.tensors, &data.features, &nodes).unwrap();
        for (i, &node) in nodes.iter().enumerate() {
            for c in 0..2 {
                let a = fast.get(node, c);
                let b = slow.get(i, c);
                prop_assert!(
                    (a - b).abs() < 1e-3 * (1.0 + a.abs()),
                    "node {node} class {c}: {a} vs {b}"
                );
            }
        }
    }

    /// COO -> CSR -> dense equals COO -> dense for arbitrary triplet sets
    /// (duplicates included).
    #[test]
    fn coo_csr_dense_agree(
        triplets in proptest::collection::vec((0usize..12, 0usize..12, -5.0f32..5.0), 0..60)
    ) {
        let coo = CooMatrix::from_triplets(12, 12, triplets).unwrap();
        let via_csr = coo.to_csr().to_dense();
        let direct = coo.to_dense();
        for r in 0..12 {
            for c in 0..12 {
                prop_assert!((via_csr.get(r, c) - direct.get(r, c)).abs() < 1e-4);
            }
        }
    }

    /// Mutation: dropping an edge whose sink sits at its arity lower bound
    /// must trip the linter (`NL002` if fanins remain, `NL004` if none do).
    #[test]
    fn lint_catches_dropped_edge(net in arb_netlist(), pick in any::<u32>()) {
        prop_assert!(lint_netlist(&net).is_clean());
        // Edges whose removal necessarily breaks the sink's arity.
        let brittle: Vec<(usize, usize)> = net
            .nodes()
            .filter(|&v| {
                let lo = net.kind(v).arity().0;
                lo > 0 && net.fanin(v).len() == lo
            })
            .flat_map(|v| net.fanin(v).iter().map(move |&u| (u.index(), v.index())))
            .collect();
        prop_assume!(!brittle.is_empty());
        let (drop_src, drop_sink) = brittle[pick as usize % brittle.len()];
        // The netlist has no edge removal; rebuild it without the edge.
        let mut mutated = Netlist::new("mutated");
        for v in net.nodes() {
            mutated.add_cell(net.kind(v));
        }
        for v in net.nodes() {
            for &u in net.fanin(v) {
                if (u.index(), v.index()) == (drop_src, drop_sink) {
                    continue;
                }
                mutated.connect(u, v).unwrap();
            }
        }
        let report = lint_netlist(&mutated);
        prop_assert!(
            report.fired(RuleId::BadArity) || report.fired(RuleId::FloatingInput),
            "dropping {drop_src}->{drop_sink} went unnoticed:\n{report}"
        );
    }

    /// Mutation: adding a back edge between two connected combinational
    /// gates must trip `NL001 combinational-cycle`.
    #[test]
    fn lint_catches_back_edge(net in arb_netlist(), pick in any::<u32>()) {
        let gate_edges: Vec<_> = net
            .nodes()
            .filter(|&v| !net.kind(v).is_pseudo_input() && !net.kind(v).is_pseudo_output())
            .flat_map(|v| {
                net.fanin(v)
                    .iter()
                    .filter(|&&u| !net.kind(u).is_pseudo_input())
                    .map(move |&u| (u, v))
                    .collect::<Vec<_>>()
            })
            .collect();
        prop_assume!(!gate_edges.is_empty());
        let (u, v) = gate_edges[pick as usize % gate_edges.len()];
        let mut mutated = net.clone();
        mutated.connect(v, u).unwrap(); // u -> v already exists: a 2-cycle
        let report = lint_netlist(&mutated);
        prop_assert!(
            report.fired(RuleId::CombinationalCycle),
            "back edge {} -> {} went unnoticed:\n{report}",
            v.index(),
            u.index()
        );
    }

    /// Mutation: pushing any single SCOAP measure out of its legal range
    /// must trip `NL006 scoap-range`.
    #[test]
    fn lint_catches_corrupt_scoap(net in arb_netlist(), pick in any::<u32>(), which in 0usize..3) {
        let good = Scoap::compute(&net).unwrap();
        prop_assert!(lint_scoap(&net, &good).is_clean());
        let node = pick as usize % net.node_count();
        let mut cc0 = good.cc0_all().to_vec();
        let mut cc1 = good.cc1_all().to_vec();
        let mut co = good.co_all().to_vec();
        match which {
            0 => cc0[node] = 0,                        // below the [1, INF] floor
            1 => cc1[node] = SCOAP_INF + 1,            // above the ceiling
            _ => co[node] = u32::MAX,                  // way above the ceiling
        }
        let bad = Scoap::from_raw_parts(cc0, cc1, co);
        let report = lint_scoap(&net, &bad);
        prop_assert!(
            report.fired(RuleId::ScoapRange),
            "corrupting measure {which} of node {node} went unnoticed:\n{report}"
        );
    }

    /// Mutation: reversing the column order of any CSR row with two or
    /// more entries must trip `TS002 csr-sorted-indices`.
    #[test]
    fn lint_catches_shuffled_csr_columns(net in arb_netlist(), pick in any::<u32>()) {
        let t = GraphTensors::from_netlist(&net);
        let csr = t.pred();
        prop_assert!(lint_csr(csr, "pred").is_clean());
        let indptr = csr.indptr();
        let wide_rows: Vec<usize> = (0..csr.rows())
            .filter(|&r| indptr[r + 1] - indptr[r] >= 2)
            .collect();
        prop_assume!(!wide_rows.is_empty());
        let row = wide_rows[pick as usize % wide_rows.len()];
        let mut indices = csr.indices().to_vec();
        indices[indptr[row]..indptr[row + 1]].reverse();
        let shuffled = CsrMatrix::from_raw_parts_unchecked(
            csr.rows(),
            csr.cols(),
            indptr.to_vec(),
            indices,
            csr.values().to_vec(),
        );
        let report = lint_csr(&shuffled, "pred");
        prop_assert!(
            report.fired(RuleId::CsrSortedIndices),
            "shuffling row {row} went unnoticed:\n{report}"
        );
    }

    /// The incremental dirty-halo engine is bit-for-bit identical to the
    /// full forward pass at every depth, and its revert restores the
    /// cache exactly — the invariant the flow's preview path stands on.
    #[test]
    fn incremental_embedding_matches_full(
        net in arb_netlist(),
        seed in any::<u64>(),
        depth in 1usize..4,
        dirty_picks in proptest::collection::vec(any::<u32>(), 1..6),
    ) {
        let data = GraphData::from_netlist(&net, None).unwrap();
        let gcn = Gcn::new(
            &GcnConfig {
                embed_dims: vec![6, 5, 4][..depth].to_vec(),
                fc_dims: vec![4],
                ..GcnConfig::default()
            },
            &mut seeded_rng(seed),
        );
        let n = data.node_count();
        let mut x = data.features.clone();
        let mut cache = gcn.embed_cached(&data.tensors, &x).unwrap();
        let pristine = cache.clone();
        let dirty: Vec<usize> = dirty_picks.iter().map(|&p| p as usize % n).collect();
        for &r in &dirty {
            x.set(r, 3, x.get(r, 3) + 0.5);
        }
        let delta = gcn
            .embed_incremental(&data.tensors, &x, &mut cache, &dirty)
            .unwrap();
        // Bit-identical to a from-scratch recompute, layer by layer.
        let fresh = gcn.embed_cached(&data.tensors, &x).unwrap();
        prop_assert_eq!(cache.layers(), fresh.layers());
        let full = gcn.embed(&data.tensors, &x).unwrap();
        prop_assert_eq!(cache.final_embedding(), &full);
        // Revert restores the pristine cache, bit for bit.
        cache.revert(delta);
        prop_assert_eq!(cache.layers(), pristine.layers());
    }

    /// The flow's incremental impact mode is outcome-identical to full
    /// re-inference on random designs and random (untrained) models:
    /// same insertions, same history, same final netlist.
    #[test]
    fn flow_incremental_equals_full(net in arb_netlist(), seed in any::<u64>()) {
        let data = GraphData::from_netlist(&net, None).unwrap();
        let gcn = Gcn::new(
            &GcnConfig {
                embed_dims: vec![8, 8],
                fc_dims: vec![8],
                ..GcnConfig::default()
            },
            &mut seeded_rng(seed),
        );
        let cfg = FlowConfig {
            max_iterations: 3,
            ops_per_iteration: 2,
            candidate_limit: 6,
            ..FlowConfig::default()
        };
        let mut net_full = net.clone();
        let full = run_gcn_opi(
            &mut net_full,
            &data.normalizer,
            &gcn,
            &FlowConfig { impact_mode: ImpactMode::Full, ..cfg.clone() },
        )
        .unwrap();
        let mut net_inc = net.clone();
        let inc = run_gcn_opi(
            &mut net_inc,
            &data.normalizer,
            &gcn,
            &FlowConfig { impact_mode: ImpactMode::Incremental, ..cfg },
        )
        .unwrap();
        prop_assert_eq!(full.inserted, inc.inserted);
        prop_assert_eq!(full.converged, inc.converged);
        prop_assert_eq!(full.remaining_positives, inc.remaining_positives);
        prop_assert_eq!(full.history, inc.history);
        prop_assert_eq!(full.skipped, inc.skipped);
        prop_assert_eq!(net_full, net_inc);
    }

    /// Degradation-ladder monotonicity: on the same request, a tighter
    /// deadline never selects a *higher* (earlier) rung than a looser one.
    #[test]
    fn serve_rung_is_monotone_in_the_deadline(
        net in arb_netlist(),
        seed in any::<u64>(),
        cap_a in 1u64..20_000,
        cap_b in 1u64..20_000,
    ) {
        use gcn_testability::serve::classify_with_ladder;
        use gcn_testability::tensor::Budget;

        let data = GraphData::from_netlist(&net, None).unwrap();
        let cfg = GcnConfig {
            embed_dims: vec![6, 6],
            fc_dims: vec![6],
            ..GcnConfig::default()
        };
        let model = gcn_testability::gcn::MultiStageGcn::from_stages(
            vec![Gcn::new(&cfg, &mut seeded_rng(seed)), Gcn::new(&cfg, &mut seeded_rng(seed ^ 1))],
            0.5,
        );
        let (loose, tight) = (cap_a.max(cap_b), cap_a.min(cap_b));
        let at = |cap: u64| {
            classify_with_ladder(
                &model,
                &data.tensors,
                &data.features,
                &Budget::with_cap(cap),
                false,
            )
            .unwrap()
        };
        let loose_out = at(loose);
        let tight_out = at(tight);
        prop_assert!(
            tight_out.rung.depth() >= loose_out.rung.depth(),
            "cap {} picked {} but looser cap {} picked {}",
            tight, tight_out.rung, loose, loose_out.rung
        );
    }

    /// spmm distributes over dense addition: A(X + Y) = AX + AY.
    #[test]
    fn spmm_linearity(net in arb_netlist(), seed in any::<u64>()) {
        let t = GraphTensors::from_netlist(&net);
        let n = t.node_count();
        use rand::Rng as _;
        let mut rng = seeded_rng(seed);
        let x = Matrix::from_fn(n, 2, |_, _| rng.gen_range(-1.0f32..1.0));
        let y = Matrix::from_fn(n, 2, |_, _| rng.gen_range(-1.0f32..1.0));
        let lhs = t.pred().spmm(&x.add(&y).unwrap()).unwrap();
        let rhs = t.pred().spmm(&x).unwrap().add(&t.pred().spmm(&y).unwrap()).unwrap();
        for (a, b) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }
}

/// A scratch journal path unique to this process and call.
fn scratch_wal(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gcnt-prop-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("flow.wal")
}

proptest! {
    // Each case runs several full flows; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Write-ahead journal replay is idempotent through the filesystem: a
    /// flow killed after *any* prefix of committed batch records — with or
    /// without a torn half-written line behind it — resumes on restart to
    /// the same outcome, the same design, and a byte-identical journal as
    /// an uninterrupted run.
    #[test]
    fn serve_journal_resume_is_bit_identical(
        net in arb_netlist(),
        seed in any::<u64>(),
        cut_pick in any::<u32>(),
        torn in any::<bool>(),
    ) {
        use gcn_testability::gcn::MultiStageGcn;
        use gcn_testability::serve::{ServeConfig, ServeCore};

        let data = GraphData::from_netlist(&net, None).unwrap();
        let cfg = GcnConfig {
            embed_dims: vec![6, 6],
            fc_dims: vec![6],
            ..GcnConfig::default()
        };
        let model = MultiStageGcn::from_stages(
            vec![Gcn::new(&cfg, &mut seeded_rng(seed))],
            0.5,
        );
        let flow_cfg = FlowConfig {
            max_iterations: 3,
            ops_per_iteration: 2,
            candidate_limit: 6,
            prob_threshold: 0.05,
            ..FlowConfig::default()
        };
        let fresh_core = || {
            ServeCore::new(data.normalizer.clone(), model.clone(), ServeConfig::default())
        };

        // Uninterrupted reference run.
        let ref_wal = scratch_wal("ref");
        let mut ref_net = net.clone();
        let reference = fresh_core()
            .run_flow_job(&mut ref_net, &flow_cfg, &ref_wal, None)
            .unwrap();
        let ref_text = std::fs::read_to_string(&ref_wal).unwrap();
        let lines: Vec<&str> = ref_text.lines().collect();
        let records = lines.len() - 1; // minus the header line

        // Crash site: keep the header plus `cut` committed records,
        // optionally followed by a torn (half-written) line.
        let cut = if records == 0 { 0 } else { cut_pick as usize % (records + 1) };
        let cut_wal = scratch_wal("cut");
        let mut prefix = lines[..=cut].join("\n");
        prefix.push('\n');
        if torn {
            prefix.push_str("{\"seq\":999,\"chec"); // no trailing newline
        }
        std::fs::write(&cut_wal, &prefix).unwrap();

        let mut cut_net = net.clone();
        let resumed = fresh_core()
            .run_flow_job(&mut cut_net, &flow_cfg, &cut_wal, None)
            .unwrap();
        prop_assert_eq!(resumed.resumed_batches, cut);
        prop_assert_eq!(resumed.recovered_torn_tail, torn);
        prop_assert_eq!(&resumed.outcome, &reference.outcome);
        prop_assert_eq!(&cut_net, &ref_net);
        prop_assert_eq!(resumed.journal_records, reference.journal_records);
        let cut_text = std::fs::read_to_string(&cut_wal).unwrap();
        prop_assert_eq!(cut_text, ref_text, "healed journal must match the reference");
    }
}
