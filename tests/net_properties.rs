//! Property-based tests for the network layer: the wire protocol's
//! integrity envelope (a decoded frame re-encodes bit-identically; a
//! damaged or truncated byte stream never decodes), shard routing
//! stability (same design → same shard, journals never cross shard
//! directories), and shard-equivalence (a request answered by a shard
//! of an N-way router is bit-identical to a single-core answer).

use proptest::prelude::*;

use gcn_testability::net::frame;
use gcn_testability::net::{
    decode, route_key, Frame, FrameKind, ReadOutcome, ShardRouter, PROTOCOL_VERSION,
};
use gcn_testability::netlist::{format, generate, GeneratorConfig, Netlist};

fn arb_kind() -> impl Strategy<Value = FrameKind> {
    (0u8..9).prop_map(|k| FrameKind::from_u8(k).unwrap())
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (arb_kind(), proptest::collection::vec(any::<u8>(), 0..512))
        .prop_map(|(kind, payload)| Frame::new(kind, payload))
}

fn arb_netlist() -> impl Strategy<Value = Netlist> {
    (2usize..12, 5usize..60, any::<u64>()).prop_map(|(inputs, gates, seed)| {
        let cfg = GeneratorConfig {
            inputs,
            gates,
            seed,
            shadow_regions: 0,
            ..GeneratorConfig::default()
        };
        generate(&cfg)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Decode is the exact inverse of encode: any frame survives the
    /// wire, and re-encoding the decoded frame reproduces the original
    /// bytes bit for bit.
    #[test]
    fn frame_decode_then_encode_is_bit_identical(f in arb_frame()) {
        let bytes = f.encode();
        match decode(&bytes).unwrap() {
            ReadOutcome::Frame(back) => {
                prop_assert_eq!(back.kind, f.kind);
                prop_assert_eq!(&back.payload, &f.payload);
                prop_assert_eq!(back.encode(), bytes);
            }
            other => prop_assert!(false, "round trip failed: {:?}", other),
        }
    }

    /// Flipping any single bit of an encoded frame never yields a
    /// silently-wrong frame: the outcome is a refusal (`Corrupt`), a
    /// torn read, or — only for bits in the length field that *grow*
    /// the declared payload — a frame identical where it matters.
    #[test]
    fn single_bit_flips_never_decode_to_a_different_frame(
        f in arb_frame(),
        bit in any::<usize>(),
    ) {
        let mut bytes = f.encode();
        let nbits = bytes.len() * 8;
        let bit = bit % nbits;
        if let Some(b) = bytes.get_mut(bit / 8) {
            *b ^= 1 << (bit % 8);
        }
        match decode(&bytes) {
            Ok(ReadOutcome::Frame(back)) => {
                // The only acceptable decode is one that is still the
                // original frame (e.g. a flipped trailing-garbage bit
                // cannot exist: encode has no trailing bytes). So this
                // must never happen with a different kind or payload.
                prop_assert_eq!(back.kind, f.kind, "bit {} changed the kind", bit);
                prop_assert_eq!(&back.payload, &f.payload, "bit {} changed the payload", bit);
            }
            Ok(ReadOutcome::Corrupt { .. } | ReadOutcome::Torn | ReadOutcome::Eof
               | ReadOutcome::Stalled | ReadOutcome::IdleTimeout)
            | Err(_) => {}
        }
    }

    /// Any strict truncation of an encoded frame reads as torn (or a
    /// clean EOF at zero bytes) — never as a complete frame.
    #[test]
    fn truncated_frames_never_decode(f in arb_frame(), cut in any::<usize>()) {
        let bytes = f.encode();
        let cut = cut % bytes.len().max(1);
        if let Ok(ReadOutcome::Frame(_)) = decode(bytes.get(..cut).unwrap()) {
            prop_assert!(false, "decoded from {} of {} bytes", cut, bytes.len());
        }
    }

    /// The routing key is a pure function of the design text, and the
    /// shard index it maps to is stable for every shard count.
    #[test]
    fn routing_is_deterministic(net in arb_netlist(), shard_count in 1usize..9) {
        let text = format::write(&net);
        let k1 = route_key(&text);
        let k2 = route_key(&format::write(&net));
        prop_assert_eq!(k1, k2, "route key must be stable across serialisations");
        let shard = (k1 % shard_count as u64) as usize;
        prop_assert!(shard < shard_count);
    }

    /// Header constants hold for every frame: fixed header size, magic
    /// prefix, current protocol version, and the declared length always
    /// matching the actual payload.
    #[test]
    fn frame_header_invariants(f in arb_frame()) {
        let bytes = f.encode();
        prop_assert_eq!(bytes.len(), frame::HEADER_BYTES + f.payload.len());
        prop_assert_eq!(bytes.get(..3).unwrap(), &frame::MAGIC[..]);
        prop_assert_eq!(*bytes.get(3).unwrap(), PROTOCOL_VERSION);
        let mut len = [0u8; 4];
        len.copy_from_slice(bytes.get(5..9).unwrap());
        prop_assert_eq!(u32::from_le_bytes(len) as usize, f.payload.len());
    }
}

/// Shard journal paths are always confined to their own shard directory,
/// for arbitrary (hostile) job id strings.
#[test]
fn journal_paths_never_cross_shard_dirs() {
    use gcn_testability::gcn::{features::FeatureNormalizer, Gcn, GcnConfig, MultiStageGcn};
    use gcn_testability::nn::seeded_rng;
    use gcn_testability::serve::{ServeConfig, ServeCore};

    let net = generate(&GeneratorConfig::sized("np-journal", 3, 90));
    let base = std::env::temp_dir().join(format!("gcnt-net-props-{}", std::process::id()));
    std::fs::create_dir_all(&base).unwrap();
    let raw = gcn_testability::gcn::features::raw_features_of(&net).unwrap();
    let cfg = GcnConfig {
        embed_dims: vec![4, 4],
        fc_dims: vec![4],
        ..GcnConfig::default()
    };
    let cores: Vec<ServeCore> = (0..3)
        .map(|_| {
            let stages = vec![Gcn::new(&cfg, &mut seeded_rng(41))];
            ServeCore::new(
                FeatureNormalizer::fit(&[&raw]),
                MultiStageGcn::from_stages(stages, 0.5),
                ServeConfig::default(),
            )
        })
        .collect();
    let router = ShardRouter::start(cores, &base).unwrap();
    let hostile = [
        "../../../etc/passwd",
        "..\\..\\x",
        "a/b/c",
        "",
        "UPPER CASE with spaces",
        "job\u{202e}gnik",
        &"x".repeat(500),
    ];
    for shard in 0..3 {
        let dir = base.join(format!("shard-{shard}"));
        for id in hostile {
            let path = router.journal_path(shard, id);
            assert!(
                path.starts_with(&dir),
                "job id {id:?} escaped shard {shard}: {}",
                path.display()
            );
            assert_eq!(
                path.parent().map(std::path::Path::to_path_buf),
                Some(dir.clone()),
                "job id {id:?} nested below the shard dir"
            );
        }
    }
    router.shutdown().unwrap();
    std::fs::remove_dir_all(&base).ok();
}

/// A sharded router answers exactly like a single core: the per-shard
/// breaker/admission/ladder stack changes capacity, never results.
#[test]
fn sharded_answers_equal_single_core() {
    use gcn_testability::gcn::{features::FeatureNormalizer, Gcn, GcnConfig, MultiStageGcn};
    use gcn_testability::nn::seeded_rng;
    use gcn_testability::serve::{ServeConfig, ServeCore};

    let net = generate(&GeneratorConfig::sized("np-equiv", 5, 120));
    let raw = gcn_testability::gcn::features::raw_features_of(&net).unwrap();
    let cfg = GcnConfig {
        embed_dims: vec![4, 4],
        fc_dims: vec![4],
        ..GcnConfig::default()
    };
    let make_core = || {
        let stages = vec![
            Gcn::new(&cfg, &mut seeded_rng(41)),
            Gcn::new(&cfg, &mut seeded_rng(42)),
        ];
        ServeCore::new(
            FeatureNormalizer::fit(&[&raw]),
            MultiStageGcn::from_stages(stages, 0.5),
            ServeConfig::default(),
        )
    };

    // Reference: one core, no router.
    let mut single = make_core();
    let reference = single.handle_infer(&net, None).unwrap();

    // Four shards behind the router; the same design must land on one
    // shard and produce the same probabilities bit for bit.
    let base = std::env::temp_dir().join(format!("gcnt-net-equiv-{}", std::process::id()));
    std::fs::create_dir_all(&base).unwrap();
    let router = ShardRouter::start((0..4).map(|_| make_core()).collect(), &base).unwrap();
    let (shard, sharded) = router.infer(net.clone(), None).unwrap();
    assert!(shard < 4);
    assert_eq!(
        sharded.probs, reference.probs,
        "bit-identical probabilities"
    );
    assert_eq!(sharded.positives, reference.positives);
    assert_eq!(sharded.rung, reference.rung);
    router.shutdown().unwrap();
    std::fs::remove_dir_all(&base).ok();
}
