//! Property-based corruption tests for the crash-safety contract of
//! [`gcn_testability::store`] and the serve flow journal.
//!
//! The contract under test: after an *arbitrary* single-bit flip or an
//! *arbitrary* cut point (truncation), every open/read path either
//! recovers — serving only bit-identical data (or, for the journal, a
//! strict prefix of the appended records) — or fails with a typed
//! error. It never panics and never returns wrong data.
//!
//! These properties generalize the fixed-offset drills in the CI store
//! fault matrix: proptest picks the corruption site, so flips land in
//! page payloads, page headers, zero padding, metadata JSON, journal
//! headers, record lines, and newlines alike.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use gcn_testability::dft::flow::{BatchRecord, FlowConfig, InferenceStats};
use gcn_testability::netlist::{generate, GeneratorConfig};
use gcn_testability::serve::{FlowJournal, JournalHeader};
use gcn_testability::store::{PageStore, SegmentKey, StoreError, PAGE_SIZE};

/// A scratch directory unique to this process and call site.
fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gcnt-store-prop-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn seg_key(i: u64) -> SegmentKey {
    SegmentKey {
        design: "propdesign".to_string(),
        kind: format!("embed/s0/l{i}"),
        generation: 1,
        start: i * 100,
        end: (i + 1) * 100,
    }
}

/// Deterministic payload bytes; sized to span multiple pages so flips
/// can land in any of header, payload, and final-page zero padding.
fn seg_payload(i: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| ((i * 131 + j as u64 * 17) % 251) as u8)
        .collect()
}

/// Seeds a fresh store with three multi-page segments and returns the
/// committed (key, payload) pairs.
fn seed_store(dir: &Path) -> Vec<(SegmentKey, Vec<u8>)> {
    let mut store = PageStore::open(dir).unwrap();
    let mut segs = Vec::new();
    for i in 0..3u64 {
        let key = seg_key(i);
        let payload = seg_payload(i, 3000 + 2500 * i as usize);
        store.put_segment(&key, &payload).unwrap();
        segs.push((key, payload));
    }
    segs
}

/// The single committed `pages-*.dat` file of a store directory.
fn pages_file(dir: &Path) -> PathBuf {
    let mut hits: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("pages-") && n.ends_with(".dat"))
        })
        .collect();
    hits.sort();
    assert_eq!(hits.len(), 1, "expected exactly one data file");
    hits.remove(0)
}

fn flip_bit(path: &Path, bit: u64) {
    let mut bytes = fs::read(path).unwrap();
    let pos = (bit / 8) as usize % bytes.len();
    let mask = 1u8 << (bit % 8);
    bytes[pos] ^= mask;
    fs::write(path, &bytes).unwrap();
}

/// Journal fixture: header plus `n` valid appended records (n <= 5,
/// `positives` must not underflow).
fn seed_journal(path: &Path, n: usize) -> (JournalHeader, Vec<BatchRecord>) {
    let net = generate(&GeneratorConfig::sized("propjournal", 3, 120));
    let cfg = FlowConfig::default();
    let header = JournalHeader::describe(&net, &cfg).unwrap();
    let mut recovered = FlowJournal::open(path, &header).unwrap();
    assert!(recovered.records.is_empty());
    let mut records = Vec::new();
    for i in 0..n {
        let rec = BatchRecord {
            iteration: i,
            positives: 5 - i,
            inserted: vec![],
            skipped: vec![],
            converged: i + 1 == n,
            stats_after: InferenceStats {
                rows_computed: 10 * i as u64,
                rows_full: 20 * i as u64,
                inferences: i as u64,
            },
        };
        recovered.journal.append(&rec).unwrap();
        records.push(rec);
    }
    (header, records)
}

/// Asserts the recover-or-typed-error contract over every committed
/// segment of a (possibly corrupted) store directory.
fn check_segments(dir: &Path, segs: &[(SegmentKey, Vec<u8>)]) -> Result<(), TestCaseError> {
    match PageStore::open(dir) {
        Err(_) => Ok(()), // typed open failure: loud, never wrong data
        Ok(mut store) => {
            for (key, payload) in segs {
                match store.get_segment(key) {
                    Ok(Some(bytes)) => prop_assert_eq!(
                        &bytes,
                        payload,
                        "segment {} served wrong bytes",
                        key.display()
                    ),
                    Ok(None) => prop_assert!(false, "committed segment {} vanished", key.display()),
                    Err(_) => {} // typed read failure: quarantine territory
                }
            }
            Ok(())
        }
    }
}

/// Asserts that a reopened journal recovers a strict prefix of the
/// records that were appended, or fails typed.
fn check_journal_prefix(
    path: &Path,
    header: &JournalHeader,
    appended: &[BatchRecord],
) -> Result<(), TestCaseError> {
    match FlowJournal::open(path, header) {
        Err(_) => Ok(()), // typed: caller starts a fresh flow
        Ok(recovered) => {
            prop_assert!(
                recovered.records.len() <= appended.len(),
                "journal recovered {} records but only {} were appended",
                recovered.records.len(),
                appended.len()
            );
            prop_assert_eq!(
                &recovered.records[..],
                &appended[..recovered.records.len()],
                "recovered records are not a prefix of what was appended"
            );
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A single flipped bit anywhere in the data file never changes
    /// what a segment read returns: either the exact committed bytes
    /// (flip landed in zero padding, outside the checksum envelope) or
    /// a typed error naming the corrupt page.
    #[test]
    fn page_bit_flip_recovers_or_fails_typed(bit in any::<u64>()) {
        let dir = temp_dir("pageflip");
        let segs = seed_store(&dir);
        flip_bit(&pages_file(&dir), bit);
        check_segments(&dir, &segs)?;
        let _ = fs::remove_dir_all(&dir);
    }

    /// Truncating the data file at an arbitrary cut point below the
    /// committed size is a typed `StoreError::Truncated` at open; a cut
    /// at exactly the committed size changes nothing.
    #[test]
    fn pages_truncation_fails_typed(cut_frac in 0u64..1001) {
        let dir = temp_dir("pagecut");
        let segs = seed_store(&dir);
        let file = pages_file(&dir);
        let committed = fs::metadata(&file).unwrap().len();
        prop_assert_eq!(committed % PAGE_SIZE as u64, 0);
        let cut = committed * cut_frac / 1000;
        let handle = fs::OpenOptions::new().write(true).open(&file).unwrap();
        handle.set_len(cut).unwrap();
        drop(handle);
        if cut < committed {
            match PageStore::open(&dir) {
                Err(StoreError::Truncated { .. }) => {}
                Err(other) => prop_assert!(false, "expected Truncated, got {other}"),
                Ok(_) => prop_assert!(false, "open accepted a truncated data file"),
            }
        } else {
            check_segments(&dir, &segs)?;
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// A single flipped bit anywhere in `store.json` either leaves the
    /// metadata verifying (and every segment bit-identical) or is a
    /// typed open failure — the envelope checksum means corruption can
    /// never silently redirect a segment to the wrong pages.
    #[test]
    fn metadata_bit_flip_recovers_or_fails_typed(bit in any::<u64>()) {
        let dir = temp_dir("metaflip");
        let segs = seed_store(&dir);
        flip_bit(&dir.join("store.json"), bit);
        check_segments(&dir, &segs)?;
        let _ = fs::remove_dir_all(&dir);
    }

    /// Cutting the journal at an arbitrary byte recovers a strict
    /// prefix of the appended records (a torn final line heals; a
    /// missing header is typed) — never an invented or reordered
    /// record.
    #[test]
    fn journal_truncation_recovers_prefix(cut_frac in 0u64..1001, n in 1usize..6) {
        let dir = temp_dir("walcut");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job.wal");
        let (header, appended) = seed_journal(&path, n);
        let committed = fs::metadata(&path).unwrap().len();
        let cut = committed * cut_frac / 1000;
        let handle = fs::OpenOptions::new().write(true).open(&path).unwrap();
        handle.set_len(cut).unwrap();
        drop(handle);
        check_journal_prefix(&path, &header, &appended)?;
        let _ = fs::remove_dir_all(&dir);
    }

    /// A single flipped bit anywhere in the journal — header, record
    /// payload, per-line checksum, or a newline — yields a prefix of
    /// the appended records or a typed error, never a corrupted record.
    #[test]
    fn journal_bit_flip_recovers_prefix_or_fails_typed(bit in any::<u64>(), n in 1usize..6) {
        let dir = temp_dir("walflip");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job.wal");
        let (header, appended) = seed_journal(&path, n);
        flip_bit(&path, bit);
        check_journal_prefix(&path, &header, &appended)?;
        let _ = fs::remove_dir_all(&dir);
    }
}
