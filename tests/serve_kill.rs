//! Kill/resume integration tests for the serving layer, driven through
//! the real `gcnt` binary: a flow job whose process dies mid-run must,
//! on restart, resume from its write-ahead journal to a **bit-identical**
//! outcome checksum.
//!
//! Two kill mechanisms are exercised:
//!
//! * an external `SIGKILL` delivered while the journal is growing (the
//!   timing is racy by design — whether the kill lands mid-flow or after
//!   completion, the rerun's checksum must match the reference);
//! * with `--features fault-inject`, a deterministic in-process abort
//!   immediately after a chosen record reaches disk.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gcnt-serve-kill-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn gcnt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gcnt"))
}

/// Runs `gcnt serve --self-test` to completion and returns its stdout.
fn run_selftest(dir: &Path, extra: &[&str]) -> String {
    let out = gcnt()
        .arg("serve")
        .arg("--self-test")
        .arg("--journal-dir")
        .arg(dir)
        .args(extra)
        .output()
        .expect("run gcnt serve");
    assert!(
        out.status.success(),
        "self-test failed: {}\n{}",
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

/// Extracts `key=value` from a `SELFTEST_FLOW ...` line.
fn flow_field(stdout: &str, key: &str) -> String {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("SELFTEST_FLOW"))
        .unwrap_or_else(|| panic!("no SELFTEST_FLOW line in:\n{stdout}"));
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= field in: {line}"))
        .to_string()
}

fn wal_lines(dir: &Path) -> usize {
    std::fs::read_to_string(dir.join("selftest.wal"))
        .map(|t| t.lines().count())
        .unwrap_or(0)
}

#[test]
fn sigkill_mid_flow_resumes_to_identical_checksum() {
    // Reference: an uninterrupted run in its own journal dir.
    let ref_dir = temp_dir("ref");
    let reference = run_selftest(&ref_dir, &["--requests", "1"]);
    let want = flow_field(&reference, "checksum");
    assert_eq!(flow_field(&reference, "resumed"), "0");

    // Victim: kill the process as soon as the journal holds at least the
    // header and one committed record.
    let kill_dir = temp_dir("victim");
    let mut child = gcnt()
        .arg("serve")
        .arg("--self-test")
        .arg("--journal-dir")
        .arg(&kill_dir)
        .arg("--requests")
        .arg("1")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn victim");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if wal_lines(&kill_dir) >= 2 || child.try_wait().expect("try_wait").is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "journal never appeared");
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = child.kill(); // SIGKILL on unix; no-op if already exited
    let _ = child.wait();

    // Rerun in the victim's dir: whatever the journal holds, the outcome
    // must be bit-identical to the uninterrupted reference.
    let resumed = run_selftest(&kill_dir, &["--requests", "1"]);
    assert_eq!(
        flow_field(&resumed, "checksum"),
        want,
        "resumed outcome diverged from the uninterrupted run:\n{resumed}"
    );
    // The poll loop guaranteed at least one committed record (or a clean
    // finish, which journals all of them) before the kill.
    assert!(
        flow_field(&resumed, "resumed").parse::<usize>().unwrap() >= 1,
        "nothing was resumed:\n{resumed}"
    );
}

/// With fault injection the kill is deterministic: the process aborts the
/// instant record 0 is fsynced, so the rerun always resumes exactly one
/// batch.
#[cfg(feature = "fault-inject")]
#[test]
fn injected_kill_after_first_record_resumes_deterministically() {
    let dir = temp_dir("inject");
    let plan = dir.join("faults.json");
    std::fs::write(&plan, r#"{"kill_after_record": 0}"#).expect("write plan");

    let out = gcnt()
        .arg("serve")
        .arg("--self-test")
        .arg("--journal-dir")
        .arg(&dir)
        .arg("--faults")
        .arg(&plan)
        .output()
        .expect("run victim");
    assert!(
        !out.status.success(),
        "kill_after_record run must die, got:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert_eq!(wal_lines(&dir), 2, "header + exactly one committed record");

    // Clean reference in a separate dir, then the deterministic resume.
    let ref_dir = temp_dir("inject-ref");
    let want = flow_field(&run_selftest(&ref_dir, &["--requests", "1"]), "checksum");
    let resumed = run_selftest(&dir, &["--requests", "1"]);
    assert_eq!(flow_field(&resumed, "checksum"), want);
    assert_eq!(flow_field(&resumed, "resumed"), "1");
}
