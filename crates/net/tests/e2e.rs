//! End-to-end protocol tests: a real server (shard router + serve
//! cores) behind the in-process loopback transport, driven by the real
//! client. The fault-matrix scenarios run under `--features
//! fault-inject` and assert the ISSUE's contract: every injected
//! network fault ends in a typed error or a bit-identical resumed
//! outcome — never a hang, panic, or wrong payload.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use gcnt_core::{features::FeatureNormalizer, Gcn, GcnConfig, GraphData, MultiStageGcn};
use gcnt_net::{
    local_transport, serve, ClientConfig, Dialer, DrainSummary, ErrorCode, FlowRequest, Listener,
    LocalDialer, NetClient, NetError, NetServerConfig, ShardRouter,
};
use gcnt_netlist::{format, generate, GeneratorConfig, Netlist};
use gcnt_nn::seeded_rng;
use gcnt_runtime::FaultPlan;
use gcnt_serve::{ServeConfig, ServeCore};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gcnt-net-e2e-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn model_for(net: &Netlist) -> (FeatureNormalizer, MultiStageGcn) {
    let data = GraphData::from_netlist(net, None).unwrap();
    let cfg = GcnConfig {
        embed_dims: vec![4, 4],
        fc_dims: vec![4],
        ..GcnConfig::default()
    };
    let stages = vec![
        Gcn::new(&cfg, &mut seeded_rng(41)),
        Gcn::new(&cfg, &mut seeded_rng(42)),
    ];
    (data.normalizer, MultiStageGcn::from_stages(stages, 0.5))
}

fn cores_for(net: &Netlist, n: usize) -> Vec<ServeCore> {
    (0..n)
        .map(|_| {
            let (norm, model) = model_for(net);
            ServeCore::new(norm, model, ServeConfig::default())
        })
        .collect()
}

fn server_config() -> NetServerConfig {
    NetServerConfig {
        read_timeout: Duration::from_millis(25),
        frame_budget: Duration::from_secs(2),
        ..NetServerConfig::default()
    }
}

type ServerHandle = std::thread::JoinHandle<Result<(DrainSummary, Vec<ServeCore>), NetError>>;

/// Starts a sharded server over the loopback transport in a thread.
fn start_server(
    net: &Netlist,
    shards: usize,
    tag: &str,
    config: NetServerConfig,
    plan: FaultPlan,
) -> (LocalDialer, ServerHandle) {
    let dir = temp_dir(tag);
    let router = ShardRouter::start(cores_for(net, shards), &dir).unwrap();
    let (listener, dialer) = local_transport();
    let handle = std::thread::spawn(move || serve(listener, router, config, &plan));
    (dialer, handle)
}

fn quick_client(dialer: LocalDialer) -> NetClient {
    quick_client_with_faults(dialer, FaultPlan::none())
}

fn quick_client_with_faults(dialer: LocalDialer, plan: FaultPlan) -> NetClient {
    let cfg = ClientConfig {
        backoff: Duration::from_millis(2),
        read_timeout: Duration::from_millis(50),
        max_idle_polls: 600,
        ..ClientConfig::default()
    };
    NetClient::connect_with_faults(Dialer::Local(dialer), cfg, plan).unwrap()
}

fn flow_request(net: &Netlist, job_id: &str) -> FlowRequest {
    FlowRequest {
        design: format::write(net),
        job_id: job_id.to_string(),
        max_iterations: 2,
        ops_per_iteration: 1,
        prob_threshold_milli: 50,
        deadline_rows: 0,
    }
}

#[test]
fn infer_round_trips_and_is_deterministic() {
    let net = generate(&GeneratorConfig::sized("e2e-infer", 5, 120));
    let (dialer, handle) = start_server(&net, 2, "infer", server_config(), FaultPlan::none());
    let mut client = quick_client(dialer);
    assert_eq!(client.shards(), 2, "handshake reports shard count");

    let text = format::write(&net);
    let a = client.infer(&text, 0).unwrap();
    let b = client.infer(&text, 0).unwrap();
    assert_eq!(a.probs_len as usize, net.node_count());
    assert_eq!(a.shard, b.shard, "same design routes to the same shard");
    assert_eq!(
        a.probs_checksum, b.probs_checksum,
        "same design, bit-identical probabilities"
    );

    client.drain().unwrap();
    let (summary, cores) = handle.join().unwrap().unwrap();
    assert_eq!(cores.len(), 2);
    assert!(summary.jobs_completed >= 2);
    assert_eq!(summary.slow_loris_evictions, 0);
}

#[test]
fn flow_resubmit_under_same_job_id_is_bit_identical() {
    let net = generate(&GeneratorConfig::sized("e2e-flow", 5, 120));
    let (dialer, handle) = start_server(&net, 2, "flow", server_config(), FaultPlan::none());
    let mut client = quick_client(dialer);

    let req = flow_request(&net, "resub");
    let first = client.flow(&req).unwrap();
    assert!(first.journal_records > 0, "flow batches are journaled");

    // Resubmitting the same job id replays the journal instead of
    // redoing the work, and lands on the same answer bit for bit.
    let second = client.flow(&req).unwrap();
    assert_eq!(second.shard, first.shard);
    assert_eq!(
        second.outcome_checksum, first.outcome_checksum,
        "journal replay reproduces the outcome exactly"
    );
    assert!(second.resumed_batches > 0, "second run resumed, not redone");

    client.drain().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn unparseable_design_is_a_typed_refusal() {
    let net = generate(&GeneratorConfig::sized("e2e-bad", 3, 90));
    let (dialer, handle) = start_server(&net, 1, "bad", server_config(), FaultPlan::none());
    let mut client = quick_client(dialer);

    let err = client.infer("this is not a netlist", 0).unwrap_err();
    match err {
        NetError::Server {
            code, retryable, ..
        } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(!retryable);
        }
        other => panic!("expected a typed server refusal, got {other}"),
    }

    client.drain().unwrap();
    let (summary, _) = handle.join().unwrap().unwrap();
    assert!(summary.refusals >= 1);
}

#[test]
fn wrong_wire_version_gets_a_typed_version_mismatch() {
    use gcnt_net::{decode, Frame, FrameKind, ReadOutcome};

    let net = generate(&GeneratorConfig::sized("e2e-ver", 3, 90));
    let (dialer, handle) = start_server(&net, 1, "ver", server_config(), FaultPlan::none());

    // Speak a future protocol version by hand.
    let mut conn = dialer.connect().unwrap();
    conn.set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let bytes = Frame::new(FrameKind::Hello, b"{\"version\":9}".to_vec()).encode_with_version(9);
    use std::io::Write;
    conn.write_all(&bytes).unwrap();

    // The refusal frame itself is a well-formed v1 Error frame.
    let mut collected = Vec::new();
    let mut buf = [0u8; 256];
    for _ in 0..100 {
        match std::io::Read::read(&mut conn, &mut buf) {
            Ok(0) => break,
            Ok(n) => collected.extend_from_slice(buf.get(..n).unwrap()),
            Err(_) => {}
        }
        if let Ok(ReadOutcome::Frame(_)) = decode(&collected) {
            break;
        }
    }
    match decode(&collected).unwrap() {
        ReadOutcome::Frame(f) => {
            assert_eq!(f.kind, FrameKind::Error);
            let e: gcnt_net::ErrorReply = gcnt_net::decode_message(&f).unwrap();
            assert_eq!(e.code, ErrorCode::VersionMismatch);
        }
        other => panic!("expected a refusal frame, got {other:?}"),
    }
    drop(conn);

    let mut client = quick_client(dialer);
    client.drain().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn drain_refuses_new_work_and_reports_a_summary() {
    let net = generate(&GeneratorConfig::sized("e2e-drain", 3, 90));
    let config = NetServerConfig {
        read_timeout: Duration::from_millis(25),
        ..NetServerConfig::default()
    };
    let (dialer, handle) = start_server(&net, 2, "drain", config, FaultPlan::none());
    let mut client = quick_client(dialer);

    let text = format::write(&net);
    client.infer(&text, 0).unwrap();
    let ack = client.drain().unwrap();
    assert_eq!(ack.pending, 0, "nothing queued at drain time");

    // New work after drain is refused typed, not dropped. The client
    // may also observe the closing connection as exhausted retries.
    match client.infer(&text, 0) {
        Err(NetError::Server { code, .. }) => assert_eq!(code, ErrorCode::Draining),
        Err(NetError::RetriesExhausted { .. }) => {}
        Ok(_) => panic!("a draining server must not accept new work"),
        Err(other) => panic!("unexpected error: {other}"),
    }

    let (summary, cores) = handle.join().unwrap().unwrap();
    assert_eq!(cores.len(), 2);
    assert!(summary.jobs_completed >= 1);
    assert!(summary.frames_received >= 2);
}

#[test]
fn tcp_round_trips_like_loopback() {
    let net = generate(&GeneratorConfig::sized("e2e-tcp", 3, 90));
    let dir = temp_dir("tcp");
    let router = ShardRouter::start(cores_for(&net, 2), &dir).unwrap();
    let listener = Listener::bind_tcp("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let config = server_config();
    let handle = std::thread::spawn(move || serve(listener, router, config, &FaultPlan::none()));

    let cfg = ClientConfig {
        backoff: Duration::from_millis(2),
        ..ClientConfig::default()
    };
    let mut client = NetClient::connect(Dialer::Tcp(addr.to_string()), cfg).unwrap();
    let reply = client.infer(&format::write(&net), 0).unwrap();
    assert_eq!(reply.probs_len as usize, net.node_count());

    client.drain().unwrap();
    let (summary, _) = handle.join().unwrap().unwrap();
    assert!(summary.jobs_completed >= 1);
}

#[cfg(feature = "fault-inject")]
mod fault_matrix {
    use super::*;

    #[test]
    fn connect_refused_heals_after_retries() {
        let net = generate(&GeneratorConfig::sized("e2e-refuse", 3, 90));
        let (dialer, handle) = start_server(&net, 2, "refuse", server_config(), FaultPlan::none());

        // The first two dials are refused; backoff then connects.
        let plan = FaultPlan::none().with_net_connect_refused(2);
        let mut client = quick_client_with_faults(dialer, plan);
        let reply = client.infer(&format::write(&net), 0).unwrap();
        assert_eq!(reply.probs_len as usize, net.node_count());

        client.drain().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn corrupt_frame_checksum_is_a_typed_refusal() {
        let net = generate(&GeneratorConfig::sized("e2e-corrupt", 3, 90));
        let (dialer, handle) = start_server(&net, 2, "corrupt", server_config(), FaultPlan::none());

        // Frame 0 is the Hello; frame 1 — the first request — is sent
        // with one checksum bit flipped.
        let plan = FaultPlan::none().with_net_corrupt_frame_checksum(1);
        let mut client = quick_client_with_faults(dialer.clone(), plan);
        let err = client.infer(&format::write(&net), 0).unwrap_err();
        match err {
            NetError::Server { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
            other => panic!("expected a typed BadFrame refusal, got {other}"),
        }

        // The fault was one-shot: a fresh client sails through.
        let mut client = quick_client(dialer);
        client.infer(&format::write(&net), 0).unwrap();
        client.drain().unwrap();
        let (summary, _) = handle.join().unwrap().unwrap();
        assert!(summary.refusals >= 1);
    }

    #[test]
    fn slow_loris_is_evicted_then_heals() {
        let net = generate(&GeneratorConfig::sized("e2e-loris", 3, 90));
        let config = NetServerConfig {
            read_timeout: Duration::from_millis(25),
            frame_budget: Duration::from_millis(80),
            ..NetServerConfig::default()
        };
        let (dialer, handle) = start_server(&net, 2, "loris", config, FaultPlan::none());

        // The first frame trickles at ~100 bytes/s; the server's frame
        // budget evicts it, the one-shot fault clears, and the retry
        // completes at full speed.
        let plan = FaultPlan::none().with_net_slow_loris(100);
        let mut client = quick_client_with_faults(dialer, plan);
        let reply = client.infer(&format::write(&net), 0).unwrap();
        assert_eq!(reply.probs_len as usize, net.node_count());

        client.drain().unwrap();
        let (summary, _) = handle.join().unwrap().unwrap();
        assert!(
            summary.slow_loris_evictions >= 1,
            "the trickled frame was evicted: {summary:?}"
        );
    }

    #[test]
    fn disconnect_mid_flow_resumes_bit_identically() {
        let net = generate(&GeneratorConfig::sized("e2e-sever", 5, 120));

        // Reference: the same job on a fault-free server.
        let (clean_dialer, clean_handle) =
            start_server(&net, 2, "sever-clean", server_config(), FaultPlan::none());
        let mut clean = quick_client(clean_dialer);
        let expected = clean.flow(&flow_request(&net, "sever-job")).unwrap();
        clean.drain().unwrap();
        clean_handle.join().unwrap().unwrap();

        // Faulted: the server completes and journals the flow job but
        // severs the connection before the reply (frame 1 = Hello,
        // frame 2 = the flow request). The client reconnects and
        // resubmits the same job id; the journal resumes.
        let plan = FaultPlan::none().with_net_disconnect_after_frames(2);
        let (dialer, handle) = start_server(&net, 2, "sever", server_config(), plan);
        let mut client = quick_client(dialer);
        let resumed = client.flow(&flow_request(&net, "sever-job")).unwrap();

        assert_eq!(
            resumed.outcome_checksum, expected.outcome_checksum,
            "resumed outcome is bit-identical to the undisturbed run"
        );
        assert!(
            resumed.resumed_batches > 0,
            "the retry resumed the journal rather than redoing the job"
        );

        client.drain().unwrap();
        handle.join().unwrap().unwrap();
    }
}
