//! The network server: accept loop, per-connection frame loop, typed
//! refusals, and graceful drain.
//!
//! Every failure a socket can produce maps to a typed behaviour, never a
//! hung or silently dropped request:
//!
//! * corrupt or version-mismatched frames → one `Error` frame
//!   (`BadFrame`/`VersionMismatch`) then close — a checksummed byte
//!   stream cannot be resynchronised after damage;
//! * a frame that trickles in slower than the frame budget → slow-loris
//!   eviction (counted, connection closed);
//! * a full shard queue or open breaker → `Overloaded`/`BreakerOpen`
//!   error frames marked retryable;
//! * a blown deadline → a `Deadline` error frame;
//! * SIGTERM (or a `Drain` frame) → stop accepting, finish in-flight
//!   work, drain every shard queue, hand the cores back.
//!
//! Disconnect-mid-job needs no special server path: flow jobs journal
//! every committed batch, so a client that reconnects and resubmits the
//! same job id resumes to a bit-identical outcome.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gcnt_dft::flow::FlowConfig;
use gcnt_netlist::format;
use gcnt_runtime::{fnv1a64, FaultPlan};
use gcnt_serve::{ServeCore, ServeError};

use crate::error::NetError;
use crate::frame::{read_frame, Frame, FrameKind, ReadOutcome, PROTOCOL_VERSION};
use crate::message::{
    decode_message, encode_message, DrainAck, ErrorCode, ErrorReply, FlowReply, FlowRequest, Hello,
    HelloAck, InferReply, InferRequest,
};
use crate::router::ShardRouter;
use crate::signal;
use crate::transport::{Conn, Listener};

/// Network server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetServerConfig {
    /// Per-connection read timeout: how long an idle connection may sit
    /// between frames before the loop re-checks the drain flag.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Wall-clock budget for one whole frame once its first byte
    /// arrived; a peer trickling bytes slower than this is evicted.
    pub frame_budget: Duration,
    /// Sleep between accept polls.
    pub accept_poll: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_secs(2),
            frame_budget: Duration::from_secs(1),
            accept_poll: Duration::from_millis(2),
        }
    }
}

/// What the server saw over its lifetime, reported when it drains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Frames received and verified.
    pub frames_received: u64,
    /// Requests answered with a result frame.
    pub jobs_completed: u64,
    /// Requests answered with a typed error frame.
    pub refusals: u64,
    /// Connections evicted for trickling (slow-loris).
    pub slow_loris_evictions: u64,
    /// Requests still queued across shards when draining began (they
    /// are finished by the shard workers before shutdown returns).
    pub pending_at_drain: u64,
}

#[derive(Default)]
struct Stats {
    connections: AtomicU64,
    frames: AtomicU64,
    jobs: AtomicU64,
    refusals: AtomicU64,
    evictions: AtomicU64,
    open: AtomicU64,
}

struct Ctx {
    router: ShardRouter,
    config: NetServerConfig,
    drain: AtomicBool,
    stats: Stats,
    /// Server-side fault: sever the connection (no reply) right after
    /// the Nth verified frame, once per process. `None` = never.
    disconnect_after: Option<u64>,
    disconnect_armed: AtomicBool,
}

impl Ctx {
    fn draining(&self) -> bool {
        self.drain.load(Ordering::Relaxed) || signal::term_requested()
    }
}

/// Maps a shard's [`ServeError`] to the typed error frame the client
/// sees.
fn map_serve_error(e: &ServeError) -> ErrorReply {
    let (code, retryable) = match e {
        ServeError::Overloaded { .. } => (ErrorCode::Overloaded, true),
        ServeError::BreakerOpen { .. } => (ErrorCode::BreakerOpen, true),
        ServeError::Flow(fe) if fe.is_budget_stop() => (ErrorCode::Deadline, false),
        ServeError::Load(_) => (ErrorCode::BadRequest, false),
        _ => (ErrorCode::Internal, false),
    };
    ErrorReply {
        code,
        message: e.to_string(),
        retryable,
    }
}

fn checksum_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

/// The digest of a flow answer: outcome JSON + post-flow design text —
/// the same idiom `gcnt serve --self-test` prints, so bit-identical
/// resume is a string comparison on both sides of the wire.
pub fn flow_digest(outcome_json: &str, net_text: &str) -> String {
    checksum_hex(format!("{outcome_json}{net_text}").as_bytes())
}

fn send_frame(conn: &mut Conn, frame: &Frame) -> Result<(), NetError> {
    let bytes = frame.encode();
    conn.write_all(&bytes)
        .map_err(|e| NetError::Io(e.to_string()))?;
    conn.flush().map_err(|e| NetError::Io(e.to_string()))?;
    let obs = gcnt_obs::global();
    obs.incr(gcnt_obs::counters::NET_FRAMES_SENT);
    obs.observe(gcnt_obs::histograms::NET_FRAME_BYTES, bytes.len() as u64);
    Ok(())
}

fn send_error(conn: &mut Conn, ctx: &Ctx, reply: &ErrorReply) -> Result<(), NetError> {
    ctx.stats.refusals.fetch_add(1, Ordering::Relaxed);
    gcnt_obs::global().incr(gcnt_obs::counters::NET_ERROR_FRAMES_SENT);
    send_frame(conn, &encode_message(FrameKind::Error, reply))
}

fn infer_reply(ctx: &Ctx, req: &InferRequest) -> Result<InferReply, ErrorReply> {
    let net = format::read(&req.design).map_err(|e| ErrorReply {
        code: ErrorCode::BadRequest,
        message: format!("unparseable design: {e}"),
        retryable: false,
    })?;
    let deadline = (req.deadline_rows > 0).then_some(req.deadline_rows);
    let (shard, resp) = ctx
        .router
        .infer(net, deadline)
        .map_err(|e| map_serve_error(&e))?;
    let mut prob_bytes = Vec::with_capacity(resp.probs.len() * 4);
    for p in &resp.probs {
        prob_bytes.extend_from_slice(&p.to_le_bytes());
    }
    Ok(InferReply {
        positives: resp.positives as u64,
        rung: resp.rung.as_str().to_string(),
        dropped: resp.dropped.len() as u64,
        spent: resp.spent,
        warm_rows: resp.warm_rows,
        // CAST: shard index < shard_count, far below u32::MAX.
        shard: shard as u32,
        probs_len: resp.probs.len() as u64,
        probs_checksum: checksum_hex(&prob_bytes),
    })
}

fn flow_reply(ctx: &Ctx, req: &FlowRequest) -> Result<FlowReply, ErrorReply> {
    let net = format::read(&req.design).map_err(|e| ErrorReply {
        code: ErrorCode::BadRequest,
        message: format!("unparseable design: {e}"),
        retryable: false,
    })?;
    let cfg = FlowConfig {
        max_iterations: usize::try_from(req.max_iterations).unwrap_or(usize::MAX),
        ops_per_iteration: usize::try_from(req.ops_per_iteration).unwrap_or(usize::MAX),
        // CAST: milli-units fit f32 exactly for every sane threshold.
        prob_threshold: req.prob_threshold_milli as f32 / 1000.0,
        ..FlowConfig::default()
    };
    let deadline = (req.deadline_rows > 0).then_some(req.deadline_rows);
    let (shard, done) = ctx
        .router
        .flow(net, cfg, &req.job_id, deadline)
        .map_err(|e| map_serve_error(&e))?;
    let outcome_json = serde_json::to_string(&done.response.outcome).unwrap_or_default();
    let net_text = format::write(&done.net);
    Ok(FlowReply {
        inserted: done.response.outcome.inserted.len() as u64,
        iterations: done.response.outcome.history.len() as u64,
        resumed_batches: done.response.resumed_batches as u64,
        journal_records: done.response.journal_records,
        recovered_torn_tail: done.response.recovered_torn_tail,
        // CAST: shard index < shard_count, far below u32::MAX.
        shard: shard as u32,
        outcome_checksum: flow_digest(&outcome_json, &net_text),
    })
}

/// Handles one connection until EOF, eviction, corruption, or drain.
fn handle_conn(mut conn: Conn, ctx: &Ctx) {
    let obs = gcnt_obs::global();
    ctx.stats.connections.fetch_add(1, Ordering::Relaxed);
    let open = ctx.stats.open.fetch_add(1, Ordering::Relaxed) + 1;
    obs.incr(gcnt_obs::counters::NET_CONNECTIONS_OPENED);
    obs.gauge_set(gcnt_obs::gauges::NET_CONNECTIONS_OPEN, open as f64);
    obs.gauge_max(gcnt_obs::gauges::NET_CONNECTIONS_PEAK, open as f64);
    let peer = conn.peer();
    let _ = conn.set_read_timeout(Some(ctx.config.read_timeout));
    let _ = conn.set_write_timeout(Some(ctx.config.write_timeout));

    loop {
        match read_frame(&mut conn, Some(ctx.config.frame_budget), &peer) {
            Err(_) | Ok(ReadOutcome::Eof) | Ok(ReadOutcome::Torn) => break,
            Ok(ReadOutcome::IdleTimeout) => {
                if ctx.draining() {
                    break;
                }
            }
            Ok(ReadOutcome::Stalled) => {
                ctx.stats.evictions.fetch_add(1, Ordering::Relaxed);
                obs.incr(gcnt_obs::counters::NET_SLOW_LORIS_EVICTIONS);
                break;
            }
            Ok(ReadOutcome::Corrupt {
                version_mismatch,
                declared_version,
                detail,
            }) => {
                obs.incr(gcnt_obs::counters::NET_FRAME_CHECKSUM_FAILURES);
                let reply = if version_mismatch {
                    ErrorReply {
                        code: ErrorCode::VersionMismatch,
                        message: format!(
                            "peer declared v{declared_version}, this server speaks v{PROTOCOL_VERSION}"
                        ),
                        retryable: false,
                    }
                } else {
                    ErrorReply {
                        code: ErrorCode::BadFrame,
                        message: detail,
                        retryable: false,
                    }
                };
                let _ = send_error(&mut conn, ctx, &reply);
                break; // a damaged stream cannot be resynchronised
            }
            Ok(ReadOutcome::Frame(frame)) => {
                let frame_no = ctx.stats.frames.fetch_add(1, Ordering::Relaxed) + 1;
                obs.incr(gcnt_obs::counters::NET_FRAMES_RECV);
                let started = Instant::now();
                let sever = ctx.disconnect_after.is_some_and(|n| frame_no >= n)
                    && ctx
                        .disconnect_armed
                        .compare_exchange(true, false, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok();
                let ok = dispatch(&mut conn, ctx, &frame, sever);
                let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                obs.observe(gcnt_obs::histograms::NET_REQUEST_NS, elapsed);
                if !ok || sever {
                    break;
                }
            }
        }
    }
    let open = ctx
        .stats
        .open
        .fetch_sub(1, Ordering::Relaxed)
        .saturating_sub(1);
    obs.gauge_set(gcnt_obs::gauges::NET_CONNECTIONS_OPEN, open as f64);
}

/// Processes one verified frame; returns false when the connection
/// should close. With `sever` set, the request is fully processed (and
/// journaled) but the reply is never written — the deterministic
/// "connection died before the answer" fault.
fn dispatch(conn: &mut Conn, ctx: &Ctx, frame: &Frame, sever: bool) -> bool {
    let reply = match frame.kind {
        FrameKind::Hello => match decode_message::<Hello>(frame) {
            Ok(h) if h.version == u32::from(PROTOCOL_VERSION) => encode_message(
                FrameKind::HelloAck,
                &HelloAck {
                    version: u32::from(PROTOCOL_VERSION),
                    // CAST: shard counts are tiny.
                    shards: ctx.router.shard_count() as u32,
                },
            ),
            Ok(h) => {
                let _ = send_error(
                    conn,
                    ctx,
                    &ErrorReply {
                        code: ErrorCode::VersionMismatch,
                        message: format!(
                            "client speaks v{}, this server speaks v{PROTOCOL_VERSION}",
                            h.version
                        ),
                        retryable: false,
                    },
                );
                return false;
            }
            Err(e) => {
                let _ = bad_request(conn, ctx, &e);
                return false;
            }
        },
        FrameKind::Drain => {
            ctx.drain.store(true, Ordering::Relaxed);
            encode_message(
                FrameKind::DrainAck,
                &DrainAck {
                    pending: ctx.router.pending_total() as u64,
                },
            )
        }
        FrameKind::InferRequest => {
            if ctx.draining() {
                return send_error(conn, ctx, &draining_reply()).is_ok();
            }
            match decode_message::<InferRequest>(frame) {
                Ok(req) => match infer_reply(ctx, &req) {
                    Ok(reply) => {
                        ctx.stats.jobs.fetch_add(1, Ordering::Relaxed);
                        encode_message(FrameKind::InferReply, &reply)
                    }
                    Err(err) => return !sever && send_error(conn, ctx, &err).is_ok(),
                },
                Err(e) => return bad_request(conn, ctx, &e).is_ok(),
            }
        }
        FrameKind::FlowRequest => {
            if ctx.draining() {
                return send_error(conn, ctx, &draining_reply()).is_ok();
            }
            match decode_message::<FlowRequest>(frame) {
                Ok(req) => match flow_reply(ctx, &req) {
                    Ok(reply) => {
                        ctx.stats.jobs.fetch_add(1, Ordering::Relaxed);
                        encode_message(FrameKind::FlowReply, &reply)
                    }
                    Err(err) => return !sever && send_error(conn, ctx, &err).is_ok(),
                },
                Err(e) => return bad_request(conn, ctx, &e).is_ok(),
            }
        }
        // A server never expects reply kinds or HelloAck from a client.
        FrameKind::HelloAck
        | FrameKind::InferReply
        | FrameKind::FlowReply
        | FrameKind::Error
        | FrameKind::DrainAck => {
            let _ = send_error(
                conn,
                ctx,
                &ErrorReply {
                    code: ErrorCode::BadRequest,
                    message: format!("unexpected frame kind {:?} from a client", frame.kind),
                    retryable: false,
                },
            );
            return false;
        }
    };
    if sever {
        // The work is done and journaled; the reply dies with the
        // connection. A reconnect + resubmit resumes bit-identically.
        return false;
    }
    send_frame(conn, &reply).is_ok()
}

fn draining_reply() -> ErrorReply {
    ErrorReply {
        code: ErrorCode::Draining,
        message: "server is draining; no new work admitted".to_string(),
        retryable: false,
    }
}

fn bad_request(conn: &mut Conn, ctx: &Ctx, e: &NetError) -> Result<(), NetError> {
    send_error(
        conn,
        ctx,
        &ErrorReply {
            code: ErrorCode::BadRequest,
            message: e.to_string(),
            retryable: false,
        },
    )
}

/// Runs the server until a drain is requested (SIGTERM via
/// [`signal::term_requested`], a `Drain` frame, or the listener's
/// dialers all hanging up while `drain_when_idle` holds). Returns the
/// lifetime summary and the drained cores.
///
/// # Errors
///
/// [`NetError::Io`] on a real accept failure, [`NetError::Serve`] if a
/// shard worker died (queued jobs were still drained first where
/// possible).
pub fn serve(
    listener: Listener,
    router: ShardRouter,
    config: NetServerConfig,
    plan: &FaultPlan,
) -> Result<(DrainSummary, Vec<ServeCore>), NetError> {
    let disconnect_after = plan.net_disconnect_after_frames();
    let ctx = Arc::new(Ctx {
        router,
        config,
        drain: AtomicBool::new(false),
        stats: Stats::default(),
        disconnect_after,
        disconnect_armed: AtomicBool::new(disconnect_after.is_some()),
    });
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        if ctx.draining() {
            break;
        }
        match listener.accept() {
            Ok(Some(conn)) => {
                let ctx = Arc::clone(&ctx);
                match std::thread::Builder::new()
                    .name("gcnt-net-conn".to_string())
                    .spawn(move || handle_conn(conn, &ctx))
                {
                    Ok(h) => workers.push(h),
                    Err(_) => { /* thread limit: the conn drops, client retries */ }
                }
            }
            Ok(None) => std::thread::sleep(config.accept_poll),
            Err(e) => return Err(NetError::Io(e.to_string())),
        }
        workers.retain(|w| !w.is_finished());
    }
    let pending_at_drain = ctx.router.pending_total() as u64;
    // Connection threads notice the drain flag within one read timeout.
    for w in workers {
        let _ = w.join();
    }
    let summary = DrainSummary {
        connections: ctx.stats.connections.load(Ordering::Relaxed),
        frames_received: ctx.stats.frames.load(Ordering::Relaxed),
        jobs_completed: ctx.stats.jobs.load(Ordering::Relaxed),
        refusals: ctx.stats.refusals.load(Ordering::Relaxed),
        slow_loris_evictions: ctx.stats.evictions.load(Ordering::Relaxed),
        pending_at_drain,
    };
    let Ok(ctx) = Arc::try_unwrap(ctx) else {
        return Err(NetError::Serve(
            "connection threads still hold the server context".to_string(),
        ));
    };
    let cores = ctx
        .router
        .shutdown()
        .map_err(|e| NetError::Serve(e.to_string()))?;
    Ok((summary, cores))
}
