//! The shard router: N independent [`ServeCore`] workers behind one
//! front door.
//!
//! Each shard owns its whole serving stack — bounded admission queue,
//! circuit breaker, write-ahead journals, page store — because the cores
//! own them; the router adds nothing shared except the routing function.
//! A design's requests always land on the same shard (FNV-1a of the
//! design text, mod shard count), so per-design journals and warm
//! embedding pages never migrate and never interleave across shards.

use std::path::{Path, PathBuf};

use gcnt_dft::flow::FlowConfig;
use gcnt_netlist::{format, Netlist};
use gcnt_runtime::fnv1a64;
use gcnt_serve::{FlowJobResult, InferResponse, ServeCore, ServeError, ServeHandle};

use crate::error::NetError;

struct Shard {
    handle: ServeHandle,
    journal_dir: PathBuf,
}

/// Routes requests across shards; see the module docs.
pub struct ShardRouter {
    shards: Vec<Shard>,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ShardRouter({} shards)", self.shards.len())
    }
}

/// The stable routing key of a design: FNV-1a 64 over its text form —
/// the same hash family every other integrity envelope in the workspace
/// uses.
pub fn route_key(design_text: &str) -> u64 {
    fnv1a64(design_text.as_bytes())
}

/// Keeps only `[a-z0-9_-]` (lower-cased); everything else becomes `_`.
/// Job ids come off the wire, so they never touch the filesystem raw.
fn sanitize_job_id(job_id: &str) -> String {
    let mut out = String::with_capacity(job_id.len().min(64));
    for c in job_id.chars().take(64) {
        let c = c.to_ascii_lowercase();
        if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push_str("job");
    }
    out
}

impl ShardRouter {
    /// Starts one worker per core. `base_dir` gets a `shard-N/`
    /// directory per shard for that shard's journals — per-shard state
    /// is disjoint on disk by construction.
    ///
    /// # Errors
    ///
    /// [`NetError::Serve`] with zero cores or a failed worker spawn,
    /// [`NetError::Io`] if a shard directory cannot be created.
    pub fn start(cores: Vec<ServeCore>, base_dir: &Path) -> Result<Self, NetError> {
        if cores.is_empty() {
            return Err(NetError::Serve(
                "a shard router needs at least one core".to_string(),
            ));
        }
        let mut shards = Vec::with_capacity(cores.len());
        for (i, core) in cores.into_iter().enumerate() {
            let journal_dir = base_dir.join(format!("shard-{i}"));
            std::fs::create_dir_all(&journal_dir)
                .map_err(|e| NetError::Io(format!("create {}: {e}", journal_dir.display())))?;
            let handle = ServeHandle::start(core).map_err(|e| NetError::Serve(e.to_string()))?;
            shards.push(Shard {
                handle,
                journal_dir,
            });
        }
        let obs = gcnt_obs::global();
        obs.gauge_set(gcnt_obs::gauges::NET_SHARDS_ACTIVE, shards.len() as f64);
        Ok(ShardRouter { shards })
    }

    /// Shards behind this router.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a routing key lands on.
    pub fn shard_for(&self, key: u64) -> usize {
        // CAST: the modulus is a shard index < shards.len() <= usize.
        (key % self.shards.len().max(1) as u64) as usize
    }

    /// The shard a design routes to.
    pub fn shard_for_design(&self, net: &Netlist) -> usize {
        self.shard_for(route_key(&format::write(net)))
    }

    /// Where `job_id`'s journal lives on `shard` — always inside that
    /// shard's own directory, with the id sanitised first.
    pub fn journal_path(&self, shard: usize, job_id: &str) -> PathBuf {
        let dir = self
            .shards
            .get(shard)
            .map_or_else(|| PathBuf::from("."), |s| s.journal_dir.clone());
        dir.join(format!("job-{}.wal", sanitize_job_id(job_id)))
    }

    /// Requests pending across every shard queue.
    pub fn pending_total(&self) -> usize {
        self.shards.iter().map(|s| s.handle.pending()).sum()
    }

    fn shard(&self, idx: usize) -> Result<&Shard, ServeError> {
        self.shards.get(idx).ok_or(ServeError::WorkerGone)
    }

    fn note_depth(&self, idx: usize) {
        if let Some(s) = self.shards.get(idx) {
            gcnt_obs::global().gauge_max(
                gcnt_obs::gauges::NET_SHARD_QUEUE_DEPTH_PEAK,
                s.handle.pending() as f64,
            );
        }
    }

    /// Routes and runs an inference request; returns the shard index
    /// alongside the answer.
    ///
    /// # Errors
    ///
    /// The shard's [`ServeError`] (admission, breaker, serving).
    pub fn infer(
        &self,
        net: Netlist,
        deadline: Option<u64>,
    ) -> Result<(usize, InferResponse), ServeError> {
        let idx = self.shard_for_design(&net);
        let ticket = self.shard(idx)?.handle.submit_infer(net, deadline)?;
        self.note_depth(idx);
        Ok((idx, ticket.wait()?))
    }

    /// Routes and runs a journaled flow job. The journal lives in the
    /// shard's own directory keyed by `job_id`, so resubmitting the same
    /// id after a disconnect resumes the same journal on the same shard.
    ///
    /// # Errors
    ///
    /// The shard's [`ServeError`].
    pub fn flow(
        &self,
        net: Netlist,
        cfg: FlowConfig,
        job_id: &str,
        deadline: Option<u64>,
    ) -> Result<(usize, FlowJobResult), ServeError> {
        let idx = self.shard_for_design(&net);
        let journal = self.journal_path(idx, job_id);
        let ticket = self
            .shard(idx)?
            .handle
            .submit_flow(net, cfg, journal, deadline)?;
        self.note_depth(idx);
        Ok((idx, ticket.wait()?))
    }

    /// Drains every shard queue, stops the workers, and hands the cores
    /// back in shard order.
    ///
    /// # Errors
    ///
    /// [`ServeError::WorkerGone`] if any worker thread panicked; the
    /// remaining shards are still shut down before the error returns.
    pub fn shutdown(self) -> Result<Vec<ServeCore>, ServeError> {
        let mut cores = Vec::with_capacity(self.shards.len());
        let mut first_err = None;
        for shard in self.shards {
            match shard.handle.shutdown() {
                Ok(core) => cores.push(core),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(cores),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_core::{features::FeatureNormalizer, Gcn, GcnConfig, GraphData, MultiStageGcn};
    use gcnt_netlist::{generate, GeneratorConfig};
    use gcnt_nn::seeded_rng;
    use gcnt_serve::ServeConfig;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gcnt-net-router-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn model_for(net: &Netlist) -> (FeatureNormalizer, MultiStageGcn) {
        let data = GraphData::from_netlist(net, None).unwrap();
        let cfg = GcnConfig {
            embed_dims: vec![4, 4],
            fc_dims: vec![4],
            ..GcnConfig::default()
        };
        let stages = vec![
            Gcn::new(&cfg, &mut seeded_rng(41)),
            Gcn::new(&cfg, &mut seeded_rng(42)),
        ];
        (data.normalizer, MultiStageGcn::from_stages(stages, 0.5))
    }

    fn cores(net: &Netlist, n: usize) -> Vec<ServeCore> {
        (0..n)
            .map(|_| {
                let (norm, model) = model_for(net);
                ServeCore::new(norm, model, ServeConfig::default())
            })
            .collect()
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let net = generate(&GeneratorConfig::sized("route", 5, 120));
        let dir = temp_dir("routing");
        let router = ShardRouter::start(cores(&net, 4), &dir).unwrap();
        let a = router.shard_for_design(&net);
        let b = router.shard_for_design(&net);
        assert_eq!(a, b, "same design, same shard");
        assert!(a < 4);
        router.shutdown().unwrap();
    }

    #[test]
    fn journal_paths_stay_inside_their_shard_dir() {
        let net = generate(&GeneratorConfig::sized("paths", 3, 90));
        let dir = temp_dir("paths");
        let router = ShardRouter::start(cores(&net, 2), &dir).unwrap();
        let p0 = router.journal_path(0, "Job A/…/b");
        let p1 = router.journal_path(1, "Job A/…/b");
        assert!(p0.starts_with(dir.join("shard-0")));
        assert!(p1.starts_with(dir.join("shard-1")));
        assert_eq!(p0.file_name(), p1.file_name());
        let name = p0.file_name().unwrap().to_str().unwrap();
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.'),
            "sanitised: {name}"
        );
        router.shutdown().unwrap();
    }

    #[test]
    fn empty_router_is_refused() {
        let dir = temp_dir("empty");
        assert!(matches!(
            ShardRouter::start(Vec::new(), &dir),
            Err(NetError::Serve(_))
        ));
    }

    #[test]
    fn infer_and_flow_round_trip_through_a_shard() {
        let net = generate(&GeneratorConfig::sized("rt", 5, 120));
        let dir = temp_dir("rt");
        let router = ShardRouter::start(cores(&net, 2), &dir).unwrap();
        let (shard, resp) = router.infer(net.clone(), None).unwrap();
        assert_eq!(shard, router.shard_for_design(&net));
        assert_eq!(resp.probs.len(), net.node_count());

        let cfg = FlowConfig {
            max_iterations: 2,
            ops_per_iteration: 1,
            candidate_limit: 4,
            ..FlowConfig::default()
        };
        let (fshard, done) = router.flow(net.clone(), cfg, "j1", None).unwrap();
        assert_eq!(fshard, shard, "flow routes like infer");
        assert!(done.response.journal_records > 0);
        let wal = router.journal_path(fshard, "j1");
        assert!(wal.exists(), "journal written under the shard dir");
        router.shutdown().unwrap();
    }
}
