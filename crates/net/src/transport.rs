//! Transports: real TCP and a deterministic in-process loopback.
//!
//! Everything above this module speaks [`Conn`] (a `Read + Write` with
//! timeouts) and [`Listener`] (a non-blocking accept), so the server,
//! client, frame codec, and every fault scenario run identically over
//! `TcpStream` and over [`local_transport`]'s byte pipes. Tests and
//! `gcnt serve --self-test` use the loopback (no ports, no firewall, no
//! flaky binds); `gcnt netserve`/`gcnt loadgen` use real sockets.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One direction of a loopback connection: a bounded-ish byte queue with
/// a close flag, woken by a condvar.
struct Pipe {
    state: Mutex<PipeState>,
    readable: Condvar,
}

struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

impl Pipe {
    fn new() -> Arc<Pipe> {
        Arc::new(Pipe {
            state: Mutex::new(PipeState {
                buf: VecDeque::new(),
                closed: false,
            }),
            readable: Condvar::new(),
        })
    }

    fn write(&self, bytes: &[u8]) -> io::Result<usize> {
        let Ok(mut st) = self.state.lock() else {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe poisoned"));
        };
        if st.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"));
        }
        st.buf.extend(bytes.iter().copied());
        self.readable.notify_all();
        Ok(bytes.len())
    }

    fn read(&self, out: &mut [u8], timeout: Option<Duration>) -> io::Result<usize> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let Ok(mut st) = self.state.lock() else {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe poisoned"));
        };
        loop {
            if !st.buf.is_empty() {
                let n = out.len().min(st.buf.len());
                for slot in out.iter_mut().take(n) {
                    // The queue holds >= n bytes; a miss means another
                    // reader raced us, which the single-reader design
                    // forbids — surface it as a short read, not a panic.
                    match st.buf.pop_front() {
                        Some(b) => *slot = b,
                        None => return Ok(0),
                    }
                }
                return Ok(n);
            }
            if st.closed {
                return Ok(0); // clean EOF
            }
            st = match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(io::Error::new(io::ErrorKind::TimedOut, "pipe read timeout"));
                    }
                    let Ok((guard, _)) = self.readable.wait_timeout(st, d - now) else {
                        return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe poisoned"));
                    };
                    guard
                }
                None => {
                    let Ok(guard) = self.readable.wait(st) else {
                        return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe poisoned"));
                    };
                    guard
                }
            };
        }
    }

    fn close(&self) {
        if let Ok(mut st) = self.state.lock() {
            st.closed = true;
        }
        self.readable.notify_all();
    }
}

/// One end of an in-process loopback connection.
pub struct LocalConn {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
    read_timeout: Option<Duration>,
}

impl LocalConn {
    /// Sets the read timeout (mirrors `TcpStream::set_read_timeout`).
    pub fn set_read_timeout(&mut self, t: Option<Duration>) {
        self.read_timeout = t;
    }
}

impl Drop for LocalConn {
    fn drop(&mut self) {
        self.rx.close();
        self.tx.close();
    }
}

impl Read for LocalConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.rx.read(buf, self.read_timeout)
    }
}

impl Write for LocalConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A connected pair of loopback ends (client end, server end).
pub fn local_pair() -> (LocalConn, LocalConn) {
    let a = Pipe::new();
    let b = Pipe::new();
    (
        LocalConn {
            rx: Arc::clone(&a),
            tx: Arc::clone(&b),
            read_timeout: None,
        },
        LocalConn {
            rx: b,
            tx: a,
            read_timeout: None,
        },
    )
}

/// A connection of either transport. `Read`/`Write` plus timeouts —
/// exactly what the frame codec needs.
pub enum Conn {
    /// A real socket.
    Tcp(TcpStream),
    /// An in-process loopback end.
    Local(LocalConn),
}

impl std::fmt::Debug for Conn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Conn::Tcp(_) => f.write_str("Conn::Tcp"),
            Conn::Local(_) => f.write_str("Conn::Local"),
        }
    }
}

impl Conn {
    /// Sets the read timeout. A `None` blocks forever.
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(t),
            Conn::Local(c) => {
                c.set_read_timeout(t);
                Ok(())
            }
        }
    }

    /// Sets the write timeout (loopback writes never block, so this is a
    /// no-op there).
    pub fn set_write_timeout(&mut self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(t),
            Conn::Local(_) => Ok(()),
        }
    }

    /// A short peer label for lint contexts and report lines.
    pub fn peer(&self) -> String {
        match self {
            Conn::Tcp(s) => s
                .peer_addr()
                .map_or_else(|_| "tcp:?".to_string(), |a| a.to_string()),
            Conn::Local(_) => "local".to_string(),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Local(c) => c.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Local(c) => c.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Local(c) => c.flush(),
        }
    }
}

/// An accept source of either transport.
pub enum Listener {
    /// A bound, non-blocking TCP listener.
    Tcp(TcpListener),
    /// The server side of a [`local_transport`].
    Local(mpsc::Receiver<LocalConn>),
}

impl std::fmt::Debug for Listener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Listener::Tcp(_) => f.write_str("Listener::Tcp"),
            Listener::Local(_) => f.write_str("Listener::Local"),
        }
    }
}

impl Listener {
    /// Binds a TCP listener in non-blocking mode (pass port 0 for an
    /// ephemeral port; read it back with [`Listener::local_addr`]).
    ///
    /// # Errors
    ///
    /// The OS bind/configure error.
    pub fn bind_tcp(addr: &str) -> io::Result<Listener> {
        let l = TcpListener::bind(addr)?;
        l.set_nonblocking(true)?;
        Ok(Listener::Tcp(l))
    }

    /// The bound TCP address, if this is a TCP listener.
    pub fn local_addr(&self) -> Option<std::net::SocketAddr> {
        match self {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Local(_) => None,
        }
    }

    /// Polls for one pending connection; `Ok(None)` means none right
    /// now. Never blocks.
    ///
    /// # Errors
    ///
    /// A real accept failure (not `WouldBlock`).
    pub fn accept(&self) -> io::Result<Option<Conn>> {
        match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Ok(Some(Conn::Tcp(s)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            Listener::Local(rx) => match rx.try_recv() {
                Ok(c) => Ok(Some(Conn::Local(c))),
                Err(mpsc::TryRecvError::Empty) => Ok(None),
                // Every dialer hung up: nothing more will ever arrive,
                // which for an accept loop is the same as "none now";
                // the drain flag decides when to stop polling.
                Err(mpsc::TryRecvError::Disconnected) => Ok(None),
            },
        }
    }
}

/// The client side of a [`local_transport`]: hands out new loopback
/// connections to the paired [`Listener`].
#[derive(Clone)]
pub struct LocalDialer {
    tx: mpsc::Sender<LocalConn>,
}

impl std::fmt::Debug for LocalDialer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("LocalDialer")
    }
}

impl LocalDialer {
    /// Opens a new connection to the paired listener.
    ///
    /// # Errors
    ///
    /// `ConnectionRefused` if the listener was dropped — byte-for-byte
    /// the error shape a dead TCP server produces.
    pub fn connect(&self) -> io::Result<Conn> {
        let (client, server) = local_pair();
        self.tx.send(server).map_err(|_| {
            io::Error::new(io::ErrorKind::ConnectionRefused, "local listener is gone")
        })?;
        Ok(Conn::Local(client))
    }
}

/// An in-process transport: a listener and a dialer that connect to each
/// other without touching the network stack. Deterministic by
/// construction — no ports, no kernel buffers, no TIME_WAIT.
pub fn local_transport() -> (Listener, LocalDialer) {
    let (tx, rx) = mpsc::channel();
    (Listener::Local(rx), LocalDialer { tx })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn loopback_round_trips_bytes() {
        let (mut a, mut b) = local_pair();
        a.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        b.write_all(b"world").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"world");
    }

    #[test]
    fn read_times_out_then_sees_late_bytes() {
        let (mut a, mut b) = local_pair();
        b.set_read_timeout(Some(Duration::from_millis(10)));
        let mut buf = [0u8; 1];
        let err = b.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        a.write_all(&[7]).unwrap();
        assert_eq!(b.read(&mut buf).unwrap(), 1);
        assert_eq!(buf[0], 7);
    }

    #[test]
    fn dropping_one_end_is_a_clean_eof() {
        let (a, mut b) = local_pair();
        drop(a);
        let mut buf = [0u8; 4];
        assert_eq!(b.read(&mut buf).unwrap(), 0, "closed + empty = EOF");
        assert!(b.write_all(b"x").is_err(), "write to closed pipe fails");
    }

    #[test]
    fn transport_accepts_dialed_connections() {
        let (listener, dialer) = local_transport();
        assert!(listener.accept().unwrap().is_none(), "nothing dialed yet");
        let mut client = dialer.connect().unwrap();
        let mut server = listener.accept().unwrap().expect("dialed conn arrives");
        client.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn dialer_to_dropped_listener_is_connection_refused() {
        let (listener, dialer) = local_transport();
        drop(listener);
        let err = dialer.connect().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn cross_thread_wakeup_works() {
        let (mut a, mut b) = local_pair();
        let t = thread::spawn(move || {
            let mut buf = [0u8; 3];
            b.read_exact(&mut buf).unwrap();
            buf
        });
        thread::sleep(Duration::from_millis(20));
        a.write_all(b"abc").unwrap();
        assert_eq!(&t.join().unwrap(), b"abc");
    }
}
