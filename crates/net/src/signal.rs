//! SIGTERM-triggered graceful drain.
//!
//! The handler does the only async-signal-safe thing possible: set an
//! atomic flag. The server's accept loop polls [`term_requested`] and
//! turns it into a drain — stop accepting, finish or journal in-flight
//! jobs, shut the shards down cleanly. No dependency is needed: `std`
//! already links libc on unix, so the `signal(2)` symbol is reachable
//! with a one-line extern declaration.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
const SIGTERM: i32 = 15;

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

#[cfg(unix)]
extern "C" fn on_term(_sig: i32) {
    // A plain atomic store is async-signal-safe; everything else (the
    // drain itself) happens on the accept loop's thread.
    TERM.store(true, Ordering::Relaxed);
}

/// Installs the SIGTERM handler (idempotent). On non-unix targets this
/// is a no-op and drains are triggered via [`request_term`] only.
pub fn install_term_handler() {
    #[cfg(unix)]
    // SAFETY: `signal` replaces the process's SIGTERM disposition with
    // `on_term`, whose body is a single async-signal-safe atomic store.
    // The handler pointer is a static fn, so it outlives the process.
    unsafe {
        // CAST: fn-to-pointer-to-usize is the documented calling
        // convention of signal(2)'s handler slot; widths match.
        signal(SIGTERM, on_term as *const () as usize);
    }
}

/// Whether a drain was requested — by SIGTERM or programmatically.
pub fn term_requested() -> bool {
    TERM.load(Ordering::Relaxed)
}

/// Requests a drain without a signal (tests, the Drain admin frame).
pub fn request_term() {
    TERM.store(true, Ordering::Relaxed);
}

/// Clears the flag so one process can serve, drain, and serve again
/// (tests do; production servers exit after one drain).
pub fn reset_term() {
    TERM.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        reset_term();
        assert!(!term_requested());
        request_term();
        assert!(term_requested());
        reset_term();
        assert!(!term_requested());
    }

    #[cfg(unix)]
    #[test]
    fn handler_installs_and_fires() {
        reset_term();
        install_term_handler();
        // Raise SIGTERM at ourselves through the installed handler.
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        // SAFETY: raise(3) with a handled signal only runs `on_term`.
        let rc = unsafe { raise(SIGTERM) };
        assert_eq!(rc, 0);
        assert!(term_requested(), "handler stored the flag");
        reset_term();
    }
}
