//! The wire frame: a length-prefixed, checksummed envelope around one
//! protocol message.
//!
//! Layout (17-byte header, then the payload):
//!
//! ```text
//! offset  size  field
//! 0       3     magic  b"GNT"
//! 3       1     protocol version (currently 1)
//! 4       1     frame kind (see [`FrameKind`])
//! 5       4     payload length, u32 little-endian
//! 9       8     FNV-1a 64 checksum of the payload, u64 little-endian
//! 17      n     payload (JSON message body)
//! ```
//!
//! The checksum reuses the same FNV-1a envelope the flow journal and the
//! page store stamp on their records — one hashing idiom, three failure
//! domains (disk tear, page rot, wire corruption). Every header is
//! validated through [`gcnt_lint::lint_frame`] (`NT001`/`NT002`)
//! *before* any payload byte is trusted: the length cap is enforced
//! before allocation, the checksum before decoding.
//!
//! Decoding is total: a truncated, bit-flipped, or over-long byte
//! stream maps to a typed [`ReadOutcome`], never a panic, and a decoded
//! frame re-encodes to the identical bytes.

use std::io::{self, Read};
use std::time::{Duration, Instant};

use gcnt_lint::{lint_frame, FrameCaps, FrameMeta, RuleId};
use gcnt_runtime::fnv1a64;

use crate::error::NetError;

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;

/// Wire magic: the first three bytes of every frame.
pub const MAGIC: [u8; 3] = *b"GNT";

/// Header size in bytes (magic + version + kind + length + checksum).
pub const HEADER_BYTES: usize = 17;

/// Hard cap on one frame's payload; a declared length above this is
/// refused (`NT001`) before any allocation.
pub const MAX_PAYLOAD_BYTES: u64 = 16 * 1024 * 1024;

/// What one frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client's opening handshake.
    Hello,
    /// Server's handshake acknowledgement.
    HelloAck,
    /// An inference request.
    InferRequest,
    /// A journaled flow-job request.
    FlowRequest,
    /// Answer to an inference request.
    InferReply,
    /// Answer to a flow-job request.
    FlowReply,
    /// A typed refusal (see [`crate::message::ErrorReply`]).
    Error,
    /// Admin request: begin a graceful drain.
    Drain,
    /// Drain acknowledged; the server stops admitting new work.
    DrainAck,
}

impl FrameKind {
    /// The kind's wire byte.
    pub fn as_u8(self) -> u8 {
        match self {
            FrameKind::Hello => 0,
            FrameKind::HelloAck => 1,
            FrameKind::InferRequest => 2,
            FrameKind::FlowRequest => 3,
            FrameKind::InferReply => 4,
            FrameKind::FlowReply => 5,
            FrameKind::Error => 6,
            FrameKind::Drain => 7,
            FrameKind::DrainAck => 8,
        }
    }

    /// Parses a wire byte; `None` for unknown kinds (a protocol error).
    pub fn from_u8(b: u8) -> Option<FrameKind> {
        match b {
            0 => Some(FrameKind::Hello),
            1 => Some(FrameKind::HelloAck),
            2 => Some(FrameKind::InferRequest),
            3 => Some(FrameKind::FlowRequest),
            4 => Some(FrameKind::InferReply),
            5 => Some(FrameKind::FlowReply),
            6 => Some(FrameKind::Error),
            7 => Some(FrameKind::Drain),
            8 => Some(FrameKind::DrainAck),
            _ => None,
        }
    }
}

/// One decoded frame: kind plus opaque payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload is.
    pub kind: FrameKind,
    /// The message body (JSON for every kind this protocol defines).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame around `payload`.
    pub fn new(kind: FrameKind, payload: Vec<u8>) -> Self {
        Frame { kind, payload }
    }

    /// Encodes the frame at [`PROTOCOL_VERSION`].
    pub fn encode(&self) -> Vec<u8> {
        self.encode_with_version(PROTOCOL_VERSION)
    }

    /// Encodes the frame declaring `version` — only tests and version
    /// negotiation probes want anything but [`PROTOCOL_VERSION`].
    pub fn encode_with_version(&self, version: u8) -> Vec<u8> {
        debug_assert!(
            (self.payload.len() as u64) <= MAX_PAYLOAD_BYTES,
            "payload over the wire cap never leaves the process"
        );
        let mut out = Vec::with_capacity(HEADER_BYTES + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(version);
        out.push(self.kind.as_u8());
        let len = u32::try_from(self.payload.len()).unwrap_or(u32::MAX);
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&fnv1a64(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }
}

/// The result of trying to read one frame off a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A verified frame.
    Frame(Frame),
    /// Clean close: the peer shut the stream between frames.
    Eof,
    /// No byte of a new frame arrived within the read timeout; the
    /// connection is merely idle.
    IdleTimeout,
    /// A frame started but did not finish within the frame budget —
    /// the slow-loris shape. The caller evicts the connection.
    Stalled,
    /// The peer closed the stream mid-frame; the torn tail is discarded
    /// undecoded.
    Torn,
    /// The envelope failed verification (`NT001`/`NT002`) or declared an
    /// unknown frame kind. The stream cannot be resynchronised.
    Corrupt {
        /// True when the only failure is an unsupported protocol version
        /// (`NT002`) — mapped to a `VersionMismatch` error frame instead
        /// of `BadFrame`.
        version_mismatch: bool,
        /// The version the peer declared.
        declared_version: u8,
        /// Human-readable refusal detail (the lint findings).
        detail: String,
    },
}

/// Everything parsed out of a fixed-size header.
struct Header {
    magic_ok: bool,
    version: u8,
    kind_byte: u8,
    declared_len: u64,
    stored_checksum: u64,
}

fn parse_header(bytes: &[u8; HEADER_BYTES]) -> Header {
    let magic_ok = bytes.get(..3).is_some_and(|m| m == MAGIC);
    let version = bytes.get(3).copied().unwrap_or(0);
    let kind_byte = bytes.get(4).copied().unwrap_or(u8::MAX);
    let declared_len = bytes
        .get(5..9)
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .map_or(u64::MAX, |a| u64::from(u32::from_le_bytes(a)));
    let stored_checksum = bytes
        .get(9..17)
        .and_then(|s| <[u8; 8]>::try_from(s).ok())
        .map_or(0, u64::from_le_bytes);
    Header {
        magic_ok,
        version,
        kind_byte,
        declared_len,
        stored_checksum,
    }
}

fn caps() -> FrameCaps {
    FrameCaps {
        supported_version: u32::from(PROTOCOL_VERSION),
        max_payload_bytes: MAX_PAYLOAD_BYTES,
    }
}

fn refusal(header: &Header, computed_checksum: String, context: &str) -> Option<ReadOutcome> {
    let meta = FrameMeta {
        magic_ok: header.magic_ok,
        version: u32::from(header.version),
        declared_len: header.declared_len,
        stored_checksum: format!("{:016x}", header.stored_checksum),
        computed_checksum,
    };
    let report = lint_frame(context, &meta, &caps());
    let envelope_broken = report.fired(RuleId::FrameEnvelopeBroken);
    let version_bad = report.fired(RuleId::FrameVersionUnsupported);
    if envelope_broken || version_bad {
        return Some(ReadOutcome::Corrupt {
            version_mismatch: version_bad && !envelope_broken,
            declared_version: header.version,
            detail: report.to_string(),
        });
    }
    None
}

/// How one `fill` call ended.
enum FillEnd {
    Done,
    Eof,
    TimedOut,
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// Reads until `buf` is full, EOF, a per-read timeout, or `deadline`.
/// Returns how it ended plus the bytes actually read.
fn fill(
    r: &mut impl Read,
    buf: &mut [u8],
    deadline: Option<Instant>,
) -> Result<(usize, FillEnd), NetError> {
    let mut got = 0;
    while got < buf.len() {
        if deadline.is_some_and(|d| Instant::now() > d) {
            return Ok((got, FillEnd::TimedOut));
        }
        let Some(dst) = buf.get_mut(got..) else {
            break;
        };
        match r.read(dst) {
            Ok(0) => return Ok((got, FillEnd::Eof)),
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) => return Ok((got, FillEnd::TimedOut)),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e.to_string())),
        }
    }
    Ok((got, FillEnd::Done))
}

/// Reads and verifies one frame. `frame_budget` bounds the wall-clock
/// time the *whole frame* may take once its first byte arrived — the
/// defence against slow-loris peers that trickle bytes fast enough to
/// defeat per-read timeouts. `context` labels lint findings (e.g. the
/// peer address).
///
/// # Errors
///
/// [`NetError::Io`] only for real transport failures; timeouts, EOF,
/// and corruption are [`ReadOutcome`] values, not errors.
pub fn read_frame(
    r: &mut impl Read,
    frame_budget: Option<Duration>,
    context: &str,
) -> Result<ReadOutcome, NetError> {
    // The first byte blocks only up to the connection's own read
    // timeout; the frame budget starts the moment it arrives, so header
    // trickling is caught exactly like payload trickling.
    let mut first = [0u8; 1];
    let (got, end) = fill(r, &mut first, None)?;
    match end {
        FillEnd::Done => {}
        FillEnd::Eof => return Ok(ReadOutcome::Eof),
        FillEnd::TimedOut if got == 0 => return Ok(ReadOutcome::IdleTimeout),
        FillEnd::TimedOut => return Ok(ReadOutcome::Stalled),
    }
    let deadline = frame_budget.map(|b| Instant::now() + b);
    let mut header_bytes = [0u8; HEADER_BYTES];
    if let (Some(dst), Some(src)) = (header_bytes.first_mut(), first.first()) {
        *dst = *src;
    }
    let Some(rest) = header_bytes.get_mut(1..) else {
        return Ok(ReadOutcome::Torn);
    };
    let (_, end) = fill(r, rest, deadline)?;
    match end {
        FillEnd::Done => {}
        FillEnd::Eof => return Ok(ReadOutcome::Torn),
        FillEnd::TimedOut => return Ok(ReadOutcome::Stalled),
    }
    let header = parse_header(&header_bytes);

    // Refuse on magic/version/length *before* trusting the declared
    // length enough to allocate for it.
    if let Some(out) = refusal(&header, String::new(), context) {
        return Ok(out);
    }
    let Some(kind) = FrameKind::from_u8(header.kind_byte) else {
        return Ok(ReadOutcome::Corrupt {
            version_mismatch: false,
            declared_version: header.version,
            detail: format!("{context}: unknown frame kind byte {}", header.kind_byte),
        });
    };

    // CAST: declared_len was range-checked against MAX_PAYLOAD_BYTES
    // (16 MiB) above, so it fits usize on every supported target.
    let mut payload = vec![0u8; header.declared_len as usize];
    let (_, end) = fill(r, &mut payload, deadline)?;
    match end {
        FillEnd::Done => {}
        FillEnd::Eof => return Ok(ReadOutcome::Torn),
        FillEnd::TimedOut => return Ok(ReadOutcome::Stalled),
    }
    let computed = format!("{:016x}", fnv1a64(&payload));
    if let Some(out) = refusal(&header, computed, context) {
        return Ok(out);
    }
    Ok(ReadOutcome::Frame(Frame { kind, payload }))
}

/// Decodes one frame from a byte buffer (the stream-free entry point
/// property tests and tools use). Identical verification to
/// [`read_frame`]; trailing bytes after the frame are ignored.
///
/// # Errors
///
/// Never returns `Err` in practice — a `&[u8]` reader cannot fail — but
/// keeps the same signature shape as [`read_frame`].
pub fn decode(bytes: &[u8]) -> Result<ReadOutcome, NetError> {
    let mut r = bytes;
    read_frame(&mut r, None, "decode")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame {
        Frame::new(FrameKind::InferRequest, b"{\"x\":1}".to_vec())
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let f = frame();
        let bytes = f.encode();
        assert_eq!(bytes.len(), HEADER_BYTES + f.payload.len());
        let Ok(ReadOutcome::Frame(decoded)) = decode(&bytes) else {
            panic!("clean frame must decode");
        };
        assert_eq!(decoded, f);
        assert_eq!(decoded.encode(), bytes, "decode ∘ encode is identity");
    }

    #[test]
    fn every_kind_survives_the_wire() {
        for b in 0..=8u8 {
            let kind = FrameKind::from_u8(b).expect("0..=8 are defined");
            assert_eq!(kind.as_u8(), b);
            let f = Frame::new(kind, vec![b; 3]);
            let Ok(ReadOutcome::Frame(d)) = decode(&f.encode()) else {
                panic!("kind {b} must decode");
            };
            assert_eq!(d.kind, kind);
        }
        assert_eq!(FrameKind::from_u8(9), None);
    }

    #[test]
    fn bad_magic_is_refused() {
        let mut bytes = frame().encode();
        bytes[0] ^= 0xff;
        match decode(&bytes) {
            Ok(ReadOutcome::Corrupt {
                version_mismatch, ..
            }) => assert!(!version_mismatch),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn flipped_payload_bit_is_refused() {
        let mut bytes = frame().encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            decode(&bytes),
            Ok(ReadOutcome::Corrupt {
                version_mismatch: false,
                ..
            })
        ));
    }

    #[test]
    fn flipped_checksum_byte_is_refused() {
        let mut bytes = frame().encode();
        bytes[9] ^= 0x01;
        assert!(matches!(
            decode(&bytes),
            Ok(ReadOutcome::Corrupt {
                version_mismatch: false,
                ..
            })
        ));
    }

    #[test]
    fn unsupported_version_is_a_distinct_refusal() {
        let bytes = frame().encode_with_version(9);
        match decode(&bytes) {
            Ok(ReadOutcome::Corrupt {
                version_mismatch,
                declared_version,
                ..
            }) => {
                assert!(version_mismatch);
                assert_eq!(declared_version, 9);
            }
            other => panic!("expected version refusal, got {other:?}"),
        }
    }

    #[test]
    fn oversize_declared_length_is_refused_without_allocation() {
        let mut bytes = frame().encode();
        bytes[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode(&bytes),
            Ok(ReadOutcome::Corrupt {
                version_mismatch: false,
                ..
            })
        ));
    }

    #[test]
    fn truncations_never_decode() {
        let bytes = frame().encode();
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut]) {
                Ok(ReadOutcome::Eof) => assert_eq!(cut, 0),
                Ok(ReadOutcome::Torn) => assert!(cut > 0),
                other => panic!("cut {cut}: expected Eof/Torn, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_kind_byte_is_refused() {
        let mut bytes = frame().encode();
        bytes[4] = 42;
        assert!(matches!(
            decode(&bytes),
            Ok(ReadOutcome::Corrupt {
                version_mismatch: false,
                ..
            })
        ));
    }
}
