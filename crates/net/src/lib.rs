//! Fault-hardened network serving for testability inference.
//!
//! This crate puts the serving stack of the workspace behind a TCP
//! front door without giving up any of its crash-safety story:
//!
//! - **Wire protocol** ([`frame`], [`message`]): length-prefixed binary
//!   frames with a negotiated version and an FNV-1a checksum — the same
//!   integrity envelope the journal and page store use, applied to a
//!   third failure domain (the network). A torn or corrupted frame
//!   never decodes; it is refused through the lint rules `NT001`/
//!   `NT002` with a typed error frame, never a dropped socket.
//! - **Shard router** ([`router`]): N independent [`gcnt_serve::ServeCore`]
//!   workers, each with its own admission queue, circuit breaker, and
//!   journal directory. Designs route by FNV-1a of their text form, so
//!   a design's journals and warm pages never migrate across shards.
//! - **Server** ([`server`]): per-connection read/write deadlines with
//!   slow-loris eviction, typed `overloaded`/`deadline` refusals, and a
//!   SIGTERM-triggered graceful drain ([`signal`]) that finishes or
//!   journals every in-flight job before exiting.
//! - **Client** ([`client`]): retry-with-backoff on transient connect
//!   and write failures; a disconnect mid-flow-job resubmits under the
//!   same job id and resumes the server-side journal to a bit-identical
//!   outcome.
//! - **Transports** ([`transport`]): real TCP and an in-process
//!   loopback (`local_transport`) so every protocol path — including
//!   the whole fault matrix — runs deterministically in unit tests.
//!
//! Frame layout (17-byte header, little-endian):
//!
//! | bytes | field | notes |
//! |---|---|---|
//! | 0..3 | magic `GNT` | refused via `NT001` on mismatch |
//! | 3 | version | `NT002` on mismatch, typed `version-mismatch` reply |
//! | 4 | kind | hello, infer/flow request/reply, error, drain |
//! | 5..9 | payload length u32 | capped at 16 MiB before allocation |
//! | 9..17 | FNV-1a 64 of payload | `NT001` on mismatch |
//!
//! Network faults (behind the `fault-inject` feature, driven by
//! [`gcnt_runtime::FaultPlan`]): connect-refused(count),
//! disconnect-after-frame(N), slow-loris(bytes/s), and
//! corrupt-frame-checksum — each deterministic and one-shot, so a
//! retry observes a healed network.

pub mod client;
pub mod error;
pub mod frame;
pub mod message;
pub mod router;
pub mod server;
pub mod signal;
pub mod transport;

pub use client::{ClientConfig, Dialer, NetClient};
pub use error::NetError;
pub use frame::{
    decode, read_frame, Frame, FrameKind, ReadOutcome, HEADER_BYTES, MAX_PAYLOAD_BYTES,
    PROTOCOL_VERSION,
};
pub use message::{
    decode_message, encode_message, DrainAck, ErrorCode, ErrorReply, FlowReply, FlowRequest, Hello,
    HelloAck, InferReply, InferRequest,
};
pub use router::{route_key, ShardRouter};
pub use server::{flow_digest, serve, DrainSummary, NetServerConfig};
pub use signal::{install_term_handler, request_term, reset_term, term_requested};
pub use transport::{local_pair, local_transport, Conn, Listener, LocalConn, LocalDialer};
