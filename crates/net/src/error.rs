//! Typed errors of the network layer.

use std::fmt;

use crate::message::ErrorCode;

/// Errors produced by the network client, server, and shard router.
#[derive(Debug)]
pub enum NetError {
    /// A socket or pipe operation failed environmentally (refused
    /// connect, reset, closed pipe). Usually transient: the client
    /// retries these with backoff.
    Io(String),
    /// The byte stream violated the wire protocol — bad magic, a length
    /// over the cap, a checksum mismatch, or an unknown frame kind. The
    /// connection cannot be resynchronised and is closed after a typed
    /// `BadFrame` error frame (`NT001`).
    Protocol(String),
    /// The peer speaks an unsupported protocol version (`NT002`).
    VersionMismatch {
        /// The version this build speaks.
        ours: u32,
        /// The version the peer declared.
        theirs: u32,
    },
    /// The server answered with a typed error frame instead of a result.
    Server {
        /// Machine-readable refusal class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// Whether the server suggested retrying (e.g. `Overloaded`).
        retryable: bool,
    },
    /// The peer closed the connection mid-operation; the request may or
    /// may not have been journaled server-side. A resubmit with the same
    /// job id resumes instead of redoing work.
    Disconnected,
    /// Every retry (connects or resubmits) was exhausted.
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// The last attempt's error.
        last: String,
    },
    /// A local serving failure that is not expressible as a typed error
    /// frame (worker thread death, spawn failure, malformed design).
    Serve(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "network i/o error: {e}"),
            NetError::Protocol(e) => write!(f, "wire protocol violation: {e}"),
            NetError::VersionMismatch { ours, theirs } => write!(
                f,
                "protocol version mismatch: we speak v{ours}, peer declared v{theirs}"
            ),
            NetError::Server {
                code,
                message,
                retryable,
            } => write!(
                f,
                "server refused ({}, retryable={retryable}): {message}",
                code.as_str()
            ),
            NetError::Disconnected => write!(f, "peer disconnected mid-operation"),
            NetError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s): {last}")
            }
            NetError::Serve(e) => write!(f, "serving failure: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

#[doc(hidden)]
impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

impl NetError {
    /// Whether a client should back off and try again: transient I/O,
    /// a dropped connection, or a server refusal marked retryable.
    pub fn is_transient(&self) -> bool {
        match self {
            NetError::Io(_) | NetError::Disconnected => true,
            NetError::Server { retryable, .. } => *retryable,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetError::VersionMismatch { ours: 1, theirs: 9 };
        assert!(e.to_string().contains("v1"));
        assert!(e.to_string().contains("v9"));
        let e = NetError::Server {
            code: ErrorCode::Overloaded,
            message: "queue full".to_string(),
            retryable: true,
        };
        assert!(e.to_string().contains("overloaded"));
        assert!(e.is_transient());
        assert!(!NetError::Protocol("bad magic".to_string()).is_transient());
        assert!(NetError::Disconnected.is_transient());
    }
}
