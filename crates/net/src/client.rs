//! The network client: connect with retry-and-backoff, one in-flight
//! request at a time, reconnect-and-resubmit on transient failures.
//!
//! The client is where the network fault matrix is driven from: an
//! owned [`FaultPlan`] can refuse connects, trickle a frame's bytes
//! (slow-loris), or corrupt a frame checksum — each consumed one-shot,
//! so a retry behaves like a healed network. Disconnect-mid-job is
//! handled by construction: flow requests carry a caller-chosen job id,
//! and a resubmit after a dropped connection resumes the server-side
//! journal to a bit-identical outcome.

use std::io::Write;
use std::time::Duration;

use gcnt_runtime::FaultPlan;

use crate::error::NetError;
use crate::frame::{read_frame, Frame, FrameKind, ReadOutcome, PROTOCOL_VERSION};
use crate::message::{
    decode_message, encode_message, DrainAck, ErrorReply, FlowReply, FlowRequest, Hello, HelloAck,
    InferReply, InferRequest,
};
use crate::transport::{Conn, LocalDialer};

/// Where a client connects.
#[derive(Debug, Clone)]
pub enum Dialer {
    /// A TCP address, e.g. `127.0.0.1:7421`.
    Tcp(String),
    /// The client side of a [`crate::transport::local_transport`].
    Local(LocalDialer),
}

impl Dialer {
    fn dial(&self) -> std::io::Result<Conn> {
        match self {
            Dialer::Tcp(addr) => std::net::TcpStream::connect(addr.as_str()).map(Conn::Tcp),
            Dialer::Local(d) => d.connect(),
        }
    }
}

/// Client configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Connect attempts before giving up.
    pub connect_attempts: u32,
    /// Initial backoff between attempts; doubles per retry.
    pub backoff: Duration,
    /// Resubmits of one request across reconnects before giving up.
    pub request_retries: u32,
    /// How long one read may sit idle before re-polling; a reply may
    /// take several idle polls (see `max_idle_polls`).
    pub read_timeout: Duration,
    /// Consecutive idle polls tolerated while waiting for a reply.
    pub max_idle_polls: u32,
    /// Write timeout.
    pub write_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_attempts: 5,
            backoff: Duration::from_millis(10),
            request_retries: 4,
            read_timeout: Duration::from_millis(500),
            max_idle_polls: 240, // ~2 min of patience for a long flow job
            write_timeout: Duration::from_secs(2),
        }
    }
}

/// A connected protocol client.
pub struct NetClient {
    dialer: Dialer,
    config: ClientConfig,
    plan: FaultPlan,
    conn: Option<Conn>,
    frames_sent: u64,
    shards: u32,
}

impl std::fmt::Debug for NetClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NetClient(shards={})", self.shards)
    }
}

fn backoff_for(base: Duration, attempt: u32) -> Duration {
    base.saturating_mul(1u32 << attempt.min(8))
}

impl NetClient {
    /// Connects and completes the `Hello`/`HelloAck` handshake, retrying
    /// transient connect failures with exponential backoff.
    ///
    /// # Errors
    ///
    /// [`NetError::RetriesExhausted`] when every attempt failed,
    /// [`NetError::VersionMismatch`] if the server speaks another
    /// protocol version.
    pub fn connect(dialer: Dialer, config: ClientConfig) -> Result<Self, NetError> {
        Self::connect_with_faults(dialer, config, FaultPlan::none())
    }

    /// As [`NetClient::connect`], with a deterministic fault plan driving
    /// the client side of the network fault matrix.
    ///
    /// # Errors
    ///
    /// As [`NetClient::connect`].
    pub fn connect_with_faults(
        dialer: Dialer,
        config: ClientConfig,
        plan: FaultPlan,
    ) -> Result<Self, NetError> {
        let mut client = NetClient {
            dialer,
            config,
            plan,
            conn: None,
            frames_sent: 0,
            shards: 0,
        };
        client.ensure_conn()?;
        Ok(client)
    }

    /// Shards the server reported in its handshake.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    fn note_retry(&self) {
        gcnt_obs::global().incr(gcnt_obs::counters::NET_CLIENT_RETRIES);
    }

    /// Connects (if not connected) and handshakes, with backoff.
    fn ensure_conn(&mut self) -> Result<(), NetError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut last = "no attempt made".to_string();
        for attempt in 0..self.config.connect_attempts {
            if attempt > 0 {
                self.note_retry();
                std::thread::sleep(backoff_for(self.config.backoff, attempt - 1));
            }
            if self.plan.take_net_connect_refused() {
                last = "connection refused (injected)".to_string();
                continue;
            }
            let mut conn = match self.dialer.dial() {
                Ok(c) => c,
                Err(e) => {
                    last = e.to_string();
                    continue;
                }
            };
            let _ = conn.set_read_timeout(Some(self.config.read_timeout));
            let _ = conn.set_write_timeout(Some(self.config.write_timeout));
            gcnt_obs::global().incr(gcnt_obs::counters::NET_CONNECTIONS_OPENED);
            self.conn = Some(conn);
            match self.handshake() {
                Ok(()) => return Ok(()),
                Err(e @ NetError::VersionMismatch { .. }) => return Err(e),
                Err(e) => {
                    self.conn = None;
                    last = e.to_string();
                }
            }
        }
        Err(NetError::RetriesExhausted {
            attempts: self.config.connect_attempts,
            last,
        })
    }

    fn handshake(&mut self) -> Result<(), NetError> {
        let hello = encode_message(
            FrameKind::Hello,
            &Hello {
                version: u32::from(PROTOCOL_VERSION),
            },
        );
        self.write_frame(&hello)?;
        let reply = self.read_reply()?;
        match reply.kind {
            FrameKind::HelloAck => {
                let ack: HelloAck = decode_message(&reply)?;
                if ack.version != u32::from(PROTOCOL_VERSION) {
                    return Err(NetError::VersionMismatch {
                        ours: u32::from(PROTOCOL_VERSION),
                        theirs: ack.version,
                    });
                }
                self.shards = ack.shards;
                Ok(())
            }
            FrameKind::Error => Err(error_frame_to_net_error(&reply)?),
            _ => Err(NetError::Protocol(format!(
                "expected HelloAck, got {:?}",
                reply.kind
            ))),
        }
    }

    /// Encodes and writes one frame, applying any armed client-side
    /// faults (checksum corruption, slow-loris trickle).
    fn write_frame(&mut self, frame: &Frame) -> Result<(), NetError> {
        let mut bytes = frame.encode();
        let frame_index = self.frames_sent;
        self.frames_sent += 1;
        if self.plan.take_net_corrupt_checksum(frame_index) {
            // Flip one checksum bit: the envelope is refused (`NT001`)
            // while magic/version/length stay plausible.
            if let Some(b) = bytes.get_mut(9) {
                *b ^= 0x01;
            }
        }
        let conn = self.conn.as_mut().ok_or(NetError::Disconnected)?;
        if let Some(bytes_per_s) = self.plan.take_net_slow_loris() {
            // Trickle: one byte per tick, paced to `bytes_per_s`. The
            // server's frame budget evicts us mid-frame by design.
            let tick = Duration::from_millis(1000 / bytes_per_s.clamp(1, 1000));
            for b in &bytes {
                conn.write_all(std::slice::from_ref(b))
                    .map_err(|e| NetError::Io(e.to_string()))?;
                let _ = conn.flush();
                std::thread::sleep(tick);
            }
        } else {
            conn.write_all(&bytes)
                .map_err(|e| NetError::Io(e.to_string()))?;
            conn.flush().map_err(|e| NetError::Io(e.to_string()))?;
        }
        let obs = gcnt_obs::global();
        obs.incr(gcnt_obs::counters::NET_FRAMES_SENT);
        obs.observe(gcnt_obs::histograms::NET_FRAME_BYTES, bytes.len() as u64);
        Ok(())
    }

    /// Reads one reply frame, tolerating idle polls while the server
    /// computes.
    fn read_reply(&mut self) -> Result<Frame, NetError> {
        let conn = self.conn.as_mut().ok_or(NetError::Disconnected)?;
        let mut idles = 0u32;
        loop {
            match read_frame(conn, None, "client")? {
                ReadOutcome::Frame(f) => {
                    gcnt_obs::global().incr(gcnt_obs::counters::NET_FRAMES_RECV);
                    return Ok(f);
                }
                ReadOutcome::IdleTimeout => {
                    idles += 1;
                    if idles > self.config.max_idle_polls {
                        return Err(NetError::Io("reply timed out".to_string()));
                    }
                }
                ReadOutcome::Eof | ReadOutcome::Torn | ReadOutcome::Stalled => {
                    return Err(NetError::Disconnected);
                }
                ReadOutcome::Corrupt { detail, .. } => {
                    gcnt_obs::global().incr(gcnt_obs::counters::NET_FRAME_CHECKSUM_FAILURES);
                    return Err(NetError::Protocol(detail));
                }
            }
        }
    }

    /// One request round-trip with reconnect-and-resubmit on transient
    /// failures. Returns the reply frame of `want` kind.
    fn request(&mut self, frame: &Frame, want: FrameKind) -> Result<Frame, NetError> {
        let mut last = "no attempt made".to_string();
        for attempt in 0..=self.config.request_retries {
            if attempt > 0 {
                self.note_retry();
                std::thread::sleep(backoff_for(self.config.backoff, attempt - 1));
            }
            if let Err(e) = self.ensure_conn() {
                last = e.to_string();
                continue;
            }
            let sent = self.write_frame(frame);
            if let Err(e) = sent {
                self.conn = None;
                last = e.to_string();
                continue;
            }
            match self.read_reply() {
                Ok(reply) if reply.kind == want => return Ok(reply),
                Ok(reply) if reply.kind == FrameKind::Error => {
                    let err = error_frame_to_net_error(&reply)?;
                    if err.is_transient() {
                        last = err.to_string();
                        continue;
                    }
                    return Err(err);
                }
                Ok(reply) => {
                    return Err(NetError::Protocol(format!(
                        "expected {want:?}, got {:?}",
                        reply.kind
                    )))
                }
                Err(e @ (NetError::Disconnected | NetError::Io(_))) => {
                    // The connection died with the request possibly
                    // journaled server-side; reconnect and resubmit —
                    // same job id resumes instead of redoing.
                    self.conn = None;
                    last = e.to_string();
                }
                Err(e) => return Err(e),
            }
        }
        Err(NetError::RetriesExhausted {
            attempts: self.config.request_retries + 1,
            last,
        })
    }

    /// Runs one inference request.
    ///
    /// # Errors
    ///
    /// A non-retryable [`NetError::Server`] refusal, or
    /// [`NetError::RetriesExhausted`] after transient failures.
    pub fn infer(&mut self, design: &str, deadline_rows: u64) -> Result<InferReply, NetError> {
        let req = InferRequest {
            design: design.to_string(),
            deadline_rows,
        };
        let frame = encode_message(FrameKind::InferRequest, &req);
        let reply = self.request(&frame, FrameKind::InferReply)?;
        decode_message(&reply)
    }

    /// Runs (or resumes) a journaled flow job.
    ///
    /// # Errors
    ///
    /// As [`NetClient::infer`].
    pub fn flow(&mut self, req: &FlowRequest) -> Result<FlowReply, NetError> {
        let frame = encode_message(FrameKind::FlowRequest, req);
        let reply = self.request(&frame, FrameKind::FlowReply)?;
        decode_message(&reply)
    }

    /// Asks the server to begin a graceful drain.
    ///
    /// # Errors
    ///
    /// As [`NetClient::infer`].
    pub fn drain(&mut self) -> Result<DrainAck, NetError> {
        let frame = encode_message(FrameKind::Drain, &DrainAck { pending: 0 });
        let reply = self.request(&frame, FrameKind::DrainAck)?;
        decode_message(&reply)
    }
}

/// Decodes an error frame into [`NetError::Server`].
///
/// # Errors
///
/// [`NetError::Protocol`] if the error frame itself is malformed.
fn error_frame_to_net_error(frame: &Frame) -> Result<NetError, NetError> {
    let e: ErrorReply = decode_message(frame)?;
    Ok(NetError::Server {
        code: e.code,
        message: e.message,
        retryable: e.retryable,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_saturates() {
        let base = Duration::from_millis(10);
        assert_eq!(backoff_for(base, 0), Duration::from_millis(10));
        assert_eq!(backoff_for(base, 1), Duration::from_millis(20));
        assert_eq!(backoff_for(base, 3), Duration::from_millis(80));
        assert!(backoff_for(base, 100) <= Duration::from_millis(10 * 256));
    }

    #[test]
    fn connect_to_nothing_exhausts_retries() {
        let cfg = ClientConfig {
            connect_attempts: 2,
            backoff: Duration::from_millis(1),
            ..ClientConfig::default()
        };
        let err = NetClient::connect(Dialer::Tcp("127.0.0.1:1".to_string()), cfg).unwrap_err();
        match err {
            NetError::RetriesExhausted { attempts, .. } => assert_eq!(attempts, 2),
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }
}
