//! Protocol message bodies: the JSON payloads carried inside
//! [`crate::frame::Frame`]s, plus their (de)serialisation helpers.
//!
//! Probabilities and outcomes never cross the wire raw: replies carry
//! counts plus an FNV-1a checksum of the full server-side answer, so a
//! client can assert bit-identity (e.g. a resumed flow job against its
//! uninterrupted reference) without shipping megabytes of floats.
//! Deadlines travel as embedding-row units with `0` meaning "none", and
//! the flow threshold as milli-units — the wire stays float-free, so
//! equality is exact.

use serde::{Deserialize, Serialize};

use crate::error::NetError;
use crate::frame::{Frame, FrameKind};

/// Client's opening handshake.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hello {
    /// The protocol version the client speaks.
    pub version: u32,
}

/// Server's handshake acknowledgement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HelloAck {
    /// The protocol version the server speaks.
    pub version: u32,
    /// Shards behind this endpoint.
    pub shards: u32,
}

/// An inference request: the design travels in the netlist text format.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferRequest {
    /// The design, as written by `gcnt_netlist::format::write`.
    pub design: String,
    /// Deadline in embedding-row units; `0` = no deadline.
    pub deadline_rows: u64,
}

/// Answer to an [`InferRequest`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferReply {
    /// Nodes at or above the serving threshold.
    pub positives: u64,
    /// The degradation-ladder rung that answered (`Rung::as_str`).
    pub rung: String,
    /// Rungs abandoned under pressure on the way down.
    pub dropped: u64,
    /// Embedding-row units of work spent.
    pub spent: u64,
    /// Rows restored warm from the page store.
    pub warm_rows: u64,
    /// The shard that served the request.
    pub shard: u32,
    /// Length of the (unshipped) probability vector.
    pub probs_len: u64,
    /// FNV-1a checksum over the probability vector's exact bytes —
    /// enough to assert bit-identity across servers and restarts.
    pub probs_checksum: String,
}

/// A journaled flow-job request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRequest {
    /// The **original, pre-flow** design (resume replays against it).
    pub design: String,
    /// Caller-chosen job id; resubmitting the same id resumes the same
    /// per-shard journal instead of redoing work.
    pub job_id: String,
    /// `FlowConfig::max_iterations`.
    pub max_iterations: u64,
    /// `FlowConfig::ops_per_iteration`.
    pub ops_per_iteration: u64,
    /// `FlowConfig::prob_threshold` in milli-units (50 = 0.05).
    pub prob_threshold_milli: u64,
    /// Deadline in embedding-row units; `0` = no deadline.
    pub deadline_rows: u64,
}

/// Answer to a [`FlowRequest`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowReply {
    /// Observation points inserted.
    pub inserted: u64,
    /// Prediction/insert iterations run (journal replays included).
    pub iterations: u64,
    /// Batches replayed from the shard's journal before new work.
    pub resumed_batches: u64,
    /// Journal records when the job finished.
    pub journal_records: u64,
    /// Whether recovery discarded a torn final record.
    pub recovered_torn_tail: bool,
    /// The shard that ran the job.
    pub shard: u32,
    /// FNV-1a checksum over outcome JSON + post-flow design text — the
    /// same digest `gcnt serve --self-test` prints, so "bit-identical
    /// resume" is a string comparison.
    pub outcome_checksum: String,
}

/// Machine-readable refusal classes carried by error frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// Admission control rejected: the shard's queue is full.
    Overloaded,
    /// The request's deadline cannot be met.
    Deadline,
    /// The frame failed envelope verification (`NT001`).
    BadFrame,
    /// The peer's protocol version is unsupported (`NT002`).
    VersionMismatch,
    /// The server is draining and admits no new work.
    Draining,
    /// The shard's reload circuit breaker is open.
    BreakerOpen,
    /// The request body itself is malformed (unparseable design, bad
    /// JSON).
    BadRequest,
    /// An internal serving failure.
    Internal,
}

impl ErrorCode {
    /// Stable lower-case name (report lines, logs).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Deadline => "deadline",
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::VersionMismatch => "version-mismatch",
            ErrorCode::Draining => "draining",
            ErrorCode::BreakerOpen => "breaker-open",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A typed refusal: what went wrong and whether retrying can help.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorReply {
    /// Refusal class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// Whether the client should back off and retry.
    pub retryable: bool,
}

/// Drain acknowledgement: what was in flight when draining began.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrainAck {
    /// Requests still pending across every shard queue at the ack.
    pub pending: u64,
}

/// Encodes a message into a frame of the given kind. Serialisation of
/// these derive-backed bodies cannot fail; if it ever did, the empty
/// payload is refused as a typed protocol error on the other side
/// rather than trusted.
pub fn encode_message<T: Serialize>(kind: FrameKind, msg: &T) -> Frame {
    let body = serde_json::to_string(msg).unwrap_or_default();
    Frame::new(kind, body.into_bytes())
}

/// Decodes a frame payload into a message.
///
/// # Errors
///
/// [`NetError::Protocol`] if the payload is not the expected JSON shape.
pub fn decode_message<T: Deserialize>(frame: &Frame) -> Result<T, NetError> {
    let text = std::str::from_utf8(&frame.payload)
        .map_err(|e| NetError::Protocol(format!("frame payload is not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| NetError::Protocol(format!("bad message body: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{decode, ReadOutcome};

    #[test]
    fn messages_round_trip_through_frames() {
        let req = FlowRequest {
            design: "INPUT(n0)\n".to_string(),
            job_id: "job-7".to_string(),
            max_iterations: 5,
            ops_per_iteration: 2,
            prob_threshold_milli: 50,
            deadline_rows: 0,
        };
        let frame = encode_message(FrameKind::FlowRequest, &req);
        let Ok(ReadOutcome::Frame(wire)) = decode(&frame.encode()) else {
            panic!("clean frame decodes");
        };
        let back: FlowRequest = decode_message(&wire).expect("round trip");
        assert_eq!(back, req);
    }

    #[test]
    fn error_codes_have_stable_names() {
        assert_eq!(ErrorCode::Overloaded.as_str(), "overloaded");
        assert_eq!(ErrorCode::VersionMismatch.as_str(), "version-mismatch");
        let reply = ErrorReply {
            code: ErrorCode::Draining,
            message: "shutting down".to_string(),
            retryable: false,
        };
        let frame = encode_message(FrameKind::Error, &reply);
        let back: ErrorReply = decode_message(&frame).expect("round trip");
        assert_eq!(back, reply);
    }

    #[test]
    fn garbage_payload_is_a_protocol_error() {
        let frame = Frame::new(FrameKind::InferReply, b"not json".to_vec());
        assert!(matches!(
            decode_message::<InferReply>(&frame),
            Err(NetError::Protocol(_))
        ));
    }
}
