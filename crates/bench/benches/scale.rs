//! The scaling story (§3.4.2): one full embedding pass at the paper's
//! 10^5-node design class, serial CSR vs the partition-parallel sharded
//! backend. The two are bit-identical by construction, so this group
//! measures pure kernel/backends cost — gated by `BENCH_baseline.json`
//! through `scripts/bench_gate.sh`.
//!
//! On a single-core host the partitioned backend degenerates to one
//! worker and measures sharding overhead (halo gather + arena layout);
//! the scaling win needs cores. EXPERIMENTS.md records both honestly.

use criterion::{criterion_group, criterion_main, Criterion};

use gcnt_core::{Gcn, GcnConfig, GraphData, MatrixBackend};
use gcnt_netlist::{generate, DesignPreset};
use gcnt_nn::seeded_rng;

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    let net = generate(&DesignPreset::B1.config(100_000));
    let data = GraphData::from_netlist(&net, None).expect("generated design featurises");
    let model = Gcn::new(&GcnConfig::default(), &mut seeded_rng(7));
    group.bench_function("embed_100k_serial", |b| {
        let mut backend = MatrixBackend::serial();
        b.iter(|| {
            model
                .embed_with(&data.tensors, &data.features, &mut backend)
                .expect("shapes agree")
        })
    });
    group.bench_function("embed_100k_partitioned", |b| {
        let mut backend =
            MatrixBackend::partitioned(&data.tensors, 4).expect("design shards cleanly");
        b.iter(|| {
            model
                .embed_with(&data.tensors, &data.features, &mut backend)
                .expect("shapes agree")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
