//! Serving-layer micro-benches: the cost of robustness. Journal appends
//! (with their per-record fsync), crash recovery of a populated journal,
//! and the degradation ladder at each of its three rungs.

use std::sync::atomic::{AtomicUsize, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};

use gcnt_core::{Gcn, GcnConfig, GraphData, MultiStageGcn};
use gcnt_dft::flow::{BatchRecord, FlowConfig, InferenceStats};
use gcnt_netlist::{generate, GeneratorConfig};
use gcnt_serve::{classify_with_ladder, FlowJournal, JournalHeader};
use gcnt_tensor::Budget;

fn scratch_wal() -> std::path::PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gcnt-bench-serve-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join("bench.wal")
}

fn sample_record(seq: usize) -> BatchRecord {
    BatchRecord {
        iteration: seq,
        positives: 64usize.saturating_sub(seq),
        inserted: Vec::new(),
        skipped: Vec::new(),
        converged: false,
        stats_after: InferenceStats {
            rows_computed: seq as u64 * 100,
            rows_full: seq as u64 * 400,
            inferences: seq as u64,
        },
    }
}

fn bench_journal(c: &mut Criterion) {
    let net = generate(&GeneratorConfig::sized("wal", 3, 200));
    let cfg = FlowConfig::default();
    let header = JournalHeader::describe(&net, &cfg).expect("flow config serializes");

    let mut group = c.benchmark_group("serve_journal");
    group.sample_size(10);
    group.bench_function("append_fsync", |b| {
        let path = scratch_wal();
        let mut journal = FlowJournal::open(&path, &header)
            .expect("fresh journal")
            .journal;
        let mut seq = 0usize;
        b.iter(|| {
            journal.append(&sample_record(seq)).expect("appends");
            seq += 1;
        });
    });
    group.bench_function("recover_64_records", |b| {
        let path = scratch_wal();
        let mut journal = FlowJournal::open(&path, &header)
            .expect("fresh journal")
            .journal;
        for seq in 0..64 {
            journal.append(&sample_record(seq)).expect("appends");
        }
        drop(journal);
        b.iter(|| {
            let recovered = FlowJournal::open(&path, &header).expect("recovers");
            assert_eq!(recovered.records.len(), 64);
        });
    });
    group.finish();
}

fn bench_ladder(c: &mut Criterion) {
    let net = generate(&GeneratorConfig::sized("ladder", 9, 400));
    let data = GraphData::from_netlist(&net, None).expect("acyclic");
    let gcn_cfg = GcnConfig {
        embed_dims: vec![32, 32],
        fc_dims: vec![32],
        ..GcnConfig::default()
    };
    let model = MultiStageGcn::from_stages(
        vec![
            Gcn::new(&gcn_cfg, &mut gcnt_nn::seeded_rng(5)),
            Gcn::new(&gcn_cfg, &mut gcnt_nn::seeded_rng(6)),
        ],
        0.5,
    );

    let mut group = c.benchmark_group("serve_ladder");
    group.sample_size(10);
    // Each scenario pins the ladder to one rung: no pressure stays on
    // top, a poisoned cache lands on full-sparse, and a starvation budget
    // falls through to the unbudgeted first-stage floor.
    for (name, cap, poison) in [
        ("incremental", u64::MAX, false),
        ("full_sparse", u64::MAX, true),
        ("first_stage", 1, false),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let budget = Budget::with_cap(cap);
                classify_with_ladder(&model, &data.tensors, &data.features, &budget, poison)
                    .expect("ladder completes")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_journal, bench_ladder);
criterion_main!(benches);
