//! Criterion bench for §3.4.2: per-epoch training cost, serial multi-graph
//! loop vs the crossbeam data-parallel scheme (one worker per graph).
//!
//! On a single-core host the two are expected to tie (the parallel scheme
//! is a scheduling change, not an algorithmic one — the test suite asserts
//! they produce bit-identical models); on a multi-core host the parallel
//! variant approaches a `#graphs`-fold speedup.

use criterion::{criterion_group, criterion_main, Criterion};

use gcnt_core::parallel::train_parallel;
use gcnt_core::train::{train, TrainConfig};
use gcnt_core::{Gcn, GcnConfig, GraphData};
use gcnt_netlist::{generate, GeneratorConfig, Scoap};
use gcnt_nn::seeded_rng;

fn labeled(seed: u64, nodes: usize) -> GraphData {
    let net = generate(&GeneratorConfig::sized("t", seed, nodes));
    let scoap = Scoap::compute(&net).expect("acyclic");
    let mut cos: Vec<u32> = net.nodes().map(|v| scoap.co(v)).collect();
    cos.sort_unstable();
    let thresh = cos[cos.len() * 95 / 100].max(1);
    let labels = net
        .nodes()
        .map(|v| u8::from(scoap.co(v) >= thresh))
        .collect();
    GraphData::from_netlist(&net, None)
        .expect("acyclic")
        .with_labels(labels)
}

fn bench_training(c: &mut Criterion) {
    let graphs: Vec<GraphData> = (0..3).map(|i| labeled(100 + i, 2_000)).collect();
    let refs: Vec<&GraphData> = graphs.iter().collect();
    let masks: Vec<Vec<usize>> = graphs
        .iter()
        .map(|g| (0..g.node_count()).step_by(4).collect())
        .collect();
    let cfg = TrainConfig {
        epochs: 1,
        lr: 0.05,
        pos_weight: 4.0,
        momentum: 0.0,
    };

    let mut group = c.benchmark_group("training_epoch");
    group.sample_size(10);
    group.bench_function("serial_3_graphs", |b| {
        b.iter(|| {
            let mut gcn = Gcn::new(&GcnConfig::with_depth(2), &mut seeded_rng(7));
            train(&mut gcn, &refs, &masks, &cfg).expect("shapes agree")
        })
    });
    group.bench_function("parallel_3_graphs", |b| {
        b.iter(|| {
            let mut gcn = Gcn::new(&GcnConfig::with_depth(2), &mut seeded_rng(7));
            train_parallel(&mut gcn, &refs, &masks, &cfg).expect("shapes agree")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
