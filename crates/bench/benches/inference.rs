//! Criterion bench for Fig. 10: matrix-form inference vs recursion-based
//! inference at several graph sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use gcnt_core::{recursive, Gcn, GcnConfig, GraphData};
use gcnt_netlist::{generate, GeneratorConfig};
use gcnt_nn::seeded_rng;

fn bench_inference(c: &mut Criterion) {
    let gcn = Gcn::new(&GcnConfig::default(), &mut seeded_rng(1));
    let mut group = c.benchmark_group("inference");
    group.sample_size(10);
    for &size in &[1_000usize, 10_000] {
        let net = generate(&GeneratorConfig::sized("bench", 3, size));
        let data = GraphData::from_netlist(&net, None).expect("acyclic");
        let n = data.node_count();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("matrix_form", n), &data, |b, data| {
            b.iter(|| {
                gcn.predict(&data.tensors, &data.features)
                    .expect("shapes agree")
            })
        });
        // Recursion over a fixed sample so the bench stays tractable; the
        // per-node throughput is the comparable quantity.
        let sample: Vec<usize> = (0..n).step_by((n / 100).max(1)).collect();
        group.throughput(Throughput::Elements(sample.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("recursion_per_100_nodes", n),
            &data,
            |b, data| {
                b.iter(|| {
                    recursive::predict_nodes_unmemoized(
                        &gcn,
                        &data.tensors,
                        &data.features,
                        &sample,
                    )
                    .expect("shapes agree")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
