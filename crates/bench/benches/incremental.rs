//! Incremental inference micro-bench: a full forward embed versus a
//! dirty-halo session refresh (plus its revert, the preview round-trip the
//! flow's impact scoring performs per candidate).

use criterion::{criterion_group, criterion_main, Criterion};

use gcnt_core::{CascadeSession, Gcn, GcnConfig, GraphData};
use gcnt_netlist::{generate, GeneratorConfig};

fn bench_incremental(c: &mut Criterion) {
    let net = generate(&GeneratorConfig::sized("x", 9, 400));
    let data = GraphData::from_netlist(&net, None).expect("acyclic");
    let gcn = Gcn::new(
        &GcnConfig {
            embed_dims: vec![32, 32],
            fc_dims: vec![32],
            ..GcnConfig::default()
        },
        &mut gcnt_nn::seeded_rng(9),
    );
    let n = data.tensors.node_count();
    let dirty: Vec<usize> = (0..8).map(|i| i * 37 % n).collect();

    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    group.bench_function("full_embed", |b| {
        b.iter(|| gcn.embed(&data.tensors, &data.features).expect("embeds"))
    });
    let mut session =
        CascadeSession::for_gcn(&gcn, &data.tensors, &data.features).expect("session opens");
    group.bench_function("halo_refresh_and_revert", |b| {
        b.iter(|| {
            let delta = session
                .refresh(&data.tensors, &data.features, &dirty)
                .expect("refreshes");
            session.revert(delta);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
