//! Flow bench (Table 3 cost model): one iteration of the GCN-guided
//! OP-insertion flow, dominated by impact evaluation, plus the baseline
//! testability-analysis round it replaces, plus a full-vs-incremental
//! impact-mode comparison on a real GCN classifier.

use criterion::{criterion_group, criterion_main, Criterion};

use gcnt_core::features::FeatureNormalizer;
use gcnt_core::{Gcn, GcnConfig, GraphData};
use gcnt_dft::baseline::{testability_opi, BaselineConfig};
use gcnt_dft::flow::{run_gcn_opi, FlowConfig, ImpactMode};
use gcnt_dft::labeler::LabelConfig;
use gcnt_netlist::{generate, GeneratorConfig, Netlist};
use gcnt_tensor::Matrix;

/// `GCNT_BENCH_SABOTAGE=1` doubles the flow work per measured iteration.
/// It exists solely to verify the CI bench gate end to end: a run with the
/// variable set must trip the >25% median-regression check. Never set it
/// when recording a baseline.
fn sabotage_factor() -> u32 {
    match std::env::var("GCNT_BENCH_SABOTAGE") {
        Ok(v) if v == "1" => 2,
        _ => 1,
    }
}

fn bench_flow(c: &mut Criterion) {
    let net = generate(&GeneratorConfig::sized("flow", 13, 2_000));
    let raw = gcnt_core::features::raw_features_of(&net).expect("acyclic");
    let normalizer = FeatureNormalizer::fit(&[&raw]);
    let sabotage = sabotage_factor();

    let mut group = c.benchmark_group("flow");
    group.sample_size(10);
    group.bench_function("gcn_opi_one_iteration", |b| {
        b.iter_batched(
            || net.clone(),
            |mut net2| {
                // Oracle classifier: flags high normalised observability.
                let oracle = |_t: &gcnt_core::GraphTensors, f: &Matrix| {
                    Ok((0..f.rows())
                        .map(|r| if f.get(r, 3) > 2.0 { 0.9 } else { 0.1 })
                        .collect())
                };
                let cfg = FlowConfig {
                    max_iterations: 1,
                    ..FlowConfig::default()
                };
                for _ in 1..sabotage {
                    run_gcn_opi(&mut net.clone(), &normalizer, oracle, &cfg).expect("flow runs");
                }
                run_gcn_opi(&mut net2, &normalizer, oracle, &cfg).expect("flow runs")
            },
            criterion::BatchSize::LargeInput,
        )
    });
    // The same measured body with the metrics registry switched on, so
    // every bench run shows both sides of the observability cost story:
    // `gcn_opi_one_iteration` (registry disabled — the production default,
    // every record path a relaxed load + branch) next to this one (full
    // recording). The disabled-path ≤2% acceptance bound is checked
    // against `gcn_opi_one_iteration`.
    group.bench_function("gcn_opi_metrics_enabled", |b| {
        b.iter_batched(
            || net.clone(),
            |mut net2| {
                let oracle = |_t: &gcnt_core::GraphTensors, f: &Matrix| {
                    Ok((0..f.rows())
                        .map(|r| if f.get(r, 3) > 2.0 { 0.9 } else { 0.1 })
                        .collect())
                };
                let cfg = FlowConfig {
                    max_iterations: 1,
                    ..FlowConfig::default()
                };
                gcnt_obs::global().enable();
                let out = run_gcn_opi(&mut net2, &normalizer, oracle, &cfg).expect("flow runs");
                gcnt_obs::global().disable();
                out
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("baseline_one_round", |b| {
        b.iter_batched(
            || net.clone(),
            |mut net2| {
                let cfg = BaselineConfig {
                    label: LabelConfig {
                        patterns: 1_024,
                        ..LabelConfig::default()
                    },
                    max_iterations: 1,
                    ..Default::default()
                };
                testability_opi(&mut net2, &cfg).expect("baseline runs")
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// The seeded reference design for the impact-mode comparison: 9 levels,
/// 400 nodes (see EXPERIMENTS.md / BENCH_flow.json).
fn reference_design() -> (Netlist, GraphData, Gcn) {
    let net = generate(&GeneratorConfig::sized("x", 9, 400));
    let data = GraphData::from_netlist(&net, None).expect("acyclic");
    let gcn = Gcn::new(
        &GcnConfig {
            embed_dims: vec![32, 32],
            fc_dims: vec![32],
            ..GcnConfig::default()
        },
        &mut gcnt_nn::seeded_rng(9),
    );
    (net, data, gcn)
}

fn mode_cfg(mode: ImpactMode) -> FlowConfig {
    FlowConfig {
        max_iterations: 2,
        ops_per_iteration: 4,
        impact_mode: mode,
        ..FlowConfig::default()
    }
}

fn bench_impact_modes(c: &mut Criterion) {
    let (net, data, gcn) = reference_design();

    // One-shot work accounting: the two modes are bit-identical in outcome,
    // so the embedding-row counts are the honest comparison.
    let full = run_gcn_opi(
        &mut net.clone(),
        &data.normalizer,
        &gcn,
        &mode_cfg(ImpactMode::Full),
    )
    .expect("flow runs");
    let inc = run_gcn_opi(
        &mut net.clone(),
        &data.normalizer,
        &gcn,
        &mode_cfg(ImpactMode::Incremental),
    )
    .expect("flow runs");
    assert_eq!(full.inserted, inc.inserted, "modes must agree bit-for-bit");
    println!(
        "flow/impact_modes: embedding rows full {} vs incremental {} ({:.1}x fewer), \
         {} inferences over {} iterations",
        full.inference.rows_computed,
        inc.inference.rows_computed,
        full.inference.rows_computed as f64 / inc.inference.rows_computed.max(1) as f64,
        inc.inference.inferences,
        inc.history.len(),
    );

    let mut group = c.benchmark_group("flow");
    group.sample_size(10);
    for (name, mode) in [
        ("impact_full", ImpactMode::Full),
        ("impact_incremental", ImpactMode::Incremental),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || net.clone(),
                |mut net2| {
                    run_gcn_opi(&mut net2, &data.normalizer, &gcn, &mode_cfg(mode))
                        .expect("flow runs")
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flow, bench_impact_modes);
criterion_main!(benches);
