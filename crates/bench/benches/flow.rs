//! Flow bench (Table 3 cost model): one iteration of the GCN-guided
//! OP-insertion flow, dominated by impact evaluation, plus the baseline
//! testability-analysis round it replaces.

use criterion::{criterion_group, criterion_main, Criterion};

use gcnt_core::features::FeatureNormalizer;
use gcnt_dft::baseline::{testability_opi, BaselineConfig};
use gcnt_dft::flow::{run_gcn_opi, FlowConfig};
use gcnt_dft::labeler::LabelConfig;
use gcnt_netlist::{generate, GeneratorConfig};
use gcnt_tensor::Matrix;

fn bench_flow(c: &mut Criterion) {
    let net = generate(&GeneratorConfig::sized("flow", 13, 2_000));
    let raw = gcnt_core::features::raw_features_of(&net).expect("acyclic");
    let normalizer = FeatureNormalizer::fit(&[&raw]);

    let mut group = c.benchmark_group("flow");
    group.sample_size(10);
    group.bench_function("gcn_opi_one_iteration", |b| {
        b.iter_batched(
            || net.clone(),
            |mut net2| {
                // Oracle classifier: flags high normalised observability.
                let oracle = |_t: &gcnt_core::GraphTensors, f: &Matrix| {
                    Ok((0..f.rows())
                        .map(|r| if f.get(r, 3) > 2.0 { 0.9 } else { 0.1 })
                        .collect())
                };
                let cfg = FlowConfig {
                    max_iterations: 1,
                    ..FlowConfig::default()
                };
                run_gcn_opi(&mut net2, &normalizer, oracle, &cfg).expect("flow runs")
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("baseline_one_round", |b| {
        b.iter_batched(
            || net.clone(),
            |mut net2| {
                let cfg = BaselineConfig {
                    label: LabelConfig {
                        patterns: 1_024,
                        ..LabelConfig::default()
                    },
                    max_iterations: 1,
                    ..Default::default()
                };
                testability_opi(&mut net2, &cfg).expect("baseline runs")
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
