//! Substrate bench: parallel-pattern simulation + critical path tracing —
//! the engines behind the labeler and the ATPG (Table 1 labels, Table 3
//! grading).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use gcnt_dft::cpt::sensitivity;
use gcnt_dft::sim::PatternSim;
use gcnt_netlist::{generate, GeneratorConfig};
use gcnt_nn::seeded_rng;

fn bench_faultsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("faultsim");
    group.sample_size(20);
    for &size in &[5_000usize, 50_000] {
        let net = generate(&GeneratorConfig::sized("sim", 7, size));
        let sim = PatternSim::new(&net).expect("acyclic");
        // 64 patterns per batch.
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("simulate_64", size), &(), |b, ()| {
            let mut rng = seeded_rng(1);
            b.iter(|| sim.simulate_random(&mut rng))
        });
        let values = sim.simulate_random(&mut seeded_rng(2));
        group.bench_with_input(BenchmarkId::new("cpt_64", size), &(), |b, ()| {
            b.iter(|| sensitivity(&sim, &values))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_faultsim);
criterion_main!(benches);
