//! Sparse-kernel ablation (§3.4.1): CSR spmm (the production kernel behind
//! matrix-form inference) vs the naive per-element reference traversal.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use gcnt_core::GraphTensors;
use gcnt_netlist::{generate, GeneratorConfig};
use gcnt_tensor::Matrix;

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    group.sample_size(20);
    for &size in &[5_000usize, 50_000] {
        let net = generate(&GeneratorConfig::sized("spmm", 9, size));
        let t = GraphTensors::from_netlist(&net);
        let n = t.node_count();
        let x = Matrix::from_fn(n, 64, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.1);
        group.throughput(Throughput::Elements(t.edge_count() as u64));
        group.bench_with_input(BenchmarkId::new("csr", n), &(), |b, ()| {
            b.iter(|| t.pred().spmm(&x).expect("shapes agree"))
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &(), |b, ()| {
            b.iter(|| t.pred().spmm_reference(&x).expect("shapes agree"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spmm);
criterion_main!(benches);
