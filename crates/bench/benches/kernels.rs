//! Kernel micro-benches: the scalar reference row kernels against the
//! register-blocked ones, at the two embedding widths the model actually
//! uses (32 and 64). SpMM runs over a realistic netlist adjacency; GEMM
//! over the dense embed-layer shapes. Every name is a literal so the
//! `kernels/*` group is fully covered by `BENCH_baseline.json` (SA602).

use criterion::{criterion_group, criterion_main, Criterion};

use gcnt_core::GraphData;
use gcnt_netlist::{generate, GeneratorConfig};
use gcnt_tensor::{KernelPolicy, Matrix};

/// Deterministic pseudo-random dense matrix (no RNG dependency needed —
/// the values only have to be non-trivial and reproducible).
fn dense(rows: usize, cols: usize) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
        *v = ((i * 2_654_435_761) % 1000) as f32 * 0.002 - 1.0;
    }
    m
}

fn bench_kernels(c: &mut Criterion) {
    let net = generate(&GeneratorConfig::sized("k", 11, 4_000));
    let data = GraphData::from_netlist(&net, None).expect("acyclic");
    let adj = data.tensors.pred();
    let n = adj.rows();

    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);

    let e32 = dense(n, 32);
    group.bench_function("spmm_d32_scalar", |b| {
        b.iter(|| {
            adj.spmm_with_kernel(&e32, KernelPolicy::Scalar)
                .expect("spmm")
        })
    });
    group.bench_function("spmm_d32_blocked", |b| {
        b.iter(|| {
            adj.spmm_with_kernel(&e32, KernelPolicy::Blocked)
                .expect("spmm")
        })
    });

    let e64 = dense(n, 64);
    group.bench_function("spmm_d64_scalar", |b| {
        b.iter(|| {
            adj.spmm_with_kernel(&e64, KernelPolicy::Scalar)
                .expect("spmm")
        })
    });
    group.bench_function("spmm_d64_blocked", |b| {
        b.iter(|| {
            adj.spmm_with_kernel(&e64, KernelPolicy::Blocked)
                .expect("spmm")
        })
    });

    // The embed loop's dense step: aggregated activations × layer weights.
    let g32 = dense(n, 32);
    let w32 = dense(32, 32);
    group.bench_function("gemm_d32_scalar", |b| {
        b.iter(|| {
            g32.matmul_with_kernel(&w32, KernelPolicy::Scalar)
                .expect("matmul")
        })
    });
    group.bench_function("gemm_d32_blocked", |b| {
        b.iter(|| {
            g32.matmul_with_kernel(&w32, KernelPolicy::Blocked)
                .expect("matmul")
        })
    });

    let g64 = dense(n, 64);
    let w64 = dense(64, 64);
    group.bench_function("gemm_d64_scalar", |b| {
        b.iter(|| {
            g64.matmul_with_kernel(&w64, KernelPolicy::Scalar)
                .expect("matmul")
        })
    });
    group.bench_function("gemm_d64_blocked", |b| {
        b.iter(|| {
            g64.matmul_with_kernel(&w64, KernelPolicy::Blocked)
                .expect("matmul")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
