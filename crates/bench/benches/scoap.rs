//! Substrate bench: full SCOAP computation vs the incremental
//! observability refresh after one observation-point insertion (§4 claims
//! the incremental update is what keeps the iterative flow cheap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gcnt_netlist::{generate, GeneratorConfig, Scoap};

fn bench_scoap(c: &mut Criterion) {
    let mut group = c.benchmark_group("scoap");
    group.sample_size(20);
    for &size in &[5_000usize, 50_000] {
        let net = generate(&GeneratorConfig::sized("scoap", 5, size));
        group.bench_with_input(BenchmarkId::new("full_compute", size), &(), |b, ()| {
            b.iter(|| Scoap::compute(&net).expect("acyclic"))
        });

        // Incremental: insert an OP at a deep node and refresh.
        let scoap = Scoap::compute(&net).expect("acyclic");
        let target = net
            .nodes()
            .max_by_key(|&v| {
                if net.kind(v).is_pseudo_output() {
                    0
                } else {
                    scoap.co(v)
                }
            })
            .expect("non-empty netlist");
        group.bench_with_input(
            BenchmarkId::new("incremental_observe", size),
            &(),
            |b, ()| {
                b.iter_batched(
                    || (net.clone(), scoap.clone()),
                    |(mut net2, mut scoap2)| {
                        let op = net2
                            .insert_observation_point(target)
                            .expect("target is not an output");
                        scoap2.observe(&net2, target, op)
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(BenchmarkId::new("preview_observe", size), &(), |b, ()| {
            b.iter(|| scoap.preview_observe(&net, target))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scoap);
criterion_main!(benches);
