//! Shared plumbing for the experiment binaries that regenerate every
//! table and figure of the paper's evaluation (§5).
//!
//! Each binary accepts `--nodes N` (design scale), `--epochs N`,
//! `--seed N` and `--out PATH` where applicable; defaults are sized so the
//! whole suite completes in minutes on a single core. The paper's
//! 1.4M-node scale is reachable by passing `--nodes 1400000`.

use std::collections::HashMap;

use serde::Serialize;

use gcnt_core::features::FeatureNormalizer;
use gcnt_core::GraphData;
use gcnt_dft::labeler::{label_difficult_to_observe, LabelConfig, LabelResult};
use gcnt_netlist::{generate, DesignPreset, Netlist};

/// Tiny `--key value` argument parser (no external CLI dependency).
///
/// # Examples
///
/// ```
/// use gcnt_bench::Args;
///
/// let args = Args::from_tokens(["--nodes", "5000", "--fast"]);
/// assert_eq!(args.get_usize("nodes", 100), 5000);
/// assert!(args.get_flag("fast"));
/// assert_eq!(args.get_usize("epochs", 42), 42);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process arguments (skipping `argv[0]`).
    pub fn parse() -> Self {
        Args::from_tokens(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (for tests).
    pub fn from_tokens<I, S>(iter: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let tokens: Vec<String> = iter.into_iter().map(Into::into).collect();
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let token = &tokens[i];
            if let Some(key) = token.strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    values.insert(key.to_string(), tokens[i + 1].clone());
                    i += 2;
                    continue;
                }
                flags.push(key.to_string());
            }
            i += 1;
        }
        Args { values, flags }
    }

    /// Integer option with default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Float option with default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// String option with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Boolean flag presence.
    pub fn get_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// One prepared benchmark design: netlist + labels + model-ready data.
pub struct PreparedDesign {
    /// The generated netlist.
    pub netlist: Netlist,
    /// Labeling result (labels + estimated observabilities).
    pub label_result: LabelResult,
    /// Model-ready tensors/features with labels attached.
    pub data: GraphData,
}

/// Generates and labels the four Table 1 designs at the given node scale,
/// fitting one shared feature normaliser across all of them (they are the
/// *training universe*; callers doing train/test rotation should refit on
/// the training subset via [`refit_normalizer`] for strict inductiveness —
/// the experiments use the rotation helper below).
pub fn prepare_designs(nodes: usize, label_cfg: &LabelConfig) -> Vec<PreparedDesign> {
    let mut designs = Vec::new();
    for preset in DesignPreset::ALL {
        let net = generate(&preset.config(nodes));
        let labels =
            label_difficult_to_observe(&net, label_cfg).expect("generated designs are acyclic");
        let data = GraphData::from_netlist(&net, None)
            .expect("generated designs are acyclic")
            .with_labels(labels.labels.clone());
        designs.push(PreparedDesign {
            netlist: net,
            label_result: labels,
            data,
        });
    }
    designs
}

/// Refits a shared normaliser on the listed (training) designs and
/// re-applies it to every design, so test designs are normalised with
/// training statistics only.
pub fn refit_normalizer(designs: &mut [PreparedDesign], train_idx: &[usize]) {
    let raws: Vec<&gcnt_tensor::Matrix> = train_idx
        .iter()
        .map(|&i| &designs[i].data.raw_features)
        .collect();
    let normalizer = FeatureNormalizer::fit(&raws);
    for d in designs.iter_mut() {
        d.data.features = normalizer.apply(&d.data.raw_features);
        d.data.normalizer = normalizer.clone();
    }
}

/// Writes a serialisable result as pretty JSON under `results/`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if std::fs::write(&path, json).is_ok() {
                println!("(wrote results/{name}.json)");
            }
        }
        Err(e) => eprintln!("failed to serialise {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_pairs_and_flags() {
        let args = Args::from_tokens(["--nodes", "123", "--verbose", "--lr", "0.5"]);
        assert_eq!(args.get_usize("nodes", 0), 123);
        assert!((args.get_f64("lr", 0.0) - 0.5).abs() < 1e-12);
        assert!(args.get_flag("verbose"));
        assert!(!args.get_flag("quiet"));
    }

    #[test]
    fn args_defaults() {
        let args = Args::from_tokens(Vec::<String>::new());
        assert_eq!(args.get_usize("nodes", 77), 77);
        assert_eq!(args.get_str("out", "x"), "x");
    }

    #[test]
    fn prepare_small_designs() {
        let label_cfg = LabelConfig {
            patterns: 512,
            threshold: 0.005,
            seed: 1,
        };
        let designs = prepare_designs(600, &label_cfg);
        assert_eq!(designs.len(), 4);
        for d in &designs {
            assert_eq!(d.data.node_count(), d.netlist.node_count());
            assert_eq!(d.data.labels.len(), d.netlist.node_count());
        }
    }

    #[test]
    fn refit_uses_training_stats_only() {
        let label_cfg = LabelConfig {
            patterns: 256,
            threshold: 0.005,
            seed: 2,
        };
        let mut designs = prepare_designs(500, &label_cfg);
        refit_normalizer(&mut designs, &[0, 1, 2]);
        let shared = designs[0].data.normalizer.clone();
        for d in &designs {
            assert_eq!(d.data.normalizer, shared);
        }
    }
}
