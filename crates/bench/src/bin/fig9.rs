//! Figure 9 — F1-score on the full imbalanced designs: single GCN vs
//! multi-stage GCN (§3.3 / §5).
//!
//! Protocol: three designs train, the fourth tests, the *entire*
//! imbalanced node set is classified; 3 stages; per-stage prediction
//! results combined for the final F1. The paper shows the multi-stage
//! cascade far above the single model on every design.
//!
//! ```text
//! cargo run --release -p gcnt-bench --bin fig9 -- --nodes 3000 --epochs 60
//! ```

use serde::Serialize;

use gcnt_bench::{prepare_designs, refit_normalizer, write_json, Args};
use gcnt_core::metrics::Confusion;
use gcnt_core::{train_test_rotation, GraphData, MultiStageConfig, MultiStageGcn};
use gcnt_dft::labeler::LabelConfig;

#[derive(Serialize)]
struct Fig9Row {
    design: String,
    f1_single: f64,
    f1_multi: f64,
}

fn main() {
    let args = Args::parse();
    let nodes = args.get_usize("nodes", 3_000);
    let epochs = args.get_usize("epochs", 60);

    println!("Figure 9: F1 on imbalanced designs, single vs 3-stage GCN (~{nodes} nodes)\n");
    let mut designs = prepare_designs(nodes, &LabelConfig::default());
    let mut rows = Vec::new();
    for (train_idx, test_idx) in train_test_rotation(4) {
        refit_normalizer(&mut designs, &train_idx);
        let train_refs: Vec<&GraphData> = train_idx.iter().map(|&i| &designs[i].data).collect();

        let multi_cfg = MultiStageConfig {
            stages: 3,
            epochs_per_stage: epochs,
            seed: 0x519 + test_idx as u64,
            ..MultiStageConfig::default()
        };
        let single_cfg = MultiStageConfig {
            stages: 1,
            max_pos_weight: 1.0, // unweighted single model, as in the paper
            ..multi_cfg.clone()
        };

        let (multi, _) = MultiStageGcn::train(&multi_cfg, &train_refs).expect("shapes agree");
        let (single, _) = MultiStageGcn::train(&single_cfg, &train_refs).expect("shapes agree");

        let td = &designs[test_idx].data;
        let labels: Vec<usize> = td.labels.iter().map(|&l| l as usize).collect();
        let f1_of = |model: &MultiStageGcn| {
            let preds: Vec<usize> = model
                .predict(&td.tensors, &td.features)
                .expect("shapes agree")
                .iter()
                .map(|&p| p as usize)
                .collect();
            Confusion::from_predictions(&labels, &preds).f1()
        };
        let row = Fig9Row {
            design: designs[test_idx].netlist.name().to_string(),
            f1_single: f1_of(&single),
            f1_multi: f1_of(&multi),
        };
        println!(
            "{:<6} GCN-S F1 {:.3}   GCN-M F1 {:.3}",
            row.design, row.f1_single, row.f1_multi
        );
        rows.push(row);
    }
    let avg_s = rows.iter().map(|r| r.f1_single).sum::<f64>() / rows.len() as f64;
    let avg_m = rows.iter().map(|r| r.f1_multi).sum::<f64>() / rows.len() as f64;
    println!("\naverage: single {avg_s:.3}, multi-stage {avg_m:.3}");
    println!(
        "paper: multi-stage F1 far above single GCN on all four designs (~0.4-0.6 vs ~0.05-0.2)"
    );
    write_json("fig9", &rows);
}
