//! bench_gate — records and gates the workspace's benchmark trajectory.
//!
//! The criterion shim prints one `BENCH_JSON {...}` line per benchmark.
//! This tool consumes those lines (from files or stdin) in two modes:
//!
//! ```text
//! cargo bench -p gcnt-bench --bench flow | tee flow.log
//! bench_gate record  --out BENCH_baseline.json flow.log ...   # write baseline
//! bench_gate compare --baseline BENCH_baseline.json flow.log  # gate a PR
//! ```
//!
//! `compare` fails (exit 1) when any benchmark's median regresses by more
//! than the tolerance (default 25%, `GCNT_BENCH_TOLERANCE` overrides, in
//! percent) against the committed baseline. Benchmarks present on only one
//! side are reported but never fail the gate — adding or retiring a bench
//! must not require lock-step baseline edits in the same commit.
//!
//! Two noise defenses make a fixed-percent gate workable on shared runners:
//!
//! 1. **Calibration normalization.** The criterion shim measures a fixed
//!    reference workload alongside each benchmark and prints it as a
//!    `BENCH_CALIB` line; every median is divided by the calibration
//!    measured next to it before comparison. A machine that is uniformly
//!    1.5x slower than the baseline recorder scales the calibration by the
//!    same 1.5x, so ratios — and the gate — are unmoved. A regression that
//!    doubles one benchmark's work doubles its ratio and still trips.
//! 2. **Best-of-N repeats.** The wrapper script runs each suite several
//!    times; the repeat with the lowest normalized ratio wins, because
//!    transient load only ever inflates timings.
//!
//! Medians (not means or minima) are the per-run statistic: the shim's 10
//! fixed iterations make the median stable against the one slow outlier
//! iteration that shared CI runners love to produce.

use std::error::Error;
use std::fs;
use std::io::Read;
use std::process::ExitCode;

use serde::{Deserialize, Serialize};

/// One benchmark's recorded timing, as emitted by the criterion shim, plus
/// the calibration figure of the run that produced it (0 when the log
/// carried no `BENCH_CALIB` line — comparison then falls back to raw ns).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchEntry {
    id: String,
    mean_ns: u64,
    median_ns: u64,
    min_ns: u64,
    iters: u64,
    calib_ns: u64,
    /// Per-bench override of the global gate tolerance; 0 means "use the
    /// global value". Edit this in the committed baseline for benches whose
    /// cost is not CPU-bound (fsync latency, for one) and therefore not
    /// tamed by calibration normalization.
    tolerance_percent: u64,
}

impl BenchEntry {
    /// Machine-speed-normalized cost: median divided by the run's
    /// calibration, or raw nanoseconds when no calibration was recorded.
    fn ratio(&self) -> f64 {
        if self.calib_ns == 0 {
            self.median_ns as f64
        } else {
            self.median_ns as f64 / self.calib_ns as f64
        }
    }
}

/// The raw JSON payload of a `BENCH_JSON` line (no calibration yet).
#[derive(Debug, Deserialize)]
struct BenchLine {
    id: String,
    mean_ns: u64,
    median_ns: u64,
    min_ns: u64,
    iters: u64,
}

/// The payload of a `BENCH_CALIB` line.
#[derive(Debug, Deserialize)]
struct CalibLine {
    calib_ns: u64,
}

/// The committed baseline: a sorted list of entries plus provenance.
#[derive(Debug, Serialize, Deserialize)]
struct Baseline {
    version: u32,
    tolerance_percent: u64,
    entries: Vec<BenchEntry>,
}

const BASELINE_VERSION: u32 = 1;
const DEFAULT_TOLERANCE_PERCENT: u64 = 25;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(ok) => {
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<bool, Box<dyn Error>> {
    let Some(mode) = args.first() else {
        return Err(usage().into());
    };
    match mode.as_str() {
        "record" => {
            let (out, inputs) = take_opt(&args[1..], "--out")?;
            let out = out.ok_or("record: --out PATH is required")?;
            let mut entries = read_entries(&inputs)?;
            if entries.is_empty() {
                return Err("record: no BENCH_JSON lines found in the input".into());
            }
            // Re-recording over an existing baseline keeps any hand-edited
            // per-entry tolerance overrides.
            if let Ok(text) = fs::read_to_string(&out) {
                if let Ok(prior) = serde_json::from_str::<Baseline>(&text) {
                    for entry in &mut entries {
                        if let Some(old) = prior.entries.iter().find(|e| e.id == entry.id) {
                            entry.tolerance_percent = old.tolerance_percent;
                        }
                    }
                }
            }
            let baseline = Baseline {
                version: BASELINE_VERSION,
                tolerance_percent: tolerance(),
                entries,
            };
            fs::write(&out, serde_json::to_string_pretty(&baseline)? + "\n")?;
            println!(
                "BENCH_GATE_RECORDED path={} benches={}",
                out,
                baseline.entries.len()
            );
            Ok(true)
        }
        "compare" => {
            let (baseline_path, inputs) = take_opt(&args[1..], "--baseline")?;
            let baseline_path = baseline_path.ok_or("compare: --baseline PATH is required")?;
            let text = fs::read_to_string(&baseline_path)
                .map_err(|e| format!("cannot read baseline '{baseline_path}': {e}"))?;
            let baseline: Baseline = serde_json::from_str(&text)
                .map_err(|e| format!("baseline '{baseline_path}' is malformed: {e}"))?;
            if baseline.version != BASELINE_VERSION {
                return Err(format!(
                    "baseline version {} unsupported (tool speaks {})",
                    baseline.version, BASELINE_VERSION
                )
                .into());
            }
            let fresh = read_entries(&inputs)?;
            if fresh.is_empty() {
                return Err("compare: no BENCH_JSON lines found in the input".into());
            }
            Ok(compare(&baseline, &fresh))
        }
        _ => Err(usage().into()),
    }
}

fn usage() -> String {
    "usage:\n  \
     bench_gate record  --out BENCH_baseline.json [bench.log ...]\n  \
     bench_gate compare --baseline BENCH_baseline.json [bench.log ...]\n\
     reads stdin when no log files are given; \
     GCNT_BENCH_TOLERANCE=<percent> overrides the 25% gate"
        .to_string()
}

fn tolerance() -> u64 {
    std::env::var("GCNT_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_TOLERANCE_PERCENT)
}

/// Splits `args` into the value of `flag` (if present) and the remaining
/// positional inputs.
fn take_opt(args: &[String], flag: &str) -> Result<(Option<String>, Vec<String>), Box<dyn Error>> {
    let mut value = None;
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            value = Some(
                args.get(i + 1)
                    .ok_or_else(|| format!("{flag} needs a value"))?
                    .clone(),
            );
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    Ok((value, rest))
}

/// Parses every `BENCH_JSON` line from the given files (or stdin when none
/// are given), sorted by id for a stable committed artifact. A `BENCH_CALIB`
/// line applies to every `BENCH_JSON` line after it until the next one, so
/// each entry carries the calibration of its own run.
///
/// When an id appears more than once — the wrapper script runs each bench
/// suite several times — the occurrence with the lowest normalized ratio
/// wins. The best-of-N ratio is far more stable than any single run on a
/// shared machine: transient load only ever inflates timings, so the minimum
/// over repeats converges on the true cost while a genuine regression (more
/// work per iteration) shifts every repeat and still trips the gate.
fn read_entries(inputs: &[String]) -> Result<Vec<BenchEntry>, Box<dyn Error>> {
    let mut text = String::new();
    if inputs.is_empty() {
        std::io::stdin().read_to_string(&mut text)?;
    } else {
        for path in inputs {
            text.push_str(
                &fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?,
            );
            text.push('\n');
        }
    }
    let mut entries: Vec<BenchEntry> = Vec::new();
    let mut calib_ns = 0u64;
    for line in text.lines() {
        if let Some(payload) = line.strip_prefix("BENCH_CALIB ") {
            let calib: CalibLine = serde_json::from_str(payload.trim())
                .map_err(|e| format!("malformed BENCH_CALIB line: {e}\n  {line}"))?;
            calib_ns = calib.calib_ns;
            continue;
        }
        let Some(payload) = line.strip_prefix("BENCH_JSON ") else {
            continue;
        };
        let parsed: BenchLine = serde_json::from_str(payload.trim())
            .map_err(|e| format!("malformed BENCH_JSON line: {e}\n  {line}"))?;
        let entry = BenchEntry {
            id: parsed.id,
            mean_ns: parsed.mean_ns,
            median_ns: parsed.median_ns,
            min_ns: parsed.min_ns,
            iters: parsed.iters,
            calib_ns,
            tolerance_percent: 0,
        };
        match entries.iter_mut().find(|e| e.id == entry.id) {
            Some(best) if best.ratio() <= entry.ratio() => {}
            Some(best) => *best = entry,
            None => entries.push(entry),
        }
    }
    entries.sort_by(|a, b| a.id.cmp(&b.id));
    Ok(entries)
}

/// Compares fresh normalized medians against the baseline; returns false
/// when any benchmark regresses beyond the tolerance.
fn compare(baseline: &Baseline, fresh: &[BenchEntry]) -> bool {
    let global_tol = tolerance();
    let mut failures = 0usize;
    for new in fresh {
        let Some(old) = baseline.entries.iter().find(|e| e.id == new.id) else {
            println!("BENCH_GATE_NEW id={} median_ns={}", new.id, new.median_ns);
            continue;
        };
        // Percent change of the calibration-normalized median ratio.
        let old_ratio = old.ratio();
        let percent = if old_ratio == 0.0 {
            0.0
        } else {
            (new.ratio() - old_ratio) / old_ratio * 100.0
        };
        let tol = if old.tolerance_percent > 0 {
            old.tolerance_percent
        } else {
            global_tol
        } as f64;
        let failed = percent > tol;
        if failed {
            failures += 1;
        }
        println!(
            "BENCH_GATE_{} id={} baseline_ns={} fresh_ns={} normalized_change_percent={:+.1}",
            if failed { "FAIL" } else { "OK" },
            new.id,
            old.median_ns,
            new.median_ns,
            percent,
        );
    }
    for old in &baseline.entries {
        if !fresh.iter().any(|e| e.id == old.id) {
            println!("BENCH_GATE_MISSING id={}", old.id);
        }
    }
    if failures > 0 {
        println!(
            "BENCH_GATE_RESULT status=fail regressions={failures} tolerance_percent={global_tol}"
        );
        false
    } else {
        println!(
            "BENCH_GATE_RESULT status=pass benches={} tolerance_percent={global_tol}",
            fresh.len()
        );
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, median: u64) -> BenchEntry {
        entry_calibrated(id, median, 1_000)
    }

    fn entry_calibrated(id: &str, median: u64, calib: u64) -> BenchEntry {
        BenchEntry {
            id: id.to_string(),
            mean_ns: median,
            median_ns: median,
            min_ns: median,
            iters: 10,
            calib_ns: calib,
            tolerance_percent: 0,
        }
    }

    fn baseline(entries: Vec<BenchEntry>) -> Baseline {
        Baseline {
            version: BASELINE_VERSION,
            tolerance_percent: DEFAULT_TOLERANCE_PERCENT,
            entries,
        }
    }

    #[test]
    fn within_tolerance_passes() {
        let b = baseline(vec![entry("flow/a", 1_000_000)]);
        assert!(compare(&b, &[entry("flow/a", 1_200_000)])); // +20%
        assert!(compare(&b, &[entry("flow/a", 800_000)])); // improvements always pass
    }

    #[test]
    fn over_tolerance_fails() {
        let b = baseline(vec![entry("flow/a", 1_000_000)]);
        assert!(!compare(&b, &[entry("flow/a", 1_300_000)])); // +30%
        assert!(!compare(&b, &[entry("flow/a", 2_000_000)])); // the synthetic 2x
    }

    #[test]
    fn per_entry_tolerance_overrides_global() {
        let mut noisy = entry("io/fsync", 1_000_000);
        noisy.tolerance_percent = 60;
        let b = baseline(vec![noisy]);
        assert!(compare(&b, &[entry("io/fsync", 1_500_000)])); // +50% < 60%
        assert!(!compare(&b, &[entry("io/fsync", 1_700_000)])); // +70% > 60%
    }

    #[test]
    fn uniform_machine_slowdown_cancels_out() {
        // Machine is 2x slower: median and calibration both double, so the
        // normalized ratio — and the gate — are unmoved.
        let b = baseline(vec![entry_calibrated("flow/a", 1_000_000, 1_000)]);
        assert!(compare(&b, &[entry_calibrated("flow/a", 2_000_000, 2_000)]));
        // A genuine 2x regression on the same 2x-slower machine still trips:
        // the median quadruples while the calibration only doubles.
        assert!(!compare(
            &b,
            &[entry_calibrated("flow/a", 4_000_000, 2_000)]
        ));
    }

    #[test]
    fn new_and_missing_benches_do_not_fail_the_gate() {
        let b = baseline(vec![entry("flow/a", 1_000)]);
        assert!(compare(&b, &[entry("flow/a", 1_000), entry("flow/b", 999)]));
        assert!(compare(&b, &[entry("flow/c", 5)]));
    }

    #[test]
    fn bench_json_lines_parse_and_dedup() {
        let dir = std::env::temp_dir().join(format!("bench-gate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("bench.log");
        std::fs::write(
            &log,
            "noise line\n\
             BENCH_CALIB {\"calib_ns\":10}\n\
             BENCH_JSON {\"id\":\"flow/a\",\"mean_ns\":60,\"median_ns\":50,\"min_ns\":40,\"iters\":10}\n\
             BENCH_CALIB {\"calib_ns\":20}\n\
             BENCH_JSON {\"id\":\"flow/a\",\"mean_ns\":80,\"median_ns\":70,\"min_ns\":60,\"iters\":10}\n\
             BENCH_JSON {\"id\":\"flow/b\",\"mean_ns\":9,\"median_ns\":8,\"min_ns\":7,\"iters\":10}\n",
        )
        .unwrap();
        let entries = read_entries(&[log.display().to_string()]).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].id, "flow/a");
        // Run 2's median (70) is higher than run 1's (50), but its ratio
        // (70/20 = 3.5) beats run 1's (50/10 = 5.0): the faster machine-
        // relative result wins.
        assert_eq!(entries[0].median_ns, 70, "lowest normalized ratio wins");
        assert_eq!(entries[0].calib_ns, 20, "entry keeps its own run's calib");
        assert_eq!(entries[1].id, "flow/b");
        assert_eq!(entries[1].calib_ns, 20, "calib applies until the next one");
        std::fs::remove_dir_all(&dir).ok();
    }
}
