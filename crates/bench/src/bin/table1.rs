//! Table 1 — statistics of the benchmark designs.
//!
//! The paper reports, for four industrial designs B1–B4:
//! `#Nodes ~1.4M, #Edges ~2.1M, #POS ~9k (0.64%), #NEG ~1.4M`.
//! This binary regenerates the table for the synthetic stand-ins at any
//! scale and also asserts the §3.4.1 sparsity claim (> 99.95%).
//!
//! ```text
//! cargo run --release -p gcnt-bench --bin table1 -- --nodes 50000
//! ```

use serde::Serialize;

use gcnt_bench::{prepare_designs, write_json, Args};
use gcnt_dft::labeler::LabelConfig;

#[derive(Serialize)]
struct Row {
    design: String,
    nodes: usize,
    edges: usize,
    pos: usize,
    neg: usize,
    pos_rate: f64,
    sparsity: f64,
}

fn main() {
    let args = Args::parse();
    let nodes = args.get_usize("nodes", 20_000);
    let label_cfg = LabelConfig::default();
    println!("Table 1: Statistics of benchmarks (scale: ~{nodes} nodes)\n");
    println!(
        "{:<8} {:>10} {:>10} {:>8} {:>10} {:>8} {:>10}",
        "Design", "#Nodes", "#Edges", "#POS", "#NEG", "POS%", "Sparsity%"
    );
    let designs = prepare_designs(nodes, &label_cfg);
    let mut rows = Vec::new();
    for d in &designs {
        let pos = d.label_result.positive_count();
        let n = d.netlist.node_count();
        let sparsity = d.data.tensors.sparsity();
        // The paper's §3.4.1 claim: adjacency sparsity above 99.95% for
        // every benchmark design.
        assert!(
            sparsity > 0.9995,
            "sparsity claim violated for {}: {sparsity}",
            d.netlist.name()
        );
        println!(
            "{:<8} {:>10} {:>10} {:>8} {:>10} {:>8.2} {:>10.4}",
            d.netlist.name(),
            n,
            d.netlist.edge_count(),
            pos,
            n - pos,
            100.0 * pos as f64 / n as f64,
            100.0 * sparsity
        );
        rows.push(Row {
            design: d.netlist.name().to_string(),
            nodes: n,
            edges: d.netlist.edge_count(),
            pos,
            neg: n - pos,
            pos_rate: pos as f64 / n as f64,
            sparsity,
        });
    }
    println!("\npaper (at 1.4M nodes): B1 1384264 nodes / 2102622 edges / 8894 POS (0.64%)");
    write_json("table1", &rows);
}
