//! Figure 8 — training and testing accuracy over epochs for search depth
//! D = 1, 2, 3.
//!
//! Protocol (§5): balanced datasets, three designs for training and the
//! fourth for testing, `K_1..K_3 = 32, 64, 128`, FC head `64, 64, 128, 2`,
//! 300 epochs. The paper's curves show accuracy improving with depth.
//!
//! ```text
//! cargo run --release -p gcnt-bench --bin fig8 -- --nodes 3000 --epochs 150
//! ```

use serde::Serialize;

use gcnt_bench::{prepare_designs, refit_normalizer, write_json, Args};
use gcnt_core::train::{evaluate, train, TrainConfig};
use gcnt_core::{balanced_indices, Gcn, GcnConfig, GraphData};
use gcnt_dft::labeler::LabelConfig;
use gcnt_nn::seeded_rng;

#[derive(Serialize)]
struct Curve {
    depth: usize,
    epochs: Vec<usize>,
    train_accuracy: Vec<f64>,
    test_accuracy: Vec<f64>,
}

fn main() {
    let args = Args::parse();
    let nodes = args.get_usize("nodes", 3_000);
    let epochs = args.get_usize("epochs", 150);
    let eval_every = args.get_usize("eval-every", 10).max(1);
    let lr = args.get_f64("lr", 0.05) as f32;

    println!(
        "Figure 8: accuracy vs epochs for D = 1, 2, 3 (~{nodes}-node designs, {epochs} epochs)\n"
    );
    let mut designs = prepare_designs(nodes, &LabelConfig::default());
    // Rotation: train on B2..B4, test on B1 (one representative rotation,
    // matching the figure's single panel).
    refit_normalizer(&mut designs, &[1, 2, 3]);
    let mut rng = seeded_rng(0xF168);
    let train_masks: Vec<Vec<usize>> = [1usize, 2, 3]
        .iter()
        .map(|&i| balanced_indices(&designs[i].data.labels, &mut rng))
        .collect();
    let test_mask = balanced_indices(&designs[0].data.labels, &mut rng);
    let train_refs: Vec<&GraphData> = [1usize, 2, 3].iter().map(|&i| &designs[i].data).collect();

    let mut curves = Vec::new();
    for depth in 1..=3 {
        let mut gcn = Gcn::new(&GcnConfig::with_depth(depth), &mut seeded_rng(depth as u64));
        let mut curve = Curve {
            depth,
            epochs: Vec::new(),
            train_accuracy: Vec::new(),
            test_accuracy: Vec::new(),
        };
        let chunk_cfg = TrainConfig {
            epochs: eval_every,
            lr,
            pos_weight: 1.0,
            momentum: 0.0,
        };
        let mut done = 0;
        while done < epochs {
            let history =
                train(&mut gcn, &train_refs, &train_masks, &chunk_cfg).expect("shapes agree");
            done += history.len();
            let train_acc = history.last().expect("non-empty").train_accuracy;
            let test_acc = evaluate(&gcn, &designs[0].data, &test_mask)
                .expect("shapes agree")
                .accuracy();
            curve.epochs.push(done);
            curve.train_accuracy.push(train_acc);
            curve.test_accuracy.push(test_acc);
        }
        let final_train = *curve.train_accuracy.last().expect("non-empty");
        let final_test = *curve.test_accuracy.last().expect("non-empty");
        println!(
            "D={depth}: final train accuracy {:.3}, final test accuracy {:.3}",
            final_train, final_test
        );
        print!("  test curve: ");
        for (e, a) in curve.epochs.iter().zip(&curve.test_accuracy) {
            print!("{e}:{a:.3} ");
        }
        println!();
        curves.push(curve);
    }

    // The paper's qualitative result: performance improves with depth.
    let finals: Vec<f64> = curves
        .iter()
        .map(|c| *c.test_accuracy.last().expect("non-empty"))
        .collect();
    println!(
        "\nfinal test accuracy by depth: D1 {:.3}, D2 {:.3}, D3 {:.3} (paper: monotone increase)",
        finals[0], finals[1], finals[2]
    );
    write_json("fig8", &curves);
}
