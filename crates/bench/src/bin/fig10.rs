//! Figure 10 — inference runtime vs graph size: recursion-based
//! computation (GraphSAGE \[12\]-style) vs the paper's sparse matrix-form pipeline
//! (§3.4.1).
//!
//! The paper measures 10^3..10^6-node graphs; the released GraphSAGE
//! implementation needs >1 hour at 10^6 nodes while the matrix form takes
//! 1.5 s. Here both sides are optimised Rust on one machine, so the gap is
//! smaller, but the shape holds: matrix-form inference stays linear in
//! edges while per-node recursion degrades as high-fanout hub nets grow
//! with design size.
//!
//! Recursion cost at large N is measured on a node sample and
//! extrapolated (running it in full is exactly the pathology being
//! demonstrated); pass `--full-recursion` to force full runs.
//!
//! ```text
//! cargo run --release -p gcnt-bench --bin fig10 -- --max-nodes 1000000
//! ```

use std::time::Instant;

use serde::Serialize;

use gcnt_bench::{write_json, Args};
use gcnt_core::{recursive, Gcn, GcnConfig, GraphData};
use gcnt_netlist::{generate, GeneratorConfig};
use gcnt_nn::seeded_rng;

#[derive(Serialize)]
struct Point {
    nodes: usize,
    edges: usize,
    matrix_seconds: f64,
    recursion_seconds: f64,
    recursion_sampled: bool,
    speedup: f64,
}

fn main() {
    let args = Args::parse();
    let max_nodes = args.get_usize("max-nodes", 100_000);
    let full_recursion = args.get_flag("full-recursion");

    println!("Figure 10: inference runtime, recursion vs sparse matrix form\n");
    println!(
        "{:>9} {:>9} {:>12} {:>14} {:>9}",
        "#nodes", "#edges", "matrix (s)", "recursion (s)", "speedup"
    );

    let gcn = Gcn::new(&GcnConfig::default(), &mut seeded_rng(1));
    let mut points = Vec::new();
    let mut size = 1_000usize;
    while size <= max_nodes {
        let net = generate(&GeneratorConfig::sized("fig10", 0xF16, size));
        let data = GraphData::from_netlist(&net, None).expect("generated designs are acyclic");
        let n = data.node_count();

        let t0 = Instant::now();
        let logits = gcn
            .predict(&data.tensors, &data.features)
            .expect("shapes agree");
        let matrix_seconds = t0.elapsed().as_secs_f64();
        assert_eq!(logits.rows(), n);

        // Recursion side: full below the cutoff, sampled+extrapolated above.
        let cutoff = 30_000;
        let (recursion_seconds, sampled) = if n <= cutoff || full_recursion {
            let nodes: Vec<usize> = (0..n).collect();
            let t0 = Instant::now();
            let _ =
                recursive::predict_nodes_unmemoized(&gcn, &data.tensors, &data.features, &nodes)
                    .expect("shapes agree");
            (t0.elapsed().as_secs_f64(), false)
        } else {
            let sample: Vec<usize> = (0..n).step_by((n / 500).max(1)).collect();
            let t0 = Instant::now();
            let _ =
                recursive::predict_nodes_unmemoized(&gcn, &data.tensors, &data.features, &sample)
                    .expect("shapes agree");
            let per_node = t0.elapsed().as_secs_f64() / sample.len() as f64;
            (per_node * n as f64, true)
        };
        let speedup = recursion_seconds / matrix_seconds;
        println!(
            "{:>9} {:>9} {:>12.3} {:>13.3}{} {:>8.1}x",
            n,
            data.tensors.edge_count(),
            matrix_seconds,
            recursion_seconds,
            if sampled { "*" } else { " " },
            speedup
        );
        points.push(Point {
            nodes: n,
            edges: data.tensors.edge_count(),
            matrix_seconds,
            recursion_seconds,
            recursion_sampled: sampled,
            speedup,
        });
        size *= 10;
    }
    println!("\n(*) extrapolated from a 500-node sample");
    println!("paper (Python [12] vs GPU pipeline): >1h vs 1.5s at 10^6 nodes (~3 orders)");
    write_json("fig10", &points);
}
