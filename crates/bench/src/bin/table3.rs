//! Table 3 — testability results: the commercial-tool proxy vs the
//! GCN-guided iterative OP-insertion flow (§4 / §5).
//!
//! Protocol: for each design, a multi-stage GCN is trained on the other
//! three designs (inductive, as in the paper), then:
//!
//! * the *baseline* runs iterative testability analysis and observes every
//!   flagged node (what production DFT tools do), and
//! * the *GCN flow* predicts difficult nodes and inserts impact-ranked
//!   observation points iteratively (Fig. 7);
//!
//! both modified designs are graded by the same random-pattern ATPG
//! against the original design's fault list.
//!
//! Paper ratios (GCN / baseline): #OPs 0.89, #PAs 0.94, coverage 1.00.
//!
//! ```text
//! cargo run --release -p gcnt-bench --bin table3 -- --nodes 3000 --epochs 60
//! ```

use serde::Serialize;

use gcnt_bench::{prepare_designs, refit_normalizer, write_json, Args};
use gcnt_core::{train_test_rotation, GraphData, MultiStageConfig, MultiStageGcn};
use gcnt_dft::atpg::AtpgConfig;
use gcnt_dft::baseline::{testability_opi, BaselineConfig};
use gcnt_dft::flow::{run_gcn_opi, FlowConfig};
use gcnt_dft::labeler::LabelConfig;
use gcnt_dft::report::{evaluate_insertion, ComparisonRow};

#[derive(Serialize)]
struct Table3 {
    rows: Vec<ComparisonRow>,
    avg_ops_ratio: f64,
    avg_patterns_ratio: f64,
    avg_coverage_delta_pp: f64,
}

fn main() {
    let args = Args::parse();
    let nodes = args.get_usize("nodes", 3_000);
    let epochs = args.get_usize("epochs", 60);

    println!(
        "Table 3: testability comparison, industrial-tool proxy vs GCN flow (~{nodes} nodes)\n"
    );
    let label_cfg = LabelConfig::default();
    let mut designs = prepare_designs(nodes, &label_cfg);
    let atpg_cfg = AtpgConfig::default();

    println!(
        "{:<8} {:>6} {:>6} {:>9}   {:>6} {:>6} {:>9}",
        "Design", "#OPs", "#PAs", "Coverage", "#OPs", "#PAs", "Coverage"
    );
    println!("{:<8} {:^24}   {:^24}", "", "Industrial-proxy", "GCN-Flow");

    let mut rows = Vec::new();
    for (train_idx, test_idx) in train_test_rotation(4) {
        refit_normalizer(&mut designs, &train_idx);
        let train_refs: Vec<&GraphData> = train_idx.iter().map(|&i| &designs[i].data).collect();
        let ms_cfg = MultiStageConfig {
            epochs_per_stage: epochs,
            seed: 0x7AB3 + test_idx as u64,
            ..MultiStageConfig::default()
        };
        let (model, _) = MultiStageGcn::train(&ms_cfg, &train_refs).expect("shapes agree");

        let original = designs[test_idx].netlist.clone();
        let normalizer = designs[test_idx].data.normalizer.clone();

        // GCN flow.
        let mut gcn_design = original.clone();
        run_gcn_opi(&mut gcn_design, &normalizer, &model, &FlowConfig::default())
            .expect("flow runs on generated designs");

        // Baseline.
        let mut base_design = original.clone();
        testability_opi(
            &mut base_design,
            &BaselineConfig {
                label: label_cfg.clone(),
                ..Default::default()
            },
        )
        .expect("baseline runs on generated designs");

        let row = ComparisonRow {
            baseline: evaluate_insertion(&original, &base_design, &atpg_cfg).expect("grading runs"),
            gcn: evaluate_insertion(&original, &gcn_design, &atpg_cfg).expect("grading runs"),
        };
        println!(
            "{:<8} {:>6} {:>6} {:>8.2}%   {:>6} {:>6} {:>8.2}%",
            row.baseline.design,
            row.baseline.ops,
            row.baseline.patterns,
            row.baseline.coverage * 100.0,
            row.gcn.ops,
            row.gcn.patterns,
            row.gcn.coverage * 100.0
        );
        rows.push(row);
    }

    let n = rows.len() as f64;
    let avg_ops_ratio = rows.iter().map(ComparisonRow::ops_ratio).sum::<f64>() / n;
    let avg_patterns_ratio = rows.iter().map(ComparisonRow::patterns_ratio).sum::<f64>() / n;
    let avg_coverage_delta_pp = rows
        .iter()
        .map(ComparisonRow::coverage_delta_pp)
        .sum::<f64>()
        / n;
    println!(
        "\nratios (GCN / baseline): #OPs {avg_ops_ratio:.2}, #PAs {avg_patterns_ratio:.2}, \
         coverage delta {avg_coverage_delta_pp:.2}pp"
    );
    println!("paper: #OPs 0.89, #PAs 0.94, coverage delta 0.00pp");
    write_json(
        "table3",
        &Table3 {
            rows,
            avg_ops_ratio,
            avg_patterns_ratio,
            avg_coverage_delta_pp,
        },
    );
}
