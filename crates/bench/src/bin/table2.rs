//! Table 2 — balanced-set accuracy of classical models vs the GCN.
//!
//! Protocol (§5): per rotation, three designs train and the fourth tests;
//! balanced datasets (all positives + equal sampled negatives); classical
//! models (LR, RF, SVM, MLP) consume 4004-dim fan-in/fan-out cone
//! features; the GCN consumes the graph directly.
//!
//! Paper averages: LR 0.777, RF 0.792, SVM 0.814, MLP 0.856, GCN 0.931.
//!
//! ```text
//! cargo run --release -p gcnt-bench --bin table2 -- --nodes 3000 --cone 100
//! ```

use serde::Serialize;

use gcnt_bench::{prepare_designs, refit_normalizer, write_json, Args};
use gcnt_core::train::{evaluate, train, TrainConfig};
use gcnt_core::{balanced_indices, train_test_rotation, Gcn, GcnConfig, GraphData};
use gcnt_dft::labeler::LabelConfig;
use gcnt_mlbase::features::{cone_features, ConeFeatureConfig};
use gcnt_mlbase::{
    accuracy, Classifier, LinearSvm, LinearSvmConfig, LogisticRegression, LogisticRegressionConfig,
    MlpClassifier, MlpClassifierConfig, RandomForest, RandomForestConfig,
};
use gcnt_nn::seeded_rng;
use gcnt_tensor::{ops, Matrix};

#[derive(Serialize)]
struct Table2 {
    /// Accuracy per model per test design, plus averages.
    rows: Vec<Row>,
    averages: Vec<(String, f64)>,
}

#[derive(Serialize)]
struct Row {
    design: String,
    lr: f64,
    rf: f64,
    svm: f64,
    mlp: f64,
    gcn: f64,
}

fn main() {
    let args = Args::parse();
    let nodes = args.get_usize("nodes", 3_000);
    let epochs = args.get_usize("epochs", 150);
    let cone = args.get_usize("cone", 500);

    println!(
        "Table 2: balanced accuracy, classical models vs GCN (~{nodes}-node designs, cone {cone})\n"
    );
    let mut designs = prepare_designs(nodes, &LabelConfig::default());
    let cone_cfg = ConeFeatureConfig { cone_size: cone };

    let mut rows = Vec::new();
    for (train_idx, test_idx) in train_test_rotation(4) {
        refit_normalizer(&mut designs, &train_idx);
        let mut rng = seeded_rng(0x7AB2 + test_idx as u64);

        // Balanced node sets per design.
        let train_masks: Vec<Vec<usize>> = train_idx
            .iter()
            .map(|&i| balanced_indices(&designs[i].data.labels, &mut rng))
            .collect();
        let test_mask = balanced_indices(&designs[test_idx].data.labels, &mut rng);

        // ----- classical models on cone features -----
        let mut xs = Vec::new();
        let mut ys: Vec<usize> = Vec::new();
        for (&i, mask) in train_idx.iter().zip(&train_masks) {
            let d = &designs[i];
            xs.push(cone_features(&d.netlist, &d.data.features, mask, &cone_cfg));
            ys.extend(d.data.labels_at(mask));
        }
        let mut x_train = xs.remove(0);
        for x in xs {
            x_train = x_train.vstack(&x).expect("same cone dimension");
        }
        let (x_train, means, stds) = ops::standardize_columns(&x_train);
        let td = &designs[test_idx];
        let x_test_raw = cone_features(&td.netlist, &td.data.features, &test_mask, &cone_cfg);
        let x_test = ops::apply_standardization(&x_test_raw, &means, &stds);
        let y_test = td.data.labels_at(&test_mask);

        let acc_of = |model: &dyn Classifier, x: &Matrix| accuracy(&y_test, &model.predict(x));
        let lr_model = LogisticRegression::fit(&x_train, &ys, &LogisticRegressionConfig::default());
        let rf_model = RandomForest::fit(&x_train, &ys, &RandomForestConfig::default());
        let svm_model = LinearSvm::fit(&x_train, &ys, &LinearSvmConfig::default());
        let mlp_model = MlpClassifier::fit(
            &x_train,
            &ys,
            &MlpClassifierConfig {
                epochs,
                ..Default::default()
            },
        );

        // ----- GCN on the graph -----
        let train_refs: Vec<&GraphData> = train_idx.iter().map(|&i| &designs[i].data).collect();
        let mut gcn = Gcn::new(&GcnConfig::default(), &mut seeded_rng(42 + test_idx as u64));
        train(
            &mut gcn,
            &train_refs,
            &train_masks,
            &TrainConfig {
                epochs,
                lr: 0.05,
                pos_weight: 1.0,
                momentum: 0.0,
            },
        )
        .expect("shapes agree");
        let gcn_acc = evaluate(&gcn, &td.data, &test_mask)
            .expect("shapes agree")
            .accuracy();

        let row = Row {
            design: td.netlist.name().to_string(),
            lr: acc_of(&lr_model, &x_test),
            rf: acc_of(&rf_model, &x_test),
            svm: acc_of(&svm_model, &x_test),
            mlp: acc_of(&mlp_model, &x_test),
            gcn: gcn_acc,
        };
        println!(
            "{:<6} LR {:.3}  RF {:.3}  SVM {:.3}  MLP {:.3}  GCN {:.3}",
            row.design, row.lr, row.rf, row.svm, row.mlp, row.gcn
        );
        rows.push(row);
    }

    let avg = |f: fn(&Row) -> f64| rows.iter().map(f).sum::<f64>() / rows.len() as f64;
    let averages = vec![
        ("LR".to_string(), avg(|r| r.lr)),
        ("RF".to_string(), avg(|r| r.rf)),
        ("SVM".to_string(), avg(|r| r.svm)),
        ("MLP".to_string(), avg(|r| r.mlp)),
        ("GCN".to_string(), avg(|r| r.gcn)),
    ];
    println!("\nAverage:");
    for (name, a) in &averages {
        println!("  {name:<4} {a:.3}");
    }
    println!("paper:  LR 0.777, RF 0.792, SVM 0.814, MLP 0.856, GCN 0.931");
    write_json("table2", &Table2 { rows, averages });
}
