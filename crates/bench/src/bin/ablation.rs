//! Ablation of the aggregation function (Eq. (1)): does the GCN need
//! predecessor information, successor information, or both?
//!
//! The paper aggregates over both directions with separate learned
//! weights `w_pr` / `w_su`. Observability flows *backwards* (a node is
//! hard to observe because of its fan-out), controllability *forwards*,
//! so intuition says both directions matter; this harness measures it.
//!
//! ```text
//! cargo run --release -p gcnt-bench --bin ablation -- --nodes 3000 --epochs 150
//! ```

use serde::Serialize;

use gcnt_bench::{prepare_designs, refit_normalizer, write_json, Args};
use gcnt_core::train::{evaluate, train, TrainConfig};
use gcnt_core::{balanced_indices, Gcn, GcnConfig, GraphData, GraphTensors};
use gcnt_dft::labeler::LabelConfig;
use gcnt_nn::seeded_rng;

#[derive(Serialize)]
struct AblationRow {
    variant: String,
    test_accuracy: f64,
    w_pr: f32,
    w_su: f32,
}

fn main() {
    let args = Args::parse();
    let nodes = args.get_usize("nodes", 3_000);
    let epochs = args.get_usize("epochs", 150);

    println!("Ablation: aggregation directions (Eq. 1) at ~{nodes} nodes, {epochs} epochs\n");
    let mut designs = prepare_designs(nodes, &LabelConfig::default());
    refit_normalizer(&mut designs, &[1, 2, 3]);
    let mut rng = seeded_rng(0xAB1A);
    let train_masks: Vec<Vec<usize>> = [1usize, 2, 3]
        .iter()
        .map(|&i| balanced_indices(&designs[i].data.labels, &mut rng))
        .collect();
    let test_mask = balanced_indices(&designs[0].data.labels, &mut rng);

    let mut rows = Vec::new();
    for (name, use_pred, use_succ) in [
        ("both", true, true),
        ("predecessors-only", true, false),
        ("successors-only", false, true),
        ("self-only", false, false),
    ] {
        // Rebuild each design's tensors with the chosen directions.
        let variant: Vec<GraphData> = designs
            .iter()
            .map(|d| {
                let mut data = d.data.clone();
                data.tensors = GraphTensors::with_directions(&d.netlist, use_pred, use_succ);
                data
            })
            .collect();
        let train_refs: Vec<&GraphData> = [1usize, 2, 3].iter().map(|&i| &variant[i]).collect();
        let mut gcn = Gcn::new(&GcnConfig::with_depth(3), &mut seeded_rng(7));
        train(
            &mut gcn,
            &train_refs,
            &train_masks,
            &TrainConfig {
                epochs,
                lr: 0.05,
                momentum: 0.0,
                pos_weight: 1.0,
            },
        )
        .expect("shapes agree");
        let acc = evaluate(&gcn, &variant[0], &test_mask)
            .expect("shapes agree")
            .accuracy();
        println!(
            "{name:<18} test accuracy {acc:.3}  (w_pr {:.3}, w_su {:.3})",
            gcn.w_pr(),
            gcn.w_su()
        );
        rows.push(AblationRow {
            variant: name.to_string(),
            test_accuracy: acc,
            w_pr: gcn.w_pr(),
            w_su: gcn.w_su(),
        });
    }
    println!("\nexpectation: both >= either single direction >= self-only");
    write_json("ablation", &rows);
}
