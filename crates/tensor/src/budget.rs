//! Cooperative work budgets and cancellation for long-running kernels.
//!
//! A [`Budget`] is threaded by reference through the hot paths of the
//! workspace (embedding layers, incremental refreshes, the OP-insertion
//! flow). Each path *charges* the budget for the work it is about to do,
//! in **embedding-row units** (one unit = one node × one GCN layer), and
//! the charge fails once the cap is spent — turning an unbounded
//! computation into one that stops at a well-defined checkpoint with a
//! typed error instead of blowing a wall-clock deadline from the inside.
//!
//! Two properties make the unit deliberate:
//!
//! * **Deterministic.** Row counts do not depend on machine load, so a
//!   budgeted run is exactly reproducible — the serving layer's
//!   degradation decisions (and their tests) stay bit-stable.
//! * **Proportional.** Rows are the dominant cost of every inference
//!   path, so a row cap tracks wall-clock time closely enough for
//!   admission control; callers translate deadlines into row caps.
//!
//! A [`Cancel`] handle cloned from the budget flips a shared flag from
//! another thread; the next `charge` (even a zero-cost checkpoint probe)
//! observes it and fails with [`TensorError::Cancelled`].
//!
//! The `cost_multiplier` exists for fault injection: a serving layer
//! under test can make every unit of work "cost" 10× to simulate a
//! machine running 10× slow, without sleeping.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{Result, TensorError};

/// A cooperative work budget: a cap on embedding-row units plus a shared
/// cancellation flag. Cheap to probe; shared by reference.
#[derive(Debug)]
pub struct Budget {
    /// Maximum units chargeable; `None` = unlimited.
    cap: Option<u64>,
    /// Units charged so far (after the multiplier).
    spent: AtomicU64,
    /// Shared cancellation flag; see [`Budget::cancel_handle`].
    cancelled: Arc<AtomicBool>,
    /// Every charged unit costs this many budget units (fault injection:
    /// a slow machine is simulated by a multiplier > 1).
    cost_multiplier: u64,
}

impl Budget {
    /// A budget that never runs out and is not cancelled.
    pub fn unlimited() -> Self {
        Budget {
            cap: None,
            spent: AtomicU64::new(0),
            cancelled: Arc::new(AtomicBool::new(false)),
            cost_multiplier: 1,
        }
    }

    /// A budget capped at `cap` embedding-row units.
    pub fn with_cap(cap: u64) -> Self {
        Budget {
            cap: Some(cap),
            ..Budget::unlimited()
        }
    }

    /// Makes every charged unit cost `multiplier` budget units
    /// (clamped to at least 1). Used by fault injection to simulate an
    /// `N`× slower machine deterministically.
    pub fn with_cost_multiplier(mut self, multiplier: u64) -> Self {
        self.cost_multiplier = multiplier.max(1);
        self
    }

    /// The cap, if any.
    pub fn cap(&self) -> Option<u64> {
        self.cap
    }

    /// Units charged so far (after the cost multiplier).
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }

    /// Units still chargeable; `None` for an unlimited budget.
    pub fn remaining(&self) -> Option<u64> {
        self.cap.map(|c| c.saturating_sub(self.spent()))
    }

    /// Whether the cap is already spent (an unlimited budget never is).
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == Some(0)
    }

    /// A handle that cancels this budget from another thread.
    pub fn cancel_handle(&self) -> Cancel {
        Cancel(Arc::clone(&self.cancelled))
    }

    /// Whether the budget was cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Charges `units` of work (scaled by the cost multiplier) against
    /// the budget. `charge(0)` is a pure checkpoint probe: it still
    /// observes cancellation and an already-spent cap.
    ///
    /// The charge is best-effort precise: the work is charged *before*
    /// it happens, so a path that checks its budget between layers stops
    /// at the layer boundary that would overrun, not after it.
    ///
    /// # Errors
    ///
    /// [`TensorError::Cancelled`] if the budget was cancelled,
    /// [`TensorError::BudgetExceeded`] if the charge overruns the cap.
    pub fn charge(&self, units: u64) -> Result<()> {
        if self.is_cancelled() {
            gcnt_obs::global().incr(gcnt_obs::counters::TENSOR_BUDGET_CANCELS);
            return Err(TensorError::Cancelled);
        }
        let cost = units.saturating_mul(self.cost_multiplier);
        let before = self.spent.fetch_add(cost, Ordering::Relaxed);
        if let Some(cap) = self.cap {
            let after = before.saturating_add(cost);
            if after > cap || (cost == 0 && before >= cap) {
                gcnt_obs::global().incr(gcnt_obs::counters::TENSOR_BUDGET_STOPS);
                return Err(TensorError::BudgetExceeded { spent: after, cap });
            }
        }
        Ok(())
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

/// Cancels the [`Budget`] it was cloned from; safe to trip from any
/// thread. Cancellation is sticky.
#[derive(Debug, Clone)]
pub struct Cancel(Arc<AtomicBool>);

impl Cancel {
    /// Trips the cancellation flag; every subsequent
    /// [`Budget::charge`] fails with [`TensorError::Cancelled`].
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the flag is already tripped.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_fails() {
        let b = Budget::unlimited();
        for _ in 0..100 {
            b.charge(u64::MAX / 200).unwrap();
        }
        assert!(!b.is_exhausted());
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn capped_budget_fails_at_the_boundary() {
        let b = Budget::with_cap(10);
        b.charge(6).unwrap();
        b.charge(4).unwrap();
        assert!(b.is_exhausted());
        assert_eq!(b.remaining(), Some(0));
        let err = b.charge(1).unwrap_err();
        assert!(matches!(err, TensorError::BudgetExceeded { cap: 10, .. }));
        // A zero-cost probe on a spent budget also fails.
        assert!(matches!(
            b.charge(0),
            Err(TensorError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn zero_probe_passes_while_budget_remains() {
        let b = Budget::with_cap(5);
        b.charge(0).unwrap();
        b.charge(4).unwrap();
        b.charge(0).unwrap();
    }

    #[test]
    fn overrunning_charge_is_rejected_before_the_work() {
        let b = Budget::with_cap(10);
        b.charge(8).unwrap();
        assert!(matches!(
            b.charge(5),
            Err(TensorError::BudgetExceeded { spent: 13, cap: 10 })
        ));
    }

    #[test]
    fn cancellation_is_observed_and_sticky() {
        let b = Budget::unlimited();
        let handle = b.cancel_handle();
        b.charge(1).unwrap();
        handle.cancel();
        assert!(handle.is_cancelled());
        assert!(matches!(b.charge(0), Err(TensorError::Cancelled)));
        assert!(matches!(b.charge(10), Err(TensorError::Cancelled)));
    }

    #[test]
    fn cancel_works_across_threads() {
        let b = Budget::unlimited();
        let handle = b.cancel_handle();
        std::thread::spawn(move || handle.cancel()).join().unwrap();
        assert!(b.is_cancelled());
    }

    #[test]
    fn cost_multiplier_scales_charges() {
        let b = Budget::with_cap(100).with_cost_multiplier(10);
        b.charge(9).unwrap();
        assert_eq!(b.spent(), 90);
        assert!(matches!(
            b.charge(2),
            Err(TensorError::BudgetExceeded { .. })
        ));
    }
}
