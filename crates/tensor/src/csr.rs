use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::kernel::{self, KernelPolicy};
use crate::{CooMatrix, Matrix, Result, TensorError};

/// spmm falls back to a serial loop below this many output elements.
const PAR_SPMM_THRESHOLD: usize = 8 * 1024;

/// A sparse matrix in compressed sparse row (CSR) format.
///
/// This is the product-friendly form of the adjacency matrix: the paper's
/// matrix-form inference (§3.4.1) computes `G_d = A · E_{d-1}` as a
/// sparse×dense product, which [`CsrMatrix::spmm`] implements with one rayon
/// task per output row.
///
/// # Examples
///
/// ```
/// use gcnt_tensor::{CooMatrix, Matrix};
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 2.0);
/// coo.push(1, 0, 1.0);
/// let csr = coo.to_csr();
/// let x = Matrix::from_rows(&[&[1.0], &[10.0]]).unwrap();
/// let y = csr.spmm(&x).unwrap();
/// assert_eq!(y.get(0, 0), 2.0);
/// assert_eq!(y.get(1, 0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer array of length `rows + 1`.
    indptr: Vec<usize>,
    /// Column index of each non-zero, grouped by row.
    indices: Vec<u32>,
    /// Value of each non-zero.
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Creates an empty `rows x cols` CSR matrix with no non-zeros.
    pub fn new(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a CSR matrix from a COO matrix, summing duplicates.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let rows = coo.rows();
        let cols = coo.cols();
        // Counting sort by row.
        let mut counts = vec![0usize; rows + 1];
        for (r, _, _) in coo.iter() {
            if let Some(slot) = counts.get_mut(r + 1) {
                *slot += 1;
            }
        }
        let mut running = 0usize;
        for count in counts.iter_mut() {
            running += *count;
            *count = running;
        }
        let indptr_raw = counts.clone();
        let nnz = coo.nnz();
        let mut indices = vec![0u32; nnz];
        let mut values = vec![0f32; nnz];
        let mut cursor = indptr_raw.clone();
        for (r, c, v) in coo.iter() {
            let pos = cursor.get(r).copied().unwrap_or(0);
            // CAST: c round-trips from the COO's u32 column storage.
            if let Some(slot) = indices.get_mut(pos) {
                *slot = c as u32;
            }
            if let Some(slot) = values.get_mut(pos) {
                *slot = v;
            }
            if let Some(slot) = cursor.get_mut(r) {
                *slot += 1;
            }
        }
        // Sort each row by column and merge duplicates.
        let mut out_indptr = vec![0usize; rows + 1];
        let mut out_indices = Vec::with_capacity(nnz);
        let mut out_values = Vec::with_capacity(nnz);
        for r in 0..rows {
            let start = indptr_raw.get(r).copied().unwrap_or(0);
            let end = indptr_raw.get(r + 1).copied().unwrap_or(start);
            let mut row: Vec<(u32, f32)> = indices
                .get(start..end)
                .unwrap_or(&[])
                .iter()
                .copied()
                .zip(values.get(start..end).unwrap_or(&[]).iter().copied())
                .collect();
            row.sort_unstable_by_key(|&(c, _)| c);
            let row_start = out_indices.len();
            for (c, v) in row {
                // The row is sorted, so duplicates of a column are
                // adjacent: merge into the entry just pushed (guarded to
                // stay inside this row's slice).
                match (out_indices.last(), out_values.last_mut()) {
                    (Some(&last), Some(acc)) if out_indices.len() > row_start && last == c => {
                        *acc += v;
                    }
                    _ => {
                        out_indices.push(c);
                        out_values.push(v);
                    }
                }
            }
            if let Some(slot) = out_indptr.get_mut(r + 1) {
                *slot = out_indices.len();
            }
        }
        CsrMatrix {
            rows,
            cols,
            indptr: out_indptr,
            indices: out_indices,
            values: out_values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row pointer array (`rows + 1` entries; row `r`'s non-zeros live
    /// at `indptr[r]..indptr[r + 1]`).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column index of each non-zero, grouped by row and sorted within
    /// each row.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Value of each non-zero, parallel to [`CsrMatrix::indices`].
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Builds a CSR matrix directly from its raw arrays, validating every
    /// structural invariant (see [`CsrMatrix::structure_ok`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the arrays violate the
    /// CSR invariants.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self> {
        let m = CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        };
        if !m.structure_ok() {
            return Err(TensorError::LengthMismatch {
                expected: m.rows + 1,
                actual: m.indptr.len(),
            });
        }
        Ok(m)
    }

    /// Builds a CSR matrix from raw arrays without validation.
    ///
    /// Intended for tests and tooling that deliberately construct broken
    /// matrices (e.g. to exercise the lint rules); every kernel assumes
    /// [`CsrMatrix::structure_ok`], so feeding an invalid matrix to them
    /// is unspecified (panics or wrong results, but never UB).
    pub fn from_raw_parts_unchecked(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Whether the CSR structural invariants hold: `indptr` has
    /// `rows + 1` monotone entries starting at 0 and ending at `nnz`,
    /// `indices` and `values` run parallel, and every row's column indices
    /// are strictly increasing and in bounds.
    ///
    /// The hot kernels `debug_assert!` this; the lint crate reports each
    /// violation individually.
    pub fn structure_ok(&self) -> bool {
        if self.indptr.len() != self.rows + 1
            || self.indptr.first() != Some(&0)
            || self.indptr.last() != Some(&self.indices.len())
            || self.indices.len() != self.values.len()
        {
            return false;
        }
        if self.indptr.windows(2).any(|w| matches!(w, [a, b] if a > b)) {
            return false;
        }
        for (&start, &end) in self.indptr.iter().zip(self.indptr.iter().skip(1)) {
            // Monotone indptr ending at nnz (checked above) keeps every
            // range in bounds; `get` is belt-and-braces.
            let row = self.indices.get(start..end).unwrap_or(&[]);
            if row.iter().any(|&c| c as usize >= self.cols) {
                return false;
            }
            if row.windows(2).any(|w| matches!(w, [a, b] if a >= b)) {
                return false;
            }
        }
        true
    }

    /// Iterates over the non-zeros of row `r` as `(col, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        assert!(r < self.rows, "row index out of bounds");
        let start = self.indptr.get(r).copied().unwrap_or(0);
        let end = self.indptr.get(r + 1).copied().unwrap_or(start);
        self.indices
            .get(start..end)
            .unwrap_or(&[])
            .iter()
            .zip(self.values.get(start..end).unwrap_or(&[]))
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Sparse × dense product `self * rhs`, parallelised over output rows,
    /// on the process-wide [`KernelPolicy`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == rhs.rows()`.
    pub fn spmm(&self, rhs: &Matrix) -> Result<Matrix> {
        self.spmm_with_kernel(rhs, KernelPolicy::global())
    }

    /// [`CsrMatrix::spmm`] on an explicit kernel policy, bypassing the
    /// process-wide setting. Both kernels produce bit-identical output
    /// (see [`crate::kernel`]); the choice is purely a throughput one.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == rhs.rows()`.
    pub fn spmm_with_kernel(&self, rhs: &Matrix, policy: KernelPolicy) -> Result<Matrix> {
        debug_assert!(self.structure_ok(), "spmm on a malformed CSR matrix");
        if self.cols != rhs.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "spmm",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let n = rhs.cols();
        let kernel = policy.resolve(n);
        let obs = gcnt_obs::global();
        let enabled = obs.is_enabled();
        if enabled {
            obs.incr(gcnt_obs::counters::TENSOR_SPMM_CALLS);
            obs.incr(kernel.dispatch_counter());
            obs.add(gcnt_obs::counters::TENSOR_SPMM_ROWS, self.rows as u64);
            obs.add(
                gcnt_obs::counters::TENSOR_SPMM_NNZ,
                self.values.len() as u64,
            );
        }
        let started = enabled.then(std::time::Instant::now);
        let mut out = Matrix::zeros(self.rows, n);
        let row_kernel = |(r, out_row): (usize, &mut [f32])| {
            let start = self.indptr.get(r).copied().unwrap_or(0);
            let end = self.indptr.get(r + 1).copied().unwrap_or(start);
            let idx = self.indices.get(start..end).unwrap_or(&[]);
            let vals = self.values.get(start..end).unwrap_or(&[]);
            kernel::spmm_row(kernel, out_row, idx, vals, |c| rhs.row(c));
        };
        if self.rows * n >= PAR_SPMM_THRESHOLD {
            out.as_mut_slice()
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(r, out_row)| row_kernel((r, out_row)));
        } else {
            let data = out.as_mut_slice();
            for (r, out_row) in data.chunks_mut(n).enumerate() {
                row_kernel((r, out_row));
            }
        }
        if let Some(t0) = started {
            // CAST: saturating at u64::MAX ns is fine for a latency sample.
            obs.observe(kernel.spmm_histogram(), t0.elapsed().as_nanos() as u64);
        }
        Ok(out)
    }

    /// Accumulates one product row into a caller-provided buffer:
    /// `out[j] += (self * rhs)[row][j]`, on the process-wide
    /// [`KernelPolicy`].
    ///
    /// This is the raw per-row primitive behind [`CsrMatrix::spmm`] —
    /// identical kernel, identical stored-coefficient accumulation order,
    /// so filling a zeroed buffer reproduces the corresponding `spmm` row
    /// bit for bit. Unlike the whole-product entry points it records no
    /// observability samples (callers invoke it per row; per-call
    /// instrumentation would swamp the measurement). The GCN's fused
    /// serial aggregation uses it to combine `P·E` and `S·E` rows without
    /// materialising either product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == rhs.rows()` and `out.len() == rhs.cols()`, and
    /// [`TensorError::IndexOutOfBounds`] if `row` is out of range.
    pub fn spmm_row_into(&self, row: usize, rhs: &Matrix, out: &mut [f32]) -> Result<()> {
        debug_assert!(self.structure_ok(), "spmm_row_into on a malformed CSR");
        if self.cols != rhs.rows() || out.len() != rhs.cols() {
            return Err(TensorError::ShapeMismatch {
                op: "spmm_row_into",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if row >= self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: (row, 0),
                shape: self.shape(),
            });
        }
        let kernel = KernelPolicy::global().resolve(rhs.cols());
        let start = self.indptr.get(row).copied().unwrap_or(0);
        let end = self.indptr.get(row + 1).copied().unwrap_or(start);
        let idx = self.indices.get(start..end).unwrap_or(&[]);
        let vals = self.values.get(start..end).unwrap_or(&[]);
        kernel::spmm_row(kernel, out, idx, vals, |c| rhs.row(c));
        Ok(())
    }

    /// Row-sliced sparse × dense product: computes only the listed output
    /// rows of `self * rhs`, returned as a dense `rows.len() x rhs.cols()`
    /// matrix with `out[i] = self[rows[i]] · rhs`.
    ///
    /// The per-row accumulation order matches [`CsrMatrix::spmm`] exactly, so
    /// each returned row is bit-for-bit equal to the corresponding row of the
    /// full product — the invariant the incremental inference engine's
    /// dirty-cone updates rely on.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == rhs.rows()`, and [`TensorError::IndexOutOfBounds`] if
    /// any requested row is out of range.
    pub fn spmm_rows(&self, rhs: &Matrix, rows: &[usize]) -> Result<Matrix> {
        self.spmm_rows_with_kernel(rhs, rows, KernelPolicy::global())
    }

    /// [`CsrMatrix::spmm_rows`] on an explicit kernel policy, bypassing the
    /// process-wide setting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == rhs.rows()`, and [`TensorError::IndexOutOfBounds`] if
    /// any requested row is out of range.
    pub fn spmm_rows_with_kernel(
        &self,
        rhs: &Matrix,
        rows: &[usize],
        policy: KernelPolicy,
    ) -> Result<Matrix> {
        debug_assert!(self.structure_ok(), "spmm_rows on a malformed CSR matrix");
        if self.cols != rhs.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "spmm_rows",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if let Some(&bad) = rows.iter().find(|&&r| r >= self.rows) {
            return Err(TensorError::IndexOutOfBounds {
                index: (bad, 0),
                shape: self.shape(),
            });
        }
        let n = rhs.cols();
        let kernel = policy.resolve(n);
        let obs = gcnt_obs::global();
        if obs.is_enabled() {
            obs.incr(gcnt_obs::counters::TENSOR_SPMM_CALLS);
            obs.incr(kernel.dispatch_counter());
            obs.add(gcnt_obs::counters::TENSOR_SPMM_ROWS, rows.len() as u64);
            let nnz: usize = rows
                .iter()
                .map(|&r| {
                    let start = self.indptr.get(r).copied().unwrap_or(0);
                    self.indptr.get(r + 1).copied().unwrap_or(start) - start
                })
                .sum();
            obs.add(gcnt_obs::counters::TENSOR_SPMM_NNZ, nnz as u64);
        }
        let mut out = Matrix::zeros(rows.len(), n);
        if n == 0 {
            return Ok(out);
        }
        let data = out.as_mut_slice();
        for (out_row, &r) in data.chunks_mut(n).zip(rows) {
            let start = self.indptr.get(r).copied().unwrap_or(0);
            let end = self.indptr.get(r + 1).copied().unwrap_or(start);
            let idx = self.indices.get(start..end).unwrap_or(&[]);
            let vals = self.values.get(start..end).unwrap_or(&[]);
            kernel::spmm_row(kernel, out_row, idx, vals, |c| rhs.row(c));
        }
        Ok(out)
    }

    /// Sparse × dense product using the *transpose* of `self`:
    /// `self^T * rhs`, without materialising the transpose.
    ///
    /// Used by the GCN backward pass (`dE_{d-1} = A^T · dG_d`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.rows() == rhs.rows()`.
    pub fn transpose_spmm(&self, rhs: &Matrix) -> Result<Matrix> {
        debug_assert!(
            self.structure_ok(),
            "transpose_spmm on a malformed CSR matrix"
        );
        if self.rows != rhs.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "transpose_spmm",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        // Scatter form: out[c] += v * rhs[r]. Serial to stay deterministic;
        // callers that need throughput should cache `self.transpose()` and
        // use spmm instead.
        let n = rhs.cols();
        let mut out = Matrix::zeros(self.cols, n);
        for r in 0..self.rows {
            let rhs_row: Vec<f32> = rhs.row(r).to_vec();
            for (c, v) in self.row(r) {
                let out_row = out.row_mut(c);
                for (o, &b) in out_row.iter_mut().zip(&rhs_row) {
                    *o += v * b;
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            if let Some(slot) = counts.get_mut(c as usize + 1) {
                *slot += 1;
            }
        }
        let mut running = 0usize;
        for count in counts.iter_mut() {
            running += *count;
            *count = running;
        }
        let indptr = counts.clone();
        let mut cursor = counts;
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0f32; self.nnz()];
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                let pos = cursor.get(c).copied().unwrap_or(0);
                // CAST: rows beyond u32 cannot hold entries — every stored
                // row index came from the COO's u32 storage.
                if let Some(slot) = indices.get_mut(pos) {
                    *slot = r as u32;
                }
                if let Some(slot) = values.get_mut(pos) {
                    *slot = v;
                }
                if let Some(slot) = cursor.get_mut(c) {
                    *slot += 1;
                }
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Naive COO-traversal product, kept as the *unoptimised* reference for
    /// the spmm ablation bench. Identical result to [`CsrMatrix::spmm`] but
    /// single-threaded with per-element dispatch.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == rhs.rows()`.
    pub fn spmm_reference(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "spmm_reference",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let n = rhs.cols();
        let mut out = Matrix::zeros(self.rows, n);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                for j in 0..n {
                    let cur = out.get(r, j);
                    out.set(r, j, cur + v * rhs.get(c, j));
                }
            }
        }
        Ok(out)
    }

    /// Converts to a dense matrix. Intended for tests and small examples.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                m.set(r, c, v);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> CooMatrix {
        let mut m = CooMatrix::new(3, 3);
        m.push(0, 0, 1.0);
        m.push(0, 2, 2.0);
        m.push(1, 1, 3.0);
        m.push(2, 0, 4.0);
        m.push(2, 2, 5.0);
        m
    }

    #[test]
    fn from_coo_preserves_entries() {
        let csr = sample_coo().to_csr();
        assert_eq!(csr.nnz(), 5);
        assert_eq!(csr.to_dense(), sample_coo().to_dense());
    }

    #[test]
    fn from_coo_sums_duplicates() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(0, 1, 2.5);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.to_dense().get(0, 1), 3.5);
    }

    #[test]
    fn from_coo_sorts_columns() {
        let mut coo = CooMatrix::new(1, 4);
        coo.push(0, 3, 3.0);
        coo.push(0, 0, 0.5);
        coo.push(0, 2, 2.0);
        let csr = coo.to_csr();
        let cols: Vec<usize> = csr.row(0).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![0, 2, 3]);
    }

    #[test]
    fn spmm_matches_dense() {
        let csr = sample_coo().to_csr();
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let sparse = csr.spmm(&x).unwrap();
        let dense = sample_coo().to_dense().matmul(&x).unwrap();
        assert_eq!(sparse, dense);
    }

    #[test]
    fn spmm_reference_matches_spmm() {
        let csr = sample_coo().to_csr();
        let x = Matrix::from_fn(3, 5, |r, c| (r + c) as f32);
        assert_eq!(csr.spmm(&x).unwrap(), csr.spmm_reference(&x).unwrap());
    }

    #[test]
    fn spmm_shape_mismatch() {
        let csr = sample_coo().to_csr();
        let x = Matrix::zeros(2, 2);
        assert!(matches!(
            csr.spmm(&x),
            Err(TensorError::ShapeMismatch { op: "spmm", .. })
        ));
    }

    #[test]
    fn spmm_rows_matches_full_product_bitwise() {
        let csr = sample_coo().to_csr();
        let x = Matrix::from_fn(3, 5, |r, c| (r as f32 + 0.37) * (c as f32 - 1.21));
        let full = csr.spmm(&x).unwrap();
        let sliced = csr.spmm_rows(&x, &[2, 0]).unwrap();
        assert_eq!(sliced.row(0), full.row(2));
        assert_eq!(sliced.row(1), full.row(0));
    }

    #[test]
    fn spmm_rows_checks_bounds_and_shape() {
        let csr = sample_coo().to_csr();
        assert!(matches!(
            csr.spmm_rows(&Matrix::zeros(2, 2), &[0]),
            Err(TensorError::ShapeMismatch {
                op: "spmm_rows",
                ..
            })
        ));
        assert!(matches!(
            csr.spmm_rows(&Matrix::zeros(3, 2), &[7]),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let csr = sample_coo().to_csr();
        assert_eq!(
            csr.transpose().to_dense(),
            sample_coo().to_dense().transpose()
        );
    }

    #[test]
    fn transpose_spmm_matches_explicit_transpose() {
        let csr = sample_coo().to_csr();
        let x = Matrix::from_fn(3, 2, |r, c| (2 * r + c) as f32);
        let fast = csr.transpose_spmm(&x).unwrap();
        let slow = csr.transpose().spmm(&x).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn empty_rows_are_fine() {
        let coo = CooMatrix::new(4, 4); // no entries at all
        let csr = coo.to_csr();
        let x = Matrix::filled(4, 3, 1.0);
        let y = csr.spmm(&x).unwrap();
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn large_spmm_parallel_path() {
        // Big enough to take the rayon branch.
        let n = 512;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            coo.push(i, (i + 1) % n, 1.0);
        }
        let csr = coo.to_csr();
        let x = Matrix::from_fn(n, 32, |r, c| ((r * 31 + c) % 17) as f32);
        let y = csr.spmm(&x).unwrap();
        // Spot-check: y[i] = 2*x[i] + x[(i+1)%n]
        for &i in &[0usize, 100, 511] {
            for j in 0..32 {
                let expect = 2.0 * x.get(i, j) + x.get((i + 1) % n, j);
                assert_eq!(y.get(i, j), expect);
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        let csr = sample_coo().to_csr();
        let json = serde_json::to_string(&csr).unwrap();
        let back: CsrMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(csr, back);
    }
}
