//! Dense and sparse linear-algebra kernels used by the GCN testability stack.
//!
//! This crate is the numeric substrate of the workspace. It provides exactly
//! what the DAC'19 GCN needs and nothing more:
//!
//! * [`Matrix`] — a row-major dense `f32` matrix with a rayon-parallel GEMM,
//!   used for node-feature/embedding matrices and fully-connected layers.
//! * [`CooMatrix`] — coordinate-format sparse matrix. The paper stores the
//!   netlist adjacency in COO because observation-point insertion appends
//!   three `(value, row, col)` tuples per inserted point (§3.4.1 / §4).
//! * [`CsrMatrix`] — compressed sparse row matrix with a parallel
//!   sparse×dense product ([`CsrMatrix::spmm`]), the kernel behind the
//!   matrix-form inference `E_d = σ((A·E_{d-1})·W_d)` of §3.4.1.
//! * [`PartitionedCsr`] — the same adjacency sharded into contiguous
//!   fanout-balanced row blocks with per-partition halos, whose
//!   partition-parallel [`PartitionedCsr::spmm`] is bit-identical to the
//!   serial kernel. This is what makes 10^5–10^6-node designs tractable.
//! * [`KernelPolicy`] — runtime dispatch between the scalar reference row
//!   kernels and the register-blocked, autovectorization-friendly ones
//!   (bit-identical by construction; see [`kernel`]).
//!
//! # Examples
//!
//! ```
//! use gcnt_tensor::{CooMatrix, Matrix};
//!
//! // A tiny 2-node graph: edge 0 -> 1, plus self loops.
//! let mut a = CooMatrix::new(2, 2);
//! a.push(0, 0, 1.0);
//! a.push(1, 1, 1.0);
//! a.push(1, 0, 0.5); // node 1 aggregates node 0 with weight 0.5
//! let a = a.to_csr();
//!
//! let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
//! let g = a.spmm(&x).unwrap();
//! assert_eq!(g.get(1, 0), 3.5);
//! ```

mod budget;
mod coo;
mod csr;
mod dense;
mod error;
pub mod kernel;
pub mod ops;
mod partition;

pub use budget::{Budget, Cancel};
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::Matrix;
pub use error::{Result, TensorError};
pub use kernel::{Kernel, KernelPolicy};
pub use partition::{PartitionPlan, PartitionScratch, PartitionedCsr};
