//! Runtime-dispatched row kernels: the scalar reference loops and their
//! register-blocked, autovectorization-friendly twins.
//!
//! Every hot product in this crate (sparse [`crate::CsrMatrix::spmm`],
//! partitioned [`crate::PartitionedCsr::spmm`], dense
//! [`crate::Matrix::matmul`]) is built from one row primitive: *for each
//! stored coefficient `v` of the row, accumulate `out[j] += v * src[j]`
//! over the dense operand*. [`KernelPolicy`] selects between two
//! implementations of that primitive:
//!
//! * **scalar** — the original element-at-a-time loop, kept verbatim as
//!   the bit-exactness reference;
//! * **blocked** — the same arithmetic restructured for throughput
//!   (stable rustc autovectorizes every inner body to packed f32 lanes —
//!   no `unsafe`, no nightly): sparse rows fuse up to four stored
//!   coefficients into one pass over a 64-column output tile, quartering
//!   output-row read/write traffic; dense rows get fixed-width fast
//!   paths for the embedding dimensions the model actually uses (32 and
//!   64) and for narrow outputs up to 8 columns (the two-class head)
//!   that keep the whole output row in a stack accumulator — i.e. in
//!   vector registers — across the shared dimension, plus the same
//!   64-column tiling for other widths.
//!
//! The split is empirical, not aesthetic: on netlist adjacencies
//! (~1.4 nnz/row) there is nothing to amortize blocking bookkeeping
//! against, so short sparse rows run the scalar loop unchanged, while
//! the dense `embed` GEMM — where one rhs row is reused across the whole
//! lhs row — is where the register accumulator pays (measured 1.4–2.3x;
//! see EXPERIMENTS.md).
//!
//! # Bit-identity
//!
//! The blocked kernels are **bit-identical** to the scalar ones, by
//! construction rather than by tolerance:
//!
//! * every output element `out[j]` accumulates its terms in exactly the
//!   scalar order (the stored-coefficient order `k`); tiling and
//!   coefficient fusion only regroup the *independent* `j` lanes —
//!   within one fused pass the two (or four) adds to an element stay
//!   sequenced in `k` order, so the dependent chain never reorders;
//! * each term stays a separate `mul` + `add` — nothing is fused into a
//!   wider accumulation tree, and rustc does not contract `a * b + c`
//!   into an FMA on its own (not even under `-C target-cpu=native`,
//!   which the CI kernel-equivalence matrix pins down);
//! * the fixed-width GEMM paths copy the output row into the stack
//!   accumulator and back bitwise;
//! * the scalar loop truncates every `out`/`src` zip independently, so
//!   fused passes only engage when the fused sources agree in length and
//!   fall back to single passes otherwise.
//!
//! This is what lets the dispatch stay a pure performance choice: the
//! full / incremental / partitioned equality properties the rest of the
//! workspace is built on keep holding under either kernel, property-
//! tested in `tests/kernel_properties.rs`.
//!
//! # Selection
//!
//! The process-wide policy defaults to [`KernelPolicy::Auto`] and is
//! overridable with the `GCNT_KERNEL` environment variable
//! (`scalar` | `blocked` | `auto`; anything else falls back to `auto`)
//! or programmatically via [`KernelPolicy::set_global`] (the `gcnt flow
//! --kernel` flag). Explicit `*_with` kernel entry points on the matrix
//! types bypass the global for tests and benches.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

use serde::{Deserialize, Serialize};

/// Columns per tile in the generic blocked path: 64 f32 = 256 bytes of
/// output tile, four cache lines, comfortably register/L1-resident
/// across one row's coefficients.
const TILE_COLS: usize = 64;

/// How the matrix products pick their row kernel; see the module docs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelPolicy {
    /// Always the element-at-a-time reference loops.
    Scalar,
    /// Always the register-blocked kernels (bit-identical to scalar).
    Blocked,
    /// Defer to the library's choice — currently the blocked kernels
    /// everywhere, since they degrade to the scalar loops exactly where
    /// blocking cannot win (short sparse rows, widths with no fixed
    /// path). The default.
    #[default]
    Auto,
}

/// Global policy cell: 0 = not yet initialised (read `GCNT_KERNEL` on
/// first use), otherwise `KernelPolicy as u8 + 1`.
static GLOBAL_POLICY: AtomicU8 = AtomicU8::new(0);

impl KernelPolicy {
    /// The process-wide policy: whatever [`KernelPolicy::set_global`]
    /// installed, else the `GCNT_KERNEL` environment variable, else
    /// [`KernelPolicy::Auto`].
    pub fn global() -> Self {
        match GLOBAL_POLICY.load(Ordering::Relaxed) {
            0 => {
                let policy = Self::from_env();
                policy.set_global();
                policy
            }
            v => Self::decode(v),
        }
    }

    /// Installs `self` as the process-wide policy (overrides
    /// `GCNT_KERNEL`; the CLI's `--kernel` flag lands here).
    pub fn set_global(self) {
        GLOBAL_POLICY.store(self.encode(), Ordering::Relaxed);
    }

    /// The policy named by `GCNT_KERNEL`, or `Auto` when the variable is
    /// unset or holds anything unrecognised.
    pub fn from_env() -> Self {
        std::env::var("GCNT_KERNEL")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_default()
    }

    /// Resolves the policy against a dense operand width. `Auto` picks
    /// blocked at every width today — the width hook stays so a future
    /// heuristic can discriminate without touching call sites.
    pub fn resolve(self, _dense_cols: usize) -> Kernel {
        match self {
            KernelPolicy::Scalar => Kernel::Scalar,
            KernelPolicy::Blocked | KernelPolicy::Auto => Kernel::Blocked,
        }
    }

    /// Stable label for reports and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            KernelPolicy::Scalar => "scalar",
            KernelPolicy::Blocked => "blocked",
            KernelPolicy::Auto => "auto",
        }
    }

    fn encode(self) -> u8 {
        match self {
            KernelPolicy::Scalar => 1,
            KernelPolicy::Blocked => 2,
            KernelPolicy::Auto => 3,
        }
    }

    fn decode(v: u8) -> Self {
        match v {
            1 => KernelPolicy::Scalar,
            2 => KernelPolicy::Blocked,
            _ => KernelPolicy::Auto,
        }
    }
}

impl fmt::Display for KernelPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for KernelPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(KernelPolicy::Scalar),
            "blocked" => Ok(KernelPolicy::Blocked),
            "auto" => Ok(KernelPolicy::Auto),
            other => Err(format!(
                "unknown kernel '{other}' (use scalar, blocked or auto)"
            )),
        }
    }
}

/// A resolved kernel choice (no `Auto` left to decide).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// The element-at-a-time reference loops.
    Scalar,
    /// The register-blocked loops.
    Blocked,
}

impl Kernel {
    /// Stable label for reports and metric attribution.
    pub fn label(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Blocked => "blocked",
        }
    }

    /// The dispatch counter charged when a product runs on this kernel.
    pub(crate) fn dispatch_counter(self) -> gcnt_obs::CounterId {
        match self {
            Kernel::Scalar => gcnt_obs::counters::TENSOR_KERNEL_SCALAR_DISPATCH,
            Kernel::Blocked => gcnt_obs::counters::TENSOR_KERNEL_BLOCKED_DISPATCH,
        }
    }

    /// The latency histogram an SpMM pass on this kernel reports into.
    pub(crate) fn spmm_histogram(self) -> gcnt_obs::HistogramId {
        match self {
            Kernel::Scalar => gcnt_obs::histograms::TENSOR_SPMM_SCALAR_NS,
            Kernel::Blocked => gcnt_obs::histograms::TENSOR_SPMM_BLOCKED_NS,
        }
    }
}

/// One sparse output row: `out_row[j] += v * fetch(c)[j]` for every
/// stored `(c, v)` of the row, on the chosen kernel. `fetch` maps a
/// stored column index to its dense source row (the CSR product passes
/// `rhs.row`; the partitioned product also resolves halo positions).
#[inline]
pub(crate) fn spmm_row<'a, F>(
    kernel: Kernel,
    out_row: &mut [f32],
    idx: &[u32],
    vals: &[f32],
    fetch: F,
) where
    F: Fn(usize) -> &'a [f32],
{
    match kernel {
        Kernel::Scalar => {
            for (&ci, &v) in idx.iter().zip(vals) {
                for (o, &b) in out_row.iter_mut().zip(fetch(ci as usize)) {
                    *o += v * b;
                }
            }
        }
        Kernel::Blocked => spmm_row_blocked(out_row, idx, vals, fetch),
    }
}

/// Minimum stored coefficients before the fused-tile path pays for its
/// bookkeeping. Netlist adjacencies average well under 2 nnz per row
/// (fanin 1–3); at those counts the scalar zip — which LLVM already
/// vectorizes — is the fastest implementation, measured, so shorter
/// rows run it unchanged.
const FUSE_MIN_NNZ: usize = 4;

/// Blocked sparse row: short rows run the scalar zip unchanged (it is
/// already optimal there — see [`FUSE_MIN_NNZ`]); longer rows walk the
/// output in 64-column tiles, fusing four stored coefficients into each
/// pass over a tile so the output elements are read and written once
/// per quartet instead of once per coefficient. Each output tile
/// accumulates all of the row's coefficients before the next tile
/// starts, keeping the tile L1-hot while `idx`/`vals` are re-read.
/// Per-element accumulation order is still the stored order: every
/// element belongs to exactly one tile, and the fused adds stay
/// sequenced within the pass.
fn spmm_row_blocked<'a, F>(out_row: &mut [f32], idx: &[u32], vals: &[f32], fetch: F)
where
    F: Fn(usize) -> &'a [f32],
{
    let nnz = idx.len().min(vals.len());
    if nnz < FUSE_MIN_NNZ {
        for (&ci, &v) in idx.iter().zip(vals) {
            for (o, &b) in out_row.iter_mut().zip(fetch(ci as usize)) {
                *o += v * b;
            }
        }
        return;
    }
    let mut offset = 0usize;
    for tile in out_row.chunks_mut(TILE_COLS) {
        let mut idx_q = idx.chunks_exact(4);
        let mut val_q = vals.chunks_exact(4);
        for (cq, vq) in (&mut idx_q).zip(&mut val_q) {
            if let ([c0, c1, c2, c3], &[v0, v1, v2, v3]) = (cq, vq) {
                axpy4(
                    tile,
                    v0,
                    fetch(*c0 as usize).get(offset..).unwrap_or(&[]),
                    v1,
                    fetch(*c1 as usize).get(offset..).unwrap_or(&[]),
                    v2,
                    fetch(*c2 as usize).get(offset..).unwrap_or(&[]),
                    v3,
                    fetch(*c3 as usize).get(offset..).unwrap_or(&[]),
                );
            }
        }
        let mut idx_pairs = idx_q.remainder().chunks_exact(2);
        let mut val_pairs = val_q.remainder().chunks_exact(2);
        for (cp, vp) in (&mut idx_pairs).zip(&mut val_pairs) {
            if let ([c0, c1], &[v0, v1]) = (cp, vp) {
                axpy2(
                    tile,
                    v0,
                    fetch(*c0 as usize).get(offset..).unwrap_or(&[]),
                    v1,
                    fetch(*c1 as usize).get(offset..).unwrap_or(&[]),
                );
            }
        }
        for (&ci, &v) in idx_pairs.remainder().iter().zip(val_pairs.remainder()) {
            let src = fetch(ci as usize);
            axpy(tile, v, src.get(offset..).unwrap_or(&[]));
        }
        offset += TILE_COLS;
    }
}

/// One dense GEMM output row: `out_row[j] += a * rhs_row(kk)[j]` over
/// the lhs row's entries, skipping exact zeros (the embed loop's
/// post-ReLU activations are mostly zero, and skipping is semantically
/// different from adding `0.0 * b` for non-finite `b`, so both kernels
/// skip). `rhs` is the full row-major right-hand data of width `n`.
#[inline]
pub(crate) fn gemm_row(
    kernel: Kernel,
    out_row: &mut [f32],
    lhs_row: &[f32],
    rhs: &[f32],
    n: usize,
) {
    match kernel {
        Kernel::Scalar => {
            for (kk, &a) in lhs_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.get(kk * n..(kk + 1) * n).unwrap_or(&[]);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Kernel::Blocked => gemm_row_blocked(out_row, lhs_row, rhs, n),
    }
}

/// Blocked dense row: fixed-width register-accumulator fast paths for
/// the model's widths 32/64 and for narrow outputs up to 8 columns —
/// the two-class head (one rhs row is reused across the whole lhs row,
/// so keeping `out` in registers amortizes over the shared dimension
/// `k` — unlike the sparse case, where nnz is tiny; for narrow outputs
/// the fully-unrolled body also removes the per-`kk` loop machinery
/// that otherwise dwarfs the arithmetic), else 64-column tiles.
fn gemm_row_blocked(out_row: &mut [f32], lhs_row: &[f32], rhs: &[f32], n: usize) {
    macro_rules! fixed {
        ($d:literal) => {
            if let Ok(out) = <&mut [f32; $d]>::try_from(&mut *out_row) {
                return gemm_row_fixed::<$d>(out, lhs_row, rhs);
            }
        };
    }
    match n {
        1 => fixed!(1),
        2 => fixed!(2),
        3 => fixed!(3),
        4 => fixed!(4),
        5 => fixed!(5),
        6 => fixed!(6),
        7 => fixed!(7),
        8 => fixed!(8),
        32 => fixed!(32),
        64 => fixed!(64),
        _ => {}
    }
    let mut offset = 0usize;
    for tile in out_row.chunks_mut(TILE_COLS) {
        for (kk, &a) in lhs_row.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let src = rhs.get(kk * n + offset..kk * n + n).unwrap_or(&[]);
            axpy(tile, a, src);
        }
        offset += TILE_COLS;
    }
}

/// Fixed-width dense row with the register accumulator and zero skip.
///
/// Walking the rhs with `chunks_exact` is bit-identical to the scalar
/// reference's `rhs.get(kk * n..(kk + 1) * n).unwrap_or(&[])`: a ragged
/// trailing fragment produces no complete chunk here and an empty (or
/// never-started) zip there, so neither side ever consumes it.
fn gemm_row_fixed<const D: usize>(out: &mut [f32; D], lhs_row: &[f32], rhs: &[f32]) {
    let mut acc = *out;
    for (&a, src) in lhs_row.iter().zip(rhs.chunks_exact(D)) {
        if a == 0.0 {
            continue;
        }
        let Ok(b) = <&[f32; D]>::try_from(src) else {
            continue; // unreachable: chunks_exact yields exact-D slices
        };
        for (x, &b) in acc.iter_mut().zip(b) {
            *x += a * b;
        }
    }
    *out = acc;
}

/// Four fused axpys in one pass over `out`: per element, the four adds
/// run sequenced in coefficient order — exactly four consecutive scalar
/// axpys — while the output elements are read and written once instead
/// of four times.
///
/// Falls back to two pair passes when the sources disagree in length,
/// because the scalar kernel truncates each zip *independently* and a
/// shared fused length would truncate differently.
#[inline]
#[allow(clippy::too_many_arguments)]
fn axpy4(
    out: &mut [f32],
    v0: f32,
    src0: &[f32],
    v1: f32,
    src1: &[f32],
    v2: f32,
    src2: &[f32],
    v3: f32,
    src3: &[f32],
) {
    if src0.len() != src1.len() || src1.len() != src2.len() || src2.len() != src3.len() {
        axpy2(out, v0, src0, v1, src1);
        axpy2(out, v2, src2, v3, src3);
        return;
    }
    for ((((o, &b0), &b1), &b2), &b3) in out.iter_mut().zip(src0).zip(src1).zip(src2).zip(src3) {
        *o += v0 * b0;
        *o += v1 * b1;
        *o += v2 * b2;
        *o += v3 * b3;
    }
}

/// Two fused axpys in one pass: `out[j] += v0 * src0[j]` then
/// `out[j] += v1 * src1[j]`, sequenced per element. Same independent-
/// truncation fallback as [`axpy4`].
#[inline]
fn axpy2(out: &mut [f32], v0: f32, src0: &[f32], v1: f32, src1: &[f32]) {
    if src0.len() != src1.len() {
        axpy(out, v0, src0);
        axpy(out, v1, src1);
        return;
    }
    for ((o, &b), &c) in out.iter_mut().zip(src0).zip(src1) {
        *o += v0 * b;
        *o += v1 * c;
    }
}

/// `out[j] += v * src[j]` — the plain zip, which LLVM turns into packed
/// f32 ops on its own. Lane `j` touches only lane `j`, so the
/// element-wise accumulation order is untouched.
#[inline]
fn axpy(out: &mut [f32], v: f32, src: &[f32]) {
    for (o, &b) in out.iter_mut().zip(src) {
        *o += v * b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src_rows(cols: usize, n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|r| {
                (0..cols)
                    .map(|c| ((r * 31 + c * 7) % 23) as f32 * 0.37 - 2.11)
                    .collect()
            })
            .collect()
    }

    fn run_spmm_row(kernel: Kernel, cols: usize) -> Vec<f32> {
        let rows = src_rows(cols, 6);
        let idx: Vec<u32> = vec![0, 2, 3, 5];
        let vals: Vec<f32> = vec![0.5, -1.25, 3.0, 0.125];
        let mut out = vec![0.0f32; cols];
        spmm_row(kernel, &mut out, &idx, &vals, |c| {
            rows.get(c).map(Vec::as_slice).unwrap_or(&[])
        });
        out
    }

    #[test]
    fn blocked_spmm_row_matches_scalar_across_widths() {
        for cols in [0usize, 1, 3, 7, 8, 9, 31, 32, 33, 63, 64, 65, 100, 200] {
            assert_eq!(
                run_spmm_row(Kernel::Scalar, cols),
                run_spmm_row(Kernel::Blocked, cols),
                "cols = {cols}"
            );
        }
    }

    #[test]
    fn blocked_gemm_row_matches_scalar_across_widths() {
        for n in [1usize, 2, 3, 5, 8, 31, 32, 33, 64, 65, 130] {
            let k = 9;
            let rhs: Vec<f32> = (0..k * n)
                .map(|i| ((i * 13) % 19) as f32 * 0.21 - 1.5)
                .collect();
            let mut lhs: Vec<f32> = (0..k).map(|i| (i as f32 - 4.0) * 0.75).collect();
            lhs[2] = 0.0; // exercise the zero skip
            let mut scalar = vec![0.0f32; n];
            let mut blocked = vec![0.0f32; n];
            gemm_row(Kernel::Scalar, &mut scalar, &lhs, &rhs, n);
            gemm_row(Kernel::Blocked, &mut blocked, &lhs, &rhs, n);
            assert_eq!(scalar, blocked, "n = {n}");
        }
    }

    #[test]
    fn policy_resolution_and_parsing() {
        assert_eq!(KernelPolicy::Scalar.resolve(64), Kernel::Scalar);
        assert_eq!(KernelPolicy::Blocked.resolve(2), Kernel::Blocked);
        assert_eq!(KernelPolicy::Auto.resolve(4), Kernel::Blocked);
        assert_eq!(KernelPolicy::Auto.resolve(8), Kernel::Blocked);
        assert_eq!("scalar".parse::<KernelPolicy>(), Ok(KernelPolicy::Scalar));
        assert_eq!("blocked".parse::<KernelPolicy>(), Ok(KernelPolicy::Blocked));
        assert_eq!("auto".parse::<KernelPolicy>(), Ok(KernelPolicy::Auto));
        assert!("simd".parse::<KernelPolicy>().is_err());
        assert_eq!(KernelPolicy::Blocked.to_string(), "blocked");
    }

    #[test]
    fn global_round_trips() {
        // Whatever the ambient env says, an explicit install wins and is
        // what `global` then reports.
        KernelPolicy::Scalar.set_global();
        assert_eq!(KernelPolicy::global(), KernelPolicy::Scalar);
        KernelPolicy::Auto.set_global();
        assert_eq!(KernelPolicy::global(), KernelPolicy::Auto);
    }
}
