use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by the tensor kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Name of the operation that failed, e.g. `"matmul"`.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// An index was outside the matrix bounds.
    IndexOutOfBounds {
        /// Offending `(row, col)` index.
        index: (usize, usize),
        /// Matrix shape as `(rows, cols)`.
        shape: (usize, usize),
    },
    /// A constructor was given data whose length does not match the shape.
    LengthMismatch {
        /// Expected number of elements.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// An incremental-inference embedding cache was used against a graph
    /// state it was not built for (generation counters disagree).
    StaleCache {
        /// Generation recorded in the cache.
        cache: u64,
        /// Generation of the graph tensors it was used with.
        graph: u64,
    },
    /// A work budget ran out: the computation was stopped at a
    /// cooperative checkpoint (see [`crate::Budget`]).
    BudgetExceeded {
        /// Embedding-row units charged, including the overrunning charge.
        spent: u64,
        /// The budget's cap.
        cap: u64,
    },
    /// The computation was cancelled through a [`crate::Cancel`] handle.
    Cancelled,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "data length {actual} does not match expected {expected}")
            }
            TensorError::StaleCache { cache, graph } => write!(
                f,
                "stale embedding cache: cache generation {cache} vs graph generation {graph}"
            ),
            TensorError::BudgetExceeded { spent, cap } => write!(
                f,
                "work budget exceeded: {spent} of {cap} embedding-row units"
            ),
            TensorError::Cancelled => write!(f, "computation cancelled"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(e.to_string(), "shape mismatch in matmul: 2x3 vs 4x5");
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = TensorError::IndexOutOfBounds {
            index: (9, 1),
            shape: (3, 3),
        };
        assert!(e.to_string().contains("(9, 1)"));
        assert!(e.to_string().contains("3x3"));
    }

    #[test]
    fn display_length_mismatch() {
        let e = TensorError::LengthMismatch {
            expected: 6,
            actual: 5,
        };
        assert!(e.to_string().contains('6'));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn display_stale_cache() {
        let e = TensorError::StaleCache { cache: 2, graph: 5 };
        assert!(e.to_string().contains("cache generation 2"));
        assert!(e.to_string().contains("graph generation 5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
