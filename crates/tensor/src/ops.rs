//! Free-standing element-wise and reduction helpers shared by the NN and
//! GCN crates.

use crate::Matrix;

/// Rectified linear unit applied element-wise: `max(x, 0)`.
///
/// # Examples
///
/// ```
/// use gcnt_tensor::{ops, Matrix};
///
/// let m = Matrix::from_rows(&[&[-1.0, 2.0]]).unwrap();
/// let r = ops::relu(&m);
/// assert_eq!(r.row(0), &[0.0, 2.0]);
/// ```
pub fn relu(m: &Matrix) -> Matrix {
    m.map(|v| if v > 0.0 { v } else { 0.0 })
}

/// [`relu`] applied in place — same element-wise result without
/// allocating a fresh matrix; the inference loops use this on owned
/// intermediates.
pub fn relu_in_place(m: &mut Matrix) {
    m.map_inplace(|v| if v > 0.0 { v } else { 0.0 });
}

/// Gradient mask of ReLU: `1` where the *pre-activation* input was positive.
pub fn relu_mask(pre_activation: &Matrix) -> Matrix {
    pre_activation.map(|v| if v > 0.0 { 1.0 } else { 0.0 })
}

/// Row-wise softmax, numerically stabilised by subtracting the row max.
pub fn softmax_rows(m: &Matrix) -> Matrix {
    // NaN logits would silently poison every probability in their row;
    // catch them at the kernel boundary in debug builds.
    debug_assert!(
        m.as_slice().iter().all(|v| !v.is_nan()),
        "softmax_rows on NaN logits"
    );
    let mut out = m.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
    out
}

/// One column of [`softmax_rows`] without materialising the matrix.
///
/// Performs the same per-row max / exp / sum arithmetic in the same
/// order, so `softmax_col(m, c)[r]` is bit-for-bit equal to
/// `softmax_rows(m).get(r, c)` — including the degenerate all`-inf` row
/// where the sum guard leaves the exponentials undivided.
///
/// # Panics
///
/// Panics if `col >= m.cols()`.
pub fn softmax_col(m: &Matrix, col: usize) -> Vec<f32> {
    assert!(col < m.cols(), "softmax_col: column {col} out of range");
    debug_assert!(
        m.as_slice().iter().all(|v| !v.is_nan()),
        "softmax_col on NaN logits"
    );
    let mut scratch = vec![0.0f32; m.cols()];
    (0..m.rows())
        .map(|r| {
            let row = m.row(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for (s, &v) in scratch.iter_mut().zip(row) {
                *s = (v - max).exp();
                sum += *s;
            }
            let e = scratch.get(col).copied().unwrap_or(0.0);
            if sum > 0.0 {
                e / sum
            } else {
                e
            }
        })
        .collect()
}

/// Index of the maximum element in each row.
pub fn argmax_rows(m: &Matrix) -> Vec<usize> {
    (0..m.rows())
        .map(|r| {
            let row = m.row(r);
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

/// Mean of each column.
pub fn column_means(m: &Matrix) -> Vec<f32> {
    let mut means = vec![0f64; m.cols()];
    for r in 0..m.rows() {
        for (mean, &v) in means.iter_mut().zip(m.row(r)) {
            *mean += v as f64;
        }
    }
    let n = m.rows().max(1) as f64;
    means.iter().map(|&s| (s / n) as f32).collect()
}

/// Standard deviation of each column (population, not sample).
pub fn column_stds(m: &Matrix, means: &[f32]) -> Vec<f32> {
    let mut vars = vec![0f64; m.cols()];
    for r in 0..m.rows() {
        for ((var, &mean), &v) in vars.iter_mut().zip(means).zip(m.row(r)) {
            let d = v as f64 - mean as f64;
            *var += d * d;
        }
    }
    let n = m.rows().max(1) as f64;
    vars.iter().map(|&s| ((s / n).sqrt()) as f32).collect()
}

/// Z-score normalisation per column: `(x - mean) / std`, with `std == 0`
/// columns left centred but unscaled. Returns the normalised matrix plus the
/// `(means, stds)` used, so a test set can be normalised with the training
/// statistics.
pub fn standardize_columns(m: &Matrix) -> (Matrix, Vec<f32>, Vec<f32>) {
    // A single non-finite feature (e.g. an unclamped SCOAP saturation)
    // would drag the whole column's mean/std to NaN.
    debug_assert!(
        m.as_slice().iter().all(|v| v.is_finite()),
        "standardize_columns on non-finite features"
    );
    let means = column_means(m);
    let stds = column_stds(m, &means);
    let out = apply_standardization(m, &means, &stds);
    (out, means, stds)
}

/// Applies a previously computed per-column standardisation.
///
/// # Panics
///
/// Panics if `means`/`stds` lengths differ from `m.cols()`.
pub fn apply_standardization(m: &Matrix, means: &[f32], stds: &[f32]) -> Matrix {
    assert_eq!(means.len(), m.cols(), "means length mismatch");
    assert_eq!(stds.len(), m.cols(), "stds length mismatch");
    let mut out = m.clone();
    for r in 0..out.rows() {
        for ((v, &mean), &std) in out.row_mut(r).iter_mut().zip(means).zip(stds) {
            *v -= mean;
            if std > 1e-12 {
                *v /= std;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negative() {
        let m = Matrix::from_rows(&[&[-3.0, 0.0, 2.5]]).unwrap();
        assert_eq!(relu(&m).row(0), &[0.0, 0.0, 2.5]);
    }

    #[test]
    fn relu_mask_is_indicator() {
        let m = Matrix::from_rows(&[&[-1.0, 0.0, 0.1]]).unwrap();
        assert_eq!(relu_mask(&m).row(0), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]).unwrap();
        let s = softmax_rows(&m);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Larger logits get larger probabilities.
        assert!(s.get(0, 2) > s.get(0, 1));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let m = Matrix::from_rows(&[&[1000.0, 1001.0]]).unwrap();
        let s = softmax_rows(&m);
        assert!(s.row(0).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn argmax_rows_picks_max() {
        let m = Matrix::from_rows(&[&[0.1, 0.9], &[0.8, 0.2]]).unwrap();
        assert_eq!(argmax_rows(&m), vec![1, 0]);
    }

    #[test]
    fn standardize_centers_and_scales() {
        let m = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 10.0]]).unwrap();
        let (s, means, stds) = standardize_columns(&m);
        assert_eq!(means, vec![2.0, 10.0]);
        assert_eq!(stds[0], 1.0);
        assert_eq!(stds[1], 0.0);
        assert_eq!(s.get(0, 0), -1.0);
        assert_eq!(s.get(1, 0), 1.0);
        // Zero-variance column is centred but not divided.
        assert_eq!(s.get(0, 1), 0.0);
    }

    #[test]
    fn apply_standardization_reuses_stats() {
        let train = Matrix::from_rows(&[&[0.0], &[2.0]]).unwrap();
        let (_, means, stds) = standardize_columns(&train);
        let test = Matrix::from_rows(&[&[4.0]]).unwrap();
        let s = apply_standardization(&test, &means, &stds);
        assert_eq!(s.get(0, 0), 3.0); // (4 - 1) / 1
    }
}
