//! Partition-aware CSR: contiguous row-range shards with per-partition
//! halos and a partition-parallel SpMM.
//!
//! [`PartitionedCsr`] re-shapes a square adjacency matrix into `P`
//! contiguous row blocks chosen by a fanout-aware [`PartitionPlan`]
//! (blocks balance `1 + nnz` per row, so hub-heavy regions get smaller
//! blocks). Each block stores:
//!
//! * a **local `u32` row pointer** array (memory-frugal: the per-block
//!   nnz bound is what has to fit in `u32`, not the global nnz), backed
//!   by one shared arena — no per-partition allocation churn;
//! * its non-zeros in one shared `indices`/`values` arena, with column
//!   indices **remapped**: an index `< cols` is a global column owned by
//!   the block itself, an index `>= cols` points into the block's
//!   **halo** — the sorted list of out-of-block columns the block reads;
//! * the halo column list itself, again in one shared arena.
//!
//! [`PartitionedCsr::spmm`] runs one worker per partition over the same
//! scoped-thread plumbing as `core`'s `train_parallel`. Each worker first
//! performs the *halo exchange* — gathering the dense rows its block
//! reads from other partitions into a scratch arena — then runs exactly
//! the serial [`CsrMatrix::spmm`] row kernel over its block. Because the
//! serial kernel is independent per output row and the halo gather is a
//! bitwise copy, the partitioned product is **bit-identical** to the
//! serial one for any partition count (property-tested in
//! `tests/partition_properties.rs`, the same guarantee discipline as
//! `train_parallel` and `embed_incremental`).

use std::time::Instant;

use crate::kernel::{self, Kernel, KernelPolicy};
use crate::{CsrMatrix, Matrix, Result, TensorError};

/// A contiguous row-range partitioning of an `n x n` adjacency: `P + 1`
/// block boundaries with every block non-empty (unless `n == 0`).
///
/// # Examples
///
/// ```
/// use gcnt_tensor::PartitionPlan;
///
/// let plan = PartitionPlan::balanced(&[1, 1, 1, 1], 2);
/// assert_eq!(plan.starts(), &[0, 2, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    starts: Vec<usize>,
}

impl PartitionPlan {
    /// Splits `rows` rows into `parts` near-equal contiguous blocks.
    pub fn uniform(rows: usize, parts: usize) -> Self {
        Self::balanced(&vec![0usize; rows], parts)
    }

    /// Fanout-aware split: balances `1 + row_nnz[r]` across blocks, so
    /// partitions covering high-fanout hubs hold fewer rows. `parts` is
    /// clamped to `1..=rows` (a block is never empty).
    pub fn balanced(row_nnz: &[usize], parts: usize) -> Self {
        let rows = row_nnz.len();
        let parts = parts.clamp(1, rows.max(1));
        let total: usize = row_nnz.iter().map(|&w| w + 1).sum();
        let mut starts = Vec::with_capacity(parts + 1);
        starts.push(0usize);
        let mut cum = 0usize;
        for (r, &w) in row_nnz.iter().enumerate() {
            cum += w + 1;
            let placed = starts.len();
            if placed == parts {
                break;
            }
            let rows_left = rows - (r + 1);
            let must_cut = rows_left == parts - placed;
            // Close block `placed` once its proportional share of the
            // total weight is behind us (or when the remaining rows are
            // exactly enough to give every later block one row).
            let share_met = cum * parts >= total * placed;
            if must_cut || (share_met && rows_left >= parts - placed) {
                starts.push(r + 1);
            }
        }
        starts.push(rows);
        PartitionPlan { starts }
    }

    /// Block boundaries: block `p` covers rows `starts[p]..starts[p+1]`.
    pub fn starts(&self) -> &[usize] {
        &self.starts
    }

    /// Number of blocks.
    pub fn partitions(&self) -> usize {
        self.starts.len().saturating_sub(1)
    }
}

/// Reusable dense scratch for the halo exchange: one arena sized to
/// `total_halo_cols x rhs_cols`, split into disjoint per-partition
/// chunks before the workers start. Reusing it across layers avoids
/// per-call allocation in the embed loop.
#[derive(Debug, Default)]
pub struct PartitionScratch {
    data: Vec<f32>,
}

impl PartitionScratch {
    /// Creates an empty scratch; the first `spmm_with` sizes it.
    pub fn new() -> Self {
        PartitionScratch { data: Vec::new() }
    }
}

/// The per-worker slice bundle for one partition: borrowed block views
/// of the shared arenas plus the worker's disjoint output and scratch
/// chunks.
struct Block<'a> {
    indptr: &'a [u32],
    indices: &'a [u32],
    values: &'a [f32],
    halo: &'a [u32],
    out: &'a mut [f32],
    scratch: &'a mut [f32],
}

/// A square CSR matrix sharded into contiguous row blocks with
/// per-partition halos (see the module docs for the storage layout).
///
/// # Examples
///
/// ```
/// use gcnt_tensor::{CooMatrix, Matrix, PartitionedCsr};
///
/// let mut coo = CooMatrix::new(4, 4);
/// coo.push(0, 3, 2.0); // row 0 reads column 3: a halo of partition 0
/// coo.push(3, 0, 1.0);
/// let csr = coo.to_csr();
/// let part = PartitionedCsr::from_csr(&csr, 2).unwrap();
/// let x = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
/// assert_eq!(part.spmm(&x).unwrap(), csr.spmm(&x).unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct PartitionedCsr {
    rows: usize,
    cols: usize,
    /// Block boundaries, `parts + 1` entries.
    starts: Vec<usize>,
    /// Per-block local row pointers, one arena: block `p` owns
    /// `indptr[starts[p] + p .. starts[p+1] + p + 1]`, `rows + parts`
    /// entries total, each relative to the block's first non-zero.
    indptr: Vec<u32>,
    /// Global non-zero offset of each block, `parts + 1` entries.
    nnz_starts: Vec<usize>,
    /// Remapped column of each non-zero: `< cols` is a global in-block
    /// column, `>= cols` is `cols + halo_position` within the block.
    indices: Vec<u32>,
    values: Vec<f32>,
    /// Per-block halo ranges into `halo_cols`, `parts + 1` entries.
    halo_starts: Vec<usize>,
    /// Sorted out-of-block global columns each block reads, one arena.
    halo_cols: Vec<u32>,
}

impl PartitionedCsr {
    /// Partitions a square CSR matrix into `parts` fanout-balanced row
    /// blocks.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the matrix is not
    /// square (only adjacency-shaped matrices have a row-owner for every
    /// column, which is what gives halo columns an owning partition).
    pub fn from_csr(csr: &CsrMatrix, parts: usize) -> Result<Self> {
        let row_nnz: Vec<usize> = csr
            .indptr()
            .iter()
            .zip(csr.indptr().iter().skip(1))
            .map(|(&a, &b)| b - a)
            .collect();
        Self::from_csr_with_plan(csr, &PartitionPlan::balanced(&row_nnz, parts))
    }

    /// Partitions a square CSR matrix along an explicit plan.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] for a non-square matrix
    /// and [`TensorError::LengthMismatch`] if the plan does not cover
    /// the matrix rows exactly.
    pub fn from_csr_with_plan(csr: &CsrMatrix, plan: &PartitionPlan) -> Result<Self> {
        let rows = csr.rows();
        let cols = csr.cols();
        if rows != cols {
            return Err(TensorError::ShapeMismatch {
                op: "partition_from_csr",
                lhs: (rows, cols),
                rhs: (rows, rows),
            });
        }
        let bounds = plan.starts();
        let covering = bounds.first() == Some(&0)
            && bounds.last() == Some(&rows)
            && bounds.windows(2).all(|w| match w {
                [a, b] => (rows == 0 && a == b) || a < b,
                _ => true,
            });
        if !covering {
            return Err(TensorError::LengthMismatch {
                expected: rows,
                actual: bounds.last().copied().unwrap_or(0),
            });
        }
        let parts = plan.partitions();
        let mut indptr: Vec<u32> = Vec::with_capacity(rows + parts);
        let mut nnz_starts = Vec::with_capacity(parts + 1);
        let mut indices: Vec<u32> = Vec::with_capacity(csr.nnz());
        let mut values: Vec<f32> = Vec::with_capacity(csr.nnz());
        let mut halo_starts = Vec::with_capacity(parts + 1);
        let mut halo_cols: Vec<u32> = Vec::new();
        nnz_starts.push(0usize);
        halo_starts.push(0usize);
        for (&lo, &hi) in bounds.iter().zip(bounds.iter().skip(1)) {
            // Pass 1: this block's halo — the sorted distinct columns it
            // reads from outside its own row range.
            let mut halo: Vec<u32> = Vec::new();
            for r in lo..hi {
                for (c, _) in csr.row(r) {
                    if c < lo || c >= hi {
                        // CAST: c < cols, and CSR column storage is u32.
                        halo.push(c as u32);
                    }
                }
            }
            halo.sort_unstable();
            halo.dedup();
            // The remap encodes halo positions above `cols`; both must
            // fit the u32 index arena.
            let top = cols.saturating_add(halo.len());
            if u32::try_from(top).is_err() {
                return Err(TensorError::LengthMismatch {
                    expected: u32::MAX as usize,
                    actual: top,
                });
            }
            // Pass 2: local row pointers and remapped non-zeros.
            let block_nnz_base = values.len();
            indptr.push(0u32);
            for r in lo..hi {
                for (c, v) in csr.row(r) {
                    let enc = if c >= lo && c < hi {
                        // CAST: in-block global column; c < cols ≤ u32::MAX
                        // checked above via `top`.
                        c as u32
                    } else {
                        // CAST: c is in the sorted halo by construction.
                        let pos = halo.partition_point(|&h| (h as usize) < c);
                        // CAST: cols + pos ≤ `top`, checked above.
                        (cols + pos) as u32
                    };
                    indices.push(enc);
                    values.push(v);
                }
                // CAST: per-block nnz ≤ `top`, checked above.
                indptr.push((values.len() - block_nnz_base) as u32);
            }
            nnz_starts.push(values.len());
            halo_cols.extend_from_slice(&halo);
            halo_starts.push(halo_cols.len());
        }
        let obs = gcnt_obs::global();
        if obs.is_enabled() {
            obs.gauge_set(gcnt_obs::gauges::TENSOR_PARTITIONS_ACTIVE, parts as f64);
        }
        Ok(PartitionedCsr {
            rows,
            cols,
            starts: bounds.to_vec(),
            indptr,
            nnz_starts,
            indices,
            values,
            halo_starts,
            halo_cols,
        })
    }

    /// Number of rows (== columns; the matrix is square).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of row blocks.
    pub fn partitions(&self) -> usize {
        self.starts.len().saturating_sub(1)
    }

    /// Block boundaries: block `p` covers rows `starts[p]..starts[p+1]`.
    pub fn starts(&self) -> &[usize] {
        &self.starts
    }

    /// The shared local-row-pointer arena (see the field docs).
    pub fn indptr(&self) -> &[u32] {
        &self.indptr
    }

    /// Global non-zero offset of each block.
    pub fn nnz_starts(&self) -> &[usize] {
        &self.nnz_starts
    }

    /// Remapped column indices (see the field docs for the encoding).
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Non-zero values, parallel to [`PartitionedCsr::indices`].
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Per-block ranges into [`PartitionedCsr::halo_cols`].
    pub fn halo_starts(&self) -> &[usize] {
        &self.halo_starts
    }

    /// Sorted out-of-block columns each block reads, concatenated.
    pub fn halo_cols(&self) -> &[u32] {
        &self.halo_cols
    }

    /// Total halo rows exchanged per SpMM (sum over blocks).
    pub fn halo_total(&self) -> usize {
        self.halo_cols.len()
    }

    /// Row range of block `p` (empty if `p` is out of range).
    pub fn partition_rows(&self, p: usize) -> std::ops::Range<usize> {
        let lo = self.starts.get(p).copied().unwrap_or(self.rows);
        let hi = self.starts.get(p + 1).copied().unwrap_or(lo);
        lo..hi
    }

    /// Partition-parallel sparse × dense product, allocating fresh halo
    /// scratch. Bit-identical to [`CsrMatrix::spmm`] on the same matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == rhs.rows()`.
    pub fn spmm(&self, rhs: &Matrix) -> Result<Matrix> {
        let mut scratch = PartitionScratch::new();
        self.spmm_with(rhs, &mut scratch)
    }

    /// Partition-parallel sparse × dense product reusing a caller-owned
    /// halo scratch arena (the embed loop calls this once per layer).
    ///
    /// One scoped worker runs per partition: it gathers its halo rows
    /// from `rhs` into its scratch chunk (the halo exchange), then runs
    /// the serial CSR row kernel over its block. Per-partition wall
    /// clock is recorded in the `gcnt_tensor_partition_spmm_ns`
    /// histogram and gathered rows in
    /// `gcnt_tensor_halo_rows_exchanged_total`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == rhs.rows()`.
    pub fn spmm_with(&self, rhs: &Matrix, scratch: &mut PartitionScratch) -> Result<Matrix> {
        self.spmm_with_kernel(rhs, scratch, KernelPolicy::global())
    }

    /// [`PartitionedCsr::spmm_with`] on an explicit kernel policy,
    /// bypassing the process-wide setting. The policy is resolved once
    /// and every partition worker runs the same resolved kernel, so the
    /// bit-identity with [`CsrMatrix::spmm`] holds kernel-by-kernel.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == rhs.rows()`.
    pub fn spmm_with_kernel(
        &self,
        rhs: &Matrix,
        scratch: &mut PartitionScratch,
        policy: KernelPolicy,
    ) -> Result<Matrix> {
        if self.cols != rhs.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "partitioned_spmm",
                lhs: (self.rows, self.cols),
                rhs: rhs.shape(),
            });
        }
        let n = rhs.cols();
        let kernel = policy.resolve(n);
        let obs = gcnt_obs::global();
        let enabled = obs.is_enabled();
        if enabled {
            obs.incr(gcnt_obs::counters::TENSOR_SPMM_CALLS);
            obs.incr(kernel.dispatch_counter());
            obs.add(gcnt_obs::counters::TENSOR_SPMM_ROWS, self.rows as u64);
            obs.add(
                gcnt_obs::counters::TENSOR_SPMM_NNZ,
                self.values.len() as u64,
            );
            obs.add(
                gcnt_obs::counters::TENSOR_HALO_ROWS,
                self.halo_cols.len() as u64,
            );
        }
        let started = enabled.then(Instant::now);
        let mut out = Matrix::zeros(self.rows, n);
        if n == 0 || self.rows == 0 {
            return Ok(out);
        }
        scratch.data.resize(self.halo_cols.len() * n, 0.0);
        let blocks = self.blocks(out.as_mut_slice(), scratch.data.as_mut_slice(), n);
        let timings = run_blocks(blocks, rhs, self.cols, n, kernel);
        if enabled {
            for ns in timings {
                obs.observe(gcnt_obs::histograms::TENSOR_PARTITION_SPMM_NS, ns);
            }
        }
        if let Some(t0) = started {
            // CAST: saturating at u64::MAX ns is fine for a latency sample.
            obs.observe(kernel.spmm_histogram(), t0.elapsed().as_nanos() as u64);
        }
        Ok(out)
    }

    /// Carves the shared arenas, the output matrix, and the scratch
    /// arena into one disjoint [`Block`] per partition.
    fn blocks<'a>(
        &'a self,
        out: &'a mut [f32],
        scratch: &'a mut [f32],
        n: usize,
    ) -> Vec<Block<'a>> {
        let parts = self.partitions();
        let mut blocks = Vec::with_capacity(parts);
        let mut out_rest = out;
        let mut scr_rest = scratch;
        for p in 0..parts {
            let range = self.partition_rows(p);
            let (out_p, out_tail) = std::mem::take(&mut out_rest).split_at_mut(range.len() * n);
            out_rest = out_tail;
            let halo_lo = self.halo_starts.get(p).copied().unwrap_or(0);
            let halo_hi = self.halo_starts.get(p + 1).copied().unwrap_or(halo_lo);
            let (scr_p, scr_tail) =
                std::mem::take(&mut scr_rest).split_at_mut((halo_hi - halo_lo) * n);
            scr_rest = scr_tail;
            let ip_lo = range.start + p;
            let ip_hi = range.end + p + 1;
            let nnz_lo = self.nnz_starts.get(p).copied().unwrap_or(0);
            let nnz_hi = self.nnz_starts.get(p + 1).copied().unwrap_or(nnz_lo);
            blocks.push(Block {
                indptr: self.indptr.get(ip_lo..ip_hi).unwrap_or(&[]),
                indices: self.indices.get(nnz_lo..nnz_hi).unwrap_or(&[]),
                values: self.values.get(nnz_lo..nnz_hi).unwrap_or(&[]),
                halo: self.halo_cols.get(halo_lo..halo_hi).unwrap_or(&[]),
                out: out_p,
                scratch: scr_p,
            });
        }
        blocks
    }
}

/// Runs one scoped worker per block (the `train_parallel` plumbing) and
/// returns each worker's wall-clock nanoseconds. A panicking worker is
/// resumed on the caller's thread, exactly as a serial kernel panic
/// would surface.
fn run_blocks(
    blocks: Vec<Block<'_>>,
    rhs: &Matrix,
    cols: usize,
    n: usize,
    kernel: Kernel,
) -> Vec<u64> {
    let scoped = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .into_iter()
            .map(|block| scope.spawn(move |_| spmm_block(block, rhs, cols, n, kernel)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(ns) => ns,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect::<Vec<u64>>()
    });
    match scoped {
        Ok(timings) => timings,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// One partition's work: halo exchange, then the shared CSR row kernel
/// over the block on the resolved [`Kernel`]. Accumulation order per
/// output row is exactly [`CsrMatrix::spmm`]'s on the same kernel, and
/// both kernels agree bitwise, so the result is bit-identical to the
/// serial product whatever the policy.
fn spmm_block(block: Block<'_>, rhs: &Matrix, cols: usize, n: usize, kern: Kernel) -> u64 {
    let t0 = Instant::now();
    let Block {
        indptr,
        indices,
        values,
        halo,
        out,
        scratch,
    } = block;
    // Halo exchange: gather the out-of-block rows this block reads into
    // its scratch chunk (a bitwise copy, so reading the copy below is
    // identical to reading `rhs` directly).
    for (dst, &c) in scratch.chunks_mut(n).zip(halo) {
        dst.copy_from_slice(rhs.row(c as usize));
    }
    let gathered: &[f32] = scratch;
    // Column indices >= `cols` are halo positions: resolve them into the
    // gathered arena, everything else straight from `rhs`.
    let fetch = |c: usize| {
        if c < cols {
            rhs.row(c)
        } else {
            let off = (c - cols) * n;
            gathered.get(off..off + n).unwrap_or(&[])
        }
    };
    let row_starts = indptr.iter();
    let row_ends = indptr.iter().skip(1);
    for ((out_row, &s), &e) in out.chunks_mut(n).zip(row_starts).zip(row_ends) {
        let idx = indices.get(s as usize..e as usize).unwrap_or(&[]);
        let vals = values.get(s as usize..e as usize).unwrap_or(&[]);
        kernel::spmm_row(kern, out_row, idx, vals, fetch);
    }
    // CAST: saturating clock-to-u64; 2^64 ns is ~584 years.
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn ring(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.5);
            coo.push(i, (i + 1) % n, 0.25);
            coo.push((i + 3) % n, i, -0.75);
        }
        coo.to_csr()
    }

    #[test]
    fn plan_uniform_covers_all_rows() {
        let plan = PartitionPlan::uniform(10, 3);
        assert_eq!(plan.partitions(), 3);
        assert_eq!(plan.starts().first(), Some(&0));
        assert_eq!(plan.starts().last(), Some(&10));
        assert!(plan.starts().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn plan_clamps_parts_to_rows() {
        assert_eq!(PartitionPlan::uniform(2, 8).partitions(), 2);
        assert_eq!(PartitionPlan::uniform(0, 4).partitions(), 1);
        assert_eq!(PartitionPlan::uniform(0, 4).starts(), &[0, 0]);
    }

    #[test]
    fn plan_balances_skewed_fanout() {
        // One hub row with 90 nnz, nine rows with 1: the hub should sit
        // in a small block.
        let mut weights = vec![1usize; 10];
        weights[0] = 90;
        let plan = PartitionPlan::balanced(&weights, 2);
        assert_eq!(plan.partitions(), 2);
        // First block carries the hub and must end early.
        assert!(plan.starts()[1] <= 2, "starts = {:?}", plan.starts());
    }

    #[test]
    fn from_csr_rejects_non_square() {
        let coo = CooMatrix::new(3, 4);
        let err = PartitionedCsr::from_csr(&coo.to_csr(), 2).unwrap_err();
        assert!(matches!(err, TensorError::ShapeMismatch { .. }));
    }

    #[test]
    fn from_csr_with_plan_rejects_non_covering() {
        let csr = ring(6);
        let plan = PartitionPlan {
            starts: vec![0, 3, 5],
        };
        let err = PartitionedCsr::from_csr_with_plan(&csr, &plan).unwrap_err();
        assert!(matches!(err, TensorError::LengthMismatch { .. }));
    }

    #[test]
    fn single_partition_has_no_halo() {
        let part = PartitionedCsr::from_csr(&ring(8), 1).unwrap();
        assert_eq!(part.partitions(), 1);
        assert_eq!(part.halo_total(), 0);
    }

    #[test]
    fn halo_cols_are_sorted_and_out_of_block() {
        let part = PartitionedCsr::from_csr(&ring(16), 4).unwrap();
        assert!(part.halo_total() > 0, "ring edges must cross blocks");
        for p in 0..part.partitions() {
            let range = part.partition_rows(p);
            let lo = part.halo_starts()[p];
            let hi = part.halo_starts()[p + 1];
            let halo = &part.halo_cols()[lo..hi];
            assert!(halo.windows(2).all(|w| w[0] < w[1]), "halo not sorted");
            for &c in halo {
                assert!(!range.contains(&(c as usize)), "halo col owned by block");
            }
        }
    }

    #[test]
    fn spmm_matches_serial_bitwise_for_all_partition_counts() {
        let csr = ring(23);
        let x = Matrix::from_fn(23, 7, |r, c| ((r * 31 + c * 17) % 13) as f32 * 0.37 - 1.21);
        let serial = csr.spmm(&x).unwrap();
        for parts in 1..=8 {
            let part = PartitionedCsr::from_csr(&csr, parts).unwrap();
            let got = part.spmm(&x).unwrap();
            assert_eq!(got, serial, "parts = {parts}");
        }
    }

    #[test]
    fn spmm_with_reuses_scratch_across_calls() {
        let csr = ring(12);
        let part = PartitionedCsr::from_csr(&csr, 3).unwrap();
        let mut scratch = PartitionScratch::new();
        let x = Matrix::from_fn(12, 4, |r, c| (r + c) as f32);
        let y = Matrix::from_fn(12, 4, |r, c| (r * c) as f32 - 3.0);
        assert_eq!(
            part.spmm_with(&x, &mut scratch).unwrap(),
            csr.spmm(&x).unwrap()
        );
        assert_eq!(
            part.spmm_with(&y, &mut scratch).unwrap(),
            csr.spmm(&y).unwrap()
        );
    }

    #[test]
    fn spmm_shape_mismatch() {
        let part = PartitionedCsr::from_csr(&ring(6), 2).unwrap();
        assert!(matches!(
            part.spmm(&Matrix::zeros(5, 3)),
            Err(TensorError::ShapeMismatch {
                op: "partitioned_spmm",
                ..
            })
        ));
    }

    #[test]
    fn empty_matrix_round_trips() {
        let csr = CooMatrix::new(0, 0).to_csr();
        let part = PartitionedCsr::from_csr(&csr, 4).unwrap();
        assert_eq!(part.partitions(), 1);
        let out = part.spmm(&Matrix::zeros(0, 3)).unwrap();
        assert_eq!(out.shape(), (0, 3));
    }

    #[test]
    fn zero_width_rhs_is_fine() {
        let part = PartitionedCsr::from_csr(&ring(6), 2).unwrap();
        let out = part.spmm(&Matrix::zeros(6, 0)).unwrap();
        assert_eq!(out.shape(), (6, 0));
    }

    #[test]
    fn indptr_blocks_are_local_and_monotone() {
        let part = PartitionedCsr::from_csr(&ring(20), 5).unwrap();
        for p in 0..part.partitions() {
            let range = part.partition_rows(p);
            let lo = range.start + p;
            let hi = range.end + p + 1;
            let block = &part.indptr()[lo..hi];
            assert_eq!(block.first(), Some(&0));
            assert!(block.windows(2).all(|w| w[0] <= w[1]));
            let block_nnz = part.nnz_starts()[p + 1] - part.nnz_starts()[p];
            assert_eq!(block.last().copied().map(|v| v as usize), Some(block_nnz));
        }
    }
}
