use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::kernel::{self, KernelPolicy};
use crate::{Result, TensorError};

/// GEMM falls back to a serial loop below this many output elements; the
/// rayon dispatch overhead dominates for tiny matrices.
const PAR_GEMM_THRESHOLD: usize = 16 * 1024;

/// A row-major dense `f32` matrix.
///
/// This is the workhorse type for node-feature matrices (`N x 4`), embedding
/// matrices (`N x K_d`) and fully-connected weights. All binary operations
/// validate shapes and return [`TensorError::ShapeMismatch`] on disagreement.
///
/// # Examples
///
/// ```
/// use gcnt_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix with every element set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::LengthMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of equally long rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the rows have differing
    /// lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(TensorError::LengthMismatch {
                    expected: ncols,
                    actual: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Matrix product `self * rhs`, parallelised over rows for large
    /// outputs, on the process-wide [`KernelPolicy`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        self.matmul_with_kernel(rhs, KernelPolicy::global())
    }

    /// [`Matrix::matmul`] on an explicit kernel policy, bypassing the
    /// process-wide setting. Both kernels produce bit-identical output
    /// (see [`crate::kernel`]); the choice is purely a throughput one.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == rhs.rows()`.
    pub fn matmul_with_kernel(&self, rhs: &Matrix, policy: KernelPolicy) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        let k = self.cols;
        let kern = policy.resolve(n);
        {
            let obs = gcnt_obs::global();
            if obs.is_enabled() {
                obs.incr(kern.dispatch_counter());
            }
        }
        let gemm_row = |(r, out_row): (usize, &mut [f32])| {
            let lhs_row = self.data.get(r * k..(r + 1) * k).unwrap_or(&[]);
            kernel::gemm_row(kern, out_row, lhs_row, &rhs.data, n);
        };
        if self.rows * n >= PAR_GEMM_THRESHOLD {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(r, out_row)| gemm_row((r, out_row)));
        } else {
            for (r, out_row) in out.data.chunks_mut(n).enumerate() {
                gemm_row((r, out_row));
            }
        }
        Ok(out)
    }

    /// Matrix product plus row-broadcast bias `self * rhs + bias`, on
    /// the process-wide [`KernelPolicy`].
    ///
    /// The bias is added to each output row immediately after that row's
    /// accumulation finishes — while the row is still cache-hot — which
    /// is bit-identical to running [`Matrix::matmul`] and then a second
    /// full `+= bias` pass (the bias lands after the complete `k`-order
    /// sum either way) but skips re-walking the output slab. This is the
    /// linear-layer forward `x·W + b`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == rhs.rows()` and `bias.len() == rhs.cols()`.
    pub fn matmul_bias(&self, rhs: &Matrix, bias: &[f32]) -> Result<Matrix> {
        self.matmul_bias_with_kernel(rhs, bias, KernelPolicy::global())
    }

    /// [`Matrix::matmul_bias`] on an explicit kernel policy, bypassing
    /// the process-wide setting.
    ///
    /// # Errors
    ///
    /// As [`Matrix::matmul_bias`].
    pub fn matmul_bias_with_kernel(
        &self,
        rhs: &Matrix,
        bias: &[f32],
        policy: KernelPolicy,
    ) -> Result<Matrix> {
        if self.cols != rhs.rows || bias.len() != rhs.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_bias",
                lhs: self.shape(),
                rhs: if self.cols != rhs.rows {
                    rhs.shape()
                } else {
                    (bias.len(), 1)
                },
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        let k = self.cols;
        let kern = policy.resolve(n);
        {
            let obs = gcnt_obs::global();
            if obs.is_enabled() {
                obs.incr(kern.dispatch_counter());
            }
        }
        let gemm_row = |(r, out_row): (usize, &mut [f32])| {
            let lhs_row = self.data.get(r * k..(r + 1) * k).unwrap_or(&[]);
            kernel::gemm_row(kern, out_row, lhs_row, &rhs.data, n);
            for (o, &b) in out_row.iter_mut().zip(bias) {
                *o += b;
            }
        };
        if self.rows * n >= PAR_GEMM_THRESHOLD {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(r, out_row)| gemm_row((r, out_row)));
        } else {
            for (r, out_row) in out.data.chunks_mut(n).enumerate() {
                gemm_row((r, out_row));
            }
        }
        Ok(out)
    }

    /// Matrix product `self^T * rhs` without materialising the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.rows() == rhs.rows()`.
    pub fn transpose_matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "transpose_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        // out[k][n] = sum_r self[r][k] * rhs[r][n]
        let k = self.cols;
        let n = rhs.cols;
        let rows = self.rows;
        let compute_out_row = |kk: usize, out_row: &mut [f32]| {
            let lhs_rows = self.data.chunks_exact(k.max(1));
            let rhs_rows = rhs.data.chunks_exact(n.max(1));
            for (lhs_row, rhs_row) in lhs_rows.zip(rhs_rows) {
                let a = lhs_row.get(kk).copied().unwrap_or(0.0);
                if a == 0.0 {
                    continue;
                }
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        };
        let mut out = Matrix::zeros(k, n);
        if k * n >= 1024 && rows > 256 {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(kk, out_row)| compute_out_row(kk, out_row));
        } else {
            for (kk, out_row) in out.data.chunks_mut(n).enumerate() {
                compute_out_row(kk, out_row);
            }
        }
        Ok(out)
    }

    /// Matrix product `self * rhs^T` without materialising the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == rhs.cols()`.
    pub fn matmul_transpose(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_transpose",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let k = self.cols;
        let n = rhs.rows;
        let mut out = Matrix::zeros(self.rows, n);
        // Dot-product form: each output element is one serial reduction, so
        // this stays on the scalar loop — unrolling it with partial
        // accumulators would change the summation order and break the
        // bit-exactness contract the kernel dispatch is built on.
        let gemm_row = |(r, out_row): (usize, &mut [f32])| {
            let lhs_row = self.data.get(r * k..(r + 1) * k).unwrap_or(&[]);
            for (o, rhs_row) in out_row.iter_mut().zip(rhs.data.chunks_exact(k.max(1))) {
                let mut acc = 0.0;
                for (a, b) in lhs_row.iter().zip(rhs_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        };
        if self.rows * n >= PAR_GEMM_THRESHOLD {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(r, out_row)| gemm_row((r, out_row)));
        } else {
            for (r, out_row) in out.data.chunks_mut(n).enumerate() {
                gemm_row((r, out_row));
            }
        }
        Ok(out)
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        let rows = self.rows;
        for (r, row) in self.data.chunks_exact(self.cols.max(1)).enumerate() {
            for (c, &v) in row.iter().enumerate() {
                if let Some(o) = out.data.get_mut(c * rows + r) {
                    *o = v;
                }
            }
        }
        out
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    /// In-place `self += alpha * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Fused `self + a * x + b * y` in one pass over the operands.
    ///
    /// Each element is computed as `(self + a * x) + b * y` — the exact
    /// addition order of `clone` + [`Matrix::axpy`] + [`Matrix::axpy`] —
    /// so the result is bit-identical to the three-pass version while
    /// reading every operand slab once instead of walking the output
    /// three times. This is the aggregation combine
    /// `E + w_pr·(P·E) + w_su·(S·E)` of the GCN embed loop.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_scaled2(&self, a: f32, x: &Matrix, b: f32, y: &Matrix) -> Result<Matrix> {
        if self.shape() != x.shape() || self.shape() != y.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "add_scaled2",
                lhs: self.shape(),
                rhs: if self.shape() != x.shape() {
                    x.shape()
                } else {
                    y.shape()
                },
            });
        }
        let data = self
            .data
            .iter()
            .zip(&x.data)
            .zip(&y.data)
            .map(|((&e, &p), &s)| {
                let t = e + a * p;
                t + b * s
            })
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Scales every element in place.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Returns a new matrix with `f` applied element-wise.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Sum of the element-wise product, `sum(self .* rhs)`.
    ///
    /// This is the scalar gradient kernel for the aggregation weights
    /// `w_pr` / `w_su` in the GCN backward pass.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn dot(&self, rhs: &Matrix) -> Result<f32> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "dot",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum::<f64>() as f32)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&v| v as f64).sum::<f64>() as f32
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        (self
            .data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>())
        .sqrt() as f32
    }

    /// Extracts the listed rows into a new matrix (gather).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Writes the rows of `src` into `self` at the listed indices
    /// (scatter): `self[indices[i]] = src[i]`.
    ///
    /// Inverse of [`Matrix::gather_rows`] over the same index list; the
    /// incremental inference engine uses the pair to patch recomputed
    /// embedding rows back into a cached layer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the column counts differ or
    /// `src.rows() != indices.len()`, and [`TensorError::IndexOutOfBounds`]
    /// if any index is out of range. `self` is left untouched on error.
    pub fn scatter_rows(&mut self, indices: &[usize], src: &Matrix) -> Result<()> {
        if self.cols != src.cols || src.rows != indices.len() {
            return Err(TensorError::ShapeMismatch {
                op: "scatter_rows",
                lhs: (indices.len(), self.cols),
                rhs: src.shape(),
            });
        }
        if let Some(&bad) = indices.iter().find(|&&r| r >= self.rows) {
            return Err(TensorError::IndexOutOfBounds {
                index: (bad, 0),
                shape: self.shape(),
            });
        }
        for (i, &r) in indices.iter().enumerate() {
            self.row_mut(r).copy_from_slice(src.row(i));
        }
        Ok(())
    }

    /// Appends one row to the bottom of the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `row.len() != self.cols()`.
    pub fn push_row(&mut self, row: &[f32]) -> Result<()> {
        if row.len() != self.cols {
            return Err(TensorError::LengthMismatch {
                expected: self.cols,
                actual: row.len(),
            });
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(TensorError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap();
        let fast = a.transpose_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_transpose_matches_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[9.0, 10.0]]).unwrap();
        let fast = a.matmul_transpose(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_sub_hadamard() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 5.0]]).unwrap();
        assert_eq!(
            a.add(&b).unwrap(),
            Matrix::from_rows(&[&[4.0, 7.0]]).unwrap()
        );
        assert_eq!(
            b.sub(&a).unwrap(),
            Matrix::from_rows(&[&[2.0, 3.0]]).unwrap()
        );
        assert_eq!(
            a.hadamard(&b).unwrap(),
            Matrix::from_rows(&[&[3.0, 10.0]]).unwrap()
        );
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::zeros(1, 2);
        let b = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a, Matrix::from_rows(&[&[2.0, 4.0]]).unwrap());
    }

    #[test]
    fn dot_and_sum() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.dot(&a).unwrap(), 30.0);
        assert_eq!(a.sum(), 10.0);
    }

    #[test]
    fn gather_rows_picks_rows() {
        let a = Matrix::from_fn(4, 2, |r, _| r as f32);
        let g = a.gather_rows(&[3, 1]);
        assert_eq!(g.row(0), &[3.0, 3.0]);
        assert_eq!(g.row(1), &[1.0, 1.0]);
    }

    #[test]
    fn scatter_rows_is_gather_inverse() {
        let mut a = Matrix::from_fn(4, 2, |r, c| (10 * r + c) as f32);
        let original = a.clone();
        let idx = [3usize, 1];
        let taken = a.gather_rows(&idx);
        let patch = Matrix::from_rows(&[&[-1.0, -2.0], &[-3.0, -4.0]]).unwrap();
        a.scatter_rows(&idx, &patch).unwrap();
        assert_eq!(a.row(3), &[-1.0, -2.0]);
        assert_eq!(a.row(1), &[-3.0, -4.0]);
        assert_eq!(a.row(0), original.row(0));
        a.scatter_rows(&idx, &taken).unwrap();
        assert_eq!(a, original);
    }

    #[test]
    fn scatter_rows_rejects_bad_shapes() {
        let mut a = Matrix::zeros(3, 2);
        let src = Matrix::zeros(2, 2);
        assert!(matches!(
            a.scatter_rows(&[0], &src),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            a.scatter_rows(&[0, 9], &src),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn push_row_appends() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        a.push_row(&[3.0, 4.0]).unwrap();
        assert_eq!(a.shape(), (2, 2));
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert!(matches!(
            a.push_row(&[5.0]),
            Err(TensorError::LengthMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn vstack_stacks() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let s = a.vstack(&b).unwrap();
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn from_vec_length_checked() {
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(TensorError::LengthMismatch {
                expected: 4,
                actual: 3
            })
        ));
    }

    #[test]
    fn large_matmul_parallel_path() {
        // Exercise the rayon branch (rows * cols >= threshold).
        let a = Matrix::from_fn(256, 128, |r, c| ((r + c) % 7) as f32);
        let b = Matrix::from_fn(128, 128, |r, c| ((r * c) % 5) as f32);
        let par = a.matmul(&b).unwrap();
        // Serial reference on a few spot-checked entries.
        for &(r, c) in &[(0, 0), (17, 93), (255, 127)] {
            let mut acc = 0.0;
            for k in 0..128 {
                acc += a.get(r, k) * b.get(k, c);
            }
            assert!((par.get(r, c) - acc).abs() < 1e-3);
        }
    }

    #[test]
    fn serde_round_trip() {
        let a = Matrix::from_rows(&[&[1.5, -2.0], &[0.0, 4.25]]).unwrap();
        let json = serde_json::to_string(&a).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
