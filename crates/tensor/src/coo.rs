use serde::{Deserialize, Serialize};

use crate::{CsrMatrix, Matrix, Result, TensorError};

/// A sparse matrix in coordinate (COO) format.
///
/// The DAC'19 flow stores the netlist adjacency matrix in COO because it
/// supports *incremental* construction: inserting one observation point
/// appends exactly three `(value, row, col)` tuples — `(w_pr, p, v)`,
/// `(w_su, v, p)` and `(1, p, p)` — without touching the rest of the matrix
/// (paper §4). Convert to [`CsrMatrix`] with [`CooMatrix::to_csr`] for fast
/// products.
///
/// Duplicate coordinates are allowed and are summed during CSR conversion,
/// matching the usual COO semantics.
///
/// # Examples
///
/// ```
/// use gcnt_tensor::CooMatrix;
///
/// let mut a = CooMatrix::new(3, 3);
/// a.push(0, 1, 2.0);
/// a.push(2, 2, 1.0);
/// assert_eq!(a.nnz(), 2);
/// assert!(a.sparsity() > 0.7);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    values: Vec<f32>,
    row_indices: Vec<u32>,
    col_indices: Vec<u32>,
}

impl CooMatrix {
    /// Creates an empty `rows x cols` COO matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            values: Vec::new(),
            row_indices: Vec::new(),
            col_indices: Vec::new(),
        }
    }

    /// Creates an empty matrix with capacity for `cap` non-zeros.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            values: Vec::with_capacity(cap),
            row_indices: Vec::with_capacity(cap),
            col_indices: Vec::with_capacity(cap),
        }
    }

    /// Builds a COO matrix from `(row, col, value)` triplets.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if any triplet lies outside
    /// the matrix.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f32)>,
    ) -> Result<Self> {
        let mut m = CooMatrix::new(rows, cols);
        for (r, c, v) in triplets {
            m.try_push(r, c, v)?;
        }
        Ok(m)
    }

    /// Appends a non-zero entry.
    ///
    /// # Panics
    ///
    /// Panics if `(r, c)` is out of bounds. Use [`CooMatrix::try_push`] for a
    /// fallible variant.
    pub fn push(&mut self, r: usize, c: usize, v: f32) {
        self.try_push(r, c, v).expect("COO index out of bounds");
    }

    /// Appends a non-zero entry, validating the coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `(r, c)` is out of
    /// bounds.
    pub fn try_push(&mut self, r: usize, c: usize, v: f32) -> Result<()> {
        let oob = || TensorError::IndexOutOfBounds {
            index: (r, c),
            shape: (self.rows, self.cols),
        };
        if r >= self.rows || c >= self.cols {
            return Err(oob());
        }
        // Indices are stored as u32; a coordinate past 4Gi is reported as
        // out of bounds rather than silently wrapped.
        let r32 = u32::try_from(r).map_err(|_| oob())?;
        let c32 = u32::try_from(c).map_err(|_| oob())?;
        self.values.push(v);
        self.row_indices.push(r32);
        self.col_indices.push(c32);
        Ok(())
    }

    /// Grows the matrix to `rows x cols`, keeping all existing entries.
    ///
    /// Observation-point insertion adds one node to the graph, which grows
    /// the adjacency by one row and one column; existing entries stay valid.
    ///
    /// # Panics
    ///
    /// Panics if the new shape is smaller than the current shape.
    pub fn grow(&mut self, rows: usize, cols: usize) {
        assert!(
            rows >= self.rows && cols >= self.cols,
            "grow cannot shrink a COO matrix"
        );
        self.rows = rows;
        self.cols = cols;
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries (duplicates counted separately).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of the matrix that is zero, in `[0, 1]`.
    ///
    /// The paper reports sparsity above 99.95% for all benchmark designs.
    pub fn sparsity(&self) -> f64 {
        let total = self.rows as f64 * self.cols as f64;
        if total == 0.0 {
            return 1.0;
        }
        1.0 - self.nnz() as f64 / total
    }

    /// Iterates over `(row, col, value)` triplets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        self.row_indices
            .iter()
            .zip(&self.col_indices)
            .zip(&self.values)
            .map(|((&r, &c), &v)| (r as usize, c as usize, v))
    }

    /// Converts to CSR, summing duplicate coordinates.
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_coo(self)
    }

    /// Converts to a dense matrix (summing duplicates). Intended for tests
    /// and small examples only.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            let cur = m.get(r, c);
            m.set(r, c, cur + v);
        }
        m
    }
}

impl FromIterator<(usize, usize, f32)> for CooMatrix {
    /// Collects triplets into a COO matrix sized to fit the largest indices.
    fn from_iter<T: IntoIterator<Item = (usize, usize, f32)>>(iter: T) -> Self {
        let triplets: Vec<_> = iter.into_iter().collect();
        let rows = triplets.iter().map(|&(r, _, _)| r + 1).max().unwrap_or(0);
        let cols = triplets.iter().map(|&(_, c, _)| c + 1).max().unwrap_or(0);
        CooMatrix::from_triplets(rows, cols, triplets)
            .expect("indices are in bounds by construction")
    }
}

impl Extend<(usize, usize, f32)> for CooMatrix {
    /// Appends triplets.
    ///
    /// # Panics
    ///
    /// Panics if any triplet is out of bounds.
    fn extend<T: IntoIterator<Item = (usize, usize, f32)>>(&mut self, iter: T) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iter() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 1, 3.0);
        m.push(1, 0, -1.0);
        let triplets: Vec<_> = m.iter().collect();
        assert_eq!(triplets, vec![(0, 1, 3.0), (1, 0, -1.0)]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = CooMatrix::new(2, 2);
        assert!(matches!(
            m.try_push(2, 0, 1.0),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn sparsity_empty_is_one() {
        assert_eq!(CooMatrix::new(0, 0).sparsity(), 1.0);
        assert_eq!(CooMatrix::new(10, 10).sparsity(), 1.0);
    }

    #[test]
    fn sparsity_counts_entries() {
        let mut m = CooMatrix::new(10, 10);
        m.push(0, 0, 1.0);
        assert!((m.sparsity() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn grow_preserves_entries() {
        let mut m = CooMatrix::new(2, 2);
        m.push(1, 1, 5.0);
        m.grow(3, 3);
        m.push(2, 2, 1.0);
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    #[should_panic(expected = "grow cannot shrink")]
    fn grow_cannot_shrink() {
        CooMatrix::new(3, 3).grow(2, 3);
    }

    #[test]
    fn to_dense_sums_duplicates() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 0, 1.0);
        m.push(0, 0, 2.0);
        assert_eq!(m.to_dense().get(0, 0), 3.0);
    }

    #[test]
    fn from_iterator_sizes_to_fit() {
        let m: CooMatrix = vec![(0, 5, 1.0), (3, 1, 2.0)].into_iter().collect();
        assert_eq!(m.shape(), (4, 6));
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn extend_appends() {
        let mut m = CooMatrix::new(4, 4);
        m.extend(vec![(0, 0, 1.0), (3, 3, 2.0)]);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let mut m = CooMatrix::new(2, 3);
        m.push(1, 2, 4.5);
        let json = serde_json::to_string(&m).unwrap();
        let back: CooMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
