//! Difficult-to-observe node labeling.
//!
//! The paper obtains its binary node labels "from commercial DFT tools"
//! (§3.1). Such tools flag nodes whose fault effects rarely reach an
//! observable point under random patterns — exactly what
//! [`label_difficult_to_observe`] measures with parallel-pattern
//! simulation plus critical path tracing: a node is *difficult to observe*
//! if the fraction of random patterns under which a flip of the node would
//! be visible at a scan cell or primary output falls below a threshold.
//!
//! A SCOAP-percentile labeler is also provided as a fast, deterministic
//! alternative; note that SCOAP observability is one of the model's input
//! features, so training against SCOAP-derived labels is a much easier
//! (and less interesting) task.

use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use gcnt_netlist::{CellKind, Netlist, Result, Scoap};

use crate::cpt::sensitivity;
use crate::sim::PatternSim;

/// Configuration of the random-pattern observability labeler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelConfig {
    /// Number of random patterns to simulate (rounded up to a multiple of
    /// 64).
    pub patterns: usize,
    /// A node is labeled difficult-to-observe if its estimated
    /// observability (fraction of patterns under which it is observable)
    /// is *below* this threshold.
    pub threshold: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LabelConfig {
    fn default() -> Self {
        LabelConfig {
            patterns: 8192,
            threshold: 0.0005,
            seed: 0xDF7,
        }
    }
}

/// Result of the labeling pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelResult {
    /// Per-node labels: 1 = difficult-to-observe.
    pub labels: Vec<u8>,
    /// Estimated per-node random-pattern observability in `[0, 1]`.
    pub observability: Vec<f64>,
    /// Patterns actually simulated.
    pub patterns: usize,
}

impl LabelResult {
    /// Number of positive (difficult-to-observe) nodes.
    pub fn positive_count(&self) -> usize {
        self.labels.iter().filter(|&&l| l == 1).count()
    }
}

/// Labels every node by random-pattern observability estimation.
///
/// `Output` cells and scan flip-flops are never labeled positive — they
/// *are* observe points.
///
/// # Errors
///
/// Returns a netlist error if the design has a combinational cycle.
///
/// # Examples
///
/// ```
/// use gcnt_dft::labeler::{label_difficult_to_observe, LabelConfig};
/// use gcnt_netlist::{generate, GeneratorConfig};
///
/// let net = generate(&GeneratorConfig::sized("l", 5, 600));
/// let result = label_difficult_to_observe(&net, &LabelConfig::default())?;
/// assert!(result.positive_count() < net.node_count() / 10);
/// # Ok::<(), gcnt_netlist::NetlistError>(())
/// ```
pub fn label_difficult_to_observe(net: &Netlist, cfg: &LabelConfig) -> Result<LabelResult> {
    let sim = PatternSim::new(net)?;
    let batches = cfg.patterns.div_ceil(64).max(1);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut observed = vec![0u64; net.node_count()];
    for _ in 0..batches {
        let values = sim.simulate_random(&mut rng);
        let sens = sensitivity(&sim, &values);
        for (o, s) in observed.iter_mut().zip(&sens) {
            *o += s.count_ones() as u64;
        }
    }
    let total = (batches * 64) as f64;
    let observability: Vec<f64> = observed.iter().map(|&o| o as f64 / total).collect();
    let labels: Vec<u8> = net
        .nodes()
        .map(|v| {
            let kind = net.kind(v);
            if kind == CellKind::Output || kind == CellKind::Dff {
                return 0;
            }
            u8::from(observability[v.index()] < cfg.threshold)
        })
        .collect();
    Ok(LabelResult {
        labels,
        observability,
        patterns: batches * 64,
    })
}

/// Labels the worst `fraction` of nodes by SCOAP observability (e.g.
/// `0.006` labels the least observable 0.6%).
///
/// # Panics
///
/// Panics unless `0.0 <= fraction <= 1.0`.
pub fn label_by_scoap(net: &Netlist, scoap: &Scoap, fraction: f64) -> Vec<u8> {
    assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
    let mut cos: Vec<u32> = net
        .nodes()
        .filter(|&v| !matches!(net.kind(v), CellKind::Output | CellKind::Dff))
        .map(|v| scoap.co(v))
        .collect();
    if cos.is_empty() {
        return vec![0; net.node_count()];
    }
    cos.sort_unstable();
    let rank = ((cos.len() as f64) * (1.0 - fraction)) as usize;
    let threshold = cos[rank.min(cos.len() - 1)].max(1);
    net.nodes()
        .map(|v| {
            if matches!(net.kind(v), CellKind::Output | CellKind::Dff) {
                0
            } else {
                u8::from(scoap.co(v) >= threshold)
            }
        })
        .collect()
}

/// Labels nodes whose *COP* (analytic, probability-based) observability
/// falls below a threshold — a one-pass O(E) approximation of
/// [`label_difficult_to_observe`] that needs no simulation. Exact on
/// fanout-free logic; approximate through reconvergence.
pub fn label_by_cop(net: &Netlist, threshold: f64) -> Result<Vec<u8>> {
    let cop = gcnt_netlist::Cop::compute(net)?;
    Ok(net
        .nodes()
        .map(|v| {
            if matches!(net.kind(v), CellKind::Output | CellKind::Dff) {
                0
            } else {
                u8::from(cop.observability(v) < threshold)
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_netlist::{generate, GeneratorConfig, NodeId};

    #[test]
    fn shadowed_nodes_are_positive() {
        // Hand-build a shadow: chain hidden behind a wide AND gate.
        let mut net = Netlist::new("shadow");
        let src = net.add_cell(CellKind::Input);
        let mut chain = src;
        let mut hidden = Vec::new();
        for _ in 0..3 {
            let g = net.add_cell(CellKind::Not);
            net.connect(chain, g).unwrap();
            hidden.push(g);
            chain = g;
        }
        // Gating AND over 14 fresh inputs: open with prob 2^-14.
        let mut gate_in: Vec<NodeId> = (0..14).map(|_| net.add_cell(CellKind::Input)).collect();
        while gate_in.len() > 1 {
            let g = net.add_cell(CellKind::And);
            let a = gate_in.pop().unwrap();
            let b = gate_in.pop().unwrap();
            net.connect(a, g).unwrap();
            net.connect(b, g).unwrap();
            gate_in.insert(0, g);
        }
        let exit = net.add_cell(CellKind::And);
        net.connect(chain, exit).unwrap();
        net.connect(gate_in[0], exit).unwrap();
        let o = net.add_cell(CellKind::Output);
        net.connect(exit, o).unwrap();

        let cfg = LabelConfig {
            patterns: 2048,
            threshold: 0.01,
            seed: 1,
        };
        let result = label_difficult_to_observe(&net, &cfg).unwrap();
        for &h in &hidden {
            assert_eq!(result.labels[h.index()], 1, "hidden node {h} not positive");
            assert!(result.observability[h.index()] < 0.01);
        }
        // The exit gate drives a PO directly: easy to observe.
        assert_eq!(result.labels[exit.index()], 0);
    }

    #[test]
    fn generated_designs_have_small_positive_rate() {
        let net = generate(&GeneratorConfig::sized("rate", 13, 3_000));
        let result = label_difficult_to_observe(&net, &LabelConfig::default()).unwrap();
        let rate = result.positive_count() as f64 / net.node_count() as f64;
        // The paper's designs sit near 0.6%; the generator aims for the
        // same ballpark (well under 5%, above zero).
        assert!(rate > 0.0, "no positives at all");
        assert!(rate < 0.05, "positive rate {rate} too high");
    }

    #[test]
    fn outputs_and_dffs_never_positive() {
        let net = generate(&GeneratorConfig::sized("od", 19, 1_000));
        let result = label_difficult_to_observe(&net, &LabelConfig::default()).unwrap();
        for v in net.nodes() {
            if matches!(net.kind(v), CellKind::Output | CellKind::Dff) {
                assert_eq!(result.labels[v.index()], 0);
            }
        }
    }

    #[test]
    fn labeling_is_deterministic() {
        let net = generate(&GeneratorConfig::sized("det", 23, 800));
        let cfg = LabelConfig::default();
        let a = label_difficult_to_observe(&net, &cfg).unwrap();
        let b = label_difficult_to_observe(&net, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scoap_labeler_hits_requested_fraction() {
        let net = generate(&GeneratorConfig::sized("sc", 29, 2_000));
        let scoap = Scoap::compute(&net).unwrap();
        let labels = label_by_scoap(&net, &scoap, 0.02);
        let rate = labels.iter().filter(|&&l| l == 1).count() as f64 / net.node_count() as f64;
        assert!(rate > 0.001 && rate < 0.1, "rate {rate}");
    }

    #[test]
    fn cop_labeler_agrees_with_simulation_on_most_nodes() {
        let net = generate(&GeneratorConfig::sized("cop", 37, 2_000));
        let sim_based = label_difficult_to_observe(&net, &LabelConfig::default()).unwrap();
        let cop_based = label_by_cop(&net, 0.0005).unwrap();
        let agree = sim_based
            .labels
            .iter()
            .zip(&cop_based)
            .filter(|(a, b)| a == b)
            .count();
        let rate = agree as f64 / net.node_count() as f64;
        assert!(rate > 0.95, "agreement {rate}");
        // And it must find at least some of the same hard nodes.
        let both = sim_based
            .labels
            .iter()
            .zip(&cop_based)
            .filter(|&(&a, &b)| a == 1 && b == 1)
            .count();
        assert!(both > 0, "no overlap between labelers");
    }

    #[test]
    fn label_result_counts() {
        let r = LabelResult {
            labels: vec![0, 1, 1, 0],
            observability: vec![1.0, 0.0, 0.0, 0.5],
            patterns: 64,
        };
        assert_eq!(r.positive_count(), 2);
    }
}
