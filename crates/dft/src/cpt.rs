//! Critical path tracing (CPT): per-pattern observability in one backward
//! pass.
//!
//! For a batch of 64 simulated patterns, `sensitivity` computes for every
//! node `v` a word whose bit `i` is 1 iff flipping `v` under pattern `i`
//! would change some observable point (primary output or scan flip-flop
//! input). A fault `v stuck-at-b` is then graded *detected by pattern `i`*
//! iff `v`'s good value under `i` is `!b` (the fault is excited) and bit
//! `i` of the sensitivity word is set (the fault effect propagates).
//!
//! With reconvergent fanout CPT is the standard industry approximation
//! (it ORs path sensitivities instead of solving the exact multi-path
//! Boolean difference, which can both over- and under-count when fault
//! effects reconverge). The test suite cross-checks it against exact
//! single-fault simulation on small circuits.

use gcnt_netlist::{CellKind, Netlist, NodeId};

use crate::error::DftError;
use crate::sim::PatternSim;

/// Computes the 64-pattern sensitivity word of every node given the good
/// simulation values of the same batch.
///
/// # Panics
///
/// Panics if `values.len()` differs from the node count — provable at call
/// sites whose `values` came from the same simulator's `simulate`. Call
/// sites without that invariant should use [`try_sensitivity`].
pub fn sensitivity(sim: &PatternSim<'_>, values: &[u64]) -> Vec<u64> {
    try_sensitivity(sim, values).expect("values came from the same simulator")
}

/// Fallible variant of [`sensitivity`]: a wrong buffer length becomes a
/// typed error instead of a panic.
///
/// # Errors
///
/// Returns [`DftError::WordCount`] if `values.len()` differs from the node
/// count.
pub fn try_sensitivity(sim: &PatternSim<'_>, values: &[u64]) -> Result<Vec<u64>, DftError> {
    let net = sim.netlist();
    if values.len() != net.node_count() {
        return Err(DftError::WordCount {
            expected: net.node_count(),
            actual: values.len(),
        });
    }
    let mut sens = vec![0u64; net.node_count()];
    // Observable sinks are fully sensitive. DFF D-input drivers must be
    // marked *before* the sweep: a DFF is a pseudo-source, so it sits early
    // in topological order and its driver is popped before it in the
    // reverse sweep.
    for id in net.nodes() {
        match net.kind(id) {
            CellKind::Output => sens[id.index()] = !0,
            CellKind::Dff => {
                // The D input is observed through the scan chain under
                // every pattern.
                if let Some(&d) = net.fanin(id).first() {
                    sens[d.index()] = !0;
                }
            }
            _ => {}
        }
    }
    // Reverse topological sweep: when a node is popped its sensitivity is
    // final; push edge-sensitivities to its fanins.
    for &u in sim.order().iter().rev() {
        let kind = net.kind(u);
        if kind == CellKind::Input || kind == CellKind::Dff {
            continue;
        }
        let su = sens[u.index()];
        if su == 0 {
            continue;
        }
        propagate_to_fanins(net, u, kind, su, values, &mut sens);
    }
    Ok(sens)
}

fn propagate_to_fanins(
    net: &Netlist,
    u: NodeId,
    kind: CellKind,
    su: u64,
    values: &[u64],
    sens: &mut [u64],
) {
    let fanin = net.fanin(u);
    match kind {
        CellKind::Output | CellKind::Buf | CellKind::Not => {
            sens[fanin[0].index()] |= su;
        }
        CellKind::Xor | CellKind::Xnor => {
            // XOR edges are always sensitive.
            for &v in fanin {
                sens[v.index()] |= su;
            }
        }
        CellKind::And | CellKind::Nand | CellKind::Or | CellKind::Nor => {
            // An input is sensitive where all *other* inputs are at the
            // non-controlling value. Computed with prefix/suffix products
            // so a k-input gate costs O(k), not O(k^2).
            let controlling_zero = matches!(kind, CellKind::And | CellKind::Nand);
            let word_of = |v: NodeId| {
                let w = values[v.index()];
                if controlling_zero {
                    w // non-controlling value is 1
                } else {
                    !w // non-controlling value is 0
                }
            };
            let k = fanin.len();
            if k == 1 {
                sens[fanin[0].index()] |= su;
                return;
            }
            let mut prefix = vec![!0u64; k + 1];
            for i in 0..k {
                prefix[i + 1] = prefix[i] & word_of(fanin[i]);
            }
            let mut suffix = !0u64;
            for i in (0..k).rev() {
                let others = prefix[i] & suffix;
                sens[fanin[i].index()] |= su & others;
                suffix &= word_of(fanin[i]);
            }
        }
        CellKind::Input | CellKind::Dff => unreachable!("handled by caller"),
    }
}

/// Exact single-fault simulation (reference implementation for tests and
/// small-circuit validation): returns the word of patterns under which the
/// given stuck-at fault is detected at any observable point.
///
/// # Panics
///
/// Panics if `good.len()` differs from the node count; see
/// [`try_exact_detection`] for the fallible variant.
pub fn exact_detection(
    sim: &PatternSim<'_>,
    good: &[u64],
    fault_node: NodeId,
    stuck_at: bool,
) -> u64 {
    try_exact_detection(sim, good, fault_node, stuck_at)
        .expect("good values came from the same simulator")
}

/// Fallible variant of [`exact_detection`]: a wrong buffer length becomes
/// a typed error instead of a panic.
///
/// # Errors
///
/// Returns [`DftError::WordCount`] if `good.len()` differs from the node
/// count.
pub fn try_exact_detection(
    sim: &PatternSim<'_>,
    good: &[u64],
    fault_node: NodeId,
    stuck_at: bool,
) -> Result<u64, DftError> {
    let net = sim.netlist();
    if good.len() != net.node_count() {
        return Err(DftError::WordCount {
            expected: net.node_count(),
            actual: good.len(),
        });
    }
    let mut faulty = good.to_vec();
    faulty[fault_node.index()] = if stuck_at { !0u64 } else { 0u64 };
    // Re-evaluate everything downstream of the fault in topo order.
    for &id in sim.order() {
        if id == fault_node || net.kind(id).is_pseudo_input() {
            continue;
        }
        faulty[id.index()] = eval(net, id, &faulty);
    }
    let mut detected = 0u64;
    for id in net.nodes() {
        let observed = match net.kind(id) {
            CellKind::Output => faulty[id.index()] ^ good[id.index()],
            // A DFF's D input is observed through the scan chain. A DFF
            // with no driver observes nothing (its scan state is free).
            CellKind::Dff => match net.fanin(id).first() {
                Some(&d) => faulty[d.index()] ^ good[d.index()],
                None => 0,
            },
            _ => 0,
        };
        detected |= observed;
    }
    Ok(detected)
}

fn eval(net: &Netlist, id: NodeId, values: &[u64]) -> u64 {
    let fanin = net.fanin(id);
    match net.kind(id) {
        CellKind::Input | CellKind::Dff => values[id.index()],
        CellKind::Output | CellKind::Buf => values[fanin[0].index()],
        CellKind::Not => !values[fanin[0].index()],
        CellKind::And => fanin.iter().fold(!0u64, |a, v| a & values[v.index()]),
        CellKind::Nand => !fanin.iter().fold(!0u64, |a, v| a & values[v.index()]),
        CellKind::Or => fanin.iter().fold(0u64, |a, v| a | values[v.index()]),
        CellKind::Nor => !fanin.iter().fold(0u64, |a, v| a | values[v.index()]),
        CellKind::Xor => fanin.iter().fold(0u64, |a, v| a ^ values[v.index()]),
        CellKind::Xnor => !fanin.iter().fold(0u64, |a, v| a ^ values[v.index()]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_netlist::Netlist;
    use rand::SeedableRng;

    #[test]
    fn and_gate_sensitivity() {
        let mut net = Netlist::new("and2");
        let a = net.add_cell(CellKind::Input);
        let b = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::And);
        let o = net.add_cell(CellKind::Output);
        net.connect(a, g).unwrap();
        net.connect(b, g).unwrap();
        net.connect(g, o).unwrap();
        let sim = PatternSim::new(&net).unwrap();
        // patterns: (a,b) = (0,0),(1,0),(0,1),(1,1)
        let values = sim.simulate(|v| if v == a { 0b1010 } else { 0b1100 });
        let sens = sensitivity(&sim, &values);
        // a is sensitive where b = 1: patterns 2 and 3.
        assert_eq!(sens[a.index()] & 0b1111, 0b1100);
        // b is sensitive where a = 1: patterns 1 and 3.
        assert_eq!(sens[b.index()] & 0b1111, 0b1010);
        // The gate output drives a PO directly: always sensitive.
        assert_eq!(sens[g.index()] & 0b1111, 0b1111);
    }

    #[test]
    fn or_gate_sensitivity() {
        let mut net = Netlist::new("or2");
        let a = net.add_cell(CellKind::Input);
        let b = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::Or);
        let o = net.add_cell(CellKind::Output);
        net.connect(a, g).unwrap();
        net.connect(b, g).unwrap();
        net.connect(g, o).unwrap();
        let sim = PatternSim::new(&net).unwrap();
        let values = sim.simulate(|v| if v == a { 0b1010 } else { 0b1100 });
        let sens = sensitivity(&sim, &values);
        // a is sensitive where b = 0: patterns 0 and 1.
        assert_eq!(sens[a.index()] & 0b1111, 0b0011);
    }

    #[test]
    fn xor_always_sensitive() {
        let mut net = Netlist::new("xor2");
        let a = net.add_cell(CellKind::Input);
        let b = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::Xor);
        let o = net.add_cell(CellKind::Output);
        net.connect(a, g).unwrap();
        net.connect(b, g).unwrap();
        net.connect(g, o).unwrap();
        let sim = PatternSim::new(&net).unwrap();
        let values = sim.simulate(|v| if v == a { 0b1010 } else { 0b1100 });
        let sens = sensitivity(&sim, &values);
        assert_eq!(sens[a.index()] & 0b1111, 0b1111);
        assert_eq!(sens[b.index()] & 0b1111, 0b1111);
    }

    #[test]
    fn dff_input_is_observable() {
        let mut net = Netlist::new("scan");
        let a = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::Not);
        let d = net.add_cell(CellKind::Dff);
        net.connect(a, g).unwrap();
        net.connect(g, d).unwrap();
        // No primary output at all; observability comes from the scan cell.
        let sim = PatternSim::new(&net).unwrap();
        let values = sim.simulate(|_| 0b10);
        let sens = sensitivity(&sim, &values);
        assert_eq!(sens[g.index()], !0u64);
        assert_eq!(sens[a.index()], !0u64);
    }

    #[test]
    fn unobservable_node_has_zero_sensitivity() {
        let mut net = Netlist::new("dangling");
        let a = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::Not);
        net.connect(a, g).unwrap();
        let sim = PatternSim::new(&net).unwrap();
        let values = sim.simulate(|_| 0b1);
        let sens = sensitivity(&sim, &values);
        assert_eq!(sens[g.index()], 0);
    }

    #[test]
    fn deep_and_chain_rarely_sensitive() {
        // a buried signal behind a wide AND is sensitive only when all
        // side inputs are 1.
        let mut net = Netlist::new("deep");
        let first = net.add_cell(CellKind::Input);
        let mut cur = first;
        let mut sides = Vec::new();
        for _ in 0..3 {
            let s = net.add_cell(CellKind::Input);
            let g = net.add_cell(CellKind::And);
            net.connect(cur, g).unwrap();
            net.connect(s, g).unwrap();
            sides.push(s);
            cur = g;
        }
        let o = net.add_cell(CellKind::Output);
        net.connect(cur, o).unwrap();
        let sim = PatternSim::new(&net).unwrap();
        // side inputs: only pattern 0 has all three at 1.
        let values = sim.simulate(|v| {
            if v == sides[0] {
                0b0101
            } else if v == sides[1] {
                0b0011
            } else if v == sides[2] {
                0b0001
            } else {
                0b1111
            }
        });
        let sens = sensitivity(&sim, &values);
        assert_eq!(sens[first.index()] & 0b1111, 0b0001);
    }

    /// CPT must agree with exact single-fault simulation on fanout-free
    /// circuits (where it is provably exact).
    #[test]
    fn cpt_matches_exact_on_fanout_free_circuit() {
        let mut net = Netlist::new("fof");
        let ins: Vec<_> = (0..4).map(|_| net.add_cell(CellKind::Input)).collect();
        let g1 = net.add_cell(CellKind::And);
        let g2 = net.add_cell(CellKind::Or);
        let g3 = net.add_cell(CellKind::Xor);
        let o = net.add_cell(CellKind::Output);
        net.connect(ins[0], g1).unwrap();
        net.connect(ins[1], g1).unwrap();
        net.connect(ins[2], g2).unwrap();
        net.connect(ins[3], g2).unwrap();
        net.connect(g1, g3).unwrap();
        net.connect(g2, g3).unwrap();
        net.connect(g3, o).unwrap();
        let sim = PatternSim::new(&net).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let good = sim.simulate_random(&mut rng);
        let sens = sensitivity(&sim, &good);
        for id in net.nodes() {
            if net.kind(id) == CellKind::Output {
                continue;
            }
            for stuck in [false, true] {
                let exact = exact_detection(&sim, &good, id, stuck);
                // CPT grading: excited & sensitive.
                let excited = if stuck {
                    !good[id.index()]
                } else {
                    good[id.index()]
                };
                let cpt = excited & sens[id.index()];
                assert_eq!(cpt, exact, "fault {id} sa{} mismatch", u8::from(stuck));
            }
        }
    }

    #[test]
    fn wrong_value_buffer_is_a_typed_error() {
        let mut net = Netlist::new("short");
        let a = net.add_cell(CellKind::Input);
        let o = net.add_cell(CellKind::Output);
        net.connect(a, o).unwrap();
        let sim = PatternSim::new(&net).unwrap();
        let err = try_sensitivity(&sim, &[0u64]).unwrap_err();
        assert_eq!(
            err,
            crate::error::DftError::WordCount {
                expected: 2,
                actual: 1
            }
        );
        let err = try_exact_detection(&sim, &[0u64], a, true).unwrap_err();
        assert!(matches!(err, crate::error::DftError::WordCount { .. }));
    }

    /// On reconvergent circuits CPT is approximate but must still agree
    /// with exact simulation most of the time.
    #[test]
    fn cpt_close_to_exact_with_reconvergence() {
        let net = gcnt_netlist::generate(&gcnt_netlist::GeneratorConfig {
            gates: 200,
            inputs: 24,
            ..Default::default()
        });
        let sim = PatternSim::new(&net).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let good = sim.simulate_random(&mut rng);
        let sens = sensitivity(&sim, &good);
        let mut agree = 0u64;
        let mut total = 0u64;
        for id in net.nodes().take(120) {
            if net.kind(id) == CellKind::Output {
                continue;
            }
            let exact = exact_detection(&sim, &good, id, false);
            let cpt = good[id.index()] & sens[id.index()];
            agree += (!(exact ^ cpt)).count_ones() as u64;
            total += 64;
        }
        let rate = agree as f64 / total as f64;
        assert!(rate > 0.95, "CPT agreement rate {rate}");
    }
}
