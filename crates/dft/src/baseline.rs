//! Testability-analysis-driven observation point insertion — the stand-in
//! for the commercial tool of Table 3.
//!
//! Two classic strategies are provided:
//!
//! * [`testability_opi`] — iterative random-pattern testability analysis:
//!   every node flagged difficult-to-observe gets an observation point,
//!   then the analysis is repeated on the modified design until no flags
//!   remain. This mirrors how production DFT tools drive OP insertion from
//!   their testability report, and is the baseline used for Table 3.
//!   Because it observes *every* flagged node rather than ranking by
//!   fan-in-cone impact, it inserts more points than the paper's GCN flow
//!   for the same final coverage.
//! * [`scoap_greedy_opi`] — the textbook SCOAP-greedy loop: repeatedly
//!   observe the node with the worst SCOAP observability until all nodes
//!   are below a threshold.

use serde::{Deserialize, Serialize};

use gcnt_netlist::{CellKind, Netlist, NodeId, Result, Scoap};

use crate::labeler::{label_difficult_to_observe, LabelConfig};

/// Configuration of [`testability_opi`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineConfig {
    /// Labeler settings used for each analysis round.
    pub label: LabelConfig,
    /// Maximum analysis/insert rounds.
    pub max_iterations: usize,
    /// Hard cap on inserted observation points.
    pub max_ops: usize,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            label: LabelConfig::default(),
            max_iterations: 8,
            max_ops: usize::MAX,
        }
    }
}

/// Outcome of a baseline insertion run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineOutcome {
    /// Nodes that received an observation point, in insertion order.
    pub inserted: Vec<NodeId>,
    /// Analysis rounds executed.
    pub iterations: usize,
    /// Whether the final analysis round found no difficult nodes.
    pub converged: bool,
}

/// Iterative testability-analysis OP insertion (see module docs).
///
/// # Errors
///
/// Returns a netlist error if the design has a combinational cycle.
pub fn testability_opi(net: &mut Netlist, cfg: &BaselineConfig) -> Result<BaselineOutcome> {
    let mut inserted = Vec::new();
    let mut converged = false;
    let mut iterations = 0;
    for round in 0..cfg.max_iterations {
        iterations = round + 1;
        let mut label_cfg = cfg.label.clone();
        // Fresh patterns each round so a borderline node cannot hide
        // behind one lucky pattern set.
        label_cfg.seed = cfg.label.seed.wrapping_add(round as u64);
        let result = label_difficult_to_observe(net, &label_cfg)?;
        let positives: Vec<NodeId> = net
            .nodes()
            .filter(|v| result.labels[v.index()] == 1)
            .collect();
        if positives.is_empty() {
            converged = true;
            break;
        }
        for target in positives {
            if inserted.len() >= cfg.max_ops {
                return Ok(BaselineOutcome {
                    inserted,
                    iterations,
                    converged: false,
                });
            }
            net.insert_observation_point(target)?;
            inserted.push(target);
        }
    }
    Ok(BaselineOutcome {
        inserted,
        iterations,
        converged,
    })
}

/// SCOAP-greedy OP insertion: observes the worst-observability node until
/// every non-sink node has `CO < co_threshold` or `max_ops` is reached.
/// Returns the observed nodes in insertion order.
///
/// # Errors
///
/// Returns a netlist error if the design has a combinational cycle.
pub fn scoap_greedy_opi(
    net: &mut Netlist,
    co_threshold: u32,
    max_ops: usize,
) -> Result<Vec<NodeId>> {
    let mut scoap = Scoap::compute(net)?;
    let mut inserted = Vec::new();
    while inserted.len() < max_ops {
        let worst = net
            .nodes()
            .filter(|&v| !matches!(net.kind(v), CellKind::Output | CellKind::Dff))
            .max_by_key(|&v| scoap.co(v));
        let Some(target) = worst else { break };
        if scoap.co(target) < co_threshold {
            break;
        }
        let op = net.insert_observation_point(target)?;
        scoap.observe(net, target, op);
        inserted.push(target);
    }
    Ok(inserted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_netlist::{generate, GeneratorConfig};

    fn shadowed_design(seed: u64) -> Netlist {
        let mut cfg = GeneratorConfig::sized("base", seed, 1_200);
        cfg.shadow_regions = 3;
        generate(&cfg)
    }

    #[test]
    fn testability_opi_converges_and_clears_flags() {
        let mut net = shadowed_design(51);
        let cfg = BaselineConfig {
            label: LabelConfig {
                patterns: 2_048,
                threshold: 0.005,
                seed: 2,
            },
            ..Default::default()
        };
        let before_outputs = net.primary_outputs().len();
        let outcome = testability_opi(&mut net, &cfg).unwrap();
        assert!(outcome.converged, "did not converge");
        assert!(!outcome.inserted.is_empty(), "nothing inserted");
        assert_eq!(
            net.primary_outputs().len(),
            before_outputs + outcome.inserted.len()
        );
        // After convergence, a fresh analysis (different pattern set)
        // finds at most a couple of borderline stragglers — nodes whose
        // true observability sits right at the threshold flip between
        // pattern samples.
        let fresh = label_difficult_to_observe(
            &net,
            &LabelConfig {
                patterns: 2_048,
                threshold: 0.005,
                seed: 77,
            },
        )
        .unwrap();
        assert!(
            fresh.positive_count() <= 3,
            "too many residual positives: {}",
            fresh.positive_count()
        );
        net.validate().unwrap();
    }

    #[test]
    fn max_ops_cap_is_respected() {
        let mut net = shadowed_design(52);
        let cfg = BaselineConfig {
            label: LabelConfig {
                patterns: 1_024,
                threshold: 0.01,
                seed: 3,
            },
            max_iterations: 8,
            max_ops: 5,
        };
        let outcome = testability_opi(&mut net, &cfg).unwrap();
        assert!(outcome.inserted.len() <= 5);
    }

    #[test]
    fn scoap_greedy_reduces_worst_observability() {
        let mut net = shadowed_design(53);
        let before = Scoap::compute(&net).unwrap();
        let worst_before = net
            .nodes()
            .filter(|&v| !matches!(net.kind(v), CellKind::Output | CellKind::Dff))
            .map(|v| before.co(v))
            .max()
            .unwrap();
        let threshold = worst_before / 2 + 1;
        let inserted = scoap_greedy_opi(&mut net, threshold, 1_000).unwrap();
        assert!(!inserted.is_empty());
        let after = Scoap::compute(&net).unwrap();
        let worst_after = net
            .nodes()
            .filter(|&v| !matches!(net.kind(v), CellKind::Output | CellKind::Dff))
            .map(|v| after.co(v))
            .max()
            .unwrap();
        assert!(worst_after < threshold, "worst co {worst_after}");
        net.validate().unwrap();
    }

    #[test]
    fn scoap_greedy_on_observable_design_inserts_nothing() {
        // A chain ending at a PO is already observable everywhere.
        let mut net = Netlist::new("easy");
        let a = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::Not);
        let o = net.add_cell(CellKind::Output);
        net.connect(a, g).unwrap();
        net.connect(g, o).unwrap();
        let inserted = scoap_greedy_opi(&mut net, 100, 10).unwrap();
        assert!(inserted.is_empty());
    }
}
