//! Design-for-test substrate: everything the paper gets from commercial
//! DFT/ATPG tools, built from scratch.
//!
//! * [`sim`] — 64-way parallel-pattern logic simulation of scan netlists.
//! * [`cpt`] — critical path tracing: per-pattern observability of every
//!   node in one backward pass. This is the fault-grading engine behind
//!   both the labeler and the ATPG.
//! * [`fault`] — collapsed stuck-at fault lists.
//! * [`atpg`] — random-pattern ATPG with per-pattern fault dropping;
//!   reports pattern counts and fault coverage (the `#PAs` / `Coverage`
//!   columns of Table 3).
//! * [`labeler`] — produces the difficult-to-observe node labels the paper
//!   obtains "from commercial DFT tools" (§3.1), via random-pattern
//!   observability estimation (plus a faster SCOAP-threshold variant).
//! * [`baseline`] — testability-analysis-driven observation point
//!   insertion, standing in for the commercial tool of Table 3.
//! * [`cp`] — the control-point side of test point insertion (§2.2 notes
//!   the paper's approach "can be applied to both CPs insertion and OPs
//!   insertion"): signal-probability analysis and iterative CP insertion.
//! * [`flow`] — the paper's iterative GCN-guided OP insertion (§4), with
//!   impact evaluation (Fig. 6) and incremental graph updates.
//!
//! # Examples
//!
//! ```
//! use gcnt_dft::labeler::{label_difficult_to_observe, LabelConfig};
//! use gcnt_netlist::{generate, GeneratorConfig};
//!
//! let net = generate(&GeneratorConfig::sized("d", 3, 800));
//! let result = label_difficult_to_observe(&net, &LabelConfig::default())?;
//! assert_eq!(result.labels.len(), net.node_count());
//! # Ok::<(), gcnt_netlist::NetlistError>(())
//! ```

pub mod atpg;
pub mod baseline;
pub mod cp;
pub mod cpt;
pub mod equiv;
pub mod error;
pub mod fault;
pub mod flow;
pub mod labeler;
pub mod report;
pub mod sim;

pub use error::DftError;
