//! Stuck-at fault lists.

use serde::{Deserialize, Serialize};

use gcnt_netlist::{CellKind, Netlist, NodeId};

/// A single stuck-at fault on a node's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fault {
    /// The node whose output is faulty.
    pub node: NodeId,
    /// `true` = stuck-at-1, `false` = stuck-at-0.
    pub stuck_at: bool,
}

impl Fault {
    /// Creates a stuck-at-0 fault.
    pub fn sa0(node: NodeId) -> Self {
        Fault {
            node,
            stuck_at: false,
        }
    }

    /// Creates a stuck-at-1 fault.
    pub fn sa1(node: NodeId) -> Self {
        Fault {
            node,
            stuck_at: true,
        }
    }
}

/// Builds the collapsed fault list: SA0 and SA1 on the output of every
/// cell except `Output` markers (an output cell's wire fault is equivalent
/// to its driver's output fault) and except unobservable dangling cells.
///
/// Output-fault-only collapsing is the standard structural reduction used
/// for fault-coverage *comparisons*: both flows in Table 3 are graded
/// against the same list, so relative numbers are unaffected.
pub fn collapsed_faults(net: &Netlist) -> Vec<Fault> {
    let mut out = Vec::with_capacity(net.node_count() * 2);
    for id in net.nodes() {
        if net.kind(id) == CellKind::Output {
            continue;
        }
        out.push(Fault::sa0(id));
        out.push(Fault::sa1(id));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_faults_per_non_output_cell() {
        let mut net = Netlist::new("f");
        let a = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::Not);
        let o = net.add_cell(CellKind::Output);
        net.connect(a, g).unwrap();
        net.connect(g, o).unwrap();
        let faults = collapsed_faults(&net);
        assert_eq!(faults.len(), 4); // a and g, SA0+SA1 each; o excluded
        assert!(faults.contains(&Fault::sa0(a)));
        assert!(faults.contains(&Fault::sa1(g)));
    }

    #[test]
    fn constructors() {
        let n = NodeId::from_index(3);
        assert!(!Fault::sa0(n).stuck_at);
        assert!(Fault::sa1(n).stuck_at);
        assert_eq!(Fault::sa0(n).node, n);
    }
}
