//! Random-pattern ATPG with per-pattern fault dropping.
//!
//! Stands in for the commercial ATPG of Table 3. Batches of 64 random
//! patterns are simulated; faults are graded with critical path tracing;
//! a pattern is *kept* iff it is the first (within greedy forward
//! selection) to detect some not-yet-detected fault. The run stops when
//! the pattern budget is exhausted, the target coverage is reached, or a
//! window of consecutive batches detects nothing new.
//!
//! Both TPI flows of Table 3 are measured through this same engine, so the
//! `#PAs` / `Coverage` comparison is apples-to-apples.

use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use gcnt_netlist::{Netlist, Result};

use crate::cpt::sensitivity;
use crate::fault::{collapsed_faults, Fault};
use crate::sim::PatternSim;

/// ATPG configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtpgConfig {
    /// Maximum number of patterns to apply (rounded up to a multiple of
    /// 64).
    pub max_patterns: usize,
    /// Stop early once this stuck-at coverage is reached (`1.0` never
    /// triggers early).
    pub target_coverage: f64,
    /// Stop early after this many consecutive batches that detect no new
    /// fault.
    pub useless_batch_limit: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            max_patterns: 16_384,
            target_coverage: 1.0,
            useless_batch_limit: 8,
            seed: 0xA796,
        }
    }
}

/// Outcome of an ATPG run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtpgResult {
    /// Patterns kept by greedy forward selection (`#PAs` of Table 3).
    pub patterns_kept: usize,
    /// Patterns remaining after the reverse-order compaction pass
    /// (`<= patterns_kept`).
    pub patterns_compacted: usize,
    /// Patterns simulated in total.
    pub patterns_applied: usize,
    /// Faults detected.
    pub detected: usize,
    /// Size of the collapsed fault list.
    pub total_faults: usize,
}

impl AtpgResult {
    /// Stuck-at fault coverage in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            return 0.0;
        }
        self.detected as f64 / self.total_faults as f64
    }
}

/// Runs random-pattern ATPG over the design's collapsed fault list.
///
/// # Errors
///
/// Returns a netlist error if the design has a combinational cycle.
///
/// # Examples
///
/// ```
/// use gcnt_dft::atpg::{run_random_atpg, AtpgConfig};
/// use gcnt_netlist::{generate, GeneratorConfig};
///
/// let net = generate(&GeneratorConfig::sized("a", 2, 500));
/// let result = run_random_atpg(&net, &AtpgConfig::default())?;
/// assert!(result.coverage() > 0.5);
/// # Ok::<(), gcnt_netlist::NetlistError>(())
/// ```
pub fn run_random_atpg(net: &Netlist, cfg: &AtpgConfig) -> Result<AtpgResult> {
    let faults = collapsed_faults(net);
    run_random_atpg_on(net, &faults, cfg)
}

/// Runs ATPG against a caller-supplied fault list (e.g. the shared
/// pre-insertion fault list when comparing TPI flows).
///
/// # Errors
///
/// Returns a netlist error if the design has a combinational cycle.
pub fn run_random_atpg_on(net: &Netlist, faults: &[Fault], cfg: &AtpgConfig) -> Result<AtpgResult> {
    let sim = PatternSim::new(net)?;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(cfg.seed);
    let max_batches = cfg.max_patterns.div_ceil(64).max(1);
    let mut detected = vec![false; faults.len()];
    let mut detected_count = 0usize;
    let mut patterns_kept = 0usize;
    let mut patterns_applied = 0usize;
    let mut useless_batches = 0usize;
    // Pseudo inputs in a fixed order, for extracting kept stimuli.
    let pseudo_inputs: Vec<gcnt_netlist::NodeId> = net
        .nodes()
        .filter(|&v| net.kind(v).is_pseudo_input())
        .collect();
    // One stimulus per kept pattern: one bool per pseudo input.
    let mut kept_stimuli: Vec<Vec<bool>> = Vec::new();

    for _ in 0..max_batches {
        let values = sim.simulate_random(&mut rng);
        let sens = sensitivity(&sim, &values);
        patterns_applied += 64;
        // For each undetected fault, find the first pattern in this batch
        // that detects it; greedy forward selection keeps exactly the
        // patterns that first-detect at least one fault.
        let mut kept_mask = 0u64;
        let mut newly = 0usize;
        for (i, fault) in faults.iter().enumerate() {
            if detected[i] {
                continue;
            }
            let good = values[fault.node.index()];
            let excited = if fault.stuck_at { !good } else { good };
            let word = excited & sens[fault.node.index()];
            if word != 0 {
                detected[i] = true;
                detected_count += 1;
                newly += 1;
                kept_mask |= 1u64 << word.trailing_zeros();
            }
        }
        patterns_kept += kept_mask.count_ones() as usize;
        let mut mask = kept_mask;
        while mask != 0 {
            let bit = mask.trailing_zeros();
            mask &= mask - 1;
            kept_stimuli.push(
                pseudo_inputs
                    .iter()
                    .map(|pi| values[pi.index()] & (1u64 << bit) != 0)
                    .collect(),
            );
        }
        if newly == 0 {
            useless_batches += 1;
            if useless_batches >= cfg.useless_batch_limit {
                break;
            }
        } else {
            useless_batches = 0;
        }
        if detected_count as f64 >= cfg.target_coverage * faults.len() as f64 {
            break;
        }
    }

    let patterns_compacted = reverse_order_compaction(&sim, faults, &pseudo_inputs, &kept_stimuli);

    Ok(AtpgResult {
        patterns_kept,
        patterns_compacted,
        patterns_applied,
        detected: detected_count,
        total_faults: faults.len(),
    })
}

/// Reverse-order pattern compaction: re-grades the kept patterns from the
/// *last* to the first; a pattern survives only if it detects a fault not
/// already detected by a later-surviving pattern. Late patterns were kept
/// for the stubborn faults, so they tend to cover the easy faults of early
/// patterns too — the classic static-compaction win.
fn reverse_order_compaction(
    sim: &PatternSim<'_>,
    faults: &[Fault],
    pseudo_inputs: &[gcnt_netlist::NodeId],
    kept_stimuli: &[Vec<bool>],
) -> usize {
    if kept_stimuli.is_empty() {
        return 0;
    }
    let n = sim.netlist().node_count();
    let mut detected = vec![false; faults.len()];
    let mut survivors = 0usize;
    for chunk in kept_stimuli.rchunks(64) {
        // Pack up to 64 stimuli into one word batch (bit i = chunk[i],
        // which is already reverse order across chunks).
        let mut words = vec![0u64; n];
        for (i, stim) in chunk.iter().rev().enumerate() {
            for (pi, &bit) in pseudo_inputs.iter().zip(stim) {
                if bit {
                    words[pi.index()] |= 1u64 << i;
                }
            }
        }
        let values = sim.simulate(|v| words[v.index()]);
        let sens = sensitivity(sim, &values);
        let mut kept_mask = 0u64;
        for (i, fault) in faults.iter().enumerate() {
            if detected[i] {
                continue;
            }
            let good = values[fault.node.index()];
            let excited = if fault.stuck_at { !good } else { good };
            let word = excited & sens[fault.node.index()];
            if word != 0 {
                detected[i] = true;
                kept_mask |= 1u64 << word.trailing_zeros();
            }
        }
        survivors += kept_mask.count_ones() as usize;
    }
    survivors
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_netlist::{generate, CellKind, GeneratorConfig};

    #[test]
    fn full_coverage_on_trivial_circuit() {
        let mut net = Netlist::new("trivial");
        let a = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::Not);
        let o = net.add_cell(CellKind::Output);
        net.connect(a, g).unwrap();
        net.connect(g, o).unwrap();
        let result = run_random_atpg(&net, &AtpgConfig::default()).unwrap();
        assert_eq!(result.coverage(), 1.0);
        // SA0 and SA1 of both a and g need opposite input values: at
        // least 2 patterns.
        assert!(result.patterns_kept >= 2);
    }

    #[test]
    fn coverage_reasonable_on_generated_design() {
        let net = generate(&GeneratorConfig::sized("cov", 7, 1_500));
        let result = run_random_atpg(&net, &AtpgConfig::default()).unwrap();
        assert!(result.coverage() > 0.8, "coverage {}", result.coverage());
        assert!(result.patterns_kept < result.patterns_applied);
    }

    #[test]
    fn observation_points_improve_coverage_and_patterns() {
        // The central mechanism of the whole paper: inserting OPs at
        // hard-to-observe nodes raises coverage.
        let mut cfg = GeneratorConfig::sized("opi", 9, 1_200);
        cfg.shadow_regions = 4;
        let net = generate(&cfg);
        let atpg_cfg = AtpgConfig {
            max_patterns: 4_096,
            ..Default::default()
        };
        let before = run_random_atpg(&net, &atpg_cfg).unwrap();

        // Observe every difficult node (found via the labeler).
        let labels = crate::labeler::label_difficult_to_observe(
            &net,
            &crate::labeler::LabelConfig {
                patterns: 2_048,
                threshold: 0.01,
                seed: 5,
            },
        )
        .unwrap();
        let mut improved = net.clone();
        let faults = collapsed_faults(&net); // same fault list for both
        for (i, &l) in labels.labels.iter().enumerate() {
            if l == 1 {
                improved
                    .insert_observation_point(gcnt_netlist::NodeId::from_index(i))
                    .unwrap();
            }
        }
        let after = run_random_atpg_on(&improved, &faults, &atpg_cfg).unwrap();
        assert!(
            after.coverage() >= before.coverage(),
            "coverage {} -> {}",
            before.coverage(),
            after.coverage()
        );
    }

    #[test]
    fn compaction_never_exceeds_kept_and_preserves_coverage() {
        let net = generate(&GeneratorConfig::sized("compact", 21, 1_200));
        let result = run_random_atpg(&net, &AtpgConfig::default()).unwrap();
        assert!(result.patterns_compacted <= result.patterns_kept);
        assert!(result.patterns_compacted > 0);
        // Compaction must still detect every fault the kept set detected;
        // that is implicit in its construction (it re-grades the same
        // patterns), so here we only sanity-check the ratio.
        let ratio = result.patterns_compacted as f64 / result.patterns_kept as f64;
        assert!(ratio > 0.2, "suspiciously aggressive compaction: {ratio}");
    }

    #[test]
    fn deterministic_per_seed() {
        let net = generate(&GeneratorConfig::sized("det", 3, 700));
        let cfg = AtpgConfig::default();
        let a = run_random_atpg(&net, &cfg).unwrap();
        let b = run_random_atpg(&net, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn early_stop_on_useless_batches() {
        // A circuit with an unobservable region never reaches 100%: the
        // useless-batch limit must end the run early.
        let mut net = Netlist::new("stuck");
        let a = net.add_cell(CellKind::Input);
        let dangling = net.add_cell(CellKind::Not);
        net.connect(a, dangling).unwrap();
        let o = net.add_cell(CellKind::Output);
        let buf = net.add_cell(CellKind::Buf);
        net.connect(a, buf).unwrap();
        net.connect(buf, o).unwrap();
        let cfg = AtpgConfig {
            max_patterns: 1 << 20,
            useless_batch_limit: 3,
            ..Default::default()
        };
        let result = run_random_atpg(&net, &cfg).unwrap();
        assert!(result.patterns_applied < 1 << 20);
        assert!(result.coverage() < 1.0);
    }

    #[test]
    fn coverage_of_empty_fault_list() {
        let net = Netlist::new("empty");
        let r = AtpgResult {
            patterns_kept: 0,
            patterns_compacted: 0,
            patterns_applied: 0,
            detected: 0,
            total_faults: 0,
        };
        assert_eq!(r.coverage(), 0.0);
        drop(net);
    }
}
