//! Typed errors for the DFT substrate.
//!
//! The simulation and fault-grading kernels historically panicked on
//! malformed inputs (wrong buffer lengths, gates with no fanin). Long-lived
//! callers — the serving layer in particular — need those paths to fail as
//! values instead, so the `try_*` variants in [`crate::sim`] and
//! [`crate::cpt`] return a [`DftError`]. The panicking entry points remain
//! for call sites whose invariants are locally provable.

use std::fmt;

use gcnt_netlist::NetlistError;

/// Errors produced by the DFT kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DftError {
    /// A per-node word buffer had the wrong length for the bound netlist.
    WordCount {
        /// Words expected (one per node).
        expected: usize,
        /// Words actually supplied.
        actual: usize,
    },
    /// The netlist substrate reported an error (cyclic logic, bad arity).
    Netlist(NetlistError),
}

impl fmt::Display for DftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DftError::WordCount { expected, actual } => {
                write!(f, "pattern buffer has {actual} words, expected {expected}")
            }
            DftError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for DftError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DftError::Netlist(e) => Some(e),
            DftError::WordCount { .. } => None,
        }
    }
}

impl From<NetlistError> for DftError {
    fn from(e: NetlistError) -> Self {
        DftError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_netlist::NodeId;

    #[test]
    fn display_word_count() {
        let e = DftError::WordCount {
            expected: 10,
            actual: 3,
        };
        assert!(e.to_string().contains("3 words"));
        assert!(e.to_string().contains("expected 10"));
    }

    #[test]
    fn netlist_error_wraps_with_source() {
        use std::error::Error;
        let e = DftError::from(NetlistError::UnknownNode(NodeId::from_index(4)));
        assert!(e.to_string().contains("netlist error"));
        assert!(e.source().is_some());
    }
}
