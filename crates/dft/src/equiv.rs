//! Random simulation-based equivalence checking.
//!
//! Test point insertion must never change the functional behaviour of a
//! design: an observation point only *taps* a net, and a control point is
//! transparent while its test input holds the non-controlling value. This
//! module verifies exactly that, by driving both netlists with identical
//! random stimuli and comparing every shared primary output and scan
//! D-input.
//!
//! Nodes are matched *by id*: the checker is built for
//! before/after-modification pairs, where the modified design extends the
//! original (TPI only appends cells). It is not a general combinational
//! equivalence checker for independently constructed designs.

use serde::{Deserialize, Serialize};

use gcnt_netlist::{CellKind, Netlist, NodeId, Result};

use crate::sim::PatternSim;

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Equivalence {
    /// No observable difference over the applied patterns.
    Equivalent {
        /// Number of patterns applied.
        patterns: usize,
    },
    /// A shared observable point differed.
    Mismatch {
        /// Node (in the *original* design's id space) that differed.
        node: NodeId,
        /// 0-based index of the first differing pattern.
        pattern: usize,
    },
}

impl Equivalence {
    /// `true` if the designs agreed on every pattern.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Equivalence::Equivalent { .. })
    }
}

/// Checks that `modified` behaves identically to `original` at every
/// observable point of the original design, under `patterns` random
/// stimuli.
///
/// `modified` must extend `original`: every node id of the original must
/// denote the same cell in the modified design. Extra pseudo inputs of the
/// modified design (e.g. control-point test inputs) are held at the values
/// given in `fixed_inputs`; extra inputs not listed there are held at 0.
///
/// # Errors
///
/// Returns a netlist error if either design has a combinational cycle.
///
/// # Panics
///
/// Panics if `modified` has fewer nodes than `original`.
///
/// # Examples
///
/// ```
/// use gcnt_dft::equiv::{check_preserves_function, Equivalence};
/// use gcnt_netlist::{generate, GeneratorConfig, NodeId};
///
/// let original = generate(&GeneratorConfig::sized("eq", 3, 400));
/// let mut modified = original.clone();
/// modified.insert_observation_point(NodeId::from_index(50))?;
/// let verdict = check_preserves_function(&original, &modified, &[], 512, 7)?;
/// assert!(verdict.is_equivalent());
/// # Ok::<(), gcnt_netlist::NetlistError>(())
/// ```
pub fn check_preserves_function(
    original: &Netlist,
    modified: &Netlist,
    fixed_inputs: &[(NodeId, bool)],
    patterns: usize,
    seed: u64,
) -> Result<Equivalence> {
    assert!(
        modified.node_count() >= original.node_count(),
        "modified design must extend the original"
    );
    let sim_a = PatternSim::new(original)?;
    let sim_b = PatternSim::new(modified)?;
    // Observable points of the original: Output cells' drivers and DFF
    // D-input drivers (ids are shared between the designs).
    let mut observed: Vec<NodeId> = Vec::new();
    for id in original.nodes() {
        match original.kind(id) {
            CellKind::Output | CellKind::Dff => {
                if let Some(&d) = original.fanin(id).first() {
                    observed.push(d);
                }
            }
            _ => {}
        }
    }

    use rand::{RngCore, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let batches = patterns.div_ceil(64).max(1);
    for batch in 0..batches {
        // Shared pseudo inputs get identical words, drawn by original id
        // order; extra inputs of the modified design get their fixed value.
        let n_orig = original.node_count();
        let mut words = vec![0u64; modified.node_count()];
        for id in original.nodes() {
            if original.kind(id).is_pseudo_input() {
                words[id.index()] = rng.next_u64();
            }
        }
        for id in modified.nodes().skip(n_orig) {
            if modified.kind(id).is_pseudo_input() {
                let fixed = fixed_inputs
                    .iter()
                    .find(|&&(f, _)| f == id)
                    .map(|&(_, v)| v)
                    .unwrap_or(false);
                words[id.index()] = if fixed { !0 } else { 0 };
            }
        }
        let va = sim_a.simulate(|v| words[v.index()]);
        let vb = sim_b.simulate(|v| words[v.index()]);
        for &node in &observed {
            let diff = va[node.index()] ^ vb[node.index()];
            if diff != 0 {
                return Ok(Equivalence::Mismatch {
                    node,
                    pattern: batch * 64 + diff.trailing_zeros() as usize,
                });
            }
        }
    }
    Ok(Equivalence::Equivalent {
        patterns: batches * 64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cp::{insert_control_points, CpInsertionConfig};
    use gcnt_netlist::{generate, GeneratorConfig};

    fn design(seed: u64) -> Netlist {
        generate(&GeneratorConfig::sized("equiv", seed, 800))
    }

    #[test]
    fn identical_designs_are_equivalent() {
        let net = design(1);
        let verdict = check_preserves_function(&net, &net.clone(), &[], 256, 1).unwrap();
        assert!(verdict.is_equivalent());
    }

    #[test]
    fn observation_points_preserve_function() {
        let original = design(2);
        let mut modified = original.clone();
        for idx in [10usize, 99, 321] {
            let id = NodeId::from_index(idx);
            if original.kind(id) != CellKind::Output {
                modified.insert_observation_point(id).unwrap();
            }
        }
        let verdict = check_preserves_function(&original, &modified, &[], 512, 2).unwrap();
        assert!(verdict.is_equivalent(), "{verdict:?}");
    }

    #[test]
    fn inactive_control_points_preserve_function() {
        let original = design(3);
        let mut modified = original.clone();
        let inserted = insert_control_points(
            &mut modified,
            &CpInsertionConfig {
                label: crate::cp::ControlLabelConfig {
                    patterns: 1024,
                    threshold: 0.01,
                    seed: 9,
                },
                max_iterations: 1,
                max_cps: 8,
            },
        )
        .unwrap();
        // OR control points are transparent at 0, AND at 1.
        let fixed: Vec<(NodeId, bool)> = inserted
            .iter()
            .map(|cp| {
                let active_high = modified.kind(cp.gate) == CellKind::And;
                (cp.control_input, active_high)
            })
            .collect();
        let verdict = check_preserves_function(&original, &modified, &fixed, 512, 3).unwrap();
        assert!(verdict.is_equivalent(), "{verdict:?}");
    }

    #[test]
    fn active_control_point_changes_function() {
        let original = design(4);
        let mut modified = original.clone();
        let inserted = insert_control_points(
            &mut modified,
            &CpInsertionConfig {
                label: crate::cp::ControlLabelConfig {
                    patterns: 1024,
                    threshold: 0.01,
                    seed: 10,
                },
                max_iterations: 1,
                max_cps: 4,
            },
        )
        .unwrap();
        if inserted.is_empty() {
            return; // design had nothing hard to control; vacuous
        }
        // Drive an OR control point to 1 (or an AND to 0): the function
        // must change somewhere observable.
        let fixed: Vec<(NodeId, bool)> = inserted
            .iter()
            .map(|cp| {
                let active_high = modified.kind(cp.gate) == CellKind::Or;
                (cp.control_input, active_high)
            })
            .collect();
        let verdict = check_preserves_function(&original, &modified, &fixed, 2048, 4).unwrap();
        assert!(
            !verdict.is_equivalent(),
            "forcing control points should perturb the function"
        );
    }

    #[test]
    fn mutated_gate_is_detected() {
        // Flip one gate kind by rebuilding with a different cell; the
        // checker must notice.
        let original = design(5);
        // Rebuild an identical netlist but with one inverter replaced by a
        // buffer (ids preserved by identical construction order).
        let mut mutated = Netlist::new(original.name());
        let mut flipped = None;
        for id in original.nodes() {
            let kind = original.kind(id);
            let new_kind = if flipped.is_none() && kind == CellKind::Not {
                flipped = Some(id);
                CellKind::Buf
            } else {
                kind
            };
            mutated.add_cell(new_kind);
        }
        for id in original.nodes() {
            for &src in original.fanin(id) {
                mutated.connect(src, id).unwrap();
            }
        }
        let flipped = flipped.expect("design contains an inverter");
        let verdict = check_preserves_function(&original, &mutated, &[], 512, 5).unwrap();
        match verdict {
            Equivalence::Mismatch { .. } => {}
            other => panic!("mutation at {flipped} not detected: {other:?}"),
        }
    }

    #[test]
    fn flow_output_is_functionally_equivalent() {
        // End-to-end: the GCN OP-insertion flow must never change logic.
        use gcnt_core::features::FeatureNormalizer;
        let original = design(6);
        let raw = gcnt_core::features::raw_features_of(&original).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let mut modified = original.clone();
        let oracle = |_t: &gcnt_core::GraphTensors, f: &gcnt_tensor::Matrix| {
            Ok((0..f.rows())
                .map(|r| if f.get(r, 3) > 2.0 { 0.9f32 } else { 0.1 })
                .collect::<Vec<f32>>())
        };
        crate::flow::run_gcn_opi(
            &mut modified,
            &norm,
            oracle,
            &crate::flow::FlowConfig::default(),
        )
        .unwrap();
        let verdict = check_preserves_function(&original, &modified, &[], 512, 6).unwrap();
        assert!(verdict.is_equivalent(), "{verdict:?}");
    }
}
