//! 64-way parallel-pattern logic simulation.
//!
//! Each node carries one `u64` word; bit `i` of the word is the node's
//! value under pattern `i`. One pass over the levelised netlist therefore
//! simulates 64 test patterns at once — the classic trick that makes
//! random-pattern fault grading tractable on large designs.
//!
//! Scan semantics: primary inputs *and* flip-flop outputs are free pattern
//! bits (the scan chain can load any state); flip-flop D-inputs and primary
//! outputs are the observation sites.

use rand::RngCore;

use gcnt_netlist::{CellKind, Netlist, NetlistError, NodeId, Result};

use crate::error::DftError;

/// A levelised simulator bound to one netlist.
///
/// # Examples
///
/// ```
/// use gcnt_dft::sim::PatternSim;
/// use gcnt_netlist::{CellKind, Netlist};
///
/// let mut net = Netlist::new("inv");
/// let a = net.add_cell(CellKind::Input);
/// let g = net.add_cell(CellKind::Not);
/// let o = net.add_cell(CellKind::Output);
/// net.connect(a, g)?;
/// net.connect(g, o)?;
/// let sim = PatternSim::new(&net)?;
/// let values = sim.simulate(|_| 0b1010);
/// assert_eq!(values[g.index()] & 0b1111, 0b0101);
/// # Ok::<(), gcnt_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PatternSim<'a> {
    net: &'a Netlist,
    order: Vec<NodeId>,
}

impl<'a> PatternSim<'a> {
    /// Levelises the netlist and validates that every gate has at least
    /// one fanin, so the evaluation kernels (and the CPT sweep that reuses
    /// this simulator) can index `fanin[0]` without re-checking per gate.
    ///
    /// # Errors
    ///
    /// Returns a netlist error if the combinational logic is cyclic or a
    /// non-pseudo-input cell has no fanin.
    pub fn new(net: &'a Netlist) -> Result<Self> {
        let order = net.topo_order()?;
        for id in net.nodes() {
            let kind = net.kind(id);
            if !kind.is_pseudo_input() && net.fanin(id).is_empty() {
                return Err(NetlistError::BadArity {
                    node: id,
                    kind,
                    fanins: 0,
                });
            }
        }
        Ok(PatternSim { net, order })
    }

    /// The netlist this simulator is bound to.
    pub fn netlist(&self) -> &Netlist {
        self.net
    }

    /// The evaluation order used.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Simulates one batch of 64 patterns. `stimuli(v)` supplies the
    /// pattern word of each pseudo input `v` (primary input or flip-flop);
    /// it is not called for other nodes. Returns one word per node.
    pub fn simulate(&self, stimuli: impl Fn(NodeId) -> u64) -> Vec<u64> {
        let mut values = vec![0u64; self.net.node_count()];
        self.simulate_into(&stimuli, &mut values);
        values
    }

    /// Like [`PatternSim::simulate`] but reuses an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the node count. Call sites
    /// that cannot prove the length locally should use
    /// [`PatternSim::try_simulate_into`].
    pub fn simulate_into(&self, stimuli: &impl Fn(NodeId) -> u64, values: &mut [u64]) {
        assert_eq!(values.len(), self.net.node_count(), "one word per node");
        self.fill(stimuli, values);
    }

    /// Fallible variant of [`PatternSim::simulate_into`]: a wrong buffer
    /// length becomes a typed error instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns [`DftError::WordCount`] if `values.len()` differs from the
    /// node count.
    pub fn try_simulate_into(
        &self,
        stimuli: &impl Fn(NodeId) -> u64,
        values: &mut [u64],
    ) -> std::result::Result<(), DftError> {
        if values.len() != self.net.node_count() {
            return Err(DftError::WordCount {
                expected: self.net.node_count(),
                actual: values.len(),
            });
        }
        self.fill(stimuli, values);
        Ok(())
    }

    fn fill(&self, stimuli: &impl Fn(NodeId) -> u64, values: &mut [u64]) {
        for &id in &self.order {
            let kind = self.net.kind(id);
            if kind.is_pseudo_input() {
                values[id.index()] = stimuli(id);
                continue;
            }
            values[id.index()] = eval_gate(kind, self.net.fanin(id), values);
        }
    }

    /// Simulates a batch with uniformly random stimuli from `rng`.
    pub fn simulate_random(&self, rng: &mut impl RngCore) -> Vec<u64> {
        // Draw per-node words deterministically in node order.
        let mut words = vec![0u64; self.net.node_count()];
        for &id in &self.order {
            if self.net.kind(id).is_pseudo_input() {
                words[id.index()] = rng.next_u64();
            }
        }
        self.simulate(|v| words[v.index()])
    }
}

/// Evaluates one gate over pattern words. `fanin` is non-empty for every
/// kind this is called with: [`PatternSim::new`] rejects fanin-less gates.
fn eval_gate(kind: CellKind, fanin: &[NodeId], values: &[u64]) -> u64 {
    let f = |i: usize| values[fanin[i].index()];
    match kind {
        CellKind::Input | CellKind::Dff => unreachable!("pseudo inputs handled by caller"),
        CellKind::Output | CellKind::Buf => f(0),
        CellKind::Not => !f(0),
        CellKind::And => fanin.iter().fold(!0u64, |acc, v| acc & values[v.index()]),
        CellKind::Nand => !fanin.iter().fold(!0u64, |acc, v| acc & values[v.index()]),
        CellKind::Or => fanin.iter().fold(0u64, |acc, v| acc | values[v.index()]),
        CellKind::Nor => !fanin.iter().fold(0u64, |acc, v| acc | values[v.index()]),
        CellKind::Xor => fanin.iter().fold(0u64, |acc, v| acc ^ values[v.index()]),
        CellKind::Xnor => !fanin.iter().fold(0u64, |acc, v| acc ^ values[v.index()]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_netlist::{generate, GeneratorConfig};

    fn two_input(kind: CellKind) -> (Netlist, NodeId, NodeId, NodeId) {
        let mut net = Netlist::new("g");
        let a = net.add_cell(CellKind::Input);
        let b = net.add_cell(CellKind::Input);
        let g = net.add_cell(kind);
        let o = net.add_cell(CellKind::Output);
        net.connect(a, g).unwrap();
        net.connect(b, g).unwrap();
        net.connect(g, o).unwrap();
        (net, a, b, g)
    }

    /// Exhaustive truth-table check for every 2-input gate: patterns
    /// 0..4 enumerate (a, b) = (0,0), (1,0), (0,1), (1,1).
    #[test]
    fn truth_tables() {
        let cases = [
            (CellKind::And, 0b1000u64),
            (CellKind::Nand, 0b0111),
            (CellKind::Or, 0b1110),
            (CellKind::Nor, 0b0001),
            (CellKind::Xor, 0b0110),
            (CellKind::Xnor, 0b1001),
        ];
        for (kind, expected) in cases {
            let (net, a, _, g) = two_input(kind);
            let sim = PatternSim::new(&net).unwrap();
            let values = sim.simulate(|v| if v == a { 0b1010 } else { 0b1100 });
            assert_eq!(
                values[g.index()] & 0b1111,
                expected,
                "truth table mismatch for {kind}"
            );
        }
    }

    #[test]
    fn not_and_buf() {
        let mut net = Netlist::new("nb");
        let a = net.add_cell(CellKind::Input);
        let n = net.add_cell(CellKind::Not);
        let b = net.add_cell(CellKind::Buf);
        let o1 = net.add_cell(CellKind::Output);
        let o2 = net.add_cell(CellKind::Output);
        net.connect(a, n).unwrap();
        net.connect(a, b).unwrap();
        net.connect(n, o1).unwrap();
        net.connect(b, o2).unwrap();
        let sim = PatternSim::new(&net).unwrap();
        let v = sim.simulate(|_| 0xF0F0);
        assert_eq!(v[n.index()], !0xF0F0u64);
        assert_eq!(v[b.index()], 0xF0F0);
        assert_eq!(v[o1.index()], !0xF0F0u64);
    }

    #[test]
    fn dff_value_is_scan_state_not_d_input() {
        let mut net = Netlist::new("scan");
        let a = net.add_cell(CellKind::Input);
        let d = net.add_cell(CellKind::Dff);
        let g = net.add_cell(CellKind::And);
        let o = net.add_cell(CellKind::Output);
        net.connect(a, d).unwrap(); // D input driven by a
        net.connect(d, g).unwrap();
        net.connect(a, g).unwrap();
        net.connect(g, o).unwrap();
        let sim = PatternSim::new(&net).unwrap();
        // a = all ones, scan state of d = 0: d's value must be the scan
        // state, not its D input.
        let v = sim.simulate(|x| if x == a { !0 } else { 0 });
        assert_eq!(v[d.index()], 0);
        assert_eq!(v[g.index()], 0);
    }

    #[test]
    fn three_input_gate() {
        let mut net = Netlist::new("and3");
        let ins: Vec<_> = (0..3).map(|_| net.add_cell(CellKind::Input)).collect();
        let g = net.add_cell(CellKind::And);
        let o = net.add_cell(CellKind::Output);
        for &i in &ins {
            net.connect(i, g).unwrap();
        }
        net.connect(g, o).unwrap();
        let sim = PatternSim::new(&net).unwrap();
        let v = sim.simulate(|x| {
            if x == ins[0] {
                0b1111
            } else if x == ins[1] {
                0b1010
            } else {
                0b1100
            }
        });
        assert_eq!(v[g.index()] & 0b1111, 0b1000);
    }

    #[test]
    fn random_simulation_is_deterministic() {
        let net = generate(&GeneratorConfig::sized("s", 17, 600));
        let sim = PatternSim::new(&net).unwrap();
        let v1 = sim.simulate_random(&mut gcnt_nn_rng(7));
        let v2 = sim.simulate_random(&mut gcnt_nn_rng(7));
        assert_eq!(v1, v2);
        let v3 = sim.simulate_random(&mut gcnt_nn_rng(8));
        assert_ne!(v1, v3);
    }

    fn gcnt_nn_rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        use rand::SeedableRng;
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn simulate_into_reuses_buffer() {
        let (net, a, ..) = two_input(CellKind::Or);
        let sim = PatternSim::new(&net).unwrap();
        let mut buf = vec![0u64; net.node_count()];
        sim.simulate_into(&|v: NodeId| if v == a { 1 } else { 0 }, &mut buf);
        assert_eq!(buf[2] & 1, 1);
    }

    #[test]
    #[should_panic(expected = "one word per node")]
    fn wrong_buffer_size_panics() {
        let (net, ..) = two_input(CellKind::And);
        let sim = PatternSim::new(&net).unwrap();
        let mut buf = vec![0u64; 1];
        sim.simulate_into(&|_| 0, &mut buf);
    }

    #[test]
    fn try_simulate_into_reports_wrong_buffer_size() {
        let (net, a, ..) = two_input(CellKind::Or);
        let sim = PatternSim::new(&net).unwrap();
        let mut short = vec![0u64; 1];
        let err = sim.try_simulate_into(&|_| 0, &mut short).unwrap_err();
        assert_eq!(
            err,
            DftError::WordCount {
                expected: net.node_count(),
                actual: 1
            }
        );
        let mut buf = vec![0u64; net.node_count()];
        sim.try_simulate_into(&|v: NodeId| if v == a { 1 } else { 0 }, &mut buf)
            .unwrap();
        assert_eq!(buf[2] & 1, 1);
    }

    #[test]
    fn fanin_less_gate_is_rejected_at_construction() {
        let mut net = Netlist::new("floating");
        net.add_cell(CellKind::Input);
        net.add_cell(CellKind::Not); // never connected
        let err = PatternSim::new(&net).unwrap_err();
        assert!(
            matches!(err, NetlistError::BadArity { fanins: 0, .. }),
            "{err}"
        );
    }
}
