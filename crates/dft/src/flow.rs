//! The paper's iterative GCN-guided observation point insertion (§4,
//! Fig. 7).
//!
//! Each iteration:
//!
//! 1. The trained classifier predicts difficult-to-observe nodes.
//! 2. Every positive prediction (up to a candidate cap) is scored by
//!    *impact*: the reduction in positive predictions within its fan-in
//!    cone if an observation point were inserted there (Fig. 6). The
//!    hypothetical insertion is previewed by recomputing SCOAP
//!    observability over the fan-in cone ([`Scoap::preview_observe`]) and
//!    re-running inference with the updated attributes.
//! 3. The top-ranked locations receive observation points. The graph is
//!    updated *incrementally*: the COO adjacency gains the new tuples, the
//!    new node gets the attribute row `[0, 1, 1, 0]`, and only the fan-in
//!    cone's observability is refreshed (§4).
//! 4. Repeat until no positive predictions remain.
//!
//! Deviation from the paper, for exactness bookkeeping: during *impact
//! preview* (step 2) the candidate's would-be OP cell is not added to the
//! graph structure — only the attribute changes are applied. The committed
//! insertion (step 3) performs the full structural update. The preview
//! therefore slightly underestimates the embedding perturbation one extra
//! sink node causes; the committed state is exact.

use std::fmt;

use serde::{Deserialize, Serialize};

use gcnt_core::features::{squash, FeatureNormalizer, OBSERVATION_POINT_ATTRS, RAW_DIM};
use gcnt_core::GraphTensors;
use gcnt_lint::{lint_graph_tensors, lint_netlist, lint_scoap, LintReport, RuleId};
use gcnt_netlist::{logic_levels, CellKind, Netlist, NetlistError, NodeId, Scoap};
use gcnt_tensor::{Matrix, TensorError};

/// Errors produced by the insertion flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The netlist substrate reported an error.
    Netlist(NetlistError),
    /// A tensor kernel reported an error (model/graph shape mismatch).
    Tensor(TensorError),
    /// The re-lint after an incremental graph update found `Error`-severity
    /// violations; the report lists them with their rule ids.
    Lint(Box<LintReport>),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Netlist(e) => write!(f, "netlist error: {e}"),
            FlowError::Tensor(e) => write!(f, "tensor error: {e}"),
            FlowError::Lint(report) => write!(f, "lint errors after graph update:\n{report}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Netlist(e) => Some(e),
            FlowError::Tensor(e) => Some(e),
            FlowError::Lint(_) => None,
        }
    }
}

#[doc(hidden)]
impl From<NetlistError> for FlowError {
    fn from(e: NetlistError) -> Self {
        FlowError::Netlist(e)
    }
}

#[doc(hidden)]
impl From<TensorError> for FlowError {
    fn from(e: TensorError) -> Self {
        FlowError::Tensor(e)
    }
}

#[doc(hidden)]
impl From<LintReport> for FlowError {
    fn from(report: LintReport) -> Self {
        FlowError::Lint(Box::new(report))
    }
}

/// Re-lints the incrementally maintained state (netlist structure, graph
/// tensors, SCOAP vectors) after a batch of insertions.
///
/// Derived artifacts drifting out of sync with the graph is exactly the
/// failure mode incremental updates risk, and it would otherwise surface
/// as a wrong prediction or an assert deep inside a kernel.
fn relint_incremental(
    net: &Netlist,
    tensors: &GraphTensors,
    scoap: &Scoap,
) -> Result<(), FlowError> {
    let mut report = lint_netlist(net);
    report.merge(lint_graph_tensors(net, tensors));
    report.merge(lint_scoap(net, scoap));
    if report.has_errors() {
        return Err(report.into());
    }
    Ok(())
}

/// Configuration of the iterative flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Maximum prediction/insert iterations.
    pub max_iterations: usize,
    /// Observation points inserted per iteration (the "top ranked
    /// locations", §4).
    pub ops_per_iteration: usize,
    /// Positive predictions evaluated for impact per iteration, taken in
    /// decreasing predicted-probability order.
    pub candidate_limit: usize,
    /// A node is a positive prediction if its classifier probability is at
    /// least this.
    pub prob_threshold: f32,
    /// Cap on the fan-in cone size used for impact counting (Fig. 6).
    pub cone_limit: usize,
    /// Maximum failed insertions tolerated across the whole run. A failed
    /// insertion rolls the design back to the state before the attempt
    /// and skips that candidate (recorded in [`FlowOutcome::skipped`]);
    /// once the budget is spent, the next failure propagates. `0` (the
    /// default) disables the snapshotting entirely: every failure is
    /// immediately fatal, exactly as if the budget did not exist.
    pub skip_budget: usize,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            max_iterations: 12,
            ops_per_iteration: 16,
            candidate_limit: 24,
            prob_threshold: 0.5,
            cone_limit: 500,
            skip_budget: 0,
        }
    }
}

/// Per-iteration progress record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// Positive predictions entering the iteration.
    pub positives: usize,
    /// Observation points inserted this iteration.
    pub inserted: usize,
}

/// Outcome of the iterative flow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowOutcome {
    /// Nodes that received observation points, in insertion order.
    pub inserted: Vec<NodeId>,
    /// Whether the flow exited because no positive predictions remained.
    pub converged: bool,
    /// Positive predictions remaining at exit.
    pub remaining_positives: usize,
    /// Per-iteration history.
    pub history: Vec<IterationStats>,
    /// Candidates whose insertion failed and was rolled back under
    /// [`FlowConfig::skip_budget`], in the order they were skipped.
    pub skipped: Vec<NodeId>,
}

/// Runs the iterative GCN-guided OP insertion flow, mutating `net`.
///
/// `classify` is the trained model: given graph tensors and normalised
/// node features it returns the positive probability per node (both
/// [`gcnt_core::Gcn::predict_proba`] and
/// [`gcnt_core::MultiStageGcn::predict_proba`] fit directly).
///
/// `normalizer` must be the normaliser the classifier was *trained* with —
/// the flow is inductive and re-applies the training statistics to the
/// modified design.
///
/// A failed insertion normally aborts the flow; with a non-zero
/// [`FlowConfig::skip_budget`] the design is instead rolled back to the
/// state just before the failing attempt and the candidate is skipped
/// (listed in [`FlowOutcome::skipped`]). `net` is always left in the last
/// consistent state, even when an error is returned.
///
/// # Errors
///
/// Returns [`FlowError`] if the netlist is cyclic, the classifier/graph
/// shapes disagree, or an insertion fails with no skip budget left.
pub fn run_gcn_opi<F>(
    net: &mut Netlist,
    normalizer: &FeatureNormalizer,
    classify: F,
    cfg: &FlowConfig,
) -> Result<FlowOutcome, FlowError>
where
    F: Fn(&GraphTensors, &Matrix) -> Result<Vec<f32>, TensorError>,
{
    run_flow(net, normalizer, classify, cfg, commit_insertion)
}

/// The incrementally maintained per-run design state: everything an
/// insertion mutates, grouped so a failed insertion can be rolled back as
/// one unit under [`FlowConfig::skip_budget`].
#[derive(Clone)]
struct FlowState {
    net: Netlist,
    tensors: GraphTensors,
    scoap: Scoap,
    raw: Vec<[f32; RAW_DIM]>,
    stale: Vec<bool>,
}

/// Commits one observation point at `target`: structural netlist update,
/// incremental tensor append, SCOAP refresh over the changed cone, and
/// the new node's attribute row. Leaves `state` untouched on the lint
/// error path only by accident of ordering — callers that need rollback
/// must snapshot before calling.
fn commit_insertion(state: &mut FlowState, target: NodeId) -> Result<(), FlowError> {
    let op = state.net.insert_observation_point(target)?;
    if op.index() != state.tensors.node_count() {
        let mut report = LintReport::new();
        report.report(
            RuleId::AdjacencyNetlistMismatch,
            "flow",
            format!(
                "new node {} is not the tensors' next row ({} nodes modeled)",
                op.index(),
                state.tensors.node_count()
            ),
        );
        return Err(report.into());
    }
    state.tensors.insert_observation_point(target, op)?;
    let changed = state.scoap.observe(&state.net, target, op);
    for v in changed {
        state.raw[v.index()][3] = squash(state.scoap.co(v));
        state.stale[v.index()] = true;
    }
    state.raw.push(OBSERVATION_POINT_ATTRS);
    Ok(())
}

/// The flow loop with an injectable commit step — production code enters
/// through [`run_gcn_opi`]; tests substitute a failing commit to exercise
/// the skip-budget rollback path.
fn run_flow<F, C>(
    net: &mut Netlist,
    normalizer: &FeatureNormalizer,
    classify: F,
    cfg: &FlowConfig,
    mut commit: C,
) -> Result<FlowOutcome, FlowError>
where
    F: Fn(&GraphTensors, &Matrix) -> Result<Vec<f32>, TensorError>,
    C: FnMut(&mut FlowState, NodeId) -> Result<(), FlowError>,
{
    let levels = logic_levels(net)?;
    let scoap = Scoap::compute(net)?;
    // Raw (log-squashed) attribute rows, kept as a Vec so appends are O(1).
    let raw: Vec<[f32; RAW_DIM]> = (0..net.node_count())
        .map(|i| {
            [
                squash(levels[i]),
                squash(scoap.cc0_all()[i]),
                squash(scoap.cc1_all()[i]),
                squash(scoap.co_all()[i]),
            ]
        })
        .collect();
    let mut state = FlowState {
        tensors: GraphTensors::from_netlist(net),
        net: net.clone(),
        scoap,
        raw,
        stale: Vec::new(),
    };

    let mut inserted = Vec::new();
    let mut skipped = Vec::new();
    let mut history = Vec::new();
    let mut converged = false;
    let mut remaining = 0usize;

    let result = (|| -> Result<(), FlowError> {
        for iteration in 0..cfg.max_iterations {
            let features = normalizer.apply(&rows_to_matrix(&state.raw));
            let probs = classify(&state.tensors, &features)?;
            // Positive predictions, excluding nodes that are already
            // observed or are themselves observe points.
            let mut positives: Vec<(NodeId, f32)> = state
                .net
                .nodes()
                .filter(|&v| !matches!(state.net.kind(v), CellKind::Output | CellKind::Dff))
                .filter(|&v| state.scoap.co(v) > 0)
                .map(|v| (v, probs[v.index()]))
                .filter(|&(_, p)| p >= cfg.prob_threshold)
                .collect();
            remaining = positives.len();
            if positives.is_empty() {
                converged = true;
                history.push(IterationStats {
                    iteration,
                    positives: 0,
                    inserted: 0,
                });
                break;
            }
            // Highest-probability candidates first.
            positives.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            positives.truncate(cfg.candidate_limit);

            // Impact evaluation (Fig. 6).
            let mut scored: Vec<(NodeId, i64, f32)> = positives
                .iter()
                .map(|&(v, p)| {
                    let impact = evaluate_impact(
                        &state.net,
                        &state.scoap,
                        &state.tensors,
                        normalizer,
                        &state.raw,
                        &probs,
                        &classify,
                        v,
                        cfg,
                    )
                    .unwrap_or(0);
                    (v, impact, p)
                })
                .collect();
            scored.sort_by(|a, b| {
                b.1.cmp(&a.1)
                    .then(b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal))
            });

            let mut inserted_now = 0usize;
            // Nodes whose observability improved due to an insertion
            // committed *this* round: their predictions are stale, so defer
            // them to the next iteration's re-inference instead of blindly
            // observing them (one OP at a cone exit typically fixes the
            // whole cone).
            state.stale = vec![false; state.net.node_count()];
            for &(target, _, _) in &scored {
                if inserted_now >= cfg.ops_per_iteration {
                    break;
                }
                if state.scoap.co(target) == 0 || state.stale[target.index()] {
                    continue;
                }
                // Snapshot only while skip budget remains: the default
                // budget of 0 never clones, and a spent budget means the
                // next failure propagates anyway.
                let snapshot = (skipped.len() < cfg.skip_budget).then(|| state.clone());
                match commit(&mut state, target) {
                    Ok(()) => {
                        inserted.push(target);
                        inserted_now += 1;
                    }
                    Err(e) => match snapshot {
                        Some(prev) => {
                            state = prev;
                            skipped.push(target);
                        }
                        None => return Err(e),
                    },
                }
            }
            history.push(IterationStats {
                iteration,
                positives: remaining,
                inserted: inserted_now,
            });
            if inserted_now == 0 {
                break; // cannot make progress
            }
            relint_incremental(&state.net, &state.tensors, &state.scoap)?;
        }

        // Final positive count if we exited by iteration cap.
        if !converged {
            let features = normalizer.apply(&rows_to_matrix(&state.raw));
            let probs = classify(&state.tensors, &features)?;
            remaining = state
                .net
                .nodes()
                .filter(|&v| !matches!(state.net.kind(v), CellKind::Output | CellKind::Dff))
                .filter(|&v| state.scoap.co(v) > 0)
                .filter(|&v| probs[v.index()] >= cfg.prob_threshold)
                .count();
            converged = remaining == 0;
        }
        Ok(())
    })();

    // Commit the (always consistent) final state back to the caller, on
    // the error path too — every mutation before the failure survives.
    *net = state.net;
    result?;

    Ok(FlowOutcome {
        inserted,
        converged,
        remaining_positives: remaining,
        history,
        skipped,
    })
}

/// Impact of a hypothetical OP at `target`: positive predictions in the
/// fan-in cone before minus after the preview insertion (Fig. 6).
#[allow(clippy::too_many_arguments)]
fn evaluate_impact<F>(
    net: &Netlist,
    scoap: &Scoap,
    tensors: &GraphTensors,
    normalizer: &FeatureNormalizer,
    raw: &[[f32; RAW_DIM]],
    probs: &[f32],
    classify: &F,
    target: NodeId,
    cfg: &FlowConfig,
) -> Result<i64, FlowError>
where
    F: Fn(&GraphTensors, &Matrix) -> Result<Vec<f32>, TensorError>,
{
    let mut cone = net.fanin_cone(target, cfg.cone_limit);
    cone.push(target);
    let pos_before = cone
        .iter()
        .filter(|&&v| probs[v.index()] >= cfg.prob_threshold)
        .count() as i64;
    if pos_before == 0 {
        return Ok(0);
    }
    // Preview the observability improvement and rerun inference with the
    // updated attributes.
    let preview = scoap.preview_observe(net, target);
    let mut raw2 = raw.to_vec();
    for &(v, co) in &preview {
        raw2[v.index()][3] = squash(co);
    }
    let features = normalizer.apply(&rows_to_matrix(&raw2));
    let probs_after = classify(tensors, &features)?;
    let pos_after = cone
        .iter()
        .filter(|&&v| probs_after[v.index()] >= cfg.prob_threshold)
        .count() as i64;
    Ok(pos_before - pos_after)
}

fn rows_to_matrix(rows: &[[f32; RAW_DIM]]) -> Matrix {
    let mut data = Vec::with_capacity(rows.len() * RAW_DIM);
    for r in rows {
        data.extend_from_slice(r);
    }
    Matrix::from_vec(rows.len(), RAW_DIM, data).expect("row-major data is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_netlist::{generate, GeneratorConfig};

    fn shadowed_design(seed: u64) -> Netlist {
        let mut cfg = GeneratorConfig::sized("flow", seed, 900);
        cfg.shadow_regions = 3;
        generate(&cfg)
    }

    /// An "oracle" classifier that flags exactly the nodes whose squashed
    /// observability exceeds a threshold — lets us test flow mechanics
    /// without training a model.
    fn oracle(threshold: f32) -> impl Fn(&GraphTensors, &Matrix) -> Result<Vec<f32>, TensorError> {
        move |_t, features| {
            Ok((0..features.rows())
                .map(|r| {
                    // Column 3 is normalised observability; high = hard.
                    if features.get(r, 3) > threshold {
                        0.9
                    } else {
                        0.1
                    }
                })
                .collect())
        }
    }

    #[test]
    fn flow_converges_on_shadowed_design() {
        let mut net = shadowed_design(91);
        let raw = gcnt_core::features::raw_features_of(&net).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let cfg = FlowConfig {
            max_iterations: 20,
            ops_per_iteration: 8,
            candidate_limit: 12,
            ..Default::default()
        };
        let outcome = run_gcn_opi(&mut net, &norm, oracle(2.0), &cfg).unwrap();
        assert!(outcome.converged, "flow did not converge: {outcome:?}");
        assert!(!outcome.inserted.is_empty());
        assert_eq!(outcome.remaining_positives, 0);
        // The flow re-lints after every update, so a clean exit implies a
        // structurally sound design; double-check through the public pass.
        let report = gcnt_lint::lint_netlist_deep(&net);
        assert!(!report.has_errors(), "{report}");
        // Every inserted node is now directly observable.
        let scoap = Scoap::compute(&net).unwrap();
        for &v in &outcome.inserted {
            assert_eq!(scoap.co(v), 0);
        }
    }

    #[test]
    fn flow_inserts_nothing_when_classifier_is_silent() {
        let mut net = shadowed_design(92);
        let raw = gcnt_core::features::raw_features_of(&net).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let silent = |_t: &GraphTensors, f: &Matrix| Ok(vec![0.0; f.rows()]);
        let outcome = run_gcn_opi(&mut net, &norm, silent, &FlowConfig::default()).unwrap();
        assert!(outcome.converged);
        assert!(outcome.inserted.is_empty());
        assert_eq!(outcome.history.len(), 1);
    }

    #[test]
    fn impact_ranking_prefers_cone_covering_nodes() {
        // A chain of hard nodes: observing the chain *end* fixes the whole
        // cone, so the flow should need far fewer OPs than there are
        // positives.
        let mut net = shadowed_design(93);
        let raw = gcnt_core::features::raw_features_of(&net).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        // Count initial positives under the oracle.
        let features = norm.apply(&raw);
        let initial_positive = (0..features.rows())
            .filter(|&r| features.get(r, 3) > 2.0)
            .count();
        let cfg = FlowConfig {
            max_iterations: 20,
            ops_per_iteration: 4,
            candidate_limit: 16,
            ..Default::default()
        };
        let outcome = run_gcn_opi(&mut net, &norm, oracle(2.0), &cfg).unwrap();
        assert!(outcome.converged);
        assert!(
            outcome.inserted.len() < initial_positive,
            "impact ranking should cover multiple positives per OP: {} OPs for {} positives",
            outcome.inserted.len(),
            initial_positive
        );
    }

    #[test]
    fn history_is_monotone_progress() {
        let mut net = shadowed_design(94);
        let raw = gcnt_core::features::raw_features_of(&net).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let outcome = run_gcn_opi(&mut net, &norm, oracle(2.0), &FlowConfig::default()).unwrap();
        // Positives must strictly decrease across iterations until zero.
        for w in outcome.history.windows(2) {
            assert!(
                w[1].positives < w[0].positives,
                "positives did not decrease: {:?}",
                outcome.history
            );
        }
    }

    #[test]
    fn ops_per_iteration_is_respected() {
        let mut net = shadowed_design(95);
        let raw = gcnt_core::features::raw_features_of(&net).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let cfg = FlowConfig {
            max_iterations: 1,
            ops_per_iteration: 2,
            candidate_limit: 8,
            ..Default::default()
        };
        let outcome = run_gcn_opi(&mut net, &norm, oracle(2.0), &cfg).unwrap();
        assert!(
            outcome.inserted.len() <= 2,
            "{} inserted",
            outcome.inserted.len()
        );
        assert_eq!(outcome.history.len(), 1);
    }

    #[test]
    fn flow_error_display() {
        let e = FlowError::Netlist(NetlistError::UnknownNode(NodeId::from_index(3)));
        assert!(e.to_string().contains("netlist error"));
        let e = FlowError::Tensor(TensorError::LengthMismatch {
            expected: 1,
            actual: 2,
        });
        assert!(e.to_string().contains("tensor error"));
        let mut report = LintReport::new();
        report.report(RuleId::AdjacencyNetlistMismatch, "flow", "out of sync");
        let e = FlowError::from(report);
        assert!(e.to_string().contains("TS001"), "{e}");
    }

    #[test]
    fn skip_budget_rolls_back_failed_insertions() {
        let mut reference_net = shadowed_design(98);
        let raw = gcnt_core::features::raw_features_of(&reference_net).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let cfg = FlowConfig {
            max_iterations: 20,
            ops_per_iteration: 4,
            candidate_limit: 8,
            skip_budget: 3,
            ..Default::default()
        };
        let reference = run_gcn_opi(&mut reference_net, &norm, oracle(2.0), &cfg).unwrap();
        assert!(reference.skipped.is_empty(), "healthy run skips nothing");

        // Same run, but the first two commit attempts fail transiently.
        let mut net = shadowed_design(98);
        let before = net.node_count();
        let mut failures = 2;
        let outcome = run_flow(&mut net, &norm, oracle(2.0), &cfg, |state, target| {
            if failures > 0 {
                failures -= 1;
                // Poison the state before failing, to prove the rollback
                // restores it rather than trusting commit to be atomic.
                state.raw.push([9.0; RAW_DIM]);
                return Err(FlowError::Netlist(NetlistError::UnknownNode(target)));
            }
            commit_insertion(state, target)
        })
        .unwrap();
        assert_eq!(outcome.skipped.len(), 2, "{:?}", outcome.skipped);
        assert!(outcome.converged, "flow must still converge: {outcome:?}");
        // The rolled-back design stays structurally sound.
        let report = gcnt_lint::lint_netlist_deep(&net);
        assert!(!report.has_errors(), "{report}");
        assert_eq!(net.node_count(), before + outcome.inserted.len());
    }

    #[test]
    fn exhausted_skip_budget_propagates_the_error() {
        let mut net = shadowed_design(99);
        let raw = gcnt_core::features::raw_features_of(&net).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let cfg = FlowConfig {
            skip_budget: 1,
            ..Default::default()
        };
        let before = net.node_count();
        let err = run_flow(&mut net, &norm, oracle(2.0), &cfg, |_state, target| {
            Err(FlowError::Netlist(NetlistError::UnknownNode(target)))
        })
        .unwrap_err();
        assert!(matches!(err, FlowError::Netlist(_)), "{err}");
        // One skip was rolled back, the second failure aborted: the
        // caller's design is unchanged and consistent.
        assert_eq!(net.node_count(), before);
        assert!(!gcnt_lint::lint_netlist_deep(&net).has_errors());
    }

    #[test]
    fn zero_skip_budget_matches_budgeted_run_when_healthy() {
        let raw_cfg = FlowConfig {
            max_iterations: 20,
            ops_per_iteration: 4,
            ..Default::default()
        };
        let budgeted_cfg = FlowConfig {
            skip_budget: 5,
            ..raw_cfg.clone()
        };
        let mut net_a = shadowed_design(100);
        let mut net_b = shadowed_design(100);
        let raw = gcnt_core::features::raw_features_of(&net_a).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let a = run_gcn_opi(&mut net_a, &norm, oracle(2.0), &raw_cfg).unwrap();
        let b = run_gcn_opi(&mut net_b, &norm, oracle(2.0), &budgeted_cfg).unwrap();
        assert_eq!(a, b, "budget must not perturb a failure-free run");
        assert_eq!(net_a, net_b);
    }

    #[test]
    fn relint_catches_out_of_sync_tensors() {
        let net = shadowed_design(96);
        let smaller = shadowed_design(97);
        let tensors = GraphTensors::from_netlist(&smaller);
        let scoap = Scoap::compute(&net).unwrap();
        let err = relint_incremental(&net, &tensors, &scoap).unwrap_err();
        match err {
            FlowError::Lint(report) => {
                assert!(report.fired(RuleId::AdjacencyNetlistMismatch), "{report}")
            }
            other => panic!("expected a lint error, got {other}"),
        }
    }
}
