//! The paper's iterative GCN-guided observation point insertion (§4,
//! Fig. 7).
//!
//! Each iteration:
//!
//! 1. The trained classifier predicts difficult-to-observe nodes.
//! 2. Every positive prediction (up to a candidate cap) is scored by
//!    *impact*: the reduction in positive predictions within its fan-in
//!    cone if an observation point were inserted there (Fig. 6). The
//!    hypothetical insertion is previewed by recomputing SCOAP
//!    observability over the fan-in cone ([`Scoap::preview_observe`]) and
//!    re-running inference with the updated attributes.
//! 3. The top-ranked locations receive observation points. The graph is
//!    updated *incrementally*: the COO adjacency gains the new tuples, the
//!    new node gets the attribute row `[0, 1, 1, 0]`, and only the fan-in
//!    cone's observability is refreshed (§4).
//! 4. Repeat until no positive predictions remain.
//!
//! # Impact modes
//!
//! Step 2 re-runs inference once per candidate, which makes the flow's
//! inner loop `O(candidates × N)` embedding rows per iteration. With
//! [`ImpactMode::Incremental`] (the default) and a classifier that
//! supports it ([`Gcn`] or [`MultiStageGcn`], not a bare closure), the
//! flow instead keeps a [`CascadeSession`] alive across the run and each
//! preview only recomputes the D-hop halo of the previewed cone —
//! `O(candidates × |cone halo|)` — with bit-identical probabilities (see
//! `gcnt_core::incremental`). [`FlowOutcome::inference`] reports the rows
//! actually computed against the full-recompute equivalent.
//!
//! Deviation from the paper, for exactness bookkeeping: during *impact
//! preview* (step 2) the candidate's would-be OP cell is not added to the
//! graph structure — only the attribute changes are applied. The committed
//! insertion (step 3) performs the full structural update. The preview
//! therefore slightly underestimates the embedding perturbation one extra
//! sink node causes; the committed state is exact.

use std::fmt;

use serde::{Deserialize, Serialize};

use gcnt_core::features::{squash, FeatureNormalizer, OBSERVATION_POINT_ATTRS, RAW_DIM};
use gcnt_core::{
    CascadeSession, EmbeddingCache, Gcn, GraphTensors, KernelPolicy, MatrixBackend, MultiStageGcn,
    SessionDelta,
};
use gcnt_lint::{
    lint_embedding_caches, lint_graph_tensors, lint_netlist, lint_partitioned_graph, lint_scoap,
    LintReport, RuleId,
};
use gcnt_netlist::{logic_levels, CellKind, Netlist, NetlistError, NodeId, Scoap};
use gcnt_tensor::{Budget, Matrix, TensorError};

/// Errors produced by the insertion flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The netlist substrate reported an error.
    Netlist(NetlistError),
    /// A tensor kernel reported an error (model/graph shape mismatch, or a
    /// work-budget stop from a cooperative checkpoint).
    Tensor(TensorError),
    /// The re-lint after an incremental graph update found `Error`-severity
    /// violations; the report lists them with their rule ids.
    Lint(Box<LintReport>),
    /// The batch observer of a resumable run ([`run_gcn_opi_resumable`])
    /// refused a committed batch — typically a write-ahead journal that
    /// could not persist the record. The design keeps the batch; the flow
    /// stops so no work the journal did not capture can pile up.
    Journal(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Netlist(e) => write!(f, "netlist error: {e}"),
            FlowError::Tensor(e) => write!(f, "tensor error: {e}"),
            FlowError::Lint(report) => write!(f, "lint errors after graph update:\n{report}"),
            FlowError::Journal(detail) => write!(f, "journal error: {detail}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Netlist(e) => Some(e),
            FlowError::Tensor(e) => Some(e),
            FlowError::Lint(_) | FlowError::Journal(_) => None,
        }
    }
}

impl FlowError {
    /// Whether this error is a cooperative work-budget stop
    /// ([`TensorError::BudgetExceeded`] or [`TensorError::Cancelled`])
    /// rather than a real failure — the signal the serving layer uses to
    /// step down its degradation ladder instead of failing the request.
    pub fn is_budget_stop(&self) -> bool {
        matches!(
            self,
            FlowError::Tensor(TensorError::BudgetExceeded { .. })
                | FlowError::Tensor(TensorError::Cancelled)
        )
    }
}

#[doc(hidden)]
impl From<NetlistError> for FlowError {
    fn from(e: NetlistError) -> Self {
        FlowError::Netlist(e)
    }
}

#[doc(hidden)]
impl From<TensorError> for FlowError {
    fn from(e: TensorError) -> Self {
        FlowError::Tensor(e)
    }
}

#[doc(hidden)]
impl From<LintReport> for FlowError {
    fn from(report: LintReport) -> Self {
        FlowError::Lint(Box::new(report))
    }
}

/// Re-lints the incrementally maintained state (netlist structure, graph
/// tensors, SCOAP vectors, and — when an incremental session is live —
/// its embedding caches, rule `EC001`) after a batch of insertions.
///
/// Derived artifacts drifting out of sync with the graph is exactly the
/// failure mode incremental updates risk, and it would otherwise surface
/// as a wrong prediction or an assert deep inside a kernel.
fn relint_incremental(
    net: &Netlist,
    tensors: &GraphTensors,
    scoap: &Scoap,
    caches: Option<&[EmbeddingCache]>,
    backend: Option<&MatrixBackend>,
) -> Result<(), FlowError> {
    let mut report = lint_netlist(net);
    report.merge(lint_graph_tensors(net, tensors));
    report.merge(lint_scoap(net, scoap));
    if let Some(caches) = caches {
        report.merge(lint_embedding_caches(tensors, caches));
    }
    if let Some(pg) = backend.and_then(MatrixBackend::partitioned_graph) {
        report.merge(lint_partitioned_graph(tensors, pg, "flow.backend"));
    }
    if report.has_errors() {
        return Err(report.into());
    }
    Ok(())
}

/// Re-shards a partitioned backend whose graph moved on (committed
/// insertions bump the generation); serial backends and fresh
/// partitionings are untouched. Called before every backend use, so the
/// flow never hands a stale partitioning to a kernel.
fn refresh_backend(backend: &mut MatrixBackend, t: &GraphTensors) -> Result<(), FlowError> {
    let stale = backend
        .partitioned_graph()
        .is_some_and(|pg| pg.generation() != t.generation() || pg.node_count() != t.node_count());
    if stale {
        backend.rebuild(t)?;
    }
    Ok(())
}

/// How the flow runs inference for impact previews and per-iteration
/// re-classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImpactMode {
    /// Full re-inference over the whole graph for every preview and every
    /// iteration — the paper's literal procedure.
    Full,
    /// Dirty-cone incremental inference through a [`CascadeSession`] when
    /// the classifier provides one ([`FlowClassifier::open_session`]);
    /// classifiers without session support (bare closures) silently fall
    /// back to full re-inference. Probabilities — and hence the outcome —
    /// are bit-identical to [`ImpactMode::Full`].
    Incremental,
}

#[allow(clippy::derivable_impls)] // shim serde derive cannot parse #[default]
impl Default for ImpactMode {
    fn default() -> Self {
        ImpactMode::Incremental
    }
}

/// Which matrix backend the flow's full inference passes run on; see
/// `gcnt_core::backend`. Probabilities — and hence the outcome — are
/// bit-identical across all three choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowBackend {
    /// Serial CSR kernels, the original path.
    Serial,
    /// Partition-parallel kernels regardless of design size (at least two
    /// partitions, one per core up to the auto cap).
    Partitioned,
    /// Pick by design size and host parallelism
    /// ([`MatrixBackend::auto`]): partitioned for 10^5-node-class designs
    /// on multi-core hosts, serial otherwise.
    Auto,
}

#[allow(clippy::derivable_impls)] // shim serde derive cannot parse #[default]
impl Default for FlowBackend {
    fn default() -> Self {
        FlowBackend::Auto
    }
}

impl FlowBackend {
    /// Materialises the backend for the given graph.
    ///
    /// # Errors
    ///
    /// Propagates partition-construction errors for
    /// [`FlowBackend::Partitioned`].
    pub fn build(self, t: &GraphTensors) -> Result<MatrixBackend, TensorError> {
        match self {
            FlowBackend::Serial => Ok(MatrixBackend::serial()),
            FlowBackend::Partitioned => {
                let cores = std::thread::available_parallelism()
                    .map(|c| c.get())
                    .unwrap_or(1);
                MatrixBackend::partitioned(
                    t,
                    cores.clamp(2, gcnt_core::backend::PARTITION_MAX_AUTO),
                )
            }
            FlowBackend::Auto => Ok(MatrixBackend::auto(t)),
        }
    }
}

impl fmt::Display for FlowBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FlowBackend::Serial => "serial",
            FlowBackend::Partitioned => "partitioned",
            FlowBackend::Auto => "auto",
        })
    }
}

impl std::str::FromStr for FlowBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "serial" => Ok(FlowBackend::Serial),
            "partitioned" => Ok(FlowBackend::Partitioned),
            "auto" => Ok(FlowBackend::Auto),
            other => Err(format!(
                "unknown backend '{other}' (use serial, partitioned or auto)"
            )),
        }
    }
}

/// Which tensor row kernel the flow's matrix products run on
/// ([`gcnt_core::KernelPolicy`]). Scalar and blocked kernels are
/// bit-identical, so — like [`FlowBackend`] — this only moves throughput,
/// never the outcome.
///
/// Unlike the backend, the kernel policy is a *process-wide* setting
/// (`GCNT_KERNEL`), so the default here is [`FlowKernel::Inherit`]: the
/// flow leaves whatever policy the process already runs under untouched
/// unless explicitly told otherwise. That keeps `gcnt flow` runs from
/// stomping an operator's (or a test harness's) environment choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowKernel {
    /// Leave the process-wide policy (env or prior install) as-is.
    Inherit,
    /// Install the scalar reference kernel for this process.
    Scalar,
    /// Install the register-blocked kernel for this process.
    Blocked,
    /// Install automatic per-product selection for this process.
    Auto,
}

#[allow(clippy::derivable_impls)] // shim serde derive cannot parse #[default]
impl Default for FlowKernel {
    fn default() -> Self {
        FlowKernel::Inherit
    }
}

impl FlowKernel {
    /// Installs the requested policy process-wide; a no-op for
    /// [`FlowKernel::Inherit`].
    pub fn install(self) {
        if let Some(policy) = self.policy() {
            policy.set_global();
        }
    }

    /// The [`KernelPolicy`] this choice pins, `None` for
    /// [`FlowKernel::Inherit`].
    pub fn policy(self) -> Option<KernelPolicy> {
        match self {
            FlowKernel::Inherit => None,
            FlowKernel::Scalar => Some(KernelPolicy::Scalar),
            FlowKernel::Blocked => Some(KernelPolicy::Blocked),
            FlowKernel::Auto => Some(KernelPolicy::Auto),
        }
    }
}

impl fmt::Display for FlowKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FlowKernel::Inherit => "inherit",
            FlowKernel::Scalar => "scalar",
            FlowKernel::Blocked => "blocked",
            FlowKernel::Auto => "auto",
        })
    }
}

impl std::str::FromStr for FlowKernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "inherit" => Ok(FlowKernel::Inherit),
            "scalar" => Ok(FlowKernel::Scalar),
            "blocked" => Ok(FlowKernel::Blocked),
            "auto" => Ok(FlowKernel::Auto),
            other => Err(format!(
                "unknown kernel '{other}' (use inherit, scalar, blocked or auto)"
            )),
        }
    }
}

/// A classifier the flow can drive: a full-graph probability pass, plus an
/// optional incremental-session fast path used by
/// [`ImpactMode::Incremental`].
///
/// Implemented for [`Gcn`], [`MultiStageGcn`] (and references to them, so
/// callers can keep ownership), and blanket-implemented for any
/// `Fn(&GraphTensors, &Matrix) -> Result<Vec<f32>, TensorError>` closure —
/// closures get no session and always run full inference.
pub trait FlowClassifier {
    /// Full forward pass: the positive-class probability per node.
    ///
    /// # Errors
    ///
    /// Returns a tensor error if the model and graph shapes disagree.
    fn classify(&self, t: &GraphTensors, x: &Matrix) -> Result<Vec<f32>, TensorError>;

    /// Opens an incremental-inference session over the current graph
    /// state, if this classifier supports one. The default (`None`) makes
    /// [`ImpactMode::Incremental`] fall back to full re-inference.
    ///
    /// # Errors
    ///
    /// Returns a tensor error if the model and graph shapes disagree.
    fn open_session(
        &self,
        _t: &GraphTensors,
        _x: &Matrix,
    ) -> Result<Option<CascadeSession<'_>>, TensorError> {
        Ok(None)
    }

    /// Embedding rows one *full* inference computes on an `n`-node graph —
    /// the work unit of [`InferenceStats`]. Defaults to `n` (one row per
    /// node) for classifiers of unknown depth.
    fn full_rows_per_inference(&self, n: usize) -> u64 {
        n as u64
    }

    /// [`FlowClassifier::classify`] under a cooperative work [`Budget`].
    /// Budget-aware classifiers ([`Gcn`], [`MultiStageGcn`]) check between
    /// layers; the default charges the whole pass up front and then runs
    /// [`FlowClassifier::classify`], so even opaque closures participate
    /// in budget accounting at call granularity.
    ///
    /// # Errors
    ///
    /// As [`FlowClassifier::classify`], plus
    /// [`TensorError::BudgetExceeded`] / [`TensorError::Cancelled`].
    fn classify_budgeted(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
    ) -> Result<Vec<f32>, TensorError> {
        budget.charge(self.full_rows_per_inference(t.node_count()))?;
        self.classify(t, x)
    }

    /// [`FlowClassifier::open_session`] under a cooperative work
    /// [`Budget`]; the default ignores the budget and opens an unbudgeted
    /// session (or none).
    ///
    /// # Errors
    ///
    /// As [`FlowClassifier::open_session`], plus budget errors for
    /// budget-aware classifiers.
    fn open_session_budgeted(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        _budget: &Budget,
    ) -> Result<Option<CascadeSession<'_>>, TensorError> {
        self.open_session(t, x)
    }

    /// [`FlowClassifier::classify_budgeted`] through an explicit
    /// [`MatrixBackend`]. The default ignores the backend and runs the
    /// serial path — opaque closures cannot route their internals through
    /// it; backend-aware classifiers ([`Gcn`], [`MultiStageGcn`])
    /// override this with their bit-identical `_with` variants.
    ///
    /// # Errors
    ///
    /// As [`FlowClassifier::classify_budgeted`], plus backend-staleness
    /// errors for overriding implementations.
    fn classify_budgeted_with(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
        _backend: &mut MatrixBackend,
    ) -> Result<Vec<f32>, TensorError> {
        self.classify_budgeted(t, x, budget)
    }

    /// [`FlowClassifier::open_session_budgeted`] through an explicit
    /// [`MatrixBackend`] for the opening full pass; the default ignores
    /// the backend.
    ///
    /// # Errors
    ///
    /// As [`FlowClassifier::open_session_budgeted`], plus
    /// backend-staleness errors for overriding implementations.
    fn open_session_budgeted_with(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
        _backend: &mut MatrixBackend,
    ) -> Result<Option<CascadeSession<'_>>, TensorError> {
        self.open_session_budgeted(t, x, budget)
    }
}

impl<F> FlowClassifier for F
where
    F: Fn(&GraphTensors, &Matrix) -> Result<Vec<f32>, TensorError>,
{
    fn classify(&self, t: &GraphTensors, x: &Matrix) -> Result<Vec<f32>, TensorError> {
        self(t, x)
    }
}

impl FlowClassifier for Gcn {
    fn classify(&self, t: &GraphTensors, x: &Matrix) -> Result<Vec<f32>, TensorError> {
        self.predict_proba(t, x)
    }

    fn open_session(
        &self,
        t: &GraphTensors,
        x: &Matrix,
    ) -> Result<Option<CascadeSession<'_>>, TensorError> {
        CascadeSession::for_gcn(self, t, x).map(Some)
    }

    fn full_rows_per_inference(&self, n: usize) -> u64 {
        self.depth() as u64 * n as u64
    }

    fn classify_budgeted(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
    ) -> Result<Vec<f32>, TensorError> {
        self.predict_proba_budgeted(t, x, budget)
    }

    fn open_session_budgeted(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
    ) -> Result<Option<CascadeSession<'_>>, TensorError> {
        CascadeSession::for_gcn_budgeted(self, t, x, budget).map(Some)
    }

    fn classify_budgeted_with(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
        backend: &mut MatrixBackend,
    ) -> Result<Vec<f32>, TensorError> {
        self.predict_proba_budgeted_with(t, x, budget, backend)
    }

    fn open_session_budgeted_with(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
        backend: &mut MatrixBackend,
    ) -> Result<Option<CascadeSession<'_>>, TensorError> {
        CascadeSession::for_gcn_budgeted_with(self, t, x, budget, backend).map(Some)
    }
}

impl FlowClassifier for &Gcn {
    fn classify(&self, t: &GraphTensors, x: &Matrix) -> Result<Vec<f32>, TensorError> {
        Gcn::predict_proba(self, t, x)
    }

    fn open_session(
        &self,
        t: &GraphTensors,
        x: &Matrix,
    ) -> Result<Option<CascadeSession<'_>>, TensorError> {
        CascadeSession::for_gcn(self, t, x).map(Some)
    }

    fn full_rows_per_inference(&self, n: usize) -> u64 {
        self.depth() as u64 * n as u64
    }

    fn classify_budgeted(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
    ) -> Result<Vec<f32>, TensorError> {
        Gcn::predict_proba_budgeted(self, t, x, budget)
    }

    fn open_session_budgeted(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
    ) -> Result<Option<CascadeSession<'_>>, TensorError> {
        CascadeSession::for_gcn_budgeted(self, t, x, budget).map(Some)
    }

    fn classify_budgeted_with(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
        backend: &mut MatrixBackend,
    ) -> Result<Vec<f32>, TensorError> {
        Gcn::predict_proba_budgeted_with(self, t, x, budget, backend)
    }

    fn open_session_budgeted_with(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
        backend: &mut MatrixBackend,
    ) -> Result<Option<CascadeSession<'_>>, TensorError> {
        CascadeSession::for_gcn_budgeted_with(self, t, x, budget, backend).map(Some)
    }
}

impl FlowClassifier for MultiStageGcn {
    fn classify(&self, t: &GraphTensors, x: &Matrix) -> Result<Vec<f32>, TensorError> {
        self.predict_proba(t, x)
    }

    fn open_session(
        &self,
        t: &GraphTensors,
        x: &Matrix,
    ) -> Result<Option<CascadeSession<'_>>, TensorError> {
        CascadeSession::for_cascade(self, t, x).map(Some)
    }

    fn full_rows_per_inference(&self, n: usize) -> u64 {
        self.stages().iter().map(|g| g.depth() as u64).sum::<u64>() * n as u64
    }

    fn classify_budgeted(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
    ) -> Result<Vec<f32>, TensorError> {
        self.predict_proba_budgeted(t, x, budget)
    }

    fn open_session_budgeted(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
    ) -> Result<Option<CascadeSession<'_>>, TensorError> {
        CascadeSession::for_cascade_budgeted(self, t, x, budget).map(Some)
    }

    fn classify_budgeted_with(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
        backend: &mut MatrixBackend,
    ) -> Result<Vec<f32>, TensorError> {
        self.predict_proba_budgeted_with(t, x, budget, backend)
    }

    fn open_session_budgeted_with(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
        backend: &mut MatrixBackend,
    ) -> Result<Option<CascadeSession<'_>>, TensorError> {
        CascadeSession::for_cascade_budgeted_with(self, t, x, budget, backend).map(Some)
    }
}

impl FlowClassifier for &MultiStageGcn {
    fn classify(&self, t: &GraphTensors, x: &Matrix) -> Result<Vec<f32>, TensorError> {
        MultiStageGcn::predict_proba(self, t, x)
    }

    fn open_session(
        &self,
        t: &GraphTensors,
        x: &Matrix,
    ) -> Result<Option<CascadeSession<'_>>, TensorError> {
        CascadeSession::for_cascade(self, t, x).map(Some)
    }

    fn full_rows_per_inference(&self, n: usize) -> u64 {
        self.stages().iter().map(|g| g.depth() as u64).sum::<u64>() * n as u64
    }

    fn classify_budgeted(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
    ) -> Result<Vec<f32>, TensorError> {
        MultiStageGcn::predict_proba_budgeted(self, t, x, budget)
    }

    fn open_session_budgeted(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
    ) -> Result<Option<CascadeSession<'_>>, TensorError> {
        CascadeSession::for_cascade_budgeted(self, t, x, budget).map(Some)
    }

    fn classify_budgeted_with(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
        backend: &mut MatrixBackend,
    ) -> Result<Vec<f32>, TensorError> {
        MultiStageGcn::predict_proba_budgeted_with(self, t, x, budget, backend)
    }

    fn open_session_budgeted_with(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
        backend: &mut MatrixBackend,
    ) -> Result<Option<CascadeSession<'_>>, TensorError> {
        CascadeSession::for_cascade_budgeted_with(self, t, x, budget, backend).map(Some)
    }
}

/// Configuration of the iterative flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Maximum prediction/insert iterations.
    pub max_iterations: usize,
    /// Observation points inserted per iteration (the "top ranked
    /// locations", §4).
    pub ops_per_iteration: usize,
    /// Positive predictions evaluated for impact per iteration, taken in
    /// decreasing predicted-probability order.
    pub candidate_limit: usize,
    /// A node is a positive prediction if its classifier probability is at
    /// least this.
    pub prob_threshold: f32,
    /// Cap on the fan-in cone size used for impact counting (Fig. 6).
    pub cone_limit: usize,
    /// Maximum failed insertions tolerated across the whole run. A failed
    /// insertion rolls the design back to the state before the attempt
    /// and skips that candidate (recorded in [`FlowOutcome::skipped`]);
    /// once the budget is spent, the next failure propagates. `0` (the
    /// default) disables the snapshotting entirely: every failure is
    /// immediately fatal, exactly as if the budget did not exist.
    pub skip_budget: usize,
    /// Inference strategy for previews and re-classification; defaults to
    /// [`ImpactMode::Incremental`]. The two modes produce bit-identical
    /// outcomes — only [`FlowOutcome::inference`] differs.
    pub impact_mode: ImpactMode,
    /// Matrix backend for full inference passes; defaults to
    /// [`FlowBackend::Auto`]. All choices are bit-identical.
    pub backend: FlowBackend,
    /// Tensor row-kernel policy installed before the run; defaults to
    /// [`FlowKernel::Inherit`] (keep the process-wide setting). All
    /// choices are bit-identical.
    pub kernel: FlowKernel,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            max_iterations: 12,
            ops_per_iteration: 16,
            candidate_limit: 24,
            prob_threshold: 0.5,
            cone_limit: 500,
            skip_budget: 0,
            impact_mode: ImpactMode::Incremental,
            backend: FlowBackend::Auto,
            kernel: FlowKernel::Inherit,
        }
    }
}

/// Per-iteration progress record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// Positive predictions entering the iteration.
    pub positives: usize,
    /// Observation points inserted this iteration.
    pub inserted: usize,
}

/// Work accounting of every inference the flow ran, in embedding-row
/// units (one unit = one node × one GCN layer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferenceStats {
    /// Embedding rows actually computed across all inferences.
    pub rows_computed: u64,
    /// Rows the same inferences would have computed as full passes —
    /// `rows_full / rows_computed` is the incremental reuse factor.
    pub rows_full: u64,
    /// Number of inference calls (full passes plus session refreshes).
    pub inferences: u64,
}

/// Outcome of the iterative flow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowOutcome {
    /// Nodes that received observation points, in insertion order.
    pub inserted: Vec<NodeId>,
    /// Whether the flow exited because no positive predictions remained.
    pub converged: bool,
    /// Positive predictions remaining at exit.
    pub remaining_positives: usize,
    /// Per-iteration history.
    pub history: Vec<IterationStats>,
    /// Candidates whose insertion failed and was rolled back under
    /// [`FlowConfig::skip_budget`], in the order they were skipped.
    pub skipped: Vec<NodeId>,
    /// Embedding-row accounting of every inference performed.
    pub inference: InferenceStats,
}

/// One committed prediction/insert iteration of a resumable run — the unit
/// a write-ahead journal persists. A prefix of these records, replayed
/// through [`run_gcn_opi_resumable`] against the *original* design, puts
/// the flow back in the exact state it was in when the record was written:
/// the continuation produces a [`FlowOutcome`] bit-identical to an
/// uninterrupted run, inference accounting included.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchRecord {
    /// Iteration number (0-based), matching [`IterationStats::iteration`].
    pub iteration: usize,
    /// Positive predictions entering the iteration.
    pub positives: usize,
    /// Observation points committed this iteration, in insertion order.
    pub inserted: Vec<NodeId>,
    /// Candidates skipped (rolled back) this iteration under
    /// [`FlowConfig::skip_budget`].
    pub skipped: Vec<NodeId>,
    /// Whether this iteration found no positive predictions — the flow
    /// converged and no further batch follows.
    pub converged: bool,
    /// Inference accounting at the moment the record was written.
    pub stats_after: InferenceStats,
}

/// Runs the iterative GCN-guided OP insertion flow, mutating `net`.
///
/// `classify` is the trained model — pass a [`Gcn`] or [`MultiStageGcn`]
/// (or a reference to one) to unlock the incremental fast path of
/// [`ImpactMode::Incremental`]; a bare
/// `Fn(&GraphTensors, &Matrix) -> Result<Vec<f32>, TensorError>` closure
/// also works but always runs full inference.
///
/// `normalizer` must be the normaliser the classifier was *trained* with —
/// the flow is inductive and re-applies the training statistics to the
/// modified design.
///
/// A failed insertion normally aborts the flow; with a non-zero
/// [`FlowConfig::skip_budget`] the design is instead rolled back to the
/// state just before the failing attempt and the candidate is skipped
/// (listed in [`FlowOutcome::skipped`]). `net` is always left in the last
/// consistent state, even when an error is returned.
///
/// # Errors
///
/// Returns [`FlowError`] if the netlist is cyclic, the classifier/graph
/// shapes disagree, or an insertion fails with no skip budget left.
pub fn run_gcn_opi<F>(
    net: &mut Netlist,
    normalizer: &FeatureNormalizer,
    classify: F,
    cfg: &FlowConfig,
) -> Result<FlowOutcome, FlowError>
where
    F: FlowClassifier,
{
    run_gcn_opi_budgeted(net, normalizer, classify, cfg, &Budget::unlimited())
}

/// [`run_gcn_opi`] under a cooperative work [`Budget`]: every inference —
/// full passes, session refreshes, impact previews — checks the budget
/// between GCN layers. A budget stop surfaces as
/// [`TensorError::BudgetExceeded`] (or [`TensorError::Cancelled`]) with
/// `net` left in the last consistent committed state, so a caller can
/// restart or degrade without repair work.
///
/// # Errors
///
/// As [`run_gcn_opi`], plus budget errors from the cooperative
/// checkpoints.
pub fn run_gcn_opi_budgeted<F>(
    net: &mut Netlist,
    normalizer: &FeatureNormalizer,
    classify: F,
    cfg: &FlowConfig,
    budget: &Budget,
) -> Result<FlowOutcome, FlowError>
where
    F: FlowClassifier,
{
    run_flow(
        net,
        normalizer,
        classify,
        cfg,
        budget,
        &[],
        commit_insertion,
        &mut |_| Ok(()),
    )
}

/// Resumable variant of [`run_gcn_opi_budgeted`] for long-running jobs
/// behind a write-ahead journal.
///
/// `net` must be the **original** (pre-flow) design. `resume` is the
/// prefix of [`BatchRecord`]s a previous run journaled (empty for a fresh
/// run): their insertions are replayed — without re-running prediction or
/// impact scoring — and the journaled [`BatchRecord::stats_after`]
/// accounting is restored, after which the flow continues from the next
/// iteration. `observer` is invoked once per *newly committed* batch
/// (replayed batches are not re-observed); an observer error stops the
/// flow with [`FlowError::Journal`] semantics: the batch stays committed
/// in `net`, but no further un-journaled work happens.
///
/// Replay is idempotent in the sense that resuming from any journaled
/// prefix — including the complete record set — yields a [`FlowOutcome`]
/// bit-identical to the uninterrupted run.
///
/// # Errors
///
/// As [`run_gcn_opi_budgeted`], plus whatever `observer` returns.
#[allow(clippy::type_complexity)]
pub fn run_gcn_opi_resumable<F>(
    net: &mut Netlist,
    normalizer: &FeatureNormalizer,
    classify: F,
    cfg: &FlowConfig,
    budget: &Budget,
    resume: &[BatchRecord],
    observer: &mut dyn FnMut(&BatchRecord) -> Result<(), FlowError>,
) -> Result<FlowOutcome, FlowError>
where
    F: FlowClassifier,
{
    run_flow(
        net,
        normalizer,
        classify,
        cfg,
        budget,
        resume,
        commit_insertion,
        observer,
    )
}

/// The incrementally maintained per-run design state: everything an
/// insertion mutates, grouped so a failed insertion can be rolled back as
/// one unit under [`FlowConfig::skip_budget`].
#[derive(Clone)]
struct FlowState {
    net: Netlist,
    tensors: GraphTensors,
    scoap: Scoap,
    raw: Vec<[f32; RAW_DIM]>,
    /// Normalised features, maintained cell-by-cell in lockstep with
    /// `raw` — bit-identical to `normalizer.apply(raw)` at all times.
    features: Matrix,
    stale: Vec<bool>,
    /// Feature/structure rows dirtied by commits since the session's last
    /// refresh; drained at the next iteration start.
    pending_dirty: Vec<usize>,
    /// The training normaliser, kept here so the commit step can patch
    /// `features` without re-normalising the design.
    normalizer: FeatureNormalizer,
}

/// Commits one observation point at `target`: structural netlist update,
/// incremental tensor append, SCOAP refresh over the changed cone, and
/// the new node's attribute row (raw and normalised). Leaves `state`
/// untouched on the lint error path only by accident of ordering —
/// callers that need rollback must snapshot before calling.
fn commit_insertion(state: &mut FlowState, target: NodeId) -> Result<(), FlowError> {
    let op = state.net.insert_observation_point(target)?;
    if op.index() != state.tensors.node_count() {
        let mut report = LintReport::new();
        report.report(
            RuleId::AdjacencyNetlistMismatch,
            "flow",
            format!(
                "new node {} is not the tensors' next row ({} nodes modeled)",
                op.index(),
                state.tensors.node_count()
            ),
        );
        return Err(report.into());
    }
    state.tensors.insert_observation_point(target, op)?;
    let changed = state.scoap.observe(&state.net, target, op);
    for v in changed {
        let i = v.index();
        let sq = squash(state.scoap.co(v));
        state.raw[i][3] = sq;
        state
            .features
            .set(i, 3, state.normalizer.normalize_cell(3, sq));
        state.stale[i] = true;
        state.pending_dirty.push(i);
    }
    state.raw.push(OBSERVATION_POINT_ATTRS);
    state
        .features
        .push_row(&state.normalizer.observation_point_row())?;
    // The new OP row and its driver's adjacency row changed structurally,
    // not just attribute-wise; both must enter the next refresh halo.
    state.pending_dirty.push(target.index());
    state.pending_dirty.push(op.index());
    Ok(())
}

/// Accounts one full inference pass over an `n`-node graph.
fn note_full_pass<F: FlowClassifier>(stats: &mut InferenceStats, classify: &F, n: usize) {
    let rows = classify.full_rows_per_inference(n);
    stats.rows_computed += rows;
    stats.rows_full += rows;
    stats.inferences += 1;
    let obs = gcnt_obs::global();
    if obs.is_enabled() {
        obs.add(gcnt_obs::counters::DFT_FLOW_ROWS_COMPUTED, rows);
        obs.add(gcnt_obs::counters::DFT_FLOW_ROWS_FULL, rows);
        obs.incr(gcnt_obs::counters::DFT_FLOW_INFERENCES);
    }
}

/// Accounts one incremental session refresh.
fn note_refresh(stats: &mut InferenceStats, delta: &SessionDelta) {
    stats.rows_computed += delta.rows_computed();
    stats.rows_full += delta.rows_full_equivalent();
    stats.inferences += 1;
    let obs = gcnt_obs::global();
    if obs.is_enabled() {
        obs.add(
            gcnt_obs::counters::DFT_FLOW_ROWS_COMPUTED,
            delta.rows_computed(),
        );
        obs.add(
            gcnt_obs::counters::DFT_FLOW_ROWS_FULL,
            delta.rows_full_equivalent(),
        );
        obs.incr(gcnt_obs::counters::DFT_FLOW_INFERENCES);
    }
}

/// Serves the current probabilities: refreshes the session with the rows
/// dirtied since the last consistent point, or runs a full pass when no
/// session is live.
fn current_probs<F: FlowClassifier>(
    state: &mut FlowState,
    session: &mut Option<CascadeSession<'_>>,
    classify: &F,
    stats: &mut InferenceStats,
    budget: &Budget,
    backend: &mut MatrixBackend,
) -> Result<Vec<f32>, FlowError> {
    match session.as_mut() {
        Some(s) => {
            let dirty = std::mem::take(&mut state.pending_dirty);
            if !dirty.is_empty() {
                let delta =
                    match s.refresh_budgeted(&state.tensors, &state.features, &dirty, budget) {
                        Ok(delta) => delta,
                        Err(e) => {
                            // A budget stop rolled the session back; put the
                            // dirty rows back too so a retry (with a fresh
                            // budget) still refreshes them.
                            state.pending_dirty = dirty;
                            return Err(e.into());
                        }
                    };
                note_refresh(stats, &delta);
            }
            Ok(s.probs().to_vec())
        }
        None => {
            refresh_backend(backend, &state.tensors)?;
            let probs = classify.classify_budgeted_with(
                &state.tensors,
                &state.features,
                budget,
                backend,
            )?;
            note_full_pass(stats, classify, state.tensors.node_count());
            Ok(probs)
        }
    }
}

/// The flow loop with an injectable commit step — production code enters
/// through [`run_gcn_opi`] and friends; tests substitute a failing commit
/// to exercise the skip-budget rollback path.
#[allow(clippy::too_many_arguments)]
fn run_flow<F, C>(
    net: &mut Netlist,
    normalizer: &FeatureNormalizer,
    classify: F,
    cfg: &FlowConfig,
    budget: &Budget,
    resume: &[BatchRecord],
    mut commit: C,
    observer: &mut dyn FnMut(&BatchRecord) -> Result<(), FlowError>,
) -> Result<FlowOutcome, FlowError>
where
    F: FlowClassifier,
    C: FnMut(&mut FlowState, NodeId) -> Result<(), FlowError>,
{
    let levels = logic_levels(net)?;
    let scoap = Scoap::compute(net)?;
    // Raw (log-squashed) attribute rows, kept as a Vec so appends are O(1).
    let raw: Vec<[f32; RAW_DIM]> = (0..net.node_count())
        .map(|i| {
            [
                squash(levels[i]),
                squash(scoap.cc0_all()[i]),
                squash(scoap.cc1_all()[i]),
                squash(scoap.co_all()[i]),
            ]
        })
        .collect();
    let features = normalizer.apply(&rows_to_matrix(&raw));
    let mut state = FlowState {
        tensors: GraphTensors::from_netlist(net),
        net: net.clone(),
        scoap,
        raw,
        features,
        stale: Vec::new(),
        pending_dirty: Vec::new(),
        normalizer: normalizer.clone(),
    };

    let mut inserted = Vec::new();
    let mut skipped = Vec::new();
    let mut history = Vec::new();
    let mut converged = false;
    let mut remaining = 0usize;
    let mut stats = InferenceStats::default();

    let result = (|| -> Result<(), FlowError> {
        // Replay journaled batches against the original design: commit
        // their insertions without re-running prediction or impact
        // scoring, and restore the journaled accounting. The continuation
        // below then behaves exactly as if this process had run the
        // replayed iterations itself.
        let mut start_iteration = 0usize;
        // Whether the journal shows the iteration loop already exited
        // (convergence or a no-progress iteration).
        let mut loop_done = false;
        for (k, rec) in resume.iter().enumerate() {
            budget.charge(0)?; // cancellation checkpoint between batches
            state.stale = vec![false; state.net.node_count()];
            for &target in &rec.inserted {
                commit(&mut state, target)?;
                inserted.push(target);
            }
            skipped.extend(rec.skipped.iter().copied());
            history.push(IterationStats {
                iteration: rec.iteration,
                positives: rec.positives,
                inserted: rec.inserted.len(),
            });
            remaining = rec.positives;
            if rec.converged {
                converged = true;
                loop_done = true;
            } else if rec.inserted.is_empty() {
                loop_done = true; // the run broke on a no-progress iteration
            } else {
                relint_incremental(&state.net, &state.tensors, &state.scoap, None, None)?;
            }
            // The uninterrupted run drained these dirty rows at the next
            // iteration's refresh — already paid for inside the journaled
            // stats — except for the *last* batch, whose refresh had not
            // happened yet and must be re-done by the continuation.
            if k + 1 < resume.len() {
                state.pending_dirty.clear();
            }
            stats = rec.stats_after;
            start_iteration = rec.iteration + 1;
        }

        if loop_done && converged {
            // Nothing left to run or count; skip even the session opening
            // so the budget is not charged for unused work.
            return Ok(());
        }

        // Pin the tensor row-kernel policy for the run (a no-op under the
        // default `Inherit`, which keeps the process-wide setting).
        cfg.kernel.install();

        // The matrix backend for full inference passes, built against the
        // post-replay graph state. Commits bump the generation;
        // `refresh_backend` re-shards lazily before each use.
        let mut backend = cfg.backend.build(&state.tensors)?;

        // One live session for the whole run (Incremental mode with a
        // session-capable classifier); its opening full pass is counted —
        // except on resume, where the original run's opening pass is
        // already inside the restored stats.
        let mut session: Option<CascadeSession<'_>> = match cfg.impact_mode {
            ImpactMode::Incremental => {
                let s = classify.open_session_budgeted_with(
                    &state.tensors,
                    &state.features,
                    budget,
                    &mut backend,
                )?;
                if s.is_some() && resume.is_empty() {
                    note_full_pass(&mut stats, &classify, state.tensors.node_count());
                }
                s
            }
            ImpactMode::Full => None,
        };

        let first_iteration = if loop_done {
            cfg.max_iterations // skip straight to the final count
        } else {
            start_iteration
        };
        for iteration in first_iteration..cfg.max_iterations {
            budget.charge(0)?; // cancellation checkpoint between iterations
            let _iter_span = gcnt_obs::span(gcnt_obs::histograms::DFT_FLOW_ITERATION_NS);
            gcnt_obs::global().incr(gcnt_obs::counters::DFT_FLOW_ITERATIONS);
            let skipped_before = skipped.len();
            let probs = current_probs(
                &mut state,
                &mut session,
                &classify,
                &mut stats,
                budget,
                &mut backend,
            )?;
            // Positive predictions, excluding nodes that are already
            // observed or are themselves observe points.
            let mut positives: Vec<(NodeId, f32)> = state
                .net
                .nodes()
                .filter(|&v| !matches!(state.net.kind(v), CellKind::Output | CellKind::Dff))
                .filter(|&v| state.scoap.co(v) > 0)
                .map(|v| (v, probs[v.index()]))
                .filter(|&(_, p)| p >= cfg.prob_threshold)
                .collect();
            remaining = positives.len();
            if positives.is_empty() {
                converged = true;
                history.push(IterationStats {
                    iteration,
                    positives: 0,
                    inserted: 0,
                });
                observer(&BatchRecord {
                    iteration,
                    positives: 0,
                    inserted: Vec::new(),
                    skipped: Vec::new(),
                    converged: true,
                    stats_after: stats,
                })?;
                break;
            }
            // Highest-probability candidates first.
            positives.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            positives.truncate(cfg.candidate_limit);

            // Impact evaluation (Fig. 6).
            let mut scored: Vec<(NodeId, i64, f32)> = Vec::with_capacity(positives.len());
            for &(v, p) in &positives {
                let impact = evaluate_impact(
                    &state.net,
                    &state.scoap,
                    &state.tensors,
                    &state.normalizer,
                    &mut state.features,
                    &probs,
                    &classify,
                    session.as_mut(),
                    &mut stats,
                    budget,
                    &mut backend,
                    v,
                    cfg,
                )?;
                scored.push((v, impact, p));
                gcnt_obs::global().incr(gcnt_obs::counters::DFT_FLOW_CANDIDATES_SCORED);
            }
            scored.sort_by(|a, b| {
                b.1.cmp(&a.1)
                    .then(b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal))
            });

            let mut inserted_now = 0usize;
            // Nodes whose observability improved due to an insertion
            // committed *this* round: their predictions are stale, so defer
            // them to the next iteration's re-inference instead of blindly
            // observing them (one OP at a cone exit typically fixes the
            // whole cone).
            state.stale = vec![false; state.net.node_count()];
            for &(target, _, _) in &scored {
                if inserted_now >= cfg.ops_per_iteration {
                    break;
                }
                if state.scoap.co(target) == 0 || state.stale[target.index()] {
                    continue;
                }
                // Snapshot only while skip budget remains: the default
                // budget of 0 never clones, and a spent budget means the
                // next failure propagates anyway. The session is not
                // snapshotted: commits never touch it, so after a state
                // rollback it is still consistent with the restored state.
                let snapshot = (skipped.len() < cfg.skip_budget).then(|| state.clone());
                match commit(&mut state, target) {
                    Ok(()) => {
                        // Adopt the grown graph; the commit's dirty rows
                        // are refreshed at the next iteration start.
                        if let Some(s) = session.as_mut() {
                            s.sync_nodes(&state.tensors);
                        }
                        inserted.push(target);
                        inserted_now += 1;
                        gcnt_obs::global().incr(gcnt_obs::counters::DFT_FLOW_OPS_INSERTED);
                    }
                    Err(e) => match snapshot {
                        Some(prev) => {
                            state = prev;
                            skipped.push(target);
                            gcnt_obs::global().incr(gcnt_obs::counters::DFT_FLOW_SKIPS);
                        }
                        None => return Err(e),
                    },
                }
            }
            history.push(IterationStats {
                iteration,
                positives: remaining,
                inserted: inserted_now,
            });
            if inserted_now > 0 {
                // Re-shard eagerly so the post-batch lint (PT001) checks a
                // partitioning that matches the committed state — the same
                // state the next full pass would use.
                refresh_backend(&mut backend, &state.tensors)?;
                relint_incremental(
                    &state.net,
                    &state.tensors,
                    &state.scoap,
                    session.as_ref().map(|s| s.caches()),
                    Some(&backend),
                )?;
            }
            // Journal the batch only once it is lint-clean: a record is a
            // promise that the committed state is consistent.
            observer(&BatchRecord {
                iteration,
                positives: remaining,
                inserted: inserted[inserted.len() - inserted_now..].to_vec(),
                skipped: skipped[skipped_before..].to_vec(),
                converged: false,
                stats_after: stats,
            })?;
            if inserted_now == 0 {
                break; // cannot make progress
            }
        }

        // Final positive count if we exited by iteration cap.
        if !converged {
            let probs = current_probs(
                &mut state,
                &mut session,
                &classify,
                &mut stats,
                budget,
                &mut backend,
            )?;
            remaining = state
                .net
                .nodes()
                .filter(|&v| !matches!(state.net.kind(v), CellKind::Output | CellKind::Dff))
                .filter(|&v| state.scoap.co(v) > 0)
                .filter(|&v| probs[v.index()] >= cfg.prob_threshold)
                .count();
            converged = remaining == 0;
        }
        Ok(())
    })();

    // Commit the (always consistent) final state back to the caller, on
    // the error path too — every mutation before the failure survives.
    *net = state.net;
    result?;

    Ok(FlowOutcome {
        inserted,
        converged,
        remaining_positives: remaining,
        history,
        skipped,
        inference: stats,
    })
}

/// Impact of a hypothetical OP at `target`: positive predictions in the
/// fan-in cone before minus after the preview insertion (Fig. 6).
///
/// The previewed attribute rows are patched directly into `features` and
/// restored before returning (error paths included), so no full-matrix
/// clone or re-normalisation happens per candidate.
#[allow(clippy::too_many_arguments)]
fn evaluate_impact<F: FlowClassifier>(
    net: &Netlist,
    scoap: &Scoap,
    tensors: &GraphTensors,
    normalizer: &FeatureNormalizer,
    features: &mut Matrix,
    probs: &[f32],
    classify: &F,
    session: Option<&mut CascadeSession<'_>>,
    stats: &mut InferenceStats,
    budget: &Budget,
    backend: &mut MatrixBackend,
    target: NodeId,
    cfg: &FlowConfig,
) -> Result<i64, FlowError> {
    let mut cone = net.fanin_cone(target, cfg.cone_limit);
    // `fanin_cone` excludes its root today; the guard keeps the apex
    // counted exactly once even if that contract ever changes.
    if !cone.contains(&target) {
        cone.push(target);
    }
    let pos_before = cone
        .iter()
        .filter(|&&v| probs[v.index()] >= cfg.prob_threshold)
        .count() as i64;
    if pos_before == 0 {
        return Ok(0);
    }
    // Preview the observability improvement directly in the feature
    // matrix, recording an undo list of the touched cells.
    let preview = scoap.preview_observe(net, target);
    let mut undo: Vec<(usize, f32)> = Vec::with_capacity(preview.len());
    let mut dirty: Vec<usize> = Vec::with_capacity(preview.len());
    for &(v, co) in &preview {
        let i = v.index();
        undo.push((i, features.get(i, 3)));
        features.set(i, 3, normalizer.normalize_cell(3, squash(co)));
        dirty.push(i);
    }
    let scored = score_preview(
        tensors, features, &dirty, &cone, classify, session, stats, budget, backend, cfg,
    );
    // Always restore the previewed cells, error path included.
    for &(i, old) in undo.iter().rev() {
        features.set(i, 3, old);
    }
    Ok(pos_before - scored?)
}

/// Counts the positives inside `cone` under the already-patched preview
/// features: a session refresh + revert over the dirty halo, or a full
/// pass when no session is live.
#[allow(clippy::too_many_arguments)]
fn score_preview<F: FlowClassifier>(
    tensors: &GraphTensors,
    features: &Matrix,
    dirty: &[usize],
    cone: &[NodeId],
    classify: &F,
    session: Option<&mut CascadeSession<'_>>,
    stats: &mut InferenceStats,
    budget: &Budget,
    backend: &mut MatrixBackend,
    cfg: &FlowConfig,
) -> Result<i64, FlowError> {
    match session {
        Some(s) => {
            let delta = s.refresh_budgeted(tensors, features, dirty, budget)?;
            note_refresh(stats, &delta);
            let pos = cone
                .iter()
                .filter(|&&v| s.probs()[v.index()] >= cfg.prob_threshold)
                .count() as i64;
            s.revert(delta);
            Ok(pos)
        }
        None => {
            refresh_backend(backend, tensors)?;
            let probs_after =
                classify.classify_budgeted_with(tensors, features, budget, backend)?;
            note_full_pass(stats, classify, tensors.node_count());
            Ok(cone
                .iter()
                .filter(|&&v| probs_after[v.index()] >= cfg.prob_threshold)
                .count() as i64)
        }
    }
}

fn rows_to_matrix(rows: &[[f32; RAW_DIM]]) -> Matrix {
    let mut data = Vec::with_capacity(rows.len() * RAW_DIM);
    for r in rows {
        data.extend_from_slice(r);
    }
    Matrix::from_vec(rows.len(), RAW_DIM, data).expect("row-major data is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_netlist::{generate, GeneratorConfig};

    fn shadowed_design(seed: u64) -> Netlist {
        let mut cfg = GeneratorConfig::sized("flow", seed, 900);
        cfg.shadow_regions = 3;
        generate(&cfg)
    }

    /// An "oracle" classifier that flags exactly the nodes whose squashed
    /// observability exceeds a threshold — lets us test flow mechanics
    /// without training a model.
    fn oracle(threshold: f32) -> impl Fn(&GraphTensors, &Matrix) -> Result<Vec<f32>, TensorError> {
        move |_t, features| {
            Ok((0..features.rows())
                .map(|r| {
                    // Column 3 is normalised observability; high = hard.
                    if features.get(r, 3) > threshold {
                        0.9
                    } else {
                        0.1
                    }
                })
                .collect())
        }
    }

    #[test]
    fn flow_converges_on_shadowed_design() {
        let mut net = shadowed_design(91);
        let raw = gcnt_core::features::raw_features_of(&net).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let cfg = FlowConfig {
            max_iterations: 20,
            ops_per_iteration: 8,
            candidate_limit: 12,
            ..Default::default()
        };
        let outcome = run_gcn_opi(&mut net, &norm, oracle(2.0), &cfg).unwrap();
        assert!(outcome.converged, "flow did not converge: {outcome:?}");
        assert!(!outcome.inserted.is_empty());
        assert_eq!(outcome.remaining_positives, 0);
        // The flow re-lints after every update, so a clean exit implies a
        // structurally sound design; double-check through the public pass.
        let report = gcnt_lint::lint_netlist_deep(&net);
        assert!(!report.has_errors(), "{report}");
        // Every inserted node is now directly observable.
        let scoap = Scoap::compute(&net).unwrap();
        for &v in &outcome.inserted {
            assert_eq!(scoap.co(v), 0);
        }
    }

    #[test]
    fn flow_inserts_nothing_when_classifier_is_silent() {
        let mut net = shadowed_design(92);
        let raw = gcnt_core::features::raw_features_of(&net).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let silent = |_t: &GraphTensors, f: &Matrix| -> Result<Vec<f32>, TensorError> {
            Ok(vec![0.0; f.rows()])
        };
        let outcome = run_gcn_opi(&mut net, &norm, silent, &FlowConfig::default()).unwrap();
        assert!(outcome.converged);
        assert!(outcome.inserted.is_empty());
        assert_eq!(outcome.history.len(), 1);
        // One full pass decided convergence; nothing else ran.
        assert_eq!(outcome.inference.inferences, 1);
    }

    #[test]
    fn impact_ranking_prefers_cone_covering_nodes() {
        // A chain of hard nodes: observing the chain *end* fixes the whole
        // cone, so the flow should need far fewer OPs than there are
        // positives.
        let mut net = shadowed_design(93);
        let raw = gcnt_core::features::raw_features_of(&net).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        // Count initial positives under the oracle.
        let features = norm.apply(&raw);
        let initial_positive = (0..features.rows())
            .filter(|&r| features.get(r, 3) > 2.0)
            .count();
        let cfg = FlowConfig {
            max_iterations: 20,
            ops_per_iteration: 4,
            candidate_limit: 16,
            ..Default::default()
        };
        let outcome = run_gcn_opi(&mut net, &norm, oracle(2.0), &cfg).unwrap();
        assert!(outcome.converged);
        assert!(
            outcome.inserted.len() < initial_positive,
            "impact ranking should cover multiple positives per OP: {} OPs for {} positives",
            outcome.inserted.len(),
            initial_positive
        );
    }

    #[test]
    fn history_is_monotone_progress() {
        let mut net = shadowed_design(94);
        let raw = gcnt_core::features::raw_features_of(&net).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let outcome = run_gcn_opi(&mut net, &norm, oracle(2.0), &FlowConfig::default()).unwrap();
        // Positives must strictly decrease across iterations until zero.
        for w in outcome.history.windows(2) {
            assert!(
                w[1].positives < w[0].positives,
                "positives did not decrease: {:?}",
                outcome.history
            );
        }
    }

    #[test]
    fn ops_per_iteration_is_respected() {
        let mut net = shadowed_design(95);
        let raw = gcnt_core::features::raw_features_of(&net).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let cfg = FlowConfig {
            max_iterations: 1,
            ops_per_iteration: 2,
            candidate_limit: 8,
            ..Default::default()
        };
        let outcome = run_gcn_opi(&mut net, &norm, oracle(2.0), &cfg).unwrap();
        assert!(
            outcome.inserted.len() <= 2,
            "{} inserted",
            outcome.inserted.len()
        );
        assert_eq!(outcome.history.len(), 1);
    }

    #[test]
    fn flow_error_display() {
        let e = FlowError::Netlist(NetlistError::UnknownNode(NodeId::from_index(3)));
        assert!(e.to_string().contains("netlist error"));
        let e = FlowError::Tensor(TensorError::LengthMismatch {
            expected: 1,
            actual: 2,
        });
        assert!(e.to_string().contains("tensor error"));
        let mut report = LintReport::new();
        report.report(RuleId::AdjacencyNetlistMismatch, "flow", "out of sync");
        let e = FlowError::from(report);
        assert!(e.to_string().contains("TS001"), "{e}");
    }

    #[test]
    fn skip_budget_rolls_back_failed_insertions() {
        let mut reference_net = shadowed_design(98);
        let raw = gcnt_core::features::raw_features_of(&reference_net).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let cfg = FlowConfig {
            max_iterations: 20,
            ops_per_iteration: 4,
            candidate_limit: 8,
            skip_budget: 3,
            ..Default::default()
        };
        let reference = run_gcn_opi(&mut reference_net, &norm, oracle(2.0), &cfg).unwrap();
        assert!(reference.skipped.is_empty(), "healthy run skips nothing");

        // Same run, but the first two commit attempts fail transiently.
        let mut net = shadowed_design(98);
        let before = net.node_count();
        let mut failures = 2;
        let outcome = run_flow(
            &mut net,
            &norm,
            oracle(2.0),
            &cfg,
            &Budget::unlimited(),
            &[],
            |state, target| {
                if failures > 0 {
                    failures -= 1;
                    // Poison the state before failing, to prove the rollback
                    // restores it rather than trusting commit to be atomic.
                    state.raw.push([9.0; RAW_DIM]);
                    return Err(FlowError::Netlist(NetlistError::UnknownNode(target)));
                }
                commit_insertion(state, target)
            },
            &mut |_| Ok(()),
        )
        .unwrap();
        assert_eq!(outcome.skipped.len(), 2, "{:?}", outcome.skipped);
        assert!(outcome.converged, "flow must still converge: {outcome:?}");
        // The rolled-back design stays structurally sound.
        let report = gcnt_lint::lint_netlist_deep(&net);
        assert!(!report.has_errors(), "{report}");
        assert_eq!(net.node_count(), before + outcome.inserted.len());
    }

    #[test]
    fn exhausted_skip_budget_propagates_the_error() {
        let mut net = shadowed_design(99);
        let raw = gcnt_core::features::raw_features_of(&net).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let cfg = FlowConfig {
            skip_budget: 1,
            ..Default::default()
        };
        let before = net.node_count();
        let err = run_flow(
            &mut net,
            &norm,
            oracle(2.0),
            &cfg,
            &Budget::unlimited(),
            &[],
            |_state, target| Err(FlowError::Netlist(NetlistError::UnknownNode(target))),
            &mut |_| Ok(()),
        )
        .unwrap_err();
        assert!(matches!(err, FlowError::Netlist(_)), "{err}");
        // One skip was rolled back, the second failure aborted: the
        // caller's design is unchanged and consistent.
        assert_eq!(net.node_count(), before);
        assert!(!gcnt_lint::lint_netlist_deep(&net).has_errors());
    }

    #[test]
    fn zero_skip_budget_matches_budgeted_run_when_healthy() {
        let raw_cfg = FlowConfig {
            max_iterations: 20,
            ops_per_iteration: 4,
            ..Default::default()
        };
        let budgeted_cfg = FlowConfig {
            skip_budget: 5,
            ..raw_cfg.clone()
        };
        let mut net_a = shadowed_design(100);
        let mut net_b = shadowed_design(100);
        let raw = gcnt_core::features::raw_features_of(&net_a).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let a = run_gcn_opi(&mut net_a, &norm, oracle(2.0), &raw_cfg).unwrap();
        let b = run_gcn_opi(&mut net_b, &norm, oracle(2.0), &budgeted_cfg).unwrap();
        assert_eq!(a, b, "budget must not perturb a failure-free run");
        assert_eq!(net_a, net_b);
    }

    #[test]
    fn relint_catches_out_of_sync_tensors() {
        let net = shadowed_design(96);
        let smaller = shadowed_design(97);
        let tensors = GraphTensors::from_netlist(&smaller);
        let scoap = Scoap::compute(&net).unwrap();
        let err = relint_incremental(&net, &tensors, &scoap, None, None).unwrap_err();
        match err {
            FlowError::Lint(report) => {
                assert!(report.fired(RuleId::AdjacencyNetlistMismatch), "{report}")
            }
            other => panic!("expected a lint error, got {other}"),
        }
    }

    /// Regression pin for the impact score: the apex must be counted
    /// exactly once even when it and its cone are all positive, and the
    /// undo list must leave the feature matrix bit-identical afterwards.
    #[test]
    fn impact_score_counts_cone_nodes_once_and_restores_features() {
        use std::collections::BTreeSet;

        let net = shadowed_design(93);
        let raw = gcnt_core::features::raw_features_of(&net).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let mut features = norm.apply(&raw);
        let pristine = features.clone();
        let tensors = GraphTensors::from_netlist(&net);
        let scoap = Scoap::compute(&net).unwrap();
        let cfg = FlowConfig::default();
        let classify = oracle(2.0);
        let probs = classify(&tensors, &features).unwrap();

        let mut checked = 0;
        for target in net.nodes() {
            if probs[target.index()] < cfg.prob_threshold || scoap.co(target) == 0 {
                continue;
            }
            // Independent reference: dedup the cone as a set, preview, and
            // re-normalise the whole design from scratch.
            let mut cone: BTreeSet<NodeId> =
                net.fanin_cone(target, cfg.cone_limit).into_iter().collect();
            cone.insert(target);
            let before = cone
                .iter()
                .filter(|&&v| probs[v.index()] >= cfg.prob_threshold)
                .count() as i64;
            let mut raw2 = raw.clone();
            for (v, co) in scoap.preview_observe(&net, target) {
                raw2.set(v.index(), 3, squash(co));
            }
            let probs2 = classify(&tensors, &norm.apply(&raw2)).unwrap();
            let after = cone
                .iter()
                .filter(|&&v| probs2[v.index()] >= cfg.prob_threshold)
                .count() as i64;

            let mut stats = InferenceStats::default();
            let impact = evaluate_impact(
                &net,
                &scoap,
                &tensors,
                &norm,
                &mut features,
                &probs,
                &classify,
                None,
                &mut stats,
                &Budget::unlimited(),
                &mut MatrixBackend::serial(),
                target,
                &cfg,
            )
            .unwrap();
            assert_eq!(impact, before - after, "target {target:?}");
            assert_eq!(features, pristine, "features must be restored");
            checked += 1;
            if checked >= 10 {
                break;
            }
        }
        assert!(checked > 0, "design has positive candidates");
    }

    /// A seeded (untrained) GCN drives both modes to the same outcome —
    /// the incremental path must be bit-identical, not just close.
    #[test]
    fn incremental_mode_matches_full_mode_with_a_real_model() {
        use gcnt_core::{GcnConfig, GraphData};

        let net = shadowed_design(101);
        let data = GraphData::from_netlist(&net, None).unwrap();
        let gcn = Gcn::new(
            &GcnConfig {
                embed_dims: vec![8, 8],
                fc_dims: vec![8],
                ..GcnConfig::default()
            },
            &mut gcnt_nn::seeded_rng(7),
        );
        let norm = data.normalizer.clone();
        let cfg_base = FlowConfig {
            max_iterations: 3,
            ops_per_iteration: 4,
            candidate_limit: 6,
            ..Default::default()
        };

        let mut net_full = net.clone();
        let full = run_gcn_opi(
            &mut net_full,
            &norm,
            &gcn,
            &FlowConfig {
                impact_mode: ImpactMode::Full,
                ..cfg_base.clone()
            },
        )
        .unwrap();
        let mut net_inc = net.clone();
        let inc = run_gcn_opi(
            &mut net_inc,
            &norm,
            &gcn,
            &FlowConfig {
                impact_mode: ImpactMode::Incremental,
                ..cfg_base
            },
        )
        .unwrap();

        assert_eq!(full.inserted, inc.inserted);
        assert_eq!(full.converged, inc.converged);
        assert_eq!(full.remaining_positives, inc.remaining_positives);
        assert_eq!(full.history, inc.history);
        assert_eq!(full.skipped, inc.skipped);
        assert_eq!(net_full, net_inc);
        // The incremental run did strictly less embedding work.
        if !inc.inserted.is_empty() {
            assert!(
                inc.inference.rows_computed < full.inference.rows_computed,
                "incremental {} vs full {}",
                inc.inference.rows_computed,
                full.inference.rows_computed
            );
        }
        assert_eq!(full.inference.rows_computed, full.inference.rows_full);
    }

    fn record_collector(records: &mut Vec<BatchRecord>) -> impl FnMut(&BatchRecord) + '_ {
        move |r| records.push(r.clone())
    }

    /// Resuming from every journaled prefix — empty, mid-run, and the
    /// complete record set — reproduces the uninterrupted outcome and
    /// design bit-identically, inference accounting included.
    #[test]
    fn resume_from_any_prefix_is_bit_identical() {
        use gcnt_core::{GcnConfig, GraphData};

        let net = shadowed_design(103);
        let data = GraphData::from_netlist(&net, None).unwrap();
        let gcn = Gcn::new(
            &GcnConfig {
                embed_dims: vec![8, 8],
                fc_dims: vec![8],
                ..GcnConfig::default()
            },
            &mut gcnt_nn::seeded_rng(9),
        );
        let norm = data.normalizer.clone();
        let cfg = FlowConfig {
            max_iterations: 4,
            ops_per_iteration: 4,
            candidate_limit: 6,
            ..Default::default()
        };

        let mut records = Vec::new();
        let mut collect = record_collector(&mut records);
        let mut net_ref = net.clone();
        let reference = run_gcn_opi_resumable(
            &mut net_ref,
            &norm,
            &gcn,
            &cfg,
            &Budget::unlimited(),
            &[],
            &mut |r| {
                collect(r);
                Ok(())
            },
        )
        .unwrap();
        drop(collect);
        assert!(!records.is_empty());

        for cut in 0..=records.len() {
            let mut net_resumed = net.clone();
            let resumed = run_gcn_opi_resumable(
                &mut net_resumed,
                &norm,
                &gcn,
                &cfg,
                &Budget::unlimited(),
                &records[..cut],
                &mut |_| Ok(()),
            )
            .unwrap();
            assert_eq!(resumed, reference, "prefix of {cut} records diverged");
            assert_eq!(net_resumed, net_ref, "design diverged at prefix {cut}");
        }
    }

    /// The continuation after a replay journals exactly the records the
    /// uninterrupted run journals past the cut point — so a twice-resumed
    /// journal is identical to a once-written one (replay idempotence at
    /// the record level).
    #[test]
    fn continuation_re_journals_the_remaining_records() {
        let net = shadowed_design(104);
        let raw = gcnt_core::features::raw_features_of(&net).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let cfg = FlowConfig {
            max_iterations: 20,
            ops_per_iteration: 4,
            candidate_limit: 8,
            ..Default::default()
        };

        let mut records = Vec::new();
        let mut net_ref = net.clone();
        run_gcn_opi_resumable(
            &mut net_ref,
            &norm,
            oracle(2.0),
            &cfg,
            &Budget::unlimited(),
            &[],
            &mut |r| {
                records.push(r.clone());
                Ok(())
            },
        )
        .unwrap();
        assert!(records.len() >= 2, "need a multi-batch run");

        let cut = records.len() / 2;
        let mut tail = Vec::new();
        let mut net_resumed = net.clone();
        run_gcn_opi_resumable(
            &mut net_resumed,
            &norm,
            oracle(2.0),
            &cfg,
            &Budget::unlimited(),
            &records[..cut],
            &mut |r| {
                tail.push(r.clone());
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(tail, records[cut..].to_vec());
    }

    /// An exhausted budget stops the flow with a typed error and leaves
    /// the caller's design in a consistent committed state.
    #[test]
    fn budget_stop_leaves_a_consistent_design() {
        let mut net = shadowed_design(105);
        let raw = gcnt_core::features::raw_features_of(&net).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        // The oracle closure charges full passes up front; a tiny cap
        // stops the very first classification.
        let err = run_gcn_opi_budgeted(
            &mut net,
            &norm,
            oracle(2.0),
            &FlowConfig::default(),
            &Budget::with_cap(1),
        )
        .unwrap_err();
        assert!(err.is_budget_stop(), "{err}");
        assert!(!gcnt_lint::lint_netlist_deep(&net).has_errors());
    }

    /// An unlimited budget must not perturb the flow at all.
    #[test]
    fn unlimited_budget_matches_unbudgeted_run() {
        let mut net_a = shadowed_design(106);
        let mut net_b = shadowed_design(106);
        let raw = gcnt_core::features::raw_features_of(&net_a).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let cfg = FlowConfig::default();
        let a = run_gcn_opi(&mut net_a, &norm, oracle(2.0), &cfg).unwrap();
        let b = run_gcn_opi_budgeted(&mut net_b, &norm, oracle(2.0), &cfg, &Budget::unlimited())
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(net_a, net_b);
    }

    /// An observer refusal stops the flow but keeps the committed batch:
    /// no un-journaled work piles up, and the design stays consistent.
    #[test]
    fn observer_error_aborts_after_the_batch() {
        let mut net = shadowed_design(107);
        let before = net.node_count();
        let raw = gcnt_core::features::raw_features_of(&net).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let cfg = FlowConfig {
            max_iterations: 20,
            ops_per_iteration: 2,
            ..Default::default()
        };
        let mut seen = 0usize;
        let err = run_gcn_opi_resumable(
            &mut net,
            &norm,
            oracle(2.0),
            &cfg,
            &Budget::unlimited(),
            &[],
            &mut |r| {
                seen += 1;
                if seen == 1 {
                    assert!(!r.inserted.is_empty());
                    Err(FlowError::Journal("disk full".into()))
                } else {
                    Ok(())
                }
            },
        )
        .unwrap_err();
        assert!(matches!(err, FlowError::Journal(_)), "{err}");
        assert_eq!(seen, 1, "flow must stop at the refused batch");
        // The refused batch's insertions stay committed.
        assert!(net.node_count() > before);
        assert!(!gcnt_lint::lint_netlist_deep(&net).has_errors());
    }

    /// Closures have no session: Incremental mode silently falls back to
    /// full inference and the two modes produce identical stats.
    #[test]
    fn closures_fall_back_to_full_inference() {
        let mut net_a = shadowed_design(102);
        let mut net_b = shadowed_design(102);
        let raw = gcnt_core::features::raw_features_of(&net_a).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let cfg_full = FlowConfig {
            max_iterations: 4,
            impact_mode: ImpactMode::Full,
            ..Default::default()
        };
        let cfg_inc = FlowConfig {
            impact_mode: ImpactMode::Incremental,
            ..cfg_full.clone()
        };
        let a = run_gcn_opi(&mut net_a, &norm, oracle(2.0), &cfg_full).unwrap();
        let b = run_gcn_opi(&mut net_b, &norm, oracle(2.0), &cfg_inc).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.inference.rows_computed, a.inference.rows_full);
    }
}
