//! Control-point insertion — the CP side of test point insertion.
//!
//! The paper's method "is generic and can be applied to both CPs insertion
//! and OPs insertion" (§2.2, Fig. 2): a control point forces a line to a
//! desired value in test mode. This module provides the controllability
//! analogue of the observability pipeline:
//!
//! * [`estimate_signal_probabilities`] — random-pattern signal
//!   probability of every node (the controllability ground truth, like the
//!   labeler's CPT observability).
//! * [`label_difficult_to_control`] — flags nodes pinned near constant 0
//!   or constant 1 under random patterns.
//! * [`insert_control_points`] — iterative analysis/insert loop that
//!   rewires each hard node's fanout through an OR (control-to-1) or AND
//!   (control-to-0) gate driven by a fresh test input (Fig. 2's CP1/CP2
//!   structure).

use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use gcnt_netlist::{CellKind, Netlist, NodeId, Result};

use crate::sim::PatternSim;

/// Configuration of the controllability analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlLabelConfig {
    /// Number of random patterns (rounded up to a multiple of 64).
    pub patterns: usize,
    /// A node is difficult to control to value `b` if its probability of
    /// taking `b` under random patterns is below this threshold.
    pub threshold: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ControlLabelConfig {
    fn default() -> Self {
        ControlLabelConfig {
            patterns: 8192,
            threshold: 0.001,
            seed: 0xC_9,
        }
    }
}

/// Result of the controllability analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlLabelResult {
    /// Estimated probability of each node being 1.
    pub prob_one: Vec<f64>,
    /// 1 = the node is almost never 1 (difficult to control to 1).
    pub hard_to_one: Vec<u8>,
    /// 1 = the node is almost never 0 (difficult to control to 0).
    pub hard_to_zero: Vec<u8>,
}

impl ControlLabelResult {
    /// Nodes that are difficult to control to either value.
    pub fn positive_count(&self) -> usize {
        self.hard_to_one
            .iter()
            .zip(&self.hard_to_zero)
            .filter(|&(&a, &b)| a == 1 || b == 1)
            .count()
    }
}

/// Estimates the per-node signal probability `P(v = 1)` with
/// parallel-pattern simulation.
///
/// # Errors
///
/// Returns a netlist error if the design has a combinational cycle.
pub fn estimate_signal_probabilities(
    net: &Netlist,
    patterns: usize,
    seed: u64,
) -> Result<Vec<f64>> {
    let sim = PatternSim::new(net)?;
    let batches = patterns.div_ceil(64).max(1);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut ones = vec![0u64; net.node_count()];
    for _ in 0..batches {
        let values = sim.simulate_random(&mut rng);
        for (o, v) in ones.iter_mut().zip(&values) {
            *o += v.count_ones() as u64;
        }
    }
    let total = (batches * 64) as f64;
    Ok(ones.iter().map(|&o| o as f64 / total).collect())
}

/// Labels nodes that are difficult to control to 0 or 1.
///
/// Pseudo inputs (primary inputs, scan cells) and `Output` markers are
/// never flagged — they are directly controllable / mere sinks.
///
/// # Errors
///
/// Returns a netlist error if the design has a combinational cycle.
pub fn label_difficult_to_control(
    net: &Netlist,
    cfg: &ControlLabelConfig,
) -> Result<ControlLabelResult> {
    let prob_one = estimate_signal_probabilities(net, cfg.patterns, cfg.seed)?;
    let mut hard_to_one = vec![0u8; net.node_count()];
    let mut hard_to_zero = vec![0u8; net.node_count()];
    for v in net.nodes() {
        let kind = net.kind(v);
        if kind.is_pseudo_input() || kind == CellKind::Output {
            continue;
        }
        let p = prob_one[v.index()];
        if p < cfg.threshold {
            hard_to_one[v.index()] = 1;
        }
        if 1.0 - p < cfg.threshold {
            hard_to_zero[v.index()] = 1;
        }
    }
    Ok(ControlLabelResult {
        prob_one,
        hard_to_one,
        hard_to_zero,
    })
}

/// Configuration of the iterative CP insertion loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpInsertionConfig {
    /// Analysis settings per round.
    pub label: ControlLabelConfig,
    /// Maximum analysis/insert rounds.
    pub max_iterations: usize,
    /// Hard cap on inserted control points.
    pub max_cps: usize,
}

impl Default for CpInsertionConfig {
    fn default() -> Self {
        CpInsertionConfig {
            label: ControlLabelConfig::default(),
            max_iterations: 4,
            max_cps: usize::MAX,
        }
    }
}

/// One inserted control point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InsertedControlPoint {
    /// The node whose controllability the CP fixes.
    pub target: NodeId,
    /// The injected gate (`Or` for control-to-1, `And` for control-to-0).
    pub gate: NodeId,
    /// The fresh test input driving the gate.
    pub control_input: NodeId,
}

/// Iteratively inserts control points until no node is difficult to
/// control (or the caps are hit).
///
/// A hard node's most-skewed fanin line (the one whose signal probability
/// is furthest from 0.5) is cut and rewired through a randomizing gate
/// driven by a fresh test input: `OR(line, test_input)` when the line is
/// pinned near 0, `AND(line, test_input)` when it is pinned near 1. This
/// moves the hard node's own probability toward 0.5 *and* randomizes its
/// whole downstream cone — inserting on the output side would fix only the
/// sinks while leaving the flagged node itself stuck, so the loop would
/// never converge on boundary nodes. Returns the insertions in order.
///
/// # Errors
///
/// Returns a netlist error if the design has a combinational cycle.
pub fn insert_control_points(
    net: &mut Netlist,
    cfg: &CpInsertionConfig,
) -> Result<Vec<InsertedControlPoint>> {
    let mut inserted = Vec::new();
    for round in 0..cfg.max_iterations {
        let mut label_cfg = cfg.label.clone();
        label_cfg.seed = cfg.label.seed.wrapping_add(round as u64);
        // Guard-band the insertion threshold: fix anything within 2x of the
        // reporting threshold so the post-insertion analysis (which samples
        // with finite patterns) stays robustly below it.
        label_cfg.threshold = cfg.label.threshold * 2.0;
        let labels = label_difficult_to_control(net, &label_cfg)?;
        let mut any = false;
        let nodes: Vec<NodeId> = net.nodes().collect();
        for v in nodes {
            if inserted.len() >= cfg.max_cps {
                return Ok(inserted);
            }
            let hard_one = labels.hard_to_one[v.index()] == 1;
            let hard_zero = labels.hard_to_zero[v.index()] == 1;
            if !hard_one && !hard_zero {
                continue;
            }
            // Cut the most skewed fanin line of v; primary inputs and
            // flip-flop outputs sit at ~0.5, so a hard node always has a
            // skewed line to fix.
            let Some((pin, line_prob)) = most_skewed_fanin(net, v, &labels.prob_one) else {
                continue;
            };
            let kind = if line_prob < 0.5 {
                CellKind::Or
            } else {
                CellKind::And
            };
            let (gate, ctrl) = net.insert_control_point(v, pin, kind)?;
            inserted.push(InsertedControlPoint {
                target: v,
                gate,
                control_input: ctrl,
            });
            any = true;
        }
        if !any {
            break;
        }
    }
    Ok(inserted)
}

/// Finds the fanin pin of `v` whose driving signal probability is furthest
/// from 0.5, together with that probability. Returns `None` for nodes
/// without fanins.
fn most_skewed_fanin(net: &Netlist, v: NodeId, prob_one: &[f64]) -> Option<(usize, f64)> {
    net.fanin(v)
        .iter()
        .enumerate()
        .map(|(pin, &u)| (pin, prob_one[u.index()]))
        .max_by(|(_, a), (_, b)| (a - 0.5).abs().total_cmp(&(b - 0.5).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atpg::{run_random_atpg_on, AtpgConfig};
    use crate::fault::collapsed_faults;
    use gcnt_netlist::{generate, GeneratorConfig};

    /// A wide AND cascade: the output is almost never 1.
    fn and_cascade(depth: usize) -> (Netlist, NodeId) {
        let mut net = Netlist::new("cascade");
        let mut cur = net.add_cell(CellKind::Input);
        for _ in 0..depth {
            let side = net.add_cell(CellKind::Input);
            let g = net.add_cell(CellKind::And);
            net.connect(cur, g).unwrap();
            net.connect(side, g).unwrap();
            cur = g;
        }
        let tail = net.add_cell(CellKind::Buf);
        net.connect(cur, tail).unwrap();
        let o = net.add_cell(CellKind::Output);
        net.connect(tail, o).unwrap();
        (net, cur)
    }

    #[test]
    fn signal_probabilities_match_structure() {
        let (net, deep) = and_cascade(10);
        let probs = estimate_signal_probabilities(&net, 8192, 1).unwrap();
        // The cascade output is 1 with probability 2^-11.
        assert!(probs[deep.index()] < 0.01, "p = {}", probs[deep.index()]);
        // Primary inputs sit at ~0.5.
        let pi = net.primary_inputs()[0];
        assert!((probs[pi.index()] - 0.5).abs() < 0.05);
    }

    #[test]
    fn cascade_output_is_hard_to_one() {
        let (net, deep) = and_cascade(12);
        let labels = label_difficult_to_control(&net, &ControlLabelConfig::default()).unwrap();
        assert_eq!(labels.hard_to_one[deep.index()], 1);
        assert_eq!(labels.hard_to_zero[deep.index()], 0);
        // Inputs are never flagged.
        for pi in net.primary_inputs() {
            assert_eq!(labels.hard_to_one[pi.index()], 0);
        }
    }

    #[test]
    fn control_points_fix_controllability() {
        let (mut net, _) = and_cascade(12);
        let cfg = CpInsertionConfig {
            label: ControlLabelConfig {
                patterns: 4096,
                threshold: 0.005,
                seed: 2,
            },
            ..Default::default()
        };
        let inserted = insert_control_points(&mut net, &cfg).unwrap();
        assert!(!inserted.is_empty(), "nothing inserted");
        net.validate().unwrap();
        // After insertion, nothing is hard to control any more.
        let after = label_difficult_to_control(&net, &cfg.label).unwrap();
        assert_eq!(after.positive_count(), 0, "residual hard nodes");
    }

    #[test]
    fn control_points_improve_atpg_coverage() {
        // Shadowed designs have faults that random patterns cannot excite
        // or propagate; CPs open the gating chains.
        let mut gen_cfg = GeneratorConfig::sized("cp", 31, 1_200);
        gen_cfg.shadow_regions = 4;
        let original = generate(&gen_cfg);
        let faults = collapsed_faults(&original);
        let atpg_cfg = AtpgConfig {
            max_patterns: 4_096,
            ..Default::default()
        };
        let before = run_random_atpg_on(&original, &faults, &atpg_cfg).unwrap();

        let mut improved = original.clone();
        let inserted = insert_control_points(
            &mut improved,
            &CpInsertionConfig {
                label: ControlLabelConfig {
                    patterns: 4096,
                    threshold: 0.005,
                    seed: 3,
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!inserted.is_empty());
        let after = run_random_atpg_on(&improved, &faults, &atpg_cfg).unwrap();
        assert!(
            after.coverage() >= before.coverage(),
            "coverage {} -> {}",
            before.coverage(),
            after.coverage()
        );
    }

    #[test]
    fn insertion_is_capped() {
        let (mut net, _) = and_cascade(12);
        let cfg = CpInsertionConfig {
            label: ControlLabelConfig {
                patterns: 1024,
                threshold: 0.02,
                seed: 4,
            },
            max_iterations: 5,
            max_cps: 1,
        };
        let inserted = insert_control_points(&mut net, &cfg).unwrap();
        assert_eq!(inserted.len(), 1);
    }
}
