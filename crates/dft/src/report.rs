//! Testability reporting: the `#OPs / #PAs / Coverage` triple of Table 3.

use serde::{Deserialize, Serialize};

use gcnt_netlist::{Netlist, Result};

use crate::atpg::{run_random_atpg_on, AtpgConfig};
use crate::fault::collapsed_faults;

/// Testability results of one flow on one design (one cell of Table 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestabilityReport {
    /// Design name.
    pub design: String,
    /// Observation points inserted.
    pub ops: usize,
    /// Test patterns required.
    pub patterns: usize,
    /// Stuck-at fault coverage in `[0, 1]`.
    pub coverage: f64,
}

/// Runs ATPG on a modified design against the *original* design's fault
/// list (so both TPI flows are graded identically) and packages the
/// Table 3 metrics.
///
/// # Errors
///
/// Returns a netlist error if either design has a combinational cycle.
///
/// # Panics
///
/// Panics if `modified` has fewer outputs than `original` (it must be the
/// same design with observation points added).
pub fn evaluate_insertion(
    original: &Netlist,
    modified: &Netlist,
    atpg_cfg: &AtpgConfig,
) -> Result<TestabilityReport> {
    let before = original.primary_outputs().len();
    let after = modified.primary_outputs().len();
    assert!(
        after >= before && modified.node_count() >= original.node_count(),
        "modified design must extend the original"
    );
    let faults = collapsed_faults(original);
    let atpg = run_random_atpg_on(modified, &faults, atpg_cfg)?;
    Ok(TestabilityReport {
        design: original.name().to_string(),
        ops: after - before,
        patterns: atpg.patterns_kept,
        coverage: atpg.coverage(),
    })
}

/// One row of Table 3: the same design through the baseline tool and
/// through the GCN flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Baseline (testability-analysis tool) results.
    pub baseline: TestabilityReport,
    /// GCN-flow results.
    pub gcn: TestabilityReport,
}

impl ComparisonRow {
    /// `gcn.ops / baseline.ops` (the paper reports 0.89 on average).
    pub fn ops_ratio(&self) -> f64 {
        if self.baseline.ops == 0 {
            return if self.gcn.ops == 0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        self.gcn.ops as f64 / self.baseline.ops as f64
    }

    /// `gcn.patterns / baseline.patterns` (the paper reports 0.94).
    pub fn patterns_ratio(&self) -> f64 {
        if self.baseline.patterns == 0 {
            return if self.gcn.patterns == 0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        self.gcn.patterns as f64 / self.baseline.patterns as f64
    }

    /// Coverage difference `gcn - baseline` in percentage points (the
    /// paper reports ~0).
    pub fn coverage_delta_pp(&self) -> f64 {
        (self.gcn.coverage - self.baseline.coverage) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_netlist::{generate, GeneratorConfig, NodeId};

    #[test]
    fn evaluate_counts_ops_and_grades_same_faults() {
        let original = generate(&GeneratorConfig::sized("ev", 5, 600));
        let mut modified = original.clone();
        modified
            .insert_observation_point(NodeId::from_index(100))
            .unwrap();
        modified
            .insert_observation_point(NodeId::from_index(200))
            .unwrap();
        let cfg = AtpgConfig {
            max_patterns: 1_024,
            ..Default::default()
        };
        let report = evaluate_insertion(&original, &modified, &cfg).unwrap();
        assert_eq!(report.ops, 2);
        assert!(report.coverage > 0.0);
        // Adding observation points never reduces coverage.
        let base = evaluate_insertion(&original, &original, &cfg).unwrap();
        assert!(report.coverage >= base.coverage);
        assert_eq!(base.ops, 0);
    }

    #[test]
    fn ratios() {
        let row = ComparisonRow {
            baseline: TestabilityReport {
                design: "B1".into(),
                ops: 100,
                patterns: 200,
                coverage: 0.993,
            },
            gcn: TestabilityReport {
                design: "B1".into(),
                ops: 89,
                patterns: 188,
                coverage: 0.993,
            },
        };
        assert!((row.ops_ratio() - 0.89).abs() < 1e-12);
        assert!((row.patterns_ratio() - 0.94).abs() < 1e-12);
        assert_eq!(row.coverage_delta_pp(), 0.0);
    }

    #[test]
    fn degenerate_ratios() {
        let report = |ops, patterns| TestabilityReport {
            design: "x".into(),
            ops,
            patterns,
            coverage: 1.0,
        };
        let row = ComparisonRow {
            baseline: report(0, 0),
            gcn: report(0, 0),
        };
        assert_eq!(row.ops_ratio(), 1.0);
        assert_eq!(row.patterns_ratio(), 1.0);
        let row = ComparisonRow {
            baseline: report(0, 0),
            gcn: report(3, 1),
        };
        assert!(row.ops_ratio().is_infinite());
    }

    #[test]
    #[should_panic(expected = "must extend the original")]
    fn shrunk_design_panics() {
        let original = generate(&GeneratorConfig::sized("p", 6, 500));
        let smaller = generate(&GeneratorConfig::sized("p", 6, 300));
        let _ = evaluate_insertion(&original, &smaller, &AtpgConfig::default());
    }
}
