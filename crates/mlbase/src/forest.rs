use rand::seq::SliceRandom;
use rand::Rng as _;
use serde::{Deserialize, Serialize};

use gcnt_nn::{seeded_rng, Rng};
use gcnt_tensor::Matrix;

use crate::Classifier;

/// Random-forest hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomForestConfig {
    /// Number of bagged trees.
    pub trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Features examined per split; `0` means `sqrt(total features)`.
    pub features_per_split: usize,
    /// Bagging / feature-sampling seed.
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            trees: 30,
            max_depth: 12,
            min_samples_split: 4,
            features_per_split: 0,
            seed: 17,
        }
    }
}

/// A CART node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum TreeNode {
    Leaf {
        /// Probability of class 1 among the training samples in the leaf.
        p1: f32,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: Box<TreeNode>,
        right: Box<TreeNode>,
    },
}

impl TreeNode {
    fn predict(&self, row: &[f32]) -> f32 {
        match self {
            TreeNode::Leaf { p1 } => *p1,
            TreeNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if row[*feature] <= *threshold {
                    left.predict(row)
                } else {
                    right.predict(row)
                }
            }
        }
    }
}

/// A bagged ensemble of Gini-split CART trees with per-split feature
/// subsampling — the RF baseline of Table 2.
///
/// # Examples
///
/// ```
/// use gcnt_mlbase::{Classifier, RandomForest, RandomForestConfig};
/// use gcnt_tensor::Matrix;
///
/// let x = Matrix::from_rows(&[&[0.0], &[0.1], &[0.9], &[1.0]]).unwrap();
/// let model = RandomForest::fit(&x, &[0, 0, 1, 1], &RandomForestConfig::default());
/// assert_eq!(model.predict(&x), vec![0, 0, 1, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<TreeNode>,
}

impl RandomForest {
    /// Trains the forest.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != x.rows()`, any label exceeds 1, or `x`
    /// is empty.
    pub fn fit(x: &Matrix, labels: &[usize], cfg: &RandomForestConfig) -> Self {
        assert_eq!(labels.len(), x.rows(), "one label per row");
        gcnt_obs::global().incr(gcnt_obs::counters::MLBASE_FITS);
        assert!(labels.iter().all(|&l| l <= 1), "binary labels expected");
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        let n = x.rows();
        let mtry = if cfg.features_per_split == 0 {
            ((x.cols() as f64).sqrt().ceil() as usize).clamp(1, x.cols())
        } else {
            cfg.features_per_split.min(x.cols())
        };
        let mut rng = seeded_rng(cfg.seed);
        let trees = (0..cfg.trees)
            .map(|_| {
                // Bootstrap sample.
                let sample: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                build_tree(x, labels, &sample, cfg, mtry, 0, &mut rng)
            })
            .collect();
        RandomForest { trees }
    }

    /// Mean class-1 probability across trees.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        (0..x.rows())
            .map(|r| {
                let row = x.row(r);
                let sum: f32 = self.trees.iter().map(|t| t.predict(row)).sum();
                sum / self.trees.len().max(1) as f32
            })
            .collect()
    }
}

impl Classifier for RandomForest {
    fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.predict_proba(x)
            .iter()
            .map(|&p| usize::from(p >= 0.5))
            .collect()
    }

    fn name(&self) -> &'static str {
        "RF"
    }
}

fn build_tree(
    x: &Matrix,
    labels: &[usize],
    sample: &[usize],
    cfg: &RandomForestConfig,
    mtry: usize,
    depth: usize,
    rng: &mut Rng,
) -> TreeNode {
    let pos = sample.iter().filter(|&&i| labels[i] == 1).count();
    let p1 = pos as f32 / sample.len().max(1) as f32;
    if depth >= cfg.max_depth
        || sample.len() < cfg.min_samples_split
        || pos == 0
        || pos == sample.len()
    {
        return TreeNode::Leaf { p1 };
    }
    // Candidate features for this split.
    let mut features: Vec<usize> = (0..x.cols()).collect();
    features.shuffle(rng);
    features.truncate(mtry);

    let parent_gini = gini(pos, sample.len());
    let mut best: Option<(usize, f32, f64)> = None;
    let mut values: Vec<(f32, usize)> = Vec::with_capacity(sample.len());
    for &feature in &features {
        values.clear();
        values.extend(sample.iter().map(|&i| (x.get(i, feature), labels[i])));
        values.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        // Sweep split points between distinct adjacent values.
        let total = values.len();
        let total_pos = pos;
        let mut left_pos = 0usize;
        for i in 0..total - 1 {
            if values[i].1 == 1 {
                left_pos += 1;
            }
            if values[i].0 == values[i + 1].0 {
                continue;
            }
            let left_n = i + 1;
            let right_n = total - left_n;
            let g_left = gini(left_pos, left_n);
            let g_right = gini(total_pos - left_pos, right_n);
            let weighted = (left_n as f64 * g_left + right_n as f64 * g_right) / total as f64;
            let gain = parent_gini - weighted;
            if gain > 1e-9 && best.is_none_or(|(_, _, bg)| gain > bg) {
                let threshold = 0.5 * (values[i].0 + values[i + 1].0);
                best = Some((feature, threshold, gain));
            }
        }
    }
    let Some((feature, threshold, _)) = best else {
        return TreeNode::Leaf { p1 };
    };
    let (left, right): (Vec<usize>, Vec<usize>) = sample
        .iter()
        .partition(|&&i| x.get(i, feature) <= threshold);
    if left.is_empty() || right.is_empty() {
        return TreeNode::Leaf { p1 };
    }
    TreeNode::Split {
        feature,
        threshold,
        left: Box::new(build_tree(x, labels, &left, cfg, mtry, depth + 1, rng)),
        right: Box::new(build_tree(x, labels, &right, cfg, mtry, depth + 1, rng)),
    }
}

fn gini(pos: usize, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let p = pos as f64 / n as f64;
    2.0 * p * (1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<usize>) {
        // XOR: linearly inseparable, trees handle it.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let a = (i % 2) as f32;
            let b = ((i / 2) % 2) as f32;
            let jitter = (i as f32 * 0.013).sin() * 0.05;
            rows.push(vec![a + jitter, b - jitter]);
            labels.push(usize::from(a != b));
        }
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs).unwrap(), labels)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let model = RandomForest::fit(&x, &y, &RandomForestConfig::default());
        let acc = crate::accuracy(&y, &model.predict(&x));
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn gini_bounds() {
        assert_eq!(gini(0, 10), 0.0);
        assert_eq!(gini(10, 10), 0.0);
        assert!((gini(5, 10) - 0.5).abs() < 1e-12);
        assert_eq!(gini(0, 0), 0.0);
    }

    #[test]
    fn pure_leaf_short_circuits() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]).unwrap();
        let model = RandomForest::fit(&x, &[1, 1], &RandomForestConfig::default());
        assert_eq!(model.predict(&x), vec![1, 1]);
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = xor_data();
        let cfg = RandomForestConfig::default();
        let a = RandomForest::fit(&x, &y, &cfg);
        let b = RandomForest::fit(&x, &y, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (x, y) = xor_data();
        let model = RandomForest::fit(&x, &y, &RandomForestConfig::default());
        for p in model.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn depth_limit_respected() {
        let (x, y) = xor_data();
        let cfg = RandomForestConfig {
            max_depth: 0,
            ..Default::default()
        };
        let model = RandomForest::fit(&x, &y, &cfg);
        // Depth 0 forces root leaves: constant prediction.
        let preds = model.predict(&x);
        assert!(preds.iter().all(|&p| p == preds[0]));
    }
}
