use serde::{Deserialize, Serialize};

use gcnt_nn::loss::softmax_cross_entropy;
use gcnt_nn::{seeded_rng, Mlp};
use gcnt_tensor::{ops, Matrix};

use crate::Classifier;

/// MLP-baseline hyper-parameters. The paper configures this baseline
/// identically to the GCN's classifier head ("the configuration of the
/// network is the same as the classifier module in GCN", §5):
/// hidden dims 64, 64, 128 with 2 outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpClassifierConfig {
    /// Hidden layer dimensions (paper: `[64, 64, 128]`).
    pub hidden_dims: Vec<usize>,
    /// Full-batch training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Weight-initialisation seed.
    pub seed: u64,
}

impl Default for MlpClassifierConfig {
    fn default() -> Self {
        MlpClassifierConfig {
            hidden_dims: vec![64, 64, 128],
            epochs: 150,
            lr: 0.05,
            seed: 23,
        }
    }
}

/// The MLP baseline of Table 2: a feed-forward net on handcrafted cone
/// features.
///
/// # Examples
///
/// ```
/// use gcnt_mlbase::{Classifier, MlpClassifier, MlpClassifierConfig};
/// use gcnt_tensor::Matrix;
///
/// let x = Matrix::from_rows(&[&[-1.0, 0.0], &[1.0, 0.0]]).unwrap();
/// let cfg = MlpClassifierConfig { hidden_dims: vec![8], epochs: 300, ..Default::default() };
/// let model = MlpClassifier::fit(&x, &[0, 1], &cfg);
/// assert_eq!(model.predict(&x), vec![0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpClassifier {
    net: Mlp,
}

impl MlpClassifier {
    /// Trains with full-batch SGD on softmax cross-entropy.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != x.rows()` or any label exceeds 1.
    pub fn fit(x: &Matrix, labels: &[usize], cfg: &MlpClassifierConfig) -> Self {
        assert_eq!(labels.len(), x.rows(), "one label per row");
        gcnt_obs::global().incr(gcnt_obs::counters::MLBASE_FITS);
        assert!(labels.iter().all(|&l| l <= 1), "binary labels expected");
        let mut dims = vec![x.cols()];
        dims.extend_from_slice(&cfg.hidden_dims);
        dims.push(2);
        let mut rng = seeded_rng(cfg.seed);
        let mut net = Mlp::new(&dims, &mut rng);
        for _ in 0..cfg.epochs {
            let (logits, cache) = net.forward(x).expect("shapes fixed at construction");
            let (_, dlogits) = softmax_cross_entropy(&logits, labels);
            let (grads, _) = net
                .backward(&cache, &dlogits)
                .expect("shapes fixed at construction");
            net.apply_sgd(&grads, cfg.lr);
        }
        MlpClassifier { net }
    }

    /// Positive-class probability per row.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        let logits = self.net.predict(x).expect("feature dim fixed at fit time");
        let probs = ops::softmax_rows(&logits);
        (0..probs.rows()).map(|r| probs.get(r, 1)).collect()
    }
}

impl Classifier for MlpClassifier {
    fn predict(&self, x: &Matrix) -> Vec<usize> {
        let logits = self.net.predict(x).expect("feature dim fixed at fit time");
        ops::argmax_rows(&logits)
    }

    fn name(&self) -> &'static str {
        "MLP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rings() -> (Matrix, Vec<usize>) {
        // Inner cluster class 0, outer ring class 1 — nonlinear.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let angle = i as f32 * 0.7;
            let r = if i % 2 == 0 { 0.3 } else { 1.5 };
            rows.push(vec![r * angle.cos(), r * angle.sin()]);
            labels.push(i % 2);
        }
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs).unwrap(), labels)
    }

    #[test]
    fn learns_nonlinear_boundary() {
        let (x, y) = rings();
        let cfg = MlpClassifierConfig {
            hidden_dims: vec![16, 16],
            epochs: 400,
            lr: 0.1,
            seed: 1,
        };
        let model = MlpClassifier::fit(&x, &y, &cfg);
        let acc = crate::accuracy(&y, &model.predict(&x));
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn proba_matches_prediction() {
        let (x, y) = rings();
        let cfg = MlpClassifierConfig {
            hidden_dims: vec![8],
            epochs: 100,
            ..Default::default()
        };
        let model = MlpClassifier::fit(&x, &y, &cfg);
        let preds = model.predict(&x);
        let probs = model.predict_proba(&x);
        for (p, &y_hat) in probs.iter().zip(&preds) {
            assert_eq!(y_hat == 1, *p >= 0.5, "p = {p}, pred = {y_hat}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = rings();
        let cfg = MlpClassifierConfig {
            hidden_dims: vec![8],
            epochs: 20,
            ..Default::default()
        };
        let a = MlpClassifier::fit(&x, &y, &cfg);
        let b = MlpClassifier::fit(&x, &y, &cfg);
        assert_eq!(a, b);
    }
}
