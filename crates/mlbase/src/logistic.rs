use serde::{Deserialize, Serialize};

use gcnt_tensor::Matrix;

use crate::Classifier;

/// Logistic-regression hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegressionConfig {
    /// Full-batch gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// L2 regularisation strength.
    pub l2: f32,
}

impl Default for LogisticRegressionConfig {
    fn default() -> Self {
        LogisticRegressionConfig {
            epochs: 200,
            lr: 0.1,
            l2: 1e-4,
        }
    }
}

/// Binary logistic regression trained by full-batch gradient descent.
///
/// # Examples
///
/// ```
/// use gcnt_mlbase::{Classifier, LogisticRegression, LogisticRegressionConfig};
/// use gcnt_tensor::Matrix;
///
/// let x = Matrix::from_rows(&[&[-1.0], &[-0.5], &[0.5], &[1.0]]).unwrap();
/// let model = LogisticRegression::fit(&x, &[0, 0, 1, 1], &LogisticRegressionConfig::default());
/// assert_eq!(model.predict(&x), vec![0, 0, 1, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f32>,
    bias: f32,
}

impl LogisticRegression {
    /// Trains on rows of `x` with binary labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != x.rows()` or any label exceeds 1.
    pub fn fit(x: &Matrix, labels: &[usize], cfg: &LogisticRegressionConfig) -> Self {
        assert_eq!(labels.len(), x.rows(), "one label per row");
        gcnt_obs::global().incr(gcnt_obs::counters::MLBASE_FITS);
        assert!(labels.iter().all(|&l| l <= 1), "binary labels expected");
        let n = x.rows();
        let d = x.cols();
        let mut weights = vec![0.0f32; d];
        let mut bias = 0.0f32;
        let inv_n = 1.0 / n.max(1) as f32;
        for _ in 0..cfg.epochs {
            let mut gw = vec![0.0f32; d];
            let mut gb = 0.0f32;
            for (r, &label) in labels.iter().enumerate() {
                let row = x.row(r);
                let z: f32 = row.iter().zip(&weights).map(|(a, w)| a * w).sum::<f32>() + bias;
                let p = sigmoid(z);
                let err = p - label as f32;
                for (g, &a) in gw.iter_mut().zip(row) {
                    *g += err * a;
                }
                gb += err;
            }
            for (w, g) in weights.iter_mut().zip(&gw) {
                *w -= cfg.lr * (g * inv_n + cfg.l2 * *w);
            }
            bias -= cfg.lr * gb * inv_n;
        }
        LogisticRegression { weights, bias }
    }

    /// Positive-class probability per row.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        (0..x.rows())
            .map(|r| {
                let z: f32 = x
                    .row(r)
                    .iter()
                    .zip(&self.weights)
                    .map(|(a, w)| a * w)
                    .sum::<f32>()
                    + self.bias;
                sigmoid(z)
            })
            .collect()
    }
}

impl Classifier for LogisticRegression {
    fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.predict_proba(x)
            .iter()
            .map(|&p| usize::from(p >= 0.5))
            .collect()
    }

    fn name(&self) -> &'static str {
        "LR"
    }
}

fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> (Matrix, Vec<usize>) {
        let x = Matrix::from_rows(&[
            &[-2.0, 1.0],
            &[-1.0, -1.0],
            &[-1.5, 0.5],
            &[1.0, 0.0],
            &[2.0, -0.5],
            &[1.5, 1.0],
        ])
        .unwrap();
        (x, vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn learns_separable_data() {
        let (x, y) = separable();
        let model = LogisticRegression::fit(&x, &y, &LogisticRegressionConfig::default());
        assert_eq!(model.predict(&x), y);
    }

    #[test]
    fn probabilities_ordered_by_margin() {
        let (x, y) = separable();
        let model = LogisticRegression::fit(&x, &y, &LogisticRegressionConfig::default());
        let test = Matrix::from_rows(&[&[-3.0, 0.0], &[3.0, 0.0]]).unwrap();
        let p = model.predict_proba(&test);
        assert!(p[0] < 0.5 && p[1] > 0.5);
        assert!(p[1] - p[0] > 0.5);
    }

    #[test]
    fn l2_shrinks_weights() {
        let (x, y) = separable();
        let loose = LogisticRegression::fit(
            &x,
            &y,
            &LogisticRegressionConfig {
                l2: 0.0,
                ..Default::default()
            },
        );
        let tight = LogisticRegression::fit(
            &x,
            &y,
            &LogisticRegressionConfig {
                l2: 1.0,
                ..Default::default()
            },
        );
        let norm = |w: &[f32]| w.iter().map(|v| v * v).sum::<f32>();
        assert!(norm(&tight.weights) < norm(&loose.weights));
    }

    #[test]
    #[should_panic(expected = "binary labels")]
    fn non_binary_labels_panic() {
        let x = Matrix::zeros(1, 1);
        LogisticRegression::fit(&x, &[2], &LogisticRegressionConfig::default());
    }
}
