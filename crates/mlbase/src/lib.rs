//! Classical machine-learning baselines for Table 2 of the paper:
//! logistic regression (LR), random forest (RF), linear support vector
//! machine (SVM) and a multi-layer perceptron (MLP).
//!
//! Unlike the GCN, these models need *handcrafted* fixed-dimension
//! features. The paper concatenates the `[LL, C0, C1, O]` attributes of up
//! to 500 fan-in-cone and 500 fan-out-cone nodes collected by
//! breadth-first search, giving `(500 + 500 + 1) × 4 = 4004` dimensions
//! (§5) — implemented by [`features::cone_features`].
//!
//! All four models share the [`Classifier`] trait so the Table 2 harness
//! can sweep them uniformly.

pub mod features;
mod forest;
mod logistic;
mod mlp;
mod svm;

pub use forest::{RandomForest, RandomForestConfig};
pub use logistic::{LogisticRegression, LogisticRegressionConfig};
pub use mlp::{MlpClassifier, MlpClassifierConfig};
pub use svm::{LinearSvm, LinearSvmConfig};

use gcnt_tensor::Matrix;

/// A trained binary classifier over dense feature vectors.
pub trait Classifier {
    /// Predicts a label (0 or 1) per row of `x`.
    fn predict(&self, x: &Matrix) -> Vec<usize>;

    /// Short human-readable model name (e.g. `"LR"`).
    fn name(&self) -> &'static str;
}

/// Fraction of rows predicted correctly.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn accuracy(labels: &[usize], predictions: &[usize]) -> f64 {
    assert_eq!(labels.len(), predictions.len(), "one prediction per label");
    if labels.is_empty() {
        return 0.0;
    }
    let correct = labels
        .iter()
        .zip(predictions)
        .filter(|(a, b)| a == b)
        .count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 0, 1], &[1, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "one prediction per label")]
    fn accuracy_length_mismatch_panics() {
        accuracy(&[1], &[1, 0]);
    }
}
