//! Handcrafted cone features for classical models.
//!
//! The paper (§5): "we integrate neighborhood features by collecting the
//! features of the nodes in the fan-in cone and fan-out cone. 500 nodes in
//! fan-in cone and 500 nodes in fan-out cone are collected. Starting from
//! the target node, breadth-first-search is performed ... Every time a
//! node is visited, the feature of this node is concatenated to the
//! current feature vector. Therefore, the dimension of the feature vector
//! ... is (500 + 500 + 1) × 4 = 4004."

use gcnt_netlist::{Netlist, NodeId};
use gcnt_tensor::Matrix;

/// Cone-collection settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConeFeatureConfig {
    /// Nodes collected per cone (the paper uses 500).
    pub cone_size: usize,
}

impl Default for ConeFeatureConfig {
    fn default() -> Self {
        ConeFeatureConfig { cone_size: 500 }
    }
}

impl ConeFeatureConfig {
    /// Output dimensionality: `(2 * cone_size + 1) * attrs`.
    pub fn feature_dim(&self, attr_dim: usize) -> usize {
        (2 * self.cone_size + 1) * attr_dim
    }
}

/// Builds the concatenated cone feature matrix for the listed nodes.
///
/// `node_attrs` holds one attribute row per netlist node (typically the
/// normalised `[LL, C0, C1, O]` matrix). Cones shorter than `cone_size`
/// are zero-padded, so every output row has the same dimension.
///
/// # Panics
///
/// Panics if `node_attrs.rows()` differs from the node count or an index
/// is out of bounds.
///
/// # Examples
///
/// ```
/// use gcnt_mlbase::features::{cone_features, ConeFeatureConfig};
/// use gcnt_netlist::{generate, GeneratorConfig};
/// use gcnt_core::features::raw_features_of;
///
/// let net = generate(&GeneratorConfig::sized("c", 3, 300));
/// let attrs = raw_features_of(&net).unwrap();
/// let cfg = ConeFeatureConfig { cone_size: 8 };
/// let f = cone_features(&net, &attrs, &[0, 1, 2], &cfg);
/// assert_eq!(f.shape(), (3, cfg.feature_dim(4)));
/// ```
pub fn cone_features(
    net: &Netlist,
    node_attrs: &Matrix,
    nodes: &[usize],
    cfg: &ConeFeatureConfig,
) -> Matrix {
    assert_eq!(
        node_attrs.rows(),
        net.node_count(),
        "one attribute row per node"
    );
    let attr_dim = node_attrs.cols();
    let dim = cfg.feature_dim(attr_dim);
    let mut out = Matrix::zeros(nodes.len(), dim);
    for (row, &node) in nodes.iter().enumerate() {
        let id = NodeId::from_index(node);
        let dst = out.row_mut(row);
        // Target node first.
        dst[..attr_dim].copy_from_slice(node_attrs.row(node));
        // Fan-in cone in BFS order.
        let fanin = net.fanin_cone(id, cfg.cone_size);
        for (i, v) in fanin.iter().enumerate() {
            let off = (1 + i) * attr_dim;
            dst[off..off + attr_dim].copy_from_slice(node_attrs.row(v.index()));
        }
        // Fan-out cone in BFS order.
        let fanout = net.fanout_cone(id, cfg.cone_size);
        for (i, v) in fanout.iter().enumerate() {
            let off = (1 + cfg.cone_size + i) * attr_dim;
            dst[off..off + attr_dim].copy_from_slice(node_attrs.row(v.index()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_core::features::raw_features_of;
    use gcnt_netlist::{generate, CellKind, GeneratorConfig};

    #[test]
    fn paper_dimension() {
        let cfg = ConeFeatureConfig::default();
        assert_eq!(cfg.feature_dim(4), 4004);
    }

    #[test]
    fn target_attrs_lead_the_vector() {
        let mut net = Netlist::new("t");
        let a = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::Not);
        let o = net.add_cell(CellKind::Output);
        net.connect(a, g).unwrap();
        net.connect(g, o).unwrap();
        let attrs = raw_features_of(&net).unwrap();
        let cfg = ConeFeatureConfig { cone_size: 2 };
        let f = cone_features(&net, &attrs, &[g.index()], &cfg);
        assert_eq!(&f.row(0)[..4], attrs.row(g.index()));
        // Fan-in cone of g = [a].
        assert_eq!(&f.row(0)[4..8], attrs.row(a.index()));
        // Fan-out cone of g = [o], placed after the fan-in block.
        let off = (1 + 2) * 4;
        assert_eq!(&f.row(0)[off..off + 4], attrs.row(o.index()));
    }

    #[test]
    fn short_cones_are_zero_padded() {
        let mut net = Netlist::new("pi");
        let a = net.add_cell(CellKind::Input);
        let o = net.add_cell(CellKind::Output);
        net.connect(a, o).unwrap();
        let attrs = raw_features_of(&net).unwrap();
        let cfg = ConeFeatureConfig { cone_size: 3 };
        let f = cone_features(&net, &attrs, &[a.index()], &cfg);
        // a has no fan-in: that whole block is zeros.
        assert!(f.row(0)[4..16].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn cone_size_caps_collection() {
        let net = generate(&GeneratorConfig::sized("cap", 7, 400));
        let attrs = raw_features_of(&net).unwrap();
        let cfg = ConeFeatureConfig { cone_size: 4 };
        let f = cone_features(&net, &attrs, &[net.node_count() / 2], &cfg);
        assert_eq!(f.cols(), (2 * 4 + 1) * 4);
    }

    #[test]
    fn cone_features_track_graph_edits() {
        // After inserting an observation point, the target's fan-out cone
        // (and hence its cone feature vector) changes.
        let mut net = generate(&GeneratorConfig::sized("edit", 10, 300));
        let target = net
            .nodes()
            .find(|&v| !net.fanout(v).is_empty() && !net.fanin(v).is_empty())
            .unwrap();
        let cfg = ConeFeatureConfig { cone_size: 8 };
        let attrs_before = raw_features_of(&net).unwrap();
        let before = cone_features(&net, &attrs_before, &[target.index()], &cfg);
        net.insert_observation_point(target).unwrap();
        let attrs_after = raw_features_of(&net).unwrap();
        let after = cone_features(&net, &attrs_after, &[target.index()], &cfg);
        assert_ne!(before, after);
    }

    #[test]
    fn deterministic() {
        let net = generate(&GeneratorConfig::sized("det", 9, 300));
        let attrs = raw_features_of(&net).unwrap();
        let cfg = ConeFeatureConfig { cone_size: 16 };
        let nodes: Vec<usize> = (0..20).collect();
        let a = cone_features(&net, &attrs, &nodes, &cfg);
        let b = cone_features(&net, &attrs, &nodes, &cfg);
        assert_eq!(a, b);
    }
}
