use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use gcnt_nn::seeded_rng;
use gcnt_tensor::Matrix;

use crate::Classifier;

/// Linear-SVM hyper-parameters (Pegasos-style stochastic subgradient
/// descent on the hinge loss).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearSvmConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Regularisation strength `lambda` (controls the margin/step decay).
    pub lambda: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for LinearSvmConfig {
    fn default() -> Self {
        LinearSvmConfig {
            epochs: 60,
            lambda: 1e-3,
            seed: 7,
        }
    }
}

/// Linear support vector machine with hinge loss.
///
/// # Examples
///
/// ```
/// use gcnt_mlbase::{Classifier, LinearSvm, LinearSvmConfig};
/// use gcnt_tensor::Matrix;
///
/// let x = Matrix::from_rows(&[&[-1.0], &[-2.0], &[1.0], &[2.0]]).unwrap();
/// let model = LinearSvm::fit(&x, &[0, 0, 1, 1], &LinearSvmConfig::default());
/// assert_eq!(model.predict(&x), vec![0, 0, 1, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    weights: Vec<f32>,
    bias: f32,
}

impl LinearSvm {
    /// Trains on rows of `x` with binary labels (internally mapped to ±1).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != x.rows()` or any label exceeds 1.
    pub fn fit(x: &Matrix, labels: &[usize], cfg: &LinearSvmConfig) -> Self {
        assert_eq!(labels.len(), x.rows(), "one label per row");
        gcnt_obs::global().incr(gcnt_obs::counters::MLBASE_FITS);
        assert!(labels.iter().all(|&l| l <= 1), "binary labels expected");
        let n = x.rows();
        let d = x.cols();
        let mut weights = vec![0.0f32; d];
        let mut bias = 0.0f32;
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = seeded_rng(cfg.seed);
        let mut t = 0u64;
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for &r in &order {
                t += 1;
                let lr = 1.0 / (cfg.lambda * t as f32);
                let y = if labels[r] == 1 { 1.0f32 } else { -1.0 };
                let row = x.row(r);
                let margin: f32 =
                    y * (row.iter().zip(&weights).map(|(a, w)| a * w).sum::<f32>() + bias);
                // Subgradient: always shrink, add the sample when inside
                // the margin.
                let shrink = 1.0 - lr * cfg.lambda;
                for w in weights.iter_mut() {
                    *w *= shrink;
                }
                if margin < 1.0 {
                    for (w, &a) in weights.iter_mut().zip(row) {
                        *w += lr * y * a;
                    }
                    bias += lr * y;
                }
            }
        }
        LinearSvm { weights, bias }
    }

    /// Signed decision value per row (positive = class 1 side).
    pub fn decision_function(&self, x: &Matrix) -> Vec<f32> {
        (0..x.rows())
            .map(|r| {
                x.row(r)
                    .iter()
                    .zip(&self.weights)
                    .map(|(a, w)| a * w)
                    .sum::<f32>()
                    + self.bias
            })
            .collect()
    }
}

impl Classifier for LinearSvm {
    fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.decision_function(x)
            .iter()
            .map(|&v| usize::from(v >= 0.0))
            .collect()
    }

    fn name(&self) -> &'static str {
        "SVM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> (Matrix, Vec<usize>) {
        let x = Matrix::from_rows(&[
            &[-2.0, 0.5],
            &[-1.0, -0.5],
            &[-1.5, 1.0],
            &[1.0, 0.5],
            &[2.0, -1.0],
            &[1.5, 0.0],
        ])
        .unwrap();
        (x, vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn learns_separable_data() {
        let (x, y) = separable();
        let model = LinearSvm::fit(&x, &y, &LinearSvmConfig::default());
        assert_eq!(model.predict(&x), y);
    }

    #[test]
    fn decision_function_sign_matches_prediction() {
        let (x, y) = separable();
        let model = LinearSvm::fit(&x, &y, &LinearSvmConfig::default());
        let decisions = model.decision_function(&x);
        let preds = model.predict(&x);
        for (d, p) in decisions.iter().zip(&preds) {
            assert_eq!(*p == 1, *d >= 0.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = separable();
        let cfg = LinearSvmConfig::default();
        let a = LinearSvm::fit(&x, &y, &cfg);
        let b = LinearSvm::fit(&x, &y, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn margin_grows_with_distance() {
        let (x, y) = separable();
        let model = LinearSvm::fit(&x, &y, &LinearSvmConfig::default());
        let test = Matrix::from_rows(&[&[0.5, 0.0], &[5.0, 0.0]]).unwrap();
        let d = model.decision_function(&test);
        assert!(d[1] > d[0]);
    }
}
