use rand::Rng as _;

use gcnt_tensor::Matrix;

use crate::Rng;

/// Xavier/Glorot uniform initialisation: samples a `fan_in x fan_out`
/// matrix from `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// Keeps activation variance roughly constant across layers, which matters
/// for the deeper aggregate/encode stacks (`D = 3` plus 4 FC layers).
///
/// # Examples
///
/// ```
/// use gcnt_nn::{seeded_rng, xavier_uniform};
///
/// let mut rng = seeded_rng(1);
/// let w = xavier_uniform(4, 32, &mut rng);
/// assert_eq!(w.shape(), (4, 32));
/// let bound = (6.0f32 / 36.0).sqrt();
/// assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
/// ```
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut Rng) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..=a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn deterministic_for_same_seed() {
        let a = xavier_uniform(8, 8, &mut seeded_rng(5));
        let b = xavier_uniform(8, 8, &mut seeded_rng(5));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = xavier_uniform(8, 8, &mut seeded_rng(5));
        let b = xavier_uniform(8, 8, &mut seeded_rng(6));
        assert_ne!(a, b);
    }

    #[test]
    fn values_within_bound() {
        let w = xavier_uniform(10, 20, &mut seeded_rng(7));
        let bound = (6.0f32 / 30.0).sqrt() + 1e-6;
        assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn not_all_zero() {
        let w = xavier_uniform(10, 10, &mut seeded_rng(9));
        assert!(w.as_slice().iter().any(|&v| v != 0.0));
    }
}
