//! Loss functions.
//!
//! The paper trains with cross-entropy (§5) and handles the extreme class
//! imbalance by "imposing a large weight on the positive nodes such that
//! the penalty of misclassifying them would be large" (§3.3) — i.e.
//! class-weighted softmax cross-entropy, implemented here.

use gcnt_tensor::{ops, Matrix};

/// Class-weighted softmax cross-entropy.
///
/// `logits` is `n x c`, `labels[i] < c` is the target class of row `i`,
/// `class_weights[k]` scales the loss (and gradient) of rows whose target
/// class is `k`. The loss is normalised by the *total weight*, so doubling
/// every weight leaves the loss unchanged.
///
/// Returns `(mean_loss, dlogits)`.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()`, any label is out of range,
/// or `class_weights.len() != logits.cols()`.
///
/// # Examples
///
/// ```
/// use gcnt_nn::loss::weighted_softmax_cross_entropy;
/// use gcnt_tensor::Matrix;
///
/// let logits = Matrix::from_rows(&[&[2.0, -2.0], &[-2.0, 2.0]]).unwrap();
/// let (loss, grad) = weighted_softmax_cross_entropy(&logits, &[0, 1], &[1.0, 1.0]);
/// assert!(loss < 0.1); // both rows confidently correct
/// assert_eq!(grad.shape(), (2, 2));
/// ```
pub fn weighted_softmax_cross_entropy(
    logits: &Matrix,
    labels: &[usize],
    class_weights: &[f32],
) -> (f32, Matrix) {
    assert_eq!(labels.len(), logits.rows(), "one label per row");
    assert_eq!(class_weights.len(), logits.cols(), "one weight per class");
    let probs = ops::softmax_rows(logits);
    let mut dlogits = probs.clone();
    let mut total_loss = 0.0f64;
    let mut total_weight = 0.0f64;
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < logits.cols(), "label out of range");
        let w = class_weights[label];
        total_weight += w as f64;
        let p = probs.get(r, label).max(1e-12);
        total_loss += -(p.ln() as f64) * w as f64;
        let row = dlogits.row_mut(r);
        for v in row.iter_mut() {
            *v *= w;
        }
        row[label] -= w;
    }
    let norm = if total_weight > 0.0 {
        1.0 / total_weight
    } else {
        0.0
    };
    dlogits.scale(norm as f32);
    ((total_loss * norm) as f32, dlogits)
}

/// Unweighted softmax cross-entropy: all classes weighted `1`.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    let weights = vec![1.0; logits.cols()];
    weighted_softmax_cross_entropy(logits, labels, &weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Matrix::zeros(4, 2);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 0, 1]);
        assert!((loss - (2.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_points_away_from_target() {
        let logits = Matrix::zeros(1, 2);
        let (_, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(grad.get(0, 0) < 0.0); // increase target logit
        assert!(grad.get(0, 1) > 0.0); // decrease other logit
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Matrix::from_rows(&[&[1.0, -0.5, 0.25]]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[2]);
        let sum: f32 = grad.row(0).iter().sum();
        assert!(sum.abs() < 1e-6);
    }

    #[test]
    fn class_weight_scales_gradient() {
        let logits = Matrix::zeros(2, 2);
        // Same data, weight the positive class 9x. Both rows are class-0
        // and class-1 respectively; the class-1 row gets 9x the raw grad
        // before normalisation by total weight (1 + 9 = 10).
        let (_, g) = weighted_softmax_cross_entropy(&logits, &[0, 1], &[1.0, 9.0]);
        let g_neg = g.get(0, 0).abs();
        let g_pos = g.get(1, 1).abs();
        assert!((g_pos / g_neg - 9.0).abs() < 1e-4);
    }

    #[test]
    fn equal_weights_match_unweighted() {
        let logits = Matrix::from_rows(&[&[0.3, -0.2], &[1.0, 0.5]]).unwrap();
        let (l1, g1) = softmax_cross_entropy(&logits, &[1, 0]);
        let (l2, g2) = weighted_softmax_cross_entropy(&logits, &[1, 0], &[2.0, 2.0]);
        assert!((l1 - l2).abs() < 1e-6);
        for (a, b) in g1.as_slice().iter().zip(g2.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    /// Finite-difference check of the loss gradient.
    #[test]
    fn gradient_check() {
        let mut logits = Matrix::from_rows(&[&[0.5, -1.0], &[0.1, 0.2]]).unwrap();
        let labels = [1usize, 0usize];
        let weights = [1.0f32, 3.0f32];
        let (_, grad) = weighted_softmax_cross_entropy(&logits, &labels, &weights);
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..2 {
                let orig = logits.get(r, c);
                logits.set(r, c, orig + eps);
                let (lp, _) = weighted_softmax_cross_entropy(&logits, &labels, &weights);
                logits.set(r, c, orig - eps);
                let (lm, _) = weighted_softmax_cross_entropy(&logits, &labels, &weights);
                logits.set(r, c, orig);
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grad.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 1e-3,
                    "({r},{c}): numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn label_count_mismatch_panics() {
        let logits = Matrix::zeros(2, 2);
        softmax_cross_entropy(&logits, &[0]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn label_out_of_range_panics() {
        let logits = Matrix::zeros(1, 2);
        softmax_cross_entropy(&logits, &[5]);
    }
}
