use serde::{Deserialize, Serialize};

/// Plain SGD configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (`0.0` disables momentum).
    pub momentum: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr: 0.1,
            momentum: 0.9,
        }
    }
}

/// Adam configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Choice of optimisation algorithm.
///
/// The paper uses stochastic gradient descent (§5); Adam is provided for
/// the ablation benches and the classical baselines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerConfig {
    /// Stochastic gradient descent with optional momentum.
    Sgd(SgdConfig),
    /// Adam.
    Adam(AdamConfig),
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig::Sgd(SgdConfig::default())
    }
}

/// Optimiser state for one flat parameter slice.
///
/// # Examples
///
/// ```
/// use gcnt_nn::{OptimizerConfig, ParamOptimizer, SgdConfig};
///
/// let cfg = OptimizerConfig::Sgd(SgdConfig { lr: 0.5, momentum: 0.0 });
/// let mut opt = ParamOptimizer::new(cfg, 2);
/// let mut param = [1.0f32, -1.0];
/// opt.step(&mut param, &[1.0, 1.0]);
/// assert_eq!(param, [0.5, -1.5]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamOptimizer {
    cfg: OptimizerConfig,
    velocity: Vec<f32>,
    second: Vec<f32>,
    t: u32,
}

impl ParamOptimizer {
    /// Creates optimiser state for a parameter of `len` elements.
    pub fn new(cfg: OptimizerConfig, len: usize) -> Self {
        let second = match cfg {
            OptimizerConfig::Adam(_) => vec![0.0; len],
            OptimizerConfig::Sgd(_) => Vec::new(),
        };
        ParamOptimizer {
            cfg,
            velocity: vec![0.0; len],
            second,
            t: 0,
        }
    }

    /// The algorithm this optimiser state was built for.
    pub fn config(&self) -> OptimizerConfig {
        self.cfg
    }

    /// Overrides the learning rate while keeping all accumulated state —
    /// how a divergence guard backs off without discarding momentum.
    pub fn set_lr(&mut self, lr: f32) {
        match &mut self.cfg {
            OptimizerConfig::Sgd(c) => c.lr = lr,
            OptimizerConfig::Adam(c) => c.lr = lr,
        }
    }

    /// Length of the parameter slice this state covers.
    pub fn len(&self) -> usize {
        self.velocity.len()
    }

    /// Whether the covered parameter slice is empty.
    pub fn is_empty(&self) -> bool {
        self.velocity.is_empty()
    }

    /// Whether every state value (velocity, second moments) is finite — a
    /// deserialised checkpoint can carry NaN momentum that would poison
    /// every subsequent step even if the weights themselves are clean.
    pub fn is_finite(&self) -> bool {
        self.velocity
            .iter()
            .chain(&self.second)
            .all(|v| v.is_finite())
    }

    /// Applies one update step.
    ///
    /// # Panics
    ///
    /// Panics if `param` / `grad` lengths differ from the state length.
    pub fn step(&mut self, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), self.velocity.len(), "param length");
        assert_eq!(grad.len(), self.velocity.len(), "grad length");
        match self.cfg {
            OptimizerConfig::Sgd(SgdConfig { lr, momentum }) => {
                if momentum == 0.0 {
                    for (p, &g) in param.iter_mut().zip(grad) {
                        *p -= lr * g;
                    }
                } else {
                    for ((p, v), &g) in param.iter_mut().zip(&mut self.velocity).zip(grad) {
                        *v = momentum * *v + g;
                        *p -= lr * *v;
                    }
                }
            }
            OptimizerConfig::Adam(AdamConfig {
                lr,
                beta1,
                beta2,
                eps,
            }) => {
                self.t += 1;
                let bc1 = 1.0 - beta1.powi(self.t as i32);
                let bc2 = 1.0 - beta2.powi(self.t as i32);
                for ((p, (m, v)), &g) in param
                    .iter_mut()
                    .zip(self.velocity.iter_mut().zip(&mut self.second))
                    .zip(grad)
                {
                    *m = beta1 * *m + (1.0 - beta1) * g;
                    *v = beta2 * *v + (1.0 - beta2) * g * g;
                    let m_hat = *m / bc1;
                    let v_hat = *v / bc2;
                    *p -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            }
        }
    }
}

/// A bank of [`ParamOptimizer`]s covering every parameter of a model, in a
/// fixed order (e.g. the order of `Mlp::params_mut`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelOptimizer {
    params: Vec<ParamOptimizer>,
}

impl ModelOptimizer {
    /// Creates one optimiser per parameter slice length.
    pub fn new(cfg: OptimizerConfig, lens: impl IntoIterator<Item = usize>) -> Self {
        ModelOptimizer {
            params: lens
                .into_iter()
                .map(|len| ParamOptimizer::new(cfg, len))
                .collect(),
        }
    }

    /// The per-parameter slice lengths this bank was built for, in
    /// [`ModelOptimizer::step`] order — the shape a checkpoint loader
    /// validates against the model it is restoring.
    pub fn param_lens(&self) -> Vec<usize> {
        self.params.iter().map(ParamOptimizer::len).collect()
    }

    /// Whether every per-parameter state is finite (see
    /// [`ParamOptimizer::is_finite`]).
    pub fn is_finite(&self) -> bool {
        self.params.iter().all(ParamOptimizer::is_finite)
    }

    /// Overrides the learning rate of every per-parameter optimiser (see
    /// [`ParamOptimizer::set_lr`]).
    pub fn set_lr(&mut self, lr: f32) {
        for p in &mut self.params {
            p.set_lr(lr);
        }
    }

    /// Steps every parameter with its gradient.
    ///
    /// # Panics
    ///
    /// Panics if the number or lengths of slices differ from construction.
    pub fn step(&mut self, params: Vec<&mut [f32]>, grads: Vec<&[f32]>) {
        assert_eq!(params.len(), self.params.len(), "parameter count");
        assert_eq!(grads.len(), self.params.len(), "gradient count");
        gcnt_obs::global().incr(gcnt_obs::counters::NN_OPTIMIZER_STEPS);
        for ((opt, p), g) in self.params.iter_mut().zip(params).zip(grads) {
            opt.step(p, g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_without_momentum() {
        let mut opt = ParamOptimizer::new(
            OptimizerConfig::Sgd(SgdConfig {
                lr: 0.1,
                momentum: 0.0,
            }),
            1,
        );
        let mut p = [1.0f32];
        opt.step(&mut p, &[2.0]);
        assert!((p[0] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let cfg = OptimizerConfig::Sgd(SgdConfig {
            lr: 0.1,
            momentum: 0.9,
        });
        let mut opt = ParamOptimizer::new(cfg, 1);
        let mut p = [0.0f32];
        opt.step(&mut p, &[1.0]);
        let first = -p[0];
        opt.step(&mut p, &[1.0]);
        let second = -p[0] - first;
        assert!(second > first, "momentum should grow the step");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimise f(x) = (x - 3)^2 with gradient 2(x - 3).
        let mut opt = ParamOptimizer::new(
            OptimizerConfig::Adam(AdamConfig {
                lr: 0.1,
                ..AdamConfig::default()
            }),
            1,
        );
        let mut p = [0.0f32];
        for _ in 0..500 {
            let g = 2.0 * (p[0] - 3.0);
            opt.step(&mut p, &[g]);
        }
        assert!((p[0] - 3.0).abs() < 0.05, "x = {}", p[0]);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = ParamOptimizer::new(OptimizerConfig::default(), 1);
        let mut p = [10.0f32];
        for _ in 0..200 {
            let g = 2.0 * (p[0] - 3.0);
            opt.step(&mut p, &[g]);
        }
        assert!((p[0] - 3.0).abs() < 0.05, "x = {}", p[0]);
    }

    #[test]
    fn model_optimizer_steps_all() {
        let cfg = OptimizerConfig::Sgd(SgdConfig {
            lr: 1.0,
            momentum: 0.0,
        });
        let mut opt = ModelOptimizer::new(cfg, [2, 1]);
        let mut a = [1.0f32, 2.0];
        let mut b = [3.0f32];
        opt.step(vec![&mut a, &mut b], vec![&[1.0, 1.0], &[1.0]]);
        assert_eq!(a, [0.0, 1.0]);
        assert_eq!(b, [2.0]);
    }

    #[test]
    fn adam_trains_an_mlp() {
        use crate::loss::softmax_cross_entropy;
        use crate::{seeded_rng, Mlp};
        use gcnt_tensor::Matrix;

        let mut rng = seeded_rng(11);
        let mut mlp = Mlp::new(&[2, 8, 2], &mut rng);
        let x =
            Matrix::from_rows(&[&[-1.0, 0.2], &[-0.6, -0.1], &[0.7, 0.3], &[1.1, -0.2]]).unwrap();
        let labels = [0usize, 0, 1, 1];
        let lens: Vec<usize> = mlp.params_mut().iter().map(|s| s.len()).collect();
        let mut opt = ModelOptimizer::new(
            OptimizerConfig::Adam(AdamConfig {
                lr: 0.02,
                ..AdamConfig::default()
            }),
            lens,
        );
        let initial = softmax_cross_entropy(&mlp.predict(&x).unwrap(), &labels).0;
        for _ in 0..150 {
            let (logits, cache) = mlp.forward(&x).unwrap();
            let (_, dlogits) = softmax_cross_entropy(&logits, &labels);
            let (grads, _) = mlp.backward(&cache, &dlogits).unwrap();
            opt.step(mlp.params_mut(), grads.params());
        }
        let final_loss = softmax_cross_entropy(&mlp.predict(&x).unwrap(), &labels).0;
        assert!(final_loss < initial * 0.2, "loss {initial} -> {final_loss}");
    }

    #[test]
    fn state_export_reports_shape_and_finiteness() {
        let mut opt = ModelOptimizer::new(OptimizerConfig::default(), [2, 3]);
        assert_eq!(opt.param_lens(), vec![2, 3]);
        assert!(opt.is_finite());
        let mut a = [1.0f32, 2.0];
        let mut b = [0.0f32, 0.0, 0.0];
        opt.step(
            vec![&mut a, &mut b],
            vec![&[f32::NAN, 0.0], &[0.0, 0.0, 0.0]],
        );
        assert!(!opt.is_finite(), "NaN gradient must poison momentum state");
    }

    #[test]
    fn set_lr_keeps_momentum_state() {
        let cfg = OptimizerConfig::Sgd(SgdConfig {
            lr: 1.0,
            momentum: 0.5,
        });
        let mut opt = ParamOptimizer::new(cfg, 1);
        let mut p = [0.0f32];
        opt.step(&mut p, &[1.0]); // velocity = 1, p = -1
        opt.set_lr(0.1);
        opt.step(&mut p, &[0.0]); // velocity = 0.5, p = -1 - 0.1 * 0.5
        assert!((p[0] + 1.05).abs() < 1e-6, "p = {}", p[0]);
    }

    #[test]
    #[should_panic(expected = "param length")]
    fn length_mismatch_panics() {
        let mut opt = ParamOptimizer::new(OptimizerConfig::default(), 2);
        let mut p = [0.0f32];
        opt.step(&mut p, &[1.0]);
    }
}
