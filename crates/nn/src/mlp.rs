use serde::{Deserialize, Serialize};

use gcnt_tensor::{ops, Matrix, Result};

use crate::{Linear, LinearGrads, Rng};

/// A multi-layer perceptron: linear layers with ReLU between them (no
/// activation after the last layer — it emits logits).
///
/// This is the paper's classifier head ("Four FC layers are consistent,
/// whose dimensions are 64, 64, 128 and 2", §5) and, fed with handcrafted
/// cone features, the MLP baseline of Table 2.
///
/// # Examples
///
/// ```
/// use gcnt_nn::{seeded_rng, Mlp};
/// use gcnt_tensor::Matrix;
///
/// let mut rng = seeded_rng(7);
/// // The paper's head: 128-dim embedding -> 64 -> 64 -> 128 -> 2.
/// let head = Mlp::new(&[128, 64, 64, 128, 2], &mut rng);
/// let e = Matrix::zeros(10, 128);
/// assert_eq!(head.predict(&e).unwrap().shape(), (10, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
}

/// Forward-pass activations cached for [`Mlp::backward`].
#[derive(Debug, Clone)]
pub struct MlpCache {
    /// Input to each layer (`inputs[0]` is the MLP input).
    inputs: Vec<Matrix>,
    /// Pre-activation output of each layer.
    preacts: Vec<Matrix>,
}

/// Gradients for every layer of an [`Mlp`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpGrads {
    /// Per-layer gradients, front to back.
    pub layers: Vec<LinearGrads>,
}

impl Mlp {
    /// Creates an MLP with the given layer dimensions; `dims[0]` is the
    /// input size and `dims.last()` the number of outputs.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given.
    pub fn new(dims: &[usize], rng: &mut Rng) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Mlp { layers }
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Input dimension.
    pub fn fan_in(&self) -> usize {
        self.layers[0].fan_in()
    }

    /// Output dimension.
    pub fn fan_out(&self) -> usize {
        self.layers[self.layers.len() - 1].fan_out()
    }

    /// The layers, front to back.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Forward pass that keeps the caches needed for [`Mlp::backward`].
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x.cols() != self.fan_in()`.
    pub fn forward(&self, x: &Matrix) -> Result<(Matrix, MlpCache)> {
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut preacts = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            inputs.push(cur.clone());
            let z = layer.forward(&cur)?;
            preacts.push(z.clone());
            cur = if i + 1 < self.layers.len() {
                ops::relu(&z)
            } else {
                z
            };
        }
        Ok((cur, MlpCache { inputs, preacts }))
    }

    /// Forward pass without caches (inference only).
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x.cols() != self.fan_in()`.
    pub fn predict(&self, x: &Matrix) -> Result<Matrix> {
        // No input clone and in-place ReLU on the owned intermediates:
        // same element-wise results as the cached forward pass, without
        // its per-layer allocations.
        let mut cur: Option<Matrix> = None;
        for (i, layer) in self.layers.iter().enumerate() {
            let mut z = layer.forward(cur.as_ref().unwrap_or(x))?;
            if i + 1 < self.layers.len() {
                ops::relu_in_place(&mut z);
            }
            cur = Some(z);
        }
        // A constructed MLP always has at least one layer.
        Ok(cur.expect("mlp has layers"))
    }

    /// Backward pass: given the cache from [`Mlp::forward`] and the logits
    /// gradient, returns all layer gradients plus the gradient w.r.t. the
    /// MLP input.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `dlogits` does not match the output shape.
    pub fn backward(&self, cache: &MlpCache, dlogits: &Matrix) -> Result<(MlpGrads, Matrix)> {
        let mut grads = vec![None; self.layers.len()];
        let mut dcur = dlogits.clone();
        for i in (0..self.layers.len()).rev() {
            if i + 1 < self.layers.len() {
                // Undo the ReLU between layer i and layer i+1.
                let mask = ops::relu_mask(&cache.preacts[i]);
                dcur = dcur.hadamard(&mask)?;
            }
            let (g, dx) = self.layers[i].backward(&cache.inputs[i], &dcur)?;
            grads[i] = Some(g);
            dcur = dx;
        }
        Ok((
            MlpGrads {
                layers: grads.into_iter().map(|g| g.expect("filled")).collect(),
            },
            dcur,
        ))
    }

    /// Zero gradients matching this MLP's shape.
    pub fn zero_grads(&self) -> MlpGrads {
        MlpGrads {
            layers: self.layers.iter().map(Linear::zero_grads).collect(),
        }
    }

    /// Applies a plain SGD update.
    ///
    /// # Panics
    ///
    /// Panics if `grads` does not match the MLP shape.
    pub fn apply_sgd(&mut self, grads: &MlpGrads, lr: f32) {
        assert_eq!(grads.layers.len(), self.layers.len(), "gradient shape");
        for (layer, g) in self.layers.iter_mut().zip(&grads.layers) {
            layer.apply_sgd(g, lr);
        }
    }

    /// Mutable flat views of all parameters, layer by layer.
    pub fn params_mut(&mut self) -> Vec<&mut [f32]> {
        self.layers
            .iter_mut()
            .flat_map(Linear::params_mut)
            .collect()
    }
}

impl MlpGrads {
    /// Accumulates another gradient set into this one.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate(&mut self, other: &MlpGrads) {
        assert_eq!(self.layers.len(), other.layers.len(), "gradient shape");
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.accumulate(b);
        }
    }

    /// Scales all gradients in place.
    pub fn scale(&mut self, alpha: f32) {
        for g in &mut self.layers {
            g.scale(alpha);
        }
    }

    /// Flat views of all gradients, matching [`Mlp::params_mut`] order.
    pub fn params(&self) -> Vec<&[f32]> {
        self.layers.iter().flat_map(LinearGrads::params).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use crate::seeded_rng;

    #[test]
    fn shapes_flow_through() {
        let mut rng = seeded_rng(1);
        let mlp = Mlp::new(&[4, 8, 3], &mut rng);
        assert_eq!(mlp.depth(), 2);
        assert_eq!(mlp.fan_in(), 4);
        assert_eq!(mlp.fan_out(), 3);
        let x = Matrix::zeros(5, 4);
        let (y, cache) = mlp.forward(&x).unwrap();
        assert_eq!(y.shape(), (5, 3));
        assert_eq!(cache.inputs.len(), 2);
    }

    #[test]
    fn predict_matches_forward() {
        let mut rng = seeded_rng(2);
        let mlp = Mlp::new(&[3, 5, 2], &mut rng);
        let x = Matrix::from_fn(4, 3, |r, c| (r as f32 - c as f32) * 0.3);
        let (y1, _) = mlp.forward(&x).unwrap();
        let y2 = mlp.predict(&x).unwrap();
        assert_eq!(y1, y2);
    }

    /// End-to-end finite-difference gradient check through two layers,
    /// ReLU and the softmax CE loss.
    #[test]
    fn gradient_check_end_to_end() {
        let mut rng = seeded_rng(3);
        let mlp = Mlp::new(&[3, 4, 2], &mut rng);
        let x = Matrix::from_fn(5, 3, |r, c| ((r * 3 + c) as f32 * 0.17).sin());
        let labels = [0usize, 1, 0, 1, 1];

        let (logits, cache) = mlp.forward(&x).unwrap();
        let (_, dlogits) = softmax_cross_entropy(&logits, &labels);
        let (grads, _) = mlp.backward(&cache, &dlogits).unwrap();

        let eps = 1e-3f32;
        let loss_of = |mlp: &Mlp| {
            let logits = mlp.predict(&x).unwrap();
            softmax_cross_entropy(&logits, &labels).0
        };
        for layer_idx in 0..2 {
            for &(r, c) in &[(0usize, 0usize), (1, 1)] {
                let orig = mlp.layers[layer_idx].weight().get(r, c);
                // Perturb through params_mut (weight is the first flat slice
                // of the layer).
                let cols = mlp.layers[layer_idx].weight().cols();
                {
                    let mut l = mlp.layers[layer_idx].clone();
                    let mut slice = l.params_mut();
                    slice[0][r * cols + c] = orig + eps;
                    let mut m2 = mlp.clone();
                    m2.layers[layer_idx] = l;
                    let lp = loss_of(&m2);
                    let mut l = mlp.layers[layer_idx].clone();
                    let mut slice = l.params_mut();
                    slice[0][r * cols + c] = orig - eps;
                    let mut m3 = mlp.clone();
                    m3.layers[layer_idx] = l;
                    let lm = loss_of(&m3);
                    let numeric = (lp - lm) / (2.0 * eps);
                    let analytic = grads.layers[layer_idx].weight.get(r, c);
                    assert!(
                        (numeric - analytic).abs() < 2e-2,
                        "layer {layer_idx} dW[{r}][{c}]: numeric {numeric} vs analytic {analytic}"
                    );
                }
            }
        }
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        let mut rng = seeded_rng(4);
        let mut mlp = Mlp::new(&[2, 8, 2], &mut rng);
        // Class 0: x0 < 0; class 1: x0 > 0.
        let x =
            Matrix::from_rows(&[&[-1.0, 0.3], &[-0.7, -0.2], &[0.8, 0.1], &[1.2, -0.4]]).unwrap();
        let labels = [0usize, 0, 1, 1];
        let initial = {
            let logits = mlp.predict(&x).unwrap();
            softmax_cross_entropy(&logits, &labels).0
        };
        for _ in 0..200 {
            let (logits, cache) = mlp.forward(&x).unwrap();
            let (_, dlogits) = softmax_cross_entropy(&logits, &labels);
            let (grads, _) = mlp.backward(&cache, &dlogits).unwrap();
            mlp.apply_sgd(&grads, 0.5);
        }
        let final_loss = {
            let logits = mlp.predict(&x).unwrap();
            softmax_cross_entropy(&logits, &labels).0
        };
        assert!(final_loss < initial * 0.2, "loss {initial} -> {final_loss}");
    }

    #[test]
    fn accumulate_averages_two_workers() {
        let mut rng = seeded_rng(5);
        let mlp = Mlp::new(&[2, 2], &mut rng);
        let x = Matrix::filled(1, 2, 1.0);
        let (logits, cache) = mlp.forward(&x).unwrap();
        let (_, d) = softmax_cross_entropy(&logits, &[0]);
        let (g, _) = mlp.backward(&cache, &d).unwrap();
        let mut sum = mlp.zero_grads();
        sum.accumulate(&g);
        sum.accumulate(&g);
        sum.scale(0.5);
        for (a, b) in sum.params().iter().zip(g.params().iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn too_few_dims_panics() {
        Mlp::new(&[4], &mut seeded_rng(0));
    }

    #[test]
    fn serde_round_trip() {
        let mlp = Mlp::new(&[3, 4, 2], &mut seeded_rng(8));
        let json = serde_json::to_string(&mlp).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        assert_eq!(mlp, back);
    }
}
