use serde::{Deserialize, Serialize};

use gcnt_tensor::{Matrix, Result};

use crate::{xavier_uniform, Rng};

/// A fully-connected layer: `y = x W + b` with `W: in x out`.
///
/// # Examples
///
/// ```
/// use gcnt_nn::{seeded_rng, Linear};
/// use gcnt_tensor::Matrix;
///
/// let mut rng = seeded_rng(0);
/// let layer = Linear::new(3, 2, &mut rng);
/// let x = Matrix::zeros(5, 3);
/// let y = layer.forward(&x).unwrap();
/// assert_eq!(y.shape(), (5, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    weight: Matrix,
    bias: Vec<f32>,
}

/// Gradients of a [`Linear`] layer, produced by [`Linear::backward`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearGrads {
    /// Gradient of the weight matrix.
    pub weight: Matrix,
    /// Gradient of the bias vector.
    pub bias: Vec<f32>,
}

impl Linear {
    /// Creates a layer with Xavier-initialised weights and zero bias.
    pub fn new(fan_in: usize, fan_out: usize, rng: &mut Rng) -> Self {
        Linear {
            weight: xavier_uniform(fan_in, fan_out, rng),
            bias: vec![0.0; fan_out],
        }
    }

    /// Input dimension.
    pub fn fan_in(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimension.
    pub fn fan_out(&self) -> usize {
        self.weight.cols()
    }

    /// The weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// The bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Computes `x W + b`.
    ///
    /// # Errors
    ///
    /// Returns a shape error unless `x.cols() == self.fan_in()`.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        // Fused product + bias: each output row gets its bias while still
        // cache-hot, bit-identical to matmul followed by a bias pass.
        x.matmul_bias(&self.weight, &self.bias)
    }

    /// Computes parameter gradients and the input gradient given the layer
    /// input `x` and the output gradient `dy`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` / `dy` do not match the layer shape.
    pub fn backward(&self, x: &Matrix, dy: &Matrix) -> Result<(LinearGrads, Matrix)> {
        let dweight = x.transpose_matmul(dy)?;
        let mut dbias = vec![0.0f32; self.fan_out()];
        for r in 0..dy.rows() {
            for (db, &g) in dbias.iter_mut().zip(dy.row(r)) {
                *db += g;
            }
        }
        let dx = dy.matmul_transpose(&self.weight)?;
        Ok((
            LinearGrads {
                weight: dweight,
                bias: dbias,
            },
            dx,
        ))
    }

    /// Zero-valued gradients matching this layer's shape.
    pub fn zero_grads(&self) -> LinearGrads {
        LinearGrads {
            weight: Matrix::zeros(self.weight.rows(), self.weight.cols()),
            bias: vec![0.0; self.bias.len()],
        }
    }

    /// Applies a plain SGD update `p -= lr * g`.
    ///
    /// # Panics
    ///
    /// Panics if `grads` does not match the layer shape.
    pub fn apply_sgd(&mut self, grads: &LinearGrads, lr: f32) {
        self.weight
            .axpy(-lr, &grads.weight)
            .expect("gradient shape matches weight shape");
        for (b, &g) in self.bias.iter_mut().zip(&grads.bias) {
            *b -= lr * g;
        }
    }

    /// Mutable flat views of the parameters, ordered `[weight, bias]`.
    pub fn params_mut(&mut self) -> Vec<&mut [f32]> {
        vec![self.weight.as_mut_slice(), &mut self.bias]
    }
}

impl LinearGrads {
    /// Accumulates another gradient into this one (used by data-parallel
    /// training to sum per-worker gradients).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate(&mut self, other: &LinearGrads) {
        self.weight
            .axpy(1.0, &other.weight)
            .expect("gradient shapes match");
        for (a, &b) in self.bias.iter_mut().zip(&other.bias) {
            *a += b;
        }
    }

    /// Scales the gradient in place.
    pub fn scale(&mut self, alpha: f32) {
        self.weight.scale(alpha);
        for b in &mut self.bias {
            *b *= alpha;
        }
    }

    /// Flat views of the gradients, ordered `[weight, bias]` to match
    /// [`Linear::params_mut`].
    pub fn params(&self) -> Vec<&[f32]> {
        vec![self.weight.as_slice(), &self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn forward_applies_bias() {
        let mut rng = seeded_rng(1);
        let mut layer = Linear::new(2, 2, &mut rng);
        layer.bias = vec![1.0, -1.0];
        let x = Matrix::zeros(1, 2);
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.row(0), &[1.0, -1.0]);
    }

    #[test]
    fn backward_bias_gradient_sums_rows() {
        let mut rng = seeded_rng(2);
        let layer = Linear::new(2, 2, &mut rng);
        let x = Matrix::zeros(3, 2);
        let dy = Matrix::filled(3, 2, 1.0);
        let (grads, _) = layer.backward(&x, &dy).unwrap();
        assert_eq!(grads.bias, vec![3.0, 3.0]);
    }

    /// Finite-difference gradient check on a random layer.
    #[test]
    fn gradient_check() {
        let mut rng = seeded_rng(3);
        let mut layer = Linear::new(3, 2, &mut rng);
        let x = xavier_uniform(4, 3, &mut rng);
        // Loss = sum(forward(x)) so dL/dy = 1.
        let dy = Matrix::filled(4, 2, 1.0);
        let (grads, dx) = layer.backward(&x, &dy).unwrap();

        let eps = 1e-3f32;
        // Check a handful of weight entries.
        for &(r, c) in &[(0usize, 0usize), (1, 1), (2, 0)] {
            let orig = layer.weight.get(r, c);
            layer.weight.set(r, c, orig + eps);
            let plus = layer.forward(&x).unwrap().sum();
            layer.weight.set(r, c, orig - eps);
            let minus = layer.forward(&x).unwrap().sum();
            layer.weight.set(r, c, orig);
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = grads.weight.get(r, c);
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "dW[{r}][{c}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Check input gradient entries.
        let mut x2 = x.clone();
        for &(r, c) in &[(0usize, 0usize), (3, 2)] {
            let orig = x2.get(r, c);
            x2.set(r, c, orig + eps);
            let plus = layer.forward(&x2).unwrap().sum();
            x2.set(r, c, orig - eps);
            let minus = layer.forward(&x2).unwrap().sum();
            x2.set(r, c, orig);
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = dx.get(r, c);
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "dx[{r}][{c}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn sgd_step_reduces_simple_loss() {
        // Minimise sum(y) for a fixed input: every step must reduce it.
        let mut rng = seeded_rng(4);
        let mut layer = Linear::new(2, 1, &mut rng);
        let x = Matrix::filled(1, 2, 1.0);
        let before = layer.forward(&x).unwrap().sum();
        let dy = Matrix::filled(1, 1, 1.0);
        let (grads, _) = layer.backward(&x, &dy).unwrap();
        layer.apply_sgd(&grads, 0.1);
        let after = layer.forward(&x).unwrap().sum();
        assert!(after < before);
    }

    #[test]
    fn accumulate_and_scale() {
        let mut rng = seeded_rng(5);
        let layer = Linear::new(2, 2, &mut rng);
        let mut g1 = layer.zero_grads();
        let x = Matrix::filled(1, 2, 1.0);
        let dy = Matrix::filled(1, 2, 1.0);
        let (g2, _) = layer.backward(&x, &dy).unwrap();
        g1.accumulate(&g2);
        g1.accumulate(&g2);
        g1.scale(0.5);
        assert_eq!(g1.weight, g2.weight);
        assert_eq!(g1.bias, g2.bias);
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = seeded_rng(6);
        let layer = Linear::new(3, 4, &mut rng);
        let json = serde_json::to_string(&layer).unwrap();
        let back: Linear = serde_json::from_str(&json).unwrap();
        assert_eq!(layer, back);
    }
}
