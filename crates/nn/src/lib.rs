//! Minimal neural-network building blocks with manual backpropagation.
//!
//! The DAC'19 GCN was implemented in PyTorch; this crate replaces the parts
//! of it that the paper actually uses, built directly on
//! [`gcnt_tensor::Matrix`]:
//!
//! * [`Linear`] — a fully-connected layer with Xavier initialisation.
//! * [`Mlp`] — a stack of linear layers with ReLU between them; this is the
//!   paper's classifier head (4 FC layers, dims 64/64/128/2) and also the
//!   MLP baseline of Table 2.
//! * [`loss`] — class-weighted softmax cross-entropy, the loss that drives
//!   the multi-stage imbalance handling of §3.3.
//! * [`ParamOptimizer`] / [`ModelOptimizer`] — plain SGD (with momentum)
//!   and Adam over flat parameter slices.
//! * [`seeded_rng`] — a portable, seeded RNG so training is reproducible
//!   bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use gcnt_nn::{seeded_rng, Mlp};
//! use gcnt_tensor::Matrix;
//!
//! let mut rng = seeded_rng(42);
//! let mlp = Mlp::new(&[4, 8, 2], &mut rng);
//! let x = Matrix::zeros(3, 4);
//! let logits = mlp.predict(&x).unwrap();
//! assert_eq!(logits.shape(), (3, 2));
//! ```

mod init;
mod linear;
pub mod loss;
mod mlp;
mod optimizer;

pub use init::xavier_uniform;
pub use linear::{Linear, LinearGrads};
pub use mlp::{Mlp, MlpCache, MlpGrads};
pub use optimizer::{AdamConfig, ModelOptimizer, OptimizerConfig, ParamOptimizer, SgdConfig};

use rand_chacha::ChaCha8Rng;

/// The RNG used throughout the workspace for reproducible experiments.
pub type Rng = ChaCha8Rng;

/// Creates a portable, deterministic RNG from a seed.
///
/// `ChaCha8` is stability-guaranteed across `rand` releases and platforms,
/// unlike `StdRng`.
pub fn seeded_rng(seed: u64) -> Rng {
    use rand::SeedableRng;
    ChaCha8Rng::seed_from_u64(seed)
}
