//! Typed failures of the page store.
//!
//! The failure contract of the whole crate lives in this enum: every
//! open/read/write path either *recovers* (torn-tail heal on the data
//! file, temp+fsync+rename for metadata) or returns one of these —
//! never silently wrong data.

use std::fmt;
use std::path::PathBuf;

/// Errors produced by the page store.
#[derive(Debug)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// Path the operation targeted.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The store metadata file is not parseable, or its envelope
    /// checksum disagrees with its payload (a flipped bit anywhere in
    /// the committed metadata lands here, never in wrong page refs).
    Malformed {
        /// Path of the unparseable file.
        path: PathBuf,
        /// What failed to parse or verify.
        detail: String,
    },
    /// The metadata declares a format version this build does not read.
    Unsupported {
        /// Path of the metadata file.
        path: PathBuf,
        /// The declared version.
        version: u32,
    },
    /// A committed page failed its integrity check (bad magic, length
    /// out of range, or checksum mismatch). The caller should
    /// quarantine the owning segment and recompute its contents.
    PageCorrupt {
        /// Path of the data file.
        path: PathBuf,
        /// Index of the corrupt page.
        page: u64,
        /// What the check found.
        detail: String,
    },
    /// A segment's reassembled bytes disagree with its committed length
    /// or checksum, or it references a page past the committed count.
    SegmentCorrupt {
        /// Path of the data file.
        path: PathBuf,
        /// Display name of the segment.
        segment: String,
        /// What the check found.
        detail: String,
    },
    /// The data file is shorter than the committed page count promises —
    /// pages the metadata vouches for are gone, which is real
    /// corruption, not a torn tail.
    Truncated {
        /// Path of the data file.
        path: PathBuf,
        /// Bytes the committed page count requires.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// A page write was refused because the device is full (or a
    /// fault plan simulated that condition). Nothing was committed.
    DiskFull {
        /// Path of the data file.
        path: PathBuf,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store io error at {}: {source}", path.display())
            }
            StoreError::Malformed { path, detail } => {
                write!(f, "malformed store metadata {}: {detail}", path.display())
            }
            StoreError::Unsupported { path, version } => write!(
                f,
                "store {} declares unsupported format version {version}",
                path.display()
            ),
            StoreError::PageCorrupt { path, page, detail } => {
                write!(f, "corrupt page {page} in {}: {detail}", path.display())
            }
            StoreError::SegmentCorrupt {
                path,
                segment,
                detail,
            } => write!(
                f,
                "corrupt segment `{segment}` in {}: {detail}",
                path.display()
            ),
            StoreError::Truncated {
                path,
                expected,
                actual,
            } => write!(
                f,
                "data file {} truncated: {actual} bytes on disk, {expected} committed",
                path.display()
            ),
            StoreError::DiskFull { path } => {
                write!(f, "disk full writing pages to {}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn display_is_informative() {
        let p = Path::new("/tmp/s");
        assert!(StoreError::Truncated {
            path: p.to_path_buf(),
            expected: 8192,
            actual: 4096
        }
        .to_string()
        .contains("8192 committed"));
        assert!(StoreError::PageCorrupt {
            path: p.to_path_buf(),
            page: 3,
            detail: "checksum mismatch".to_string()
        }
        .to_string()
        .contains("page 3"));
        assert!(StoreError::DiskFull {
            path: p.to_path_buf()
        }
        .to_string()
        .contains("disk full"));
    }
}
