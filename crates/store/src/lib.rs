//! # gcnt-store — crash-safe paged design/embedding store
//!
//! A zero-dependency pager holding netlist data, per-layer embedding
//! rows, and compacted journal segments in fixed-size checksummed
//! pages, so a serve shard can host many designs in a bounded memory
//! budget and warm-restart without recomputing base embeddings.
//!
//! Three disciplines, shared with `runtime::checkpoint` and
//! `serve::journal`:
//!
//! * **Checksummed envelopes.** Every page carries an FNV-1a 64
//!   checksum of its payload; store metadata rides in the same
//!   `{version, checksum, payload}` JSON envelope checkpoints use.
//! * **Atomic commits.** Metadata is replaced via temp + fsync +
//!   rename only; data pages are appended *past* the committed count
//!   and fsynced before the metadata commit references them.
//! * **The failure contract.** Every open/read path either *recovers*
//!   (torn append tail truncated away, quarantine-and-recompute for a
//!   corrupt page) or fails loudly with a typed [`StoreError`] —
//!   never silent corruption. `gcnt store scrub` reports damage as
//!   `PG###` lint findings without stopping at the first hit.
//!
//! The unit of storage is the *segment*: an arbitrary byte payload
//! keyed by [`SegmentKey`] (design fingerprint, kind, generation, node
//! range), split across pages by [`PageStore::put_segment`] and
//! reassembled — with per-page and whole-segment verification — by
//! [`PageStore::get_segment`].

mod error;
mod pager;

pub use error::StoreError;
pub use pager::{
    CompactStats, PageStore, SegmentKey, StoreFaults, StoreStat, DEFAULT_CACHE_PAGES, PAGE_DATA,
    PAGE_HEADER, PAGE_SIZE, STORE_VERSION,
};

use std::fs;
use std::io::Write;
use std::path::Path;

/// FNV-1a 64-bit hash — the checksum primitive for pages, metadata
/// envelopes, and journal records across the workspace.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// [`fnv1a64`] rendered as the 16-hex-digit form stored in envelopes.
#[must_use]
pub fn checksum_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

/// Writes `bytes` to `path` atomically: temp file in the same
/// directory, `fsync`, rename over the target, best-effort parent
/// directory sync. Readers see either the old contents or the new —
/// never a torn mix.
///
/// # Errors
///
/// [`StoreError::Io`] naming the path that failed.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    let io = |p: &Path| {
        let path = p.to_path_buf();
        move |source| StoreError::Io { path, source }
    };
    let mut file = fs::File::create(&tmp).map_err(io(&tmp))?;
    file.write_all(bytes).map_err(io(&tmp))?;
    file.sync_all().map_err(io(&tmp))?;
    drop(file);
    fs::rename(&tmp, path).map_err(io(path))?;
    if let Some(parent) = path.parent() {
        // Durability of the rename itself; non-fatal where the
        // filesystem refuses directory handles.
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // Pinned reference vectors: the on-disk format depends on them.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(checksum_hex(b"a"), "af63dc4c8601ec8c");
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let dir = std::env::temp_dir().join(format!("gcnt-store-aw-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.json");
        atomic_write(&path, b"one").unwrap();
        atomic_write(&path, b"two").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"two");
        assert!(!path.with_extension("tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
