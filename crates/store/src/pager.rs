//! The pager: a fixed-size-page data file, a checksummed metadata
//! envelope, a bounded page cache, and segment bookkeeping.
//!
//! # On-disk layout
//!
//! A store is a directory holding two files:
//!
//! * `pages-NNNN.dat` — the data file: a flat array of
//!   [`PAGE_SIZE`]-byte pages. Each page is self-verifying:
//!
//!   ```text
//!   bytes 0..4    magic  "GPG1"
//!   bytes 4..8    payload length (u32 LE, <= PAGE_DATA)
//!   bytes 8..16   FNV-1a 64 checksum of the payload (u64 LE)
//!   bytes 16..    payload, zero-padded to PAGE_SIZE
//!   ```
//!
//! * `store.json` — the metadata: the same checksummed
//!   `{version, checksum, payload}` envelope as `runtime::checkpoint`,
//!   whose payload is a [`StoreMeta`]: the committed page count and the
//!   segment directory. Metadata is only ever replaced via temp +
//!   fsync + rename, so a crash leaves either the old committed view or
//!   the new one.
//!
//! # Crash ordering
//!
//! [`PageStore::put_segment`] appends pages *past* the committed count,
//! fsyncs the data file, and only then commits new metadata. A crash
//! anywhere in between leaves orphan bytes beyond the committed count,
//! which the next open truncates away (the pager's torn-tail heal); the
//! committed view never references them.

use std::collections::HashMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use gcnt_lint::{lint_store_pages, lint_store_segments, LintReport, PageMeta, SegmentMeta};

use crate::error::StoreError;
use crate::{atomic_write, checksum_hex, fnv1a64};

/// The store metadata format version this build reads and writes.
pub const STORE_VERSION: u32 = 1;

/// Size of one page on disk, header included.
pub const PAGE_SIZE: usize = 4096;

/// Bytes of a page's header (magic + payload length + checksum).
pub const PAGE_HEADER: usize = 16;

/// Payload capacity of one page.
pub const PAGE_DATA: usize = PAGE_SIZE - PAGE_HEADER;

/// Pages the bounded cache holds by default.
pub const DEFAULT_CACHE_PAGES: usize = 64;

const PAGE_MAGIC: [u8; 4] = *b"GPG1";
const META_FILE: &str = "store.json";

/// Identity of one segment: which design, what it holds, and which
/// node/record range — the `(design fingerprint, generation, node
/// range)` key of the module docs, plus a `kind` discriminator so one
/// design can hold netlist text, per-stage/per-layer embedding rows,
/// and a compacted journal side by side.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentKey {
    /// Fingerprint (FNV-1a hex) identifying the design (and, where it
    /// matters, the model) the payload derives from.
    pub design: String,
    /// What the payload is, e.g. `"netlist"`, `"embed/s0/l1"`,
    /// `"journal"`.
    pub kind: String,
    /// Cache generation the payload was taken at.
    pub generation: u64,
    /// First node/record index covered (inclusive).
    pub start: u64,
    /// Last node/record index covered (exclusive).
    pub end: u64,
}

impl SegmentKey {
    /// Display name used in errors and scrub reports.
    pub fn display(&self) -> String {
        format!(
            "{}/{}@g{}[{}..{}]",
            self.design, self.kind, self.generation, self.start, self.end
        )
    }
}

/// One committed segment: its key plus the pages that hold its bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SegmentEntry {
    key: SegmentKey,
    /// Page indices holding the payload, in order.
    pages: Vec<u64>,
    /// Total payload length in bytes.
    len: u64,
    /// FNV-1a hex checksum of the whole payload.
    checksum: String,
}

/// The committed metadata payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StoreMeta {
    page_size: u32,
    /// Data-file generation; compaction bumps it and switches files.
    data_generation: u64,
    /// Committed pages in the data file; bytes beyond this are orphans.
    page_count: u64,
    segments: Vec<SegmentEntry>,
}

/// The checksummed on-disk envelope around [`StoreMeta`] — the same
/// discipline as `runtime::checkpoint`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct MetaFile {
    version: u32,
    checksum: String,
    payload: String,
}

/// A bounded LRU page cache: verified payloads only.
#[derive(Debug, Default)]
struct PageCache {
    capacity: usize,
    pages: HashMap<u64, Vec<u8>>,
    /// Least-recently-used order, front = coldest.
    order: Vec<u64>,
}

impl PageCache {
    fn new(capacity: usize) -> Self {
        PageCache {
            capacity: capacity.max(1),
            pages: HashMap::new(),
            order: Vec::new(),
        }
    }

    fn get(&mut self, idx: u64) -> Option<Vec<u8>> {
        let hit = self.pages.get(&idx).cloned();
        if hit.is_some() {
            self.touch(idx);
        }
        hit
    }

    fn touch(&mut self, idx: u64) {
        self.order.retain(|&i| i != idx);
        self.order.push(idx);
    }

    fn insert(&mut self, idx: u64, payload: Vec<u8>) {
        if self.pages.insert(idx, payload).is_none() {
            while self.pages.len() > self.capacity {
                let Some(&coldest) = self.order.first() else {
                    break;
                };
                self.order.retain(|&i| i != coldest);
                self.pages.remove(&coldest);
                gcnt_obs::global().incr(gcnt_obs::counters::STORE_PAGE_EVICTIONS);
            }
        }
        self.touch(idx);
    }

    fn clear(&mut self) {
        self.pages.clear();
        self.order.clear();
    }
}

/// Simulated faults for recovery testing; inert without the
/// `fault-inject` feature.
#[derive(Debug, Default, Clone)]
pub struct StoreFaults {
    #[cfg(feature = "fault-inject")]
    disk_full_after: Option<u64>,
    #[cfg(feature = "fault-inject")]
    writes: u64,
}

impl StoreFaults {
    /// No faults.
    pub fn none() -> Self {
        StoreFaults::default()
    }

    /// Fails every page write after the first `n` with
    /// [`StoreError::DiskFull`].
    #[cfg(feature = "fault-inject")]
    pub fn with_disk_full_after(mut self, n: u64) -> Self {
        self.disk_full_after = Some(n);
        self
    }

    /// Whether the next page write must fail as disk-full.
    fn next_write_fails(&mut self) -> bool {
        #[cfg(feature = "fault-inject")]
        {
            if let Some(cap) = self.disk_full_after {
                if self.writes >= cap {
                    return true;
                }
                self.writes += 1;
            }
        }
        false
    }
}

/// Scrub/stat summary of a store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreStat {
    /// Committed pages in the data file.
    pub page_count: u64,
    /// Pages referenced by live segments.
    pub live_pages: u64,
    /// Committed segments.
    pub segments: u64,
    /// Live payload bytes across all segments.
    pub live_bytes: u64,
    /// Data file size on disk in bytes.
    pub data_bytes: u64,
    /// Data-file generation (bumped by compaction).
    pub data_generation: u64,
}

/// Outcome of a [`PageStore::compact`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Committed pages before compaction.
    pub pages_before: u64,
    /// Committed pages after compaction.
    pub pages_after: u64,
}

/// A crash-safe paged store rooted at a directory.
#[derive(Debug)]
pub struct PageStore {
    dir: PathBuf,
    meta: StoreMeta,
    data: fs::File,
    cache: PageCache,
    faults: StoreFaults,
}

impl PageStore {
    /// Opens (creating if needed) the store at `dir`, healing a torn
    /// data-file tail left by a crash mid-append.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] if the metadata envelope is
    /// unparseable or fails its checksum, [`StoreError::Unsupported`]
    /// on a foreign format version, [`StoreError::Truncated`] if the
    /// data file is shorter than the committed page count, and
    /// [`StoreError::Io`] on filesystem failures.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|source| StoreError::Io {
            path: dir.clone(),
            source,
        })?;
        let meta_path = dir.join(META_FILE);
        let meta = if meta_path.exists() {
            Self::read_meta(&meta_path)?
        } else {
            StoreMeta {
                page_size: PAGE_SIZE as u32,
                data_generation: 0,
                page_count: 0,
                segments: Vec::new(),
            }
        };
        if meta.page_size != PAGE_SIZE as u32 {
            return Err(StoreError::Unsupported {
                path: meta_path,
                version: meta.page_size,
            });
        }
        let data_path = dir.join(data_file_name(meta.data_generation));
        let data = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&data_path)
            .map_err(|source| StoreError::Io {
                path: data_path.clone(),
                source,
            })?;
        let io = |source| StoreError::Io {
            path: data_path.clone(),
            source,
        };
        let len = data.metadata().map_err(io)?.len();
        let committed = meta.page_count * PAGE_SIZE as u64;
        if len < committed {
            return Err(StoreError::Truncated {
                path: data_path,
                expected: committed,
                actual: len,
            });
        }
        if len > committed {
            // Orphan bytes past the committed count: a crash between
            // page append and metadata commit. Heal by truncating —
            // the committed view never referenced them.
            data.set_len(committed).map_err(io)?;
        }
        Ok(PageStore {
            dir,
            meta,
            data,
            cache: PageCache::new(DEFAULT_CACHE_PAGES),
            faults: StoreFaults::none(),
        })
    }

    /// Replaces the bounded page cache's capacity (in pages).
    pub fn with_cache_pages(mut self, pages: usize) -> Self {
        self.cache = PageCache::new(pages);
        self
    }

    /// Attaches simulated faults (inert without `fault-inject`).
    pub fn with_faults(mut self, faults: StoreFaults) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the injected fault set on an already-open store — for
    /// callers that attach faults after construction (builder order
    /// varies at the serving layer).
    pub fn set_faults(&mut self, faults: StoreFaults) {
        self.faults = faults;
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn meta_path(&self) -> PathBuf {
        self.dir.join(META_FILE)
    }

    fn data_path(&self) -> PathBuf {
        self.dir.join(data_file_name(self.meta.data_generation))
    }

    fn read_meta(path: &Path) -> Result<StoreMeta, StoreError> {
        let text = fs::read_to_string(path).map_err(|source| StoreError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let envelope: MetaFile =
            serde_json::from_str(&text).map_err(|e| StoreError::Malformed {
                path: path.to_path_buf(),
                detail: format!("envelope parse failed: {e}"),
            })?;
        if envelope.version != STORE_VERSION {
            return Err(StoreError::Unsupported {
                path: path.to_path_buf(),
                version: envelope.version,
            });
        }
        let computed = checksum_hex(envelope.payload.as_bytes());
        if computed != envelope.checksum {
            gcnt_obs::global().incr(gcnt_obs::counters::STORE_CHECKSUM_FAILURES);
            return Err(StoreError::Malformed {
                path: path.to_path_buf(),
                detail: format!(
                    "metadata checksum mismatch (stored {}, computed {computed})",
                    envelope.checksum
                ),
            });
        }
        serde_json::from_str(&envelope.payload).map_err(|e| StoreError::Malformed {
            path: path.to_path_buf(),
            detail: format!("metadata payload parse failed: {e}"),
        })
    }

    /// Commits the current metadata atomically (temp + fsync + rename).
    fn commit_meta(&self) -> Result<(), StoreError> {
        let path = self.meta_path();
        let payload = serde_json::to_string(&self.meta).map_err(|e| StoreError::Malformed {
            path: path.clone(),
            detail: format!("metadata serialization failed: {e}"),
        })?;
        let envelope = MetaFile {
            version: STORE_VERSION,
            checksum: checksum_hex(payload.as_bytes()),
            payload,
        };
        let bytes = serde_json::to_string(&envelope).map_err(|e| StoreError::Malformed {
            path: path.clone(),
            detail: format!("envelope serialization failed: {e}"),
        })?;
        atomic_write(&path, bytes.as_bytes())
    }

    /// Encodes one page buffer (header + payload + zero pad).
    fn encode_page(payload: &[u8]) -> Vec<u8> {
        debug_assert!(payload.len() <= PAGE_DATA);
        let mut buf = Vec::with_capacity(PAGE_SIZE);
        buf.extend_from_slice(&PAGE_MAGIC);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        buf.extend_from_slice(payload);
        buf.resize(PAGE_SIZE, 0);
        buf
    }

    /// Decodes and verifies one raw page buffer into its payload.
    fn decode_page(path: &Path, idx: u64, buf: &[u8]) -> Result<Vec<u8>, StoreError> {
        let corrupt = |detail: String| {
            gcnt_obs::global().incr(gcnt_obs::counters::STORE_CHECKSUM_FAILURES);
            StoreError::PageCorrupt {
                path: path.to_path_buf(),
                page: idx,
                detail,
            }
        };
        if buf.len() != PAGE_SIZE {
            return Err(corrupt(format!("short page: {} bytes", buf.len())));
        }
        if buf.get(..4) != Some(&PAGE_MAGIC[..]) {
            return Err(corrupt("bad page magic".to_string()));
        }
        let len = match buf.get(4..8).and_then(|b| <[u8; 4]>::try_from(b).ok()) {
            Some(b) => u32::from_le_bytes(b) as usize,
            None => return Err(corrupt("short page header".to_string())),
        };
        if len > PAGE_DATA {
            return Err(corrupt(format!("payload length {len} exceeds {PAGE_DATA}")));
        }
        let stored = match buf.get(8..16).and_then(|b| <[u8; 8]>::try_from(b).ok()) {
            Some(b) => u64::from_le_bytes(b),
            None => return Err(corrupt("short page header".to_string())),
        };
        let payload = buf
            .get(PAGE_HEADER..PAGE_HEADER + len)
            .ok_or_else(|| corrupt("page shorter than its payload length".to_string()))?;
        let computed = fnv1a64(payload);
        if computed != stored {
            return Err(corrupt(format!(
                "checksum mismatch (stored {stored:016x}, computed {computed:016x})"
            )));
        }
        Ok(payload.to_vec())
    }

    /// Reads one raw page from disk, bypassing the cache.
    fn read_page_raw(&mut self, idx: u64) -> Result<Vec<u8>, StoreError> {
        let path = self.data_path();
        let io = |source| StoreError::Io {
            path: path.clone(),
            source,
        };
        let mut buf = vec![0u8; PAGE_SIZE];
        self.data
            .seek(SeekFrom::Start(idx * PAGE_SIZE as u64))
            .map_err(io)?;
        self.data.read_exact(&mut buf).map_err(io)?;
        gcnt_obs::global().incr(gcnt_obs::counters::STORE_PAGE_READS);
        Ok(buf)
    }

    /// Reads one committed page's verified payload through the cache.
    fn read_page(&mut self, idx: u64) -> Result<Vec<u8>, StoreError> {
        if idx >= self.meta.page_count {
            return Err(StoreError::SegmentCorrupt {
                path: self.data_path(),
                segment: format!("page {idx}"),
                detail: format!(
                    "reference past the committed page count {}",
                    self.meta.page_count
                ),
            });
        }
        if let Some(hit) = self.cache.get(idx) {
            return Ok(hit);
        }
        let buf = self.read_page_raw(idx)?;
        let payload = Self::decode_page(&self.data_path(), idx, &buf)?;
        self.cache.insert(idx, payload.clone());
        Ok(payload)
    }

    /// Whether a segment with exactly this key is committed.
    pub fn contains(&self, key: &SegmentKey) -> bool {
        self.meta.segments.iter().any(|s| &s.key == key)
    }

    /// Committed segment keys, in commit order.
    pub fn keys(&self) -> Vec<SegmentKey> {
        self.meta.segments.iter().map(|s| s.key.clone()).collect()
    }

    /// Writes `bytes` as a segment: appends pages past the committed
    /// count, fsyncs the data file, then commits metadata atomically.
    /// An existing segment with the same `(design, kind, generation,
    /// start)` is replaced (its pages become orphans until
    /// [`PageStore::compact`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::DiskFull`] if a (possibly injected) disk-full
    /// condition refuses the write, [`StoreError::Io`] on filesystem
    /// failures. Nothing is committed on error: the metadata still
    /// describes the previous view.
    pub fn put_segment(&mut self, key: &SegmentKey, bytes: &[u8]) -> Result<(), StoreError> {
        let data_path = self.data_path();
        let io = |source| StoreError::Io {
            path: data_path.clone(),
            source,
        };
        let first = self.meta.page_count;
        let mut pages = Vec::new();
        self.data
            .seek(SeekFrom::Start(first * PAGE_SIZE as u64))
            .map_err(io)?;
        // `chunks` yields nothing for an empty payload, but an empty
        // segment is still a valid commit (zero pages).
        for (i, chunk) in bytes.chunks(PAGE_DATA.max(1)).enumerate() {
            if self.faults.next_write_fails() {
                return Err(StoreError::DiskFull {
                    path: data_path.clone(),
                });
            }
            let idx = first + i as u64;
            let buf = Self::encode_page(chunk);
            self.data.write_all(&buf).map_err(io)?;
            gcnt_obs::global().incr(gcnt_obs::counters::STORE_PAGE_WRITES);
            pages.push(idx);
        }
        self.data.sync_all().map_err(io)?;
        let entry = SegmentEntry {
            key: key.clone(),
            pages: pages.clone(),
            len: bytes.len() as u64,
            checksum: checksum_hex(bytes),
        };
        let mut next = self.meta.clone();
        next.page_count = first + pages.len() as u64;
        next.segments.retain(|s| {
            !(s.key.design == key.design
                && s.key.kind == key.kind
                && s.key.generation == key.generation
                && s.key.start == key.start)
        });
        next.segments.push(entry);
        let prev = std::mem::replace(&mut self.meta, next);
        if let Err(e) = self.commit_meta() {
            self.meta = prev;
            return Err(e);
        }
        // Commit succeeded: warm the cache with what was just written.
        for (i, chunk) in bytes.chunks(PAGE_DATA.max(1)).enumerate() {
            self.cache.insert(first + i as u64, chunk.to_vec());
        }
        Ok(())
    }

    /// Reads a committed segment back, verifying every page and the
    /// whole-segment checksum. `Ok(None)` means no such segment.
    ///
    /// # Errors
    ///
    /// [`StoreError::PageCorrupt`] / [`StoreError::SegmentCorrupt`] on
    /// integrity failures — the caller should
    /// [`PageStore::quarantine`] the key and recompute.
    pub fn get_segment(&mut self, key: &SegmentKey) -> Result<Option<Vec<u8>>, StoreError> {
        let Some(entry) = self.meta.segments.iter().find(|s| &s.key == key).cloned() else {
            return Ok(None);
        };
        let mut bytes = Vec::with_capacity(entry.len as usize);
        for &idx in &entry.pages {
            bytes.extend_from_slice(&self.read_page(idx)?);
        }
        let computed = checksum_hex(&bytes);
        if bytes.len() as u64 != entry.len || computed != entry.checksum {
            gcnt_obs::global().incr(gcnt_obs::counters::STORE_CHECKSUM_FAILURES);
            return Err(StoreError::SegmentCorrupt {
                path: self.data_path(),
                segment: key.display(),
                detail: format!(
                    "reassembled {} bytes with checksum {computed} (committed {} bytes, {})",
                    bytes.len(),
                    entry.len,
                    entry.checksum
                ),
            });
        }
        Ok(Some(bytes))
    }

    /// Drops a segment from the committed view (quarantine-and-
    /// recompute: the caller regenerates the contents from source).
    /// Returns whether the key existed. Pages are orphaned until
    /// [`PageStore::compact`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the metadata commit fails.
    pub fn quarantine(&mut self, key: &SegmentKey) -> Result<bool, StoreError> {
        let before = self.meta.segments.len();
        let mut next = self.meta.clone();
        next.segments.retain(|s| &s.key != key);
        if next.segments.len() == before {
            return Ok(false);
        }
        let prev = std::mem::replace(&mut self.meta, next);
        if let Err(e) = self.commit_meta() {
            self.meta = prev;
            return Err(e);
        }
        Ok(true)
    }

    /// Verifies every committed page and every segment's page
    /// references, reporting `PG001`/`PG003` findings instead of
    /// stopping at the first corruption. Reads the disk truth (the
    /// cache is bypassed and then invalidated).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] only; corruption is findings, not errors.
    pub fn scrub(&mut self) -> Result<LintReport, StoreError> {
        let data_path = self.data_path();
        let display = data_path.display().to_string();
        let mut pages = Vec::with_capacity(self.meta.page_count as usize);
        for idx in 0..self.meta.page_count {
            let buf = self.read_page_raw(idx)?;
            let meta = match Self::decode_page(&data_path, idx, &buf) {
                Ok(payload) => PageMeta {
                    index: idx,
                    stored_checksum: checksum_hex(&payload),
                    computed_checksum: checksum_hex(&payload),
                },
                Err(e) => PageMeta {
                    index: idx,
                    stored_checksum: "committed".to_string(),
                    computed_checksum: e.to_string(),
                },
            };
            pages.push(meta);
        }
        let mut report = lint_store_pages(&display, &pages);
        let segments: Vec<SegmentMeta> = self
            .meta
            .segments
            .iter()
            .map(|s| SegmentMeta {
                name: s.key.display(),
                pages: s.pages.clone(),
            })
            .collect();
        report.merge(lint_store_segments(
            &display,
            &segments,
            self.meta.page_count,
        ));
        self.cache.clear();
        Ok(report)
    }

    /// Rewrites the data file with only live pages (dropping orphans
    /// from replaced/quarantined segments), switching to a new
    /// data-file generation. Crash-safe: the new file is written and
    /// fsynced in full before the metadata commit flips over to it; a
    /// crash in between leaves the old committed view intact.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures,
    /// [`StoreError::PageCorrupt`] if a live page fails verification
    /// while being copied (nothing is committed in that case).
    pub fn compact(&mut self) -> Result<CompactStats, StoreError> {
        let pages_before = self.meta.page_count;
        let new_gen = self.meta.data_generation + 1;
        let new_path = self.dir.join(data_file_name(new_gen));
        let io = |p: &Path| {
            let path = p.to_path_buf();
            move |source| StoreError::Io { path, source }
        };
        // Read+write: this handle becomes `self.data` after the commit.
        let mut new_file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&new_path)
            .map_err(io(&new_path))?;
        let mut next = self.meta.clone();
        next.data_generation = new_gen;
        next.page_count = 0;
        for entry in &mut next.segments {
            let mut new_pages = Vec::with_capacity(entry.pages.len());
            for &old_idx in &entry.pages {
                // Re-verify while copying: compaction must not launder
                // a corrupt page into a fresh-looking file.
                let payload = {
                    let buf = self.read_page_raw(old_idx)?;
                    Self::decode_page(&self.data_path(), old_idx, &buf)?
                };
                new_file
                    .write_all(&Self::encode_page(&payload))
                    .map_err(io(&new_path))?;
                gcnt_obs::global().incr(gcnt_obs::counters::STORE_PAGE_WRITES);
                new_pages.push(next.page_count);
                next.page_count += 1;
            }
            entry.pages = new_pages;
        }
        new_file.sync_all().map_err(io(&new_path))?;
        let old_path = self.data_path();
        let pages_after = next.page_count;
        let prev = std::mem::replace(&mut self.meta, next);
        if let Err(e) = self.commit_meta() {
            self.meta = prev;
            let _ = fs::remove_file(&new_path);
            return Err(e);
        }
        // Committed: switch handles, drop the old generation.
        self.data = new_file;
        self.cache.clear();
        let _ = fs::remove_file(old_path);
        gcnt_obs::global().incr(gcnt_obs::counters::STORE_COMPACTIONS);
        Ok(CompactStats {
            pages_before,
            pages_after,
        })
    }

    /// Current page/segment accounting.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the data file cannot be measured.
    pub fn stat(&self) -> Result<StoreStat, StoreError> {
        let data_bytes = self
            .data
            .metadata()
            .map_err(|source| StoreError::Io {
                path: self.data_path(),
                source,
            })?
            .len();
        Ok(StoreStat {
            page_count: self.meta.page_count,
            live_pages: self
                .meta
                .segments
                .iter()
                .map(|s| s.pages.len() as u64)
                .sum(),
            segments: self.meta.segments.len() as u64,
            live_bytes: self.meta.segments.iter().map(|s| s.len).sum(),
            data_bytes,
            data_generation: self.meta.data_generation,
        })
    }
}

fn data_file_name(generation: u64) -> String {
    format!("pages-{generation:04}.dat")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_store(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gcnt-store-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(kind: &str) -> SegmentKey {
        SegmentKey {
            design: "abcd1234abcd1234".to_string(),
            kind: kind.to_string(),
            generation: 0,
            start: 0,
            end: 100,
        }
    }

    fn blob(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn segment_round_trips_across_reopen() {
        let dir = temp_store("roundtrip");
        let payload = blob(3 * PAGE_DATA + 17, 5);
        {
            let mut store = PageStore::open(&dir).unwrap();
            store.put_segment(&key("netlist"), &payload).unwrap();
            assert_eq!(
                store.get_segment(&key("netlist")).unwrap().unwrap(),
                payload
            );
        }
        let mut store = PageStore::open(&dir).unwrap();
        assert!(store.contains(&key("netlist")));
        assert_eq!(
            store.get_segment(&key("netlist")).unwrap().unwrap(),
            payload
        );
        assert_eq!(store.get_segment(&key("other")).unwrap(), None);
        assert_eq!(store.stat().unwrap().page_count, 4);
    }

    #[test]
    fn replacement_orphans_pages_and_compaction_reclaims_them() {
        let dir = temp_store("compact");
        let mut store = PageStore::open(&dir).unwrap();
        store
            .put_segment(&key("a"), &blob(PAGE_DATA * 2, 1))
            .unwrap();
        let fresh = blob(PAGE_DATA * 2, 2);
        store.put_segment(&key("a"), &fresh).unwrap();
        store.put_segment(&key("b"), &blob(10, 3)).unwrap();
        let stat = store.stat().unwrap();
        assert_eq!(stat.page_count, 5);
        assert_eq!(stat.live_pages, 3);
        let out = store.compact().unwrap();
        assert_eq!(out.pages_before, 5);
        assert_eq!(out.pages_after, 3);
        assert_eq!(store.get_segment(&key("a")).unwrap().unwrap(), fresh);
        // And the compacted store reopens clean.
        drop(store);
        let mut store = PageStore::open(&dir).unwrap();
        assert_eq!(store.get_segment(&key("a")).unwrap().unwrap(), fresh);
        assert!(store.scrub().unwrap().is_clean());
    }

    #[test]
    fn bit_flip_in_a_page_is_a_typed_error_and_scrub_finds_it() {
        let dir = temp_store("bitflip");
        let mut store = PageStore::open(&dir).unwrap();
        store.put_segment(&key("a"), &blob(200, 7)).unwrap();
        let gen = store.stat().unwrap().data_generation;
        drop(store);
        let data = dir.join(data_file_name(gen));
        let mut bytes = fs::read(&data).unwrap();
        let mid = PAGE_HEADER + 20;
        bytes[mid] ^= 0x01;
        fs::write(&data, &bytes).unwrap();

        let mut store = PageStore::open(&dir).unwrap();
        let err = store.get_segment(&key("a")).unwrap_err();
        assert!(
            matches!(err, StoreError::PageCorrupt { page: 0, .. }),
            "{err}"
        );
        let report = store.scrub().unwrap();
        assert!(
            report.fired(gcnt_lint::RuleId::PageChecksumMismatch),
            "{report}"
        );
        // Quarantine-and-recompute: drop the bad segment, rewrite it.
        assert!(store.quarantine(&key("a")).unwrap());
        store.put_segment(&key("a"), &blob(200, 7)).unwrap();
        assert_eq!(store.get_segment(&key("a")).unwrap().unwrap(), blob(200, 7));
    }

    #[test]
    fn truncated_data_file_fails_loudly() {
        let dir = temp_store("trunc");
        let mut store = PageStore::open(&dir).unwrap();
        store
            .put_segment(&key("a"), &blob(PAGE_DATA * 2, 9))
            .unwrap();
        let gen = store.stat().unwrap().data_generation;
        drop(store);
        let data = dir.join(data_file_name(gen));
        let bytes = fs::read(&data).unwrap();
        fs::write(&data, &bytes[..bytes.len() / 2]).unwrap();
        let err = PageStore::open(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Truncated { .. }), "{err}");
    }

    #[test]
    fn orphan_tail_from_crash_mid_append_is_healed() {
        let dir = temp_store("orphan");
        let mut store = PageStore::open(&dir).unwrap();
        store.put_segment(&key("a"), &blob(100, 1)).unwrap();
        let gen = store.stat().unwrap().data_generation;
        drop(store);
        // Simulate a crash between page append and metadata commit:
        // extra bytes past the committed count.
        let data = dir.join(data_file_name(gen));
        let mut bytes = fs::read(&data).unwrap();
        bytes.extend_from_slice(&[0xAB; 1000]);
        fs::write(&data, &bytes).unwrap();

        let mut store = PageStore::open(&dir).unwrap();
        assert_eq!(store.get_segment(&key("a")).unwrap().unwrap(), blob(100, 1));
        assert_eq!(store.stat().unwrap().data_bytes, PAGE_SIZE as u64);
        assert!(store.scrub().unwrap().is_clean());
    }

    #[test]
    fn tampered_metadata_is_a_typed_error() {
        let dir = temp_store("meta");
        let mut store = PageStore::open(&dir).unwrap();
        store.put_segment(&key("a"), &blob(40, 2)).unwrap();
        drop(store);
        let meta = dir.join(META_FILE);
        let text = fs::read_to_string(&meta).unwrap();
        // Flip payload bytes (the design fingerprint string) without
        // touching the envelope checksum: verification must catch it.
        let tampered = text.replacen("abcd1234", "abcd9999", 1);
        assert_ne!(text, tampered, "test must actually tamper");
        fs::write(&meta, tampered).unwrap();
        let err = PageStore::open(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Malformed { .. }), "{err}");

        // An unsupported version is refused as such.
        let future = text.replacen("\"version\":1,", "\"version\":99,", 1);
        assert_ne!(text, future);
        fs::write(&meta, future).unwrap();
        let err = PageStore::open(&dir).unwrap_err();
        assert!(
            matches!(err, StoreError::Unsupported { version: 99, .. }),
            "{err}"
        );
    }

    #[test]
    fn bounded_cache_evicts_but_stays_correct() {
        let dir = temp_store("cache");
        let mut store = PageStore::open(&dir).unwrap().with_cache_pages(2);
        let payloads: Vec<Vec<u8>> = (0..5).map(|i| blob(PAGE_DATA, i as u8)).collect();
        for (i, p) in payloads.iter().enumerate() {
            store.put_segment(&key(&format!("s{i}")), p).unwrap();
        }
        // Walk all segments twice: far more pages than the cache holds.
        for _ in 0..2 {
            for (i, p) in payloads.iter().enumerate() {
                assert_eq!(
                    &store.get_segment(&key(&format!("s{i}"))).unwrap().unwrap(),
                    p
                );
            }
        }
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_disk_full_fails_without_committing() {
        let dir = temp_store("diskfull");
        let mut store = PageStore::open(&dir)
            .unwrap()
            .with_faults(StoreFaults::none().with_disk_full_after(1));
        store.put_segment(&key("ok"), &blob(10, 1)).unwrap();
        let err = store
            .put_segment(&key("big"), &blob(PAGE_DATA * 3, 2))
            .unwrap_err();
        assert!(matches!(err, StoreError::DiskFull { .. }), "{err}");
        assert!(!store.contains(&key("big")));
        drop(store);
        // The failed write left no committed trace; reopen heals the
        // orphan bytes and the surviving segment verifies.
        let mut store = PageStore::open(&dir).unwrap();
        assert_eq!(store.get_segment(&key("ok")).unwrap().unwrap(), blob(10, 1));
        assert!(store.scrub().unwrap().is_clean());
    }
}
