use std::fmt;

use crate::{CellKind, NodeId};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, NetlistError>;

/// Errors produced while building, validating or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A node id referenced a node that does not exist.
    UnknownNode(NodeId),
    /// A cell has a fanin count outside its arity bounds.
    BadArity {
        /// The offending node.
        node: NodeId,
        /// Its cell kind.
        kind: CellKind,
        /// Number of fanins it actually has.
        fanins: usize,
    },
    /// An edge would make the combinational logic cyclic.
    CombinationalCycle {
        /// A node that participates in the cycle.
        node: NodeId,
    },
    /// An edge was added twice between the same pair of nodes.
    DuplicateEdge {
        /// Driving node.
        from: NodeId,
        /// Driven node.
        to: NodeId,
    },
    /// An `Output` cell may not drive anything.
    OutputHasFanout(NodeId),
    /// The text format could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetlistError::BadArity { node, kind, fanins } => write!(
                f,
                "node {node} of kind {kind} has {fanins} fanins, outside its arity bounds"
            ),
            NetlistError::CombinationalCycle { node } => {
                write!(f, "combinational cycle through node {node}")
            }
            NetlistError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge {from} -> {to}")
            }
            NetlistError::OutputHasFanout(n) => {
                write!(f, "output cell {n} must not drive other cells")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetlistError::BadArity {
            node: NodeId::from_index(7),
            kind: CellKind::Not,
            fanins: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("n7"));
        assert!(msg.contains("not"));
        assert!(msg.contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
