//! COP — probability-based testability analysis (Brglez, ISCAS 1984).
//!
//! Where SCOAP counts *assignments*, COP estimates *probabilities* under
//! random patterns, assuming signal independence:
//!
//! * `p1(v)` — probability that `v` is 1 (controllability),
//! * `obs(v)` — probability that a change at `v` propagates to an
//!   observable point (observability).
//!
//! COP is the analytic counterpart of the simulation-based estimates in
//! `gcnt-dft` (signal probabilities / critical path tracing): one O(E)
//! pass instead of thousands of simulated patterns, at the cost of the
//! independence assumption, which over- or under-estimates through
//! reconvergent fanout. Commercial testability tools use COP-style
//! measures to rank random-pattern-resistant nets — the very quantity the
//! paper's labels encode — so COP scores also make a useful additional
//! node attribute for model extensions.

use serde::{Deserialize, Serialize};

use crate::{CellKind, Netlist, NodeId, Result};

/// COP probabilities for every node, indexed by [`NodeId::index`].
///
/// # Examples
///
/// ```
/// use gcnt_netlist::{CellKind, Cop, Netlist};
///
/// let mut net = Netlist::new("and2");
/// let a = net.add_cell(CellKind::Input);
/// let b = net.add_cell(CellKind::Input);
/// let g = net.add_cell(CellKind::And);
/// let o = net.add_cell(CellKind::Output);
/// net.connect(a, g)?;
/// net.connect(b, g)?;
/// net.connect(g, o)?;
/// let cop = Cop::compute(&net)?;
/// assert!((cop.p1(g) - 0.25).abs() < 1e-6);
/// assert!((cop.observability(a) - 0.5).abs() < 1e-6); // b must be 1
/// # Ok::<(), gcnt_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cop {
    p1: Vec<f64>,
    obs: Vec<f64>,
}

impl Cop {
    /// Computes COP probabilities: controllability forward, observability
    /// backward, both in one topological sweep each.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NetlistError::CombinationalCycle`] if the netlist
    /// has a combinational cycle.
    pub fn compute(net: &Netlist) -> Result<Self> {
        let order = net.topo_order()?;
        let n = net.node_count();
        let mut p1 = vec![0.0f64; n];
        for &id in &order {
            p1[id.index()] = signal_probability(net, id, &p1);
        }
        let mut obs = vec![0.0f64; n];
        // Observable sinks.
        for id in net.nodes() {
            match net.kind(id) {
                CellKind::Output => obs[id.index()] = 1.0,
                CellKind::Dff => {
                    // D input observed through the scan chain.
                    if let Some(&d) = net.fanin(id).first() {
                        obs[d.index()] = 1.0;
                    }
                }
                _ => {}
            }
        }
        for &u in order.iter().rev() {
            let kind = net.kind(u);
            if kind == CellKind::Input || kind == CellKind::Dff {
                continue;
            }
            let ou = obs[u.index()];
            if ou == 0.0 {
                continue;
            }
            propagate_observability(net, u, kind, ou, &p1, &mut obs);
        }
        Ok(Cop { p1, obs })
    }

    /// Probability that node `v` is 1 under random patterns.
    pub fn p1(&self, v: NodeId) -> f64 {
        self.p1[v.index()]
    }

    /// Probability that a change at `v` reaches an observable point.
    pub fn observability(&self, v: NodeId) -> f64 {
        self.obs[v.index()]
    }

    /// All signal probabilities, indexed by node index.
    pub fn p1_all(&self) -> &[f64] {
        &self.p1
    }

    /// All observabilities, indexed by node index.
    pub fn observability_all(&self) -> &[f64] {
        &self.obs
    }

    /// COP detectability of a stuck-at fault at `v`'s output:
    /// `P(excite) * P(propagate)` — the classic random-pattern test
    /// probability estimate.
    pub fn detectability(&self, v: NodeId, stuck_at: bool) -> f64 {
        let excite = if stuck_at {
            1.0 - self.p1[v.index()]
        } else {
            self.p1[v.index()]
        };
        excite * self.obs[v.index()]
    }
}

fn signal_probability(net: &Netlist, id: NodeId, p1: &[f64]) -> f64 {
    let fanin = net.fanin(id);
    let p = |v: &NodeId| p1[v.index()];
    match net.kind(id) {
        CellKind::Input | CellKind::Dff => 0.5,
        CellKind::Output | CellKind::Buf => fanin.first().map_or(0.5, p),
        CellKind::Not => 1.0 - fanin.first().map_or(0.5, p),
        CellKind::And => fanin.iter().map(p).product(),
        CellKind::Nand => 1.0 - fanin.iter().map(p).product::<f64>(),
        CellKind::Or => 1.0 - fanin.iter().map(|v| 1.0 - p(v)).product::<f64>(),
        CellKind::Nor => fanin.iter().map(|v| 1.0 - p(v)).product(),
        CellKind::Xor | CellKind::Xnor => {
            // P(odd parity) via the product identity
            // 1 - 2*P(odd) = prod(1 - 2*p_i).
            let prod: f64 = fanin.iter().map(|v| 1.0 - 2.0 * p(v)).product();
            let odd = 0.5 * (1.0 - prod);
            if net.kind(id) == CellKind::Xor {
                odd
            } else {
                1.0 - odd
            }
        }
    }
}

fn propagate_observability(
    net: &Netlist,
    u: NodeId,
    kind: CellKind,
    ou: f64,
    p1: &[f64],
    obs: &mut [f64],
) {
    let fanin = net.fanin(u);
    // OR-combine across fanout branches: obs(v) = 1 - prod(1 - branch).
    let mut bump = |v: NodeId, branch: f64| {
        let cur = obs[v.index()];
        obs[v.index()] = 1.0 - (1.0 - cur) * (1.0 - branch.clamp(0.0, 1.0));
    };
    match kind {
        CellKind::Output | CellKind::Buf | CellKind::Not => {
            if let Some(&v) = fanin.first() {
                bump(v, ou);
            }
        }
        CellKind::Xor | CellKind::Xnor => {
            for &v in fanin {
                bump(v, ou); // XOR always propagates
            }
        }
        CellKind::And | CellKind::Nand | CellKind::Or | CellKind::Nor => {
            let non_controlling = |w: &NodeId| {
                if matches!(kind, CellKind::And | CellKind::Nand) {
                    p1[w.index()]
                } else {
                    1.0 - p1[w.index()]
                }
            };
            for (i, &v) in fanin.iter().enumerate() {
                let side: f64 = fanin
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, w)| non_controlling(w))
                    .product();
                bump(v, ou * side);
            }
        }
        CellKind::Input | CellKind::Dff => unreachable!("handled by caller"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_gate_probabilities() {
        let mut net = Netlist::new("and2");
        let a = net.add_cell(CellKind::Input);
        let b = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::And);
        let o = net.add_cell(CellKind::Output);
        net.connect(a, g).unwrap();
        net.connect(b, g).unwrap();
        net.connect(g, o).unwrap();
        let cop = Cop::compute(&net).unwrap();
        assert!((cop.p1(g) - 0.25).abs() < 1e-9);
        assert!((cop.observability(g) - 1.0).abs() < 1e-9);
        assert!((cop.observability(a) - 0.5).abs() < 1e-9);
        assert!((cop.detectability(g, true) - 0.75).abs() < 1e-9);
        assert!((cop.detectability(g, false) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn xor_parity_identity() {
        let mut net = Netlist::new("xor3");
        let ins: Vec<_> = (0..3).map(|_| net.add_cell(CellKind::Input)).collect();
        let g = net.add_cell(CellKind::Xor);
        let o = net.add_cell(CellKind::Output);
        for &i in &ins {
            net.connect(i, g).unwrap();
        }
        net.connect(g, o).unwrap();
        let cop = Cop::compute(&net).unwrap();
        assert!((cop.p1(g) - 0.5).abs() < 1e-9);
        // XOR propagates unconditionally.
        assert!((cop.observability(ins[0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deep_and_cascade_probability_decays() {
        let mut net = Netlist::new("cascade");
        let mut cur = net.add_cell(CellKind::Input);
        for _ in 0..10 {
            let side = net.add_cell(CellKind::Input);
            let g = net.add_cell(CellKind::And);
            net.connect(cur, g).unwrap();
            net.connect(side, g).unwrap();
            cur = g;
        }
        let o = net.add_cell(CellKind::Output);
        net.connect(cur, o).unwrap();
        let cop = Cop::compute(&net).unwrap();
        // p1 of the cascade output is 2^-11.
        assert!((cop.p1(cur) - 2f64.powi(-11)).abs() < 1e-12);
    }

    #[test]
    fn cop_matches_simulation_on_fanout_free_logic() {
        // Independence holds exactly without reconvergence, so COP must
        // match exhaustive enumeration on a small tree.
        let mut net = Netlist::new("tree");
        let ins: Vec<_> = (0..4).map(|_| net.add_cell(CellKind::Input)).collect();
        let g1 = net.add_cell(CellKind::And);
        let g2 = net.add_cell(CellKind::Or);
        let g3 = net.add_cell(CellKind::Nand);
        let o = net.add_cell(CellKind::Output);
        net.connect(ins[0], g1).unwrap();
        net.connect(ins[1], g1).unwrap();
        net.connect(ins[2], g2).unwrap();
        net.connect(ins[3], g2).unwrap();
        net.connect(g1, g3).unwrap();
        net.connect(g2, g3).unwrap();
        net.connect(g3, o).unwrap();
        let cop = Cop::compute(&net).unwrap();
        // Exhaustive truth table: g3 = !(a&b & (c|d)).
        let mut ones = 0;
        for bits in 0..16u32 {
            let v = |i: usize| bits & (1 << i) != 0;
            let g1v = v(0) && v(1);
            let g2v = v(2) || v(3);
            if !(g1v && g2v) {
                ones += 1;
            }
        }
        let expected = ones as f64 / 16.0;
        assert!(
            (cop.p1(g3) - expected).abs() < 1e-9,
            "cop {} vs exact {}",
            cop.p1(g3),
            expected
        );
    }

    #[test]
    fn dff_is_observable_and_half_probable() {
        let mut net = Netlist::new("scan");
        let a = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::Not);
        let d = net.add_cell(CellKind::Dff);
        net.connect(a, g).unwrap();
        net.connect(g, d).unwrap();
        let cop = Cop::compute(&net).unwrap();
        assert_eq!(cop.p1(d), 0.5);
        assert!((cop.observability(g) - 1.0).abs() < 1e-9);
        assert!((cop.observability(a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unobservable_node_scores_zero() {
        let mut net = Netlist::new("dangling");
        let a = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::Not);
        net.connect(a, g).unwrap();
        let cop = Cop::compute(&net).unwrap();
        assert_eq!(cop.observability(g), 0.0);
        assert_eq!(cop.detectability(g, false), 0.0);
    }

    #[test]
    fn cop_correlates_with_simulated_observability() {
        use crate::{generate, GeneratorConfig};
        let net = generate(&GeneratorConfig::sized("corr", 11, 800));
        let cop = Cop::compute(&net).unwrap();
        // Rank correlation sanity: the node COP ranks least observable
        // should be far below the median COP observability.
        let mut obs: Vec<f64> = net.nodes().map(|v| cop.observability(v)).collect();
        obs.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let median = obs[obs.len() / 2];
        assert!(obs[0] < median, "no observability spread");
    }
}
