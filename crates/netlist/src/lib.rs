//! Gate-level netlist substrate for the GCN testability stack.
//!
//! The DAC'19 paper operates on industrial scan designs represented as
//! directed graphs: each node is a cell, each edge a wire, and each node
//! carries the attribute vector `[LL, C0, C1, O]` (logic level and SCOAP
//! controllability-0 / controllability-1 / observability). This crate
//! provides everything needed to produce such graphs from scratch:
//!
//! * [`Netlist`] — the cell graph itself, with validation and topological
//!   ordering (DFFs are treated as scan cells, i.e. pseudo primary
//!   inputs/outputs, the standard full-scan DFT assumption).
//! * [`Scoap`] — SCOAP testability measures with incremental observability
//!   refresh after test-point insertion (paper §4).
//! * [`generate`] / [`GeneratorConfig`] — a seeded synthetic design
//!   generator that stands in for the paper's industrial 12nm designs,
//!   including *observability-shadow* structures that create the
//!   difficult-to-observe minority class.
//! * [`mod@format`] — a plain-text ISCAS-89-style reader/writer so designs can
//!   be persisted and inspected.
//! * Test-point insertion primitives ([`Netlist::insert_observation_point`],
//!   [`Netlist::insert_control_point`]).
//!
//! # Examples
//!
//! ```
//! use gcnt_netlist::{CellKind, Netlist};
//!
//! let mut net = Netlist::new("adder_bit");
//! let a = net.add_cell(CellKind::Input);
//! let b = net.add_cell(CellKind::Input);
//! let x = net.add_cell(CellKind::Xor);
//! let o = net.add_cell(CellKind::Output);
//! net.connect(a, x)?;
//! net.connect(b, x)?;
//! net.connect(x, o)?;
//! net.validate()?;
//! assert_eq!(net.node_count(), 4);
//! # Ok::<(), gcnt_netlist::NetlistError>(())
//! ```

mod cell;
mod cop;
mod error;
pub mod format;
mod generator;
mod graph;
mod levels;
mod profile;
mod scoap;

pub use cell::CellKind;
pub use cop::Cop;
pub use error::{NetlistError, Result};
pub use generator::{generate, DesignPreset, GeneratorConfig};
pub use graph::{Netlist, NetlistStats, NodeId};
pub use levels::logic_levels;
pub use profile::{profile, NetlistProfile};
pub use scoap::{Scoap, SCOAP_INF};
