//! Plain-text netlist format, modelled on the ISCAS-89 `.bench` style.
//!
//! ```text
//! # design: demo
//! INPUT(a)
//! INPUT(b)
//! OUTPUT(s)
//! s = XOR(a, b)
//! c = AND(a, b)
//! r = DFF(c)
//! OUTPUT(r)
//! ```
//!
//! * `INPUT(name)` declares a primary input.
//! * `OUTPUT(name)` declares that signal `name` is observed at a primary
//!   output (an explicit `Output` cell is created for it).
//! * `name = GATE(a, b, ...)` declares a gate driven by the named signals.
//!
//! Signals may be used before they are defined; the parser resolves names
//! in a second pass. Writing then re-reading a netlist produces a netlist
//! with identical structure (node numbering may differ; semantics are
//! preserved).

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::{CellKind, Netlist, NetlistError, NodeId, Result};

/// Serialises a netlist to the text format.
///
/// Signals are named `n<index>`; `Output` cells become `OUTPUT(...)`
/// declarations rather than named signals.
///
/// # Examples
///
/// ```
/// use gcnt_netlist::{format, CellKind, Netlist};
///
/// let mut net = Netlist::new("demo");
/// let a = net.add_cell(CellKind::Input);
/// let o = net.add_cell(CellKind::Output);
/// net.connect(a, o)?;
/// let text = format::write(&net);
/// assert!(text.contains("INPUT(n0)"));
/// assert!(text.contains("OUTPUT(n0)"));
/// # Ok::<(), gcnt_netlist::NetlistError>(())
/// ```
pub fn write(net: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# design: {}", net.name());
    let _ = writeln!(
        out,
        "# nodes: {} edges: {}",
        net.node_count(),
        net.edge_count()
    );
    for id in net.nodes() {
        if net.kind(id) == CellKind::Input {
            let _ = writeln!(out, "INPUT(n{})", id.index());
        }
    }
    for id in net.nodes() {
        if net.kind(id) == CellKind::Output {
            let driver = net.fanin(id)[0];
            let _ = writeln!(out, "OUTPUT(n{})", driver.index());
        }
    }
    for id in net.nodes() {
        let kind = net.kind(id);
        if kind == CellKind::Input || kind == CellKind::Output {
            continue;
        }
        let args: Vec<String> = net
            .fanin(id)
            .iter()
            .map(|f| format!("n{}", f.index()))
            .collect();
        let _ = writeln!(
            out,
            "n{} = {}({})",
            id.index(),
            kind.mnemonic().to_ascii_uppercase(),
            args.join(", ")
        );
    }
    out
}

/// Parses the text format into a netlist.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on malformed lines, unknown gate kinds,
/// redefinitions or references to signals that are never defined.
pub fn read(text: &str) -> Result<Netlist> {
    enum Stmt<'a> {
        Input(&'a str),
        Output(&'a str),
        Gate {
            name: &'a str,
            kind: CellKind,
            args: Vec<&'a str>,
        },
    }

    let mut name = "parsed".to_string();
    let mut stmts: Vec<(usize, Stmt)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            if let Some(design) = comment.trim().strip_prefix("design:") {
                name = design.trim().to_string();
            }
            continue;
        }
        if let Some(arg) = parse_call(line, "INPUT") {
            stmts.push((lineno, Stmt::Input(arg)));
        } else if let Some(arg) = parse_call(line, "OUTPUT") {
            stmts.push((lineno, Stmt::Output(arg)));
        } else if let Some((lhs, rhs)) = line.split_once('=') {
            let lhs = lhs.trim();
            let rhs = rhs.trim();
            let open = rhs.find('(').ok_or_else(|| NetlistError::Parse {
                line: lineno,
                message: "expected GATE(args)".to_string(),
            })?;
            if !rhs.ends_with(')') {
                return Err(NetlistError::Parse {
                    line: lineno,
                    message: "missing closing parenthesis".to_string(),
                });
            }
            let kind_str = rhs[..open].trim();
            let kind = CellKind::from_mnemonic(kind_str).ok_or_else(|| NetlistError::Parse {
                line: lineno,
                message: format!("unknown gate kind '{kind_str}'"),
            })?;
            if kind == CellKind::Input || kind == CellKind::Output {
                return Err(NetlistError::Parse {
                    line: lineno,
                    message: format!("'{kind_str}' is not a gate"),
                });
            }
            let args: Vec<&str> = rhs[open + 1..rhs.len() - 1]
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            stmts.push((
                lineno,
                Stmt::Gate {
                    name: lhs,
                    kind,
                    args,
                },
            ));
        } else {
            return Err(NetlistError::Parse {
                line: lineno,
                message: format!("unrecognised statement '{line}'"),
            });
        }
    }

    // Pass 1: create cells for all defined signals.
    let mut net = Netlist::new(name);
    let mut by_name: HashMap<&str, NodeId> = HashMap::new();
    for (lineno, stmt) in &stmts {
        let (sig, kind) = match stmt {
            Stmt::Input(sig) => (*sig, CellKind::Input),
            Stmt::Gate { name, kind, .. } => (*name, *kind),
            Stmt::Output(_) => continue,
        };
        if by_name.contains_key(sig) {
            return Err(NetlistError::Parse {
                line: *lineno,
                message: format!("signal '{sig}' redefined"),
            });
        }
        by_name.insert(sig, net.add_cell(kind));
    }

    // Pass 2: connect.
    for (lineno, stmt) in &stmts {
        match stmt {
            Stmt::Input(_) => {}
            Stmt::Output(sig) => {
                let driver = *by_name.get(sig).ok_or_else(|| NetlistError::Parse {
                    line: *lineno,
                    message: format!("output references undefined signal '{sig}'"),
                })?;
                let po = net.add_cell(CellKind::Output);
                net.connect(driver, po)?;
            }
            Stmt::Gate { name, args, .. } => {
                let id = by_name[*name];
                for arg in args {
                    let src = *by_name.get(arg).ok_or_else(|| NetlistError::Parse {
                        line: *lineno,
                        message: format!("gate references undefined signal '{arg}'"),
                    })?;
                    net.connect(src, id)?;
                }
            }
        }
    }
    Ok(net)
}

fn parse_call<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword)?.trim_start();
    let inner = rest.strip_prefix('(')?.strip_suffix(')')?;
    Some(inner.trim())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GeneratorConfig, Scoap};

    #[test]
    fn parse_simple_design() {
        let text = "
            # design: half_adder
            INPUT(a)
            INPUT(b)
            s = XOR(a, b)
            c = AND(a, b)
            OUTPUT(s)
            OUTPUT(c)
        ";
        let net = read(text).unwrap();
        assert_eq!(net.name(), "half_adder");
        assert_eq!(net.primary_inputs().len(), 2);
        assert_eq!(net.primary_outputs().len(), 2);
        net.validate().unwrap();
    }

    #[test]
    fn signals_may_be_used_before_definition() {
        let text = "
            INPUT(a)
            y = NOT(x)
            x = NOT(a)
            OUTPUT(y)
        ";
        let net = read(text).unwrap();
        net.validate().unwrap();
        assert_eq!(net.node_count(), 4);
    }

    #[test]
    fn dff_round_trip() {
        let text = "
            INPUT(d)
            q = DFF(d)
            OUTPUT(q)
        ";
        let net = read(text).unwrap();
        assert_eq!(net.flip_flops().len(), 1);
        let again = read(&write(&net)).unwrap();
        assert_eq!(again.flip_flops().len(), 1);
    }

    #[test]
    fn unknown_gate_rejected() {
        let err = read("x = FROB(a)").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 1, .. }));
    }

    #[test]
    fn undefined_signal_rejected() {
        let err = read("INPUT(a)\nx = AND(a, ghost)\nOUTPUT(x)").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 2, .. }));
    }

    #[test]
    fn redefinition_rejected() {
        let err = read("INPUT(a)\na = NOT(a)").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 2, .. }));
    }

    #[test]
    fn malformed_line_rejected() {
        assert!(read("this is not a netlist").is_err());
        assert!(read("x = AND(a").is_err());
    }

    #[test]
    fn round_trip_preserves_semantics() {
        let net = generate(&GeneratorConfig {
            gates: 300,
            inputs: 16,
            ..GeneratorConfig::default()
        });
        let text = write(&net);
        let back = read(&text).unwrap();
        back.validate().unwrap();
        assert_eq!(back.node_count(), net.node_count());
        assert_eq!(back.edge_count(), net.edge_count());
        // SCOAP profiles must match even if node numbering shifted.
        let s1 = Scoap::compute(&net).unwrap();
        let s2 = Scoap::compute(&back).unwrap();
        let mut p1: Vec<u32> = s1.co_all().to_vec();
        let mut p2: Vec<u32> = s2.co_all().to_vec();
        p1.sort_unstable();
        p2.sort_unstable();
        assert_eq!(p1, p2);
    }

    #[test]
    fn control_point_design_round_trips() {
        let mut net = Netlist::new("cp");
        let a = net.add_cell(CellKind::Input);
        let b = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::And);
        let o = net.add_cell(CellKind::Output);
        net.connect(a, g).unwrap();
        net.connect(b, g).unwrap();
        net.connect(g, o).unwrap();
        net.insert_control_point(g, 0, CellKind::Or).unwrap();
        net.insert_observation_point(g).unwrap();
        let back = read(&write(&net)).unwrap();
        back.validate().unwrap();
        assert_eq!(back.node_count(), net.node_count());
        assert_eq!(back.edge_count(), net.edge_count());
        assert_eq!(back.primary_outputs().len(), 2);
    }

    #[test]
    fn writer_emits_header() {
        let net = Netlist::new("hdr");
        let text = write(&net);
        assert!(text.starts_with("# design: hdr"));
    }
}
