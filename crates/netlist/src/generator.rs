//! Seeded synthetic design generator.
//!
//! The paper evaluates on four industrial 12nm designs of ~1.4M cells that
//! cannot be redistributed. This generator produces scan-mode gate-level
//! netlists with the structural properties the GCN and the TPI flow
//! actually depend on:
//!
//! * random logic with local structure plus long reconvergent edges,
//! * a realistic gate mix (AND/OR families, inverter chains, XORs, scan
//!   DFFs),
//! * **observability shadows**: regions whose only path to an observable
//!   point runs through an AND gate whose side input is the output of a
//!   wide AND tree over primary inputs. Such a gate is open with
//!   probability `2^-width` under random patterns, so everything behind it
//!   is *difficult to observe* — the positive class of the paper's
//!   classification problem (§3.1).
//!
//! Generation is fully deterministic given the seed.

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::{CellKind, Netlist, NodeId};

/// Configuration for [`generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Design name recorded on the netlist.
    pub name: String,
    /// RNG seed; equal configs produce identical netlists.
    pub seed: u64,
    /// Number of internal cells to create (excluding primary inputs and the
    /// automatically attached primary outputs).
    pub gates: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Fraction of created cells that are scan DFFs.
    pub dff_fraction: f64,
    /// Maximum fanin of AND/OR-family gates (at least 2).
    pub max_fanin: usize,
    /// Fanins are drawn from the most recent `locality` pool nodes...
    pub locality: usize,
    /// ...except with this probability, when they are drawn uniformly from
    /// the whole pool (creates long reconvergent edges).
    pub long_edge_prob: f64,
    /// Number of observability-shadow regions to embed.
    pub shadow_regions: usize,
    /// Number of hidden gates inside each shadow region.
    pub shadow_depth: usize,
    /// Width of the AND tree gating each shadow's exit (larger = rarer to
    /// open = harder to observe).
    pub shadow_gate_width: usize,
    /// Number of high-fanout *hub* nets (enable/reset-like signals whose
    /// fanout grows with design size, as in real SoCs). `0` picks
    /// `max(4, gates / 50_000)` automatically.
    pub hub_count: usize,
    /// Probability that a gate takes one of its inputs from a hub net.
    pub hub_attach_prob: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            name: "synthetic".to_string(),
            seed: 1,
            gates: 2_000,
            inputs: 128,
            // A high scan-cell share and 2-input gates keep the random
            // logic as observable as synthesized logic: the paper's
            // designs have an edge/node ratio of ~1.5 and a
            // difficult-to-observe rate of ~0.6%; these defaults land at
            // ~1.4 and ~1.5%.
            dff_fraction: 0.25,
            max_fanin: 2,
            locality: 256,
            long_edge_prob: 0.08,
            shadow_regions: 6,
            shadow_depth: 12,
            shadow_gate_width: 12,
            hub_count: 0,
            hub_attach_prob: 0.05,
        }
    }
}

impl GeneratorConfig {
    /// A config that produces roughly `target_nodes` cells in total.
    ///
    /// The generator attaches one `Output` cell per dangling signal, so the
    /// internal gate budget is derated to leave room for them.
    pub fn sized(name: impl Into<String>, seed: u64, target_nodes: usize) -> Self {
        let gates = (target_nodes as f64 * 0.78) as usize;
        let inputs = ((target_nodes as f64 * 0.04) as usize).max(8);
        // One shadow region per ~1500 nodes keeps the positive rate near
        // the paper's ~0.6%.
        let shadow_regions = (target_nodes / 1500).max(1);
        GeneratorConfig {
            name: name.into(),
            seed,
            gates,
            inputs,
            shadow_regions,
            ..GeneratorConfig::default()
        }
    }
}

/// The four benchmark designs of the paper's Table 1, as presets.
///
/// Each preset is a distinct seed and slightly different gate mix so that
/// the four generated designs are as independent as four tape-outs from
/// the same library would be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignPreset {
    /// Benchmark design B1.
    B1,
    /// Benchmark design B2.
    B2,
    /// Benchmark design B3.
    B3,
    /// Benchmark design B4.
    B4,
}

impl DesignPreset {
    /// All presets in Table 1 order.
    pub const ALL: [DesignPreset; 4] = [
        DesignPreset::B1,
        DesignPreset::B2,
        DesignPreset::B3,
        DesignPreset::B4,
    ];

    /// The design name, e.g. `"B1"`.
    pub fn name(self) -> &'static str {
        match self {
            DesignPreset::B1 => "B1",
            DesignPreset::B2 => "B2",
            DesignPreset::B3 => "B3",
            DesignPreset::B4 => "B4",
        }
    }

    /// Builds the generator config for this preset at a given node scale.
    ///
    /// The paper's designs have ~1.4M nodes; the default experiment scale
    /// is smaller so the whole suite runs quickly. Table 1's relative
    /// proportions are preserved at any scale.
    pub fn config(self, target_nodes: usize) -> GeneratorConfig {
        let (seed, dff, fanin) = match self {
            DesignPreset::B1 => (0xB1, 0.25, 2),
            DesignPreset::B2 => (0xB2, 0.22, 2),
            DesignPreset::B3 => (0xB3, 0.28, 2),
            DesignPreset::B4 => (0xB4, 0.24, 2),
        };
        let mut cfg = GeneratorConfig::sized(self.name(), seed, target_nodes);
        cfg.dff_fraction = dff;
        cfg.max_fanin = fanin;
        cfg
    }

    /// Target node count of this preset at *paper scale* — the 10^5–10^6
    /// range of the paper's four industrial designs (Table 1 lists up to
    /// ~1.4M cells). This is the scale the partitioned matrix backend
    /// exists for.
    pub fn paper_scale(self) -> usize {
        match self {
            DesignPreset::B1 => 120_000,
            DesignPreset::B2 => 260_000,
            DesignPreset::B3 => 520_000,
            DesignPreset::B4 => 960_000,
        }
    }

    /// [`DesignPreset::config`] at [`DesignPreset::paper_scale`], with a
    /// per-preset *fanout profile*: hub-net density and attach
    /// probability, fanin locality, and long-edge rate differ per design,
    /// mimicking how four real SoCs differ in clock-gating/reset fanout
    /// structure. Larger presets carry denser hub trees — exactly the
    /// skew the fanout-balanced partition planner has to absorb.
    pub fn paper_config(self) -> GeneratorConfig {
        let mut cfg = self.config(self.paper_scale());
        match self {
            DesignPreset::B1 => {
                cfg.hub_attach_prob = 0.04;
            }
            DesignPreset::B2 => {
                cfg.hub_attach_prob = 0.06;
                cfg.locality = 384;
                cfg.long_edge_prob = 0.10;
            }
            DesignPreset::B3 => {
                cfg.hub_count = (cfg.gates / 30_000).max(8);
                cfg.hub_attach_prob = 0.08;
                cfg.locality = 512;
            }
            DesignPreset::B4 => {
                cfg.hub_count = (cfg.gates / 20_000).max(16);
                cfg.hub_attach_prob = 0.10;
                cfg.locality = 768;
                cfg.long_edge_prob = 0.12;
            }
        }
        cfg
    }
}

/// Generates a synthetic scan-mode netlist.
///
/// The result always validates: arities are respected and the
/// combinational logic is acyclic by construction (fanins are only drawn
/// from already-created cells).
///
/// # Examples
///
/// ```
/// use gcnt_netlist::{generate, GeneratorConfig};
///
/// let net = generate(&GeneratorConfig::sized("tiny", 7, 500));
/// net.validate().unwrap();
/// assert!(net.node_count() >= 400);
/// ```
pub fn generate(cfg: &GeneratorConfig) -> Netlist {
    gcnt_obs::global().incr(gcnt_obs::counters::NETLIST_DESIGNS_GENERATED);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut net = Netlist::new(cfg.name.clone());
    // `pool` holds nodes that later gates may use as fanins; shadow-hidden
    // nodes are deliberately kept out of it.
    let mut pool: Vec<NodeId> = (0..cfg.inputs)
        .map(|_| net.add_cell(CellKind::Input))
        .collect();
    let pis: Vec<NodeId> = pool.clone();

    // High-fanout hub nets (enable/reset-style): buffers off a primary
    // input, attached as side inputs throughout the design. Their fanout
    // scales with the gate count, like clock-gating trees in real SoCs.
    let hub_count = if cfg.hub_count == 0 {
        (cfg.gates / 50_000).max(4)
    } else {
        cfg.hub_count
    };
    let hubs: Vec<NodeId> = (0..hub_count)
        .map(|_| {
            let hub = net.add_cell(CellKind::Buf);
            let src = pis[rng.gen_range(0..pis.len())];
            net.connect(src, hub)
                .expect("fresh buffer accepts a driver");
            hub
        })
        .collect();

    let mut created = hubs.len();
    // Space the shadow regions uniformly through the build.
    let shadow_interval = if cfg.shadow_regions > 0 {
        (cfg.gates / (cfg.shadow_regions + 1)).max(1)
    } else {
        usize::MAX
    };
    let mut next_shadow = shadow_interval;
    let mut shadows_left = cfg.shadow_regions;

    while created < cfg.gates {
        if shadows_left > 0 && created >= next_shadow {
            created += build_shadow(cfg, &mut rng, &mut net, &mut pool, &pis);
            shadows_left -= 1;
            next_shadow += shadow_interval;
            continue;
        }
        let kind = pick_gate_kind(cfg, &mut rng);
        let mut nin = pick_fanin_count(kind, cfg, &mut rng);
        let id = net.add_cell(kind);
        // Multi-input gates occasionally take a hub net as a side input.
        if nin >= 2 && !hubs.is_empty() && rng.gen_bool(cfg.hub_attach_prob.clamp(0.0, 1.0)) {
            let hub = hubs[rng.gen_range(0..hubs.len())];
            if net.connect(hub, id).is_ok() {
                nin -= 1;
            }
        }
        connect_random_fanins(&mut rng, &mut net, &pool, id, nin, cfg);
        pool.push(id);
        created += 1;
    }

    // Promote every dangling signal to a primary output so the design has
    // no floating logic.
    let dangling: Vec<NodeId> = net
        .nodes()
        .filter(|&id| net.fanout(id).is_empty() && net.kind(id) != CellKind::Output)
        .collect();
    for id in dangling {
        let po = net.add_cell(CellKind::Output);
        net.connect(id, po)
            .expect("dangling node accepts an output sink");
    }
    net
}

fn pick_gate_kind(cfg: &GeneratorConfig, rng: &mut StdRng) -> CellKind {
    if rng.gen_bool(cfg.dff_fraction.clamp(0.0, 1.0)) {
        return CellKind::Dff;
    }
    // Weighted mix approximating a post-synthesis standard-cell histogram.
    const MIX: [(CellKind, u32); 9] = [
        (CellKind::And, 18),
        (CellKind::Nand, 18),
        (CellKind::Or, 16),
        (CellKind::Nor, 16),
        (CellKind::Not, 14),
        (CellKind::Buf, 6),
        (CellKind::Xor, 6),
        (CellKind::Xnor, 4),
        (CellKind::And, 2),
    ];
    let total: u32 = MIX.iter().map(|&(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for &(kind, w) in &MIX {
        if roll < w {
            return kind;
        }
        roll -= w;
    }
    CellKind::And
}

fn pick_fanin_count(kind: CellKind, cfg: &GeneratorConfig, rng: &mut StdRng) -> usize {
    let (lo, hi) = kind.arity();
    if lo == hi {
        return lo;
    }
    let max = cfg.max_fanin.clamp(2, 6);
    // Skew towards 2-input gates like real libraries.
    let candidates: Vec<usize> = (2..=max).collect();
    let weights: Vec<u32> = candidates.iter().map(|&c| 1 << (max - c)).collect();
    let total: u32 = weights.iter().sum();
    let mut roll = rng.gen_range(0..total);
    for (&c, &w) in candidates.iter().zip(&weights) {
        if roll < w {
            return c;
        }
        roll -= w;
    }
    2
}

fn connect_random_fanins(
    rng: &mut StdRng,
    net: &mut Netlist,
    pool: &[NodeId],
    id: NodeId,
    nin: usize,
    cfg: &GeneratorConfig,
) {
    let mut connected = 0;
    let mut attempts = 0;
    while connected < nin && attempts < nin * 8 {
        attempts += 1;
        let src = if pool.len() > cfg.locality && !rng.gen_bool(cfg.long_edge_prob) {
            pool[pool.len() - 1 - rng.gen_range(0..cfg.locality)]
        } else {
            pool[rng.gen_range(0..pool.len())]
        };
        if net.connect(src, id).is_ok() {
            connected += 1;
        }
    }
    // Fallback: if duplicates starved us (tiny pools), scan linearly.
    if connected < nin {
        let needed = nin - connected;
        let extra: Vec<NodeId> = pool
            .iter()
            .copied()
            .filter(|&src| !net.fanin(id).contains(&src))
            .take(needed)
            .collect();
        for src in extra {
            net.connect(src, id)
                .expect("filtered out duplicates already");
        }
    }
}

/// Builds one observability-shadow region; returns the number of cells
/// created.
///
/// Layout:
///
/// ```text
/// pi .. pi ─▶ [wide AND tree] ─▶ gate ──┐
///                                       ▼
/// pool ─▶ hidden g1 ─▶ ... ─▶ gN ─▶ [AND] ─▶ exit (joins pool)
/// ```
///
/// The hidden gates have exactly one fanout each, so their only path to an
/// observable point runs through the final AND, which is open only when
/// all `shadow_gate_width` primary inputs are 1.
fn build_shadow(
    cfg: &GeneratorConfig,
    rng: &mut StdRng,
    net: &mut Netlist,
    pool: &mut Vec<NodeId>,
    pis: &[NodeId],
) -> usize {
    let mut created = 0;
    // Gating signal: a *chain* of 2-input ANDs over distinct primary
    // inputs. The open probability is 2^-width, but the SCOAP
    // controllability-1 cost grows only linearly (~2 per level), so the
    // shadow is *SCOAP-deceptive*: single-node testability attributes look
    // ordinary, and only the neighbourhood structure reveals the
    // difficulty — the regime where the paper's GCN beats attribute-only
    // models (Table 2).
    let width = cfg.shadow_gate_width.clamp(2, pis.len());
    let leaves: Vec<NodeId> = pis.choose_multiple(rng, width).copied().collect();
    let mut gating = leaves[0];
    for &pi in &leaves[1..] {
        let g = net.add_cell(CellKind::And);
        net.connect(gating, g).expect("chain is fresh");
        net.connect(pi, g).expect("distinct primary input");
        created += 1;
        gating = g;
    }

    // Hidden chain: single-fanout gates fed from the pool.
    const HIDDEN_KINDS: [CellKind; 5] = [
        CellKind::And,
        CellKind::Or,
        CellKind::Nand,
        CellKind::Nor,
        CellKind::Not,
    ];
    let mut prev = pool[rng.gen_range(0..pool.len())];
    for _ in 0..cfg.shadow_depth {
        let kind = *HIDDEN_KINDS.choose(rng).expect("non-empty");
        let g = net.add_cell(kind);
        net.connect(prev, g).expect("chain edge is fresh");
        if kind.arity().0 >= 2 {
            // Side input from the pool, retried on duplicates.
            for _ in 0..8 {
                let side = pool[rng.gen_range(0..pool.len())];
                if net.connect(side, g).is_ok() {
                    break;
                }
            }
            if net.fanin(g).len() < 2 {
                // Degenerate tiny pool: use a PI.
                let side = pis[rng.gen_range(0..pis.len())];
                let _ = net.connect(side, g);
            }
        }
        created += 1;
        prev = g;
    }

    // Exit gate: only escape path for the hidden chain.
    let exit = net.add_cell(CellKind::And);
    net.connect(prev, exit).expect("chain end is fresh");
    net.connect(gating, exit)
        .expect("gating tree root is distinct from chain end");
    created += 1;
    pool.push(exit);
    created
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scoap;

    #[test]
    fn generated_netlist_validates() {
        let net = generate(&GeneratorConfig::default());
        net.validate().unwrap();
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = GeneratorConfig::default();
        let a = generate(&cfg);
        cfg.seed = 99;
        let b = generate(&cfg);
        assert_ne!(a, b);
    }

    #[test]
    fn sized_config_hits_target_roughly() {
        let net = generate(&GeneratorConfig::sized("t", 3, 5_000));
        let n = net.node_count();
        assert!(
            (4_000..=6_500).contains(&n),
            "node count {n} far from target 5000"
        );
    }

    #[test]
    fn no_dangling_nodes() {
        let net = generate(&GeneratorConfig::default());
        for id in net.nodes() {
            if net.kind(id) != CellKind::Output {
                assert!(
                    !net.fanout(id).is_empty(),
                    "node {id} of kind {} is dangling",
                    net.kind(id)
                );
            }
        }
    }

    #[test]
    fn adjacency_is_sparse_like_the_paper() {
        let net = generate(&GeneratorConfig::sized("sparse", 5, 10_000));
        let n = net.node_count() as f64;
        let sparsity = 1.0 - net.edge_count() as f64 / (n * n);
        assert!(sparsity > 0.9995, "sparsity = {sparsity}");
    }

    #[test]
    fn shadows_create_unobservable_scoap_tail() {
        let cfg = GeneratorConfig::default();
        let net = generate(&cfg);
        let scoap = Scoap::compute(&net).unwrap();
        // Some internal nodes should have dramatically worse observability
        // than the median — the difficult-to-observe class.
        let mut cos: Vec<u32> = net
            .nodes()
            .filter(|&v| !net.kind(v).is_pseudo_output())
            .map(|v| scoap.co(v))
            .collect();
        cos.sort_unstable();
        let median = cos[cos.len() / 2];
        let max = *cos.last().unwrap();
        assert!(
            max >= median.saturating_mul(4),
            "max co {max} vs median {median}: no hard tail"
        );
    }

    #[test]
    fn paper_scale_targets_span_1e5_to_1e6() {
        let scales: Vec<usize> = DesignPreset::ALL.iter().map(|p| p.paper_scale()).collect();
        assert!(scales.windows(2).all(|w| w[0] < w[1]), "{scales:?}");
        assert!(scales.iter().all(|&s| (100_000..=1_000_000).contains(&s)));
    }

    #[test]
    fn paper_configs_have_distinct_fanout_profiles() {
        let cfgs: Vec<_> = DesignPreset::ALL.iter().map(|p| p.paper_config()).collect();
        for i in 0..cfgs.len() {
            for j in (i + 1)..cfgs.len() {
                let (a, b) = (&cfgs[i], &cfgs[j]);
                assert!(
                    a.hub_attach_prob != b.hub_attach_prob
                        || a.locality != b.locality
                        || a.long_edge_prob != b.long_edge_prob,
                    "presets {i} and {j} share a fanout profile"
                );
            }
        }
    }

    #[test]
    fn smallest_paper_preset_generates_at_1e5_scale() {
        let cfg = DesignPreset::B1.paper_config();
        let net = generate(&cfg);
        let n = net.node_count();
        let target = DesignPreset::B1.paper_scale();
        assert!(
            n >= target * 4 / 5 && n <= target * 13 / 10,
            "node count {n} far from target {target}"
        );
    }

    #[test]
    fn presets_are_distinct_designs() {
        let nets: Vec<_> = DesignPreset::ALL
            .iter()
            .map(|p| generate(&p.config(2_000)))
            .collect();
        for i in 0..nets.len() {
            for j in (i + 1)..nets.len() {
                assert_ne!(nets[i], nets[j]);
            }
        }
    }

    #[test]
    fn preset_names() {
        assert_eq!(DesignPreset::B1.name(), "B1");
        assert_eq!(DesignPreset::ALL.len(), 4);
    }

    #[test]
    fn dff_fraction_is_respected() {
        let mut cfg = GeneratorConfig::sized("d", 11, 4_000);
        cfg.dff_fraction = 0.2;
        let net = generate(&cfg);
        let dffs = net.flip_flops().len() as f64;
        let gates = cfg.gates as f64;
        let ratio = dffs / gates;
        assert!((0.1..0.3).contains(&ratio), "dff ratio {ratio}");
    }
}
