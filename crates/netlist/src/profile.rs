//! Structural profiling of netlists: gate mix, fanout distribution and
//! logic-depth profile.
//!
//! The generator is tuned against profiles like these (edge/node ratio,
//! hub fanouts, depth) so that synthetic designs match the structural
//! statistics the paper reports for its industrial benchmarks.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{logic_levels, CellKind, Netlist, Result};

/// Structural statistics of a netlist beyond the basic
/// [`crate::NetlistStats`] counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetlistProfile {
    /// Count of cells per kind, in [`CellKind::ALL`] order (zero entries
    /// included).
    pub kind_histogram: Vec<(CellKind, usize)>,
    /// Mean fanin over all cells.
    pub avg_fanin: f64,
    /// Mean fanout over all cells.
    pub avg_fanout: f64,
    /// Largest fanout in the design (hub nets).
    pub max_fanout: usize,
    /// Fanout value at the 50th / 90th / 99th percentile.
    pub fanout_percentiles: [usize; 3],
    /// Maximum logic level.
    pub depth: u32,
    /// Logic level at the 50th / 90th / 99th percentile.
    pub level_percentiles: [u32; 3],
}

/// Computes the structural profile of a netlist.
///
/// # Errors
///
/// Returns a netlist error if the design has a combinational cycle.
///
/// # Examples
///
/// ```
/// use gcnt_netlist::{generate, profile, GeneratorConfig};
///
/// let net = generate(&GeneratorConfig::sized("p", 3, 1_000));
/// let profile = profile(&net)?;
/// assert!(profile.avg_fanin > 1.0);
/// assert!(profile.max_fanout >= profile.fanout_percentiles[2]);
/// # Ok::<(), gcnt_netlist::NetlistError>(())
/// ```
pub fn profile(net: &Netlist) -> Result<NetlistProfile> {
    let n = net.node_count().max(1);
    let mut kind_histogram: Vec<(CellKind, usize)> =
        CellKind::ALL.iter().map(|&k| (k, 0)).collect();
    let mut fanouts: Vec<usize> = Vec::with_capacity(n);
    let mut fanin_total = 0usize;
    for id in net.nodes() {
        let kind = net.kind(id);
        let slot = kind_histogram
            .iter_mut()
            .find(|(k, _)| *k == kind)
            .expect("ALL covers every kind");
        slot.1 += 1;
        fanouts.push(net.fanout(id).len());
        fanin_total += net.fanin(id).len();
    }
    fanouts.sort_unstable();
    let levels = logic_levels(net)?;
    let mut sorted_levels = levels.clone();
    sorted_levels.sort_unstable();
    let pct = |sorted: &[usize], p: usize| {
        if sorted.is_empty() {
            0
        } else {
            sorted[(sorted.len() - 1) * p / 100]
        }
    };
    let pct_u32 = |sorted: &[u32], p: usize| {
        if sorted.is_empty() {
            0
        } else {
            sorted[(sorted.len() - 1) * p / 100]
        }
    };
    Ok(NetlistProfile {
        kind_histogram,
        avg_fanin: fanin_total as f64 / n as f64,
        avg_fanout: fanouts.iter().sum::<usize>() as f64 / n as f64,
        max_fanout: fanouts.last().copied().unwrap_or(0),
        fanout_percentiles: [pct(&fanouts, 50), pct(&fanouts, 90), pct(&fanouts, 99)],
        depth: sorted_levels.last().copied().unwrap_or(0),
        level_percentiles: [
            pct_u32(&sorted_levels, 50),
            pct_u32(&sorted_levels, 90),
            pct_u32(&sorted_levels, 99),
        ],
    })
}

impl fmt::Display for NetlistProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "gate mix:")?;
        for (kind, count) in &self.kind_histogram {
            if *count > 0 {
                writeln!(f, "  {kind:<7} {count}")?;
            }
        }
        writeln!(
            f,
            "fanin avg {:.2}; fanout avg {:.2}, p50/p90/p99 {}/{}/{}, max {}",
            self.avg_fanin,
            self.avg_fanout,
            self.fanout_percentiles[0],
            self.fanout_percentiles[1],
            self.fanout_percentiles[2],
            self.max_fanout
        )?;
        write!(
            f,
            "depth {}, level p50/p90/p99 {}/{}/{}",
            self.depth,
            self.level_percentiles[0],
            self.level_percentiles[1],
            self.level_percentiles[2]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GeneratorConfig};

    #[test]
    fn profile_counts_every_cell() {
        let net = generate(&GeneratorConfig::sized("p", 5, 1_000));
        let p = profile(&net).unwrap();
        let total: usize = p.kind_histogram.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, net.node_count());
    }

    #[test]
    fn averages_match_edge_count() {
        let net = generate(&GeneratorConfig::sized("p", 6, 800));
        let p = profile(&net).unwrap();
        let edges = net.edge_count() as f64;
        let n = net.node_count() as f64;
        assert!((p.avg_fanin - edges / n).abs() < 1e-9);
        assert!((p.avg_fanout - edges / n).abs() < 1e-9);
    }

    #[test]
    fn hub_nets_show_in_max_fanout() {
        let net = generate(&GeneratorConfig::sized("hubs", 7, 5_000));
        let p = profile(&net).unwrap();
        // The generator plants hub nets whose fanout is far above p99.
        assert!(
            p.max_fanout > 5 * p.fanout_percentiles[2].max(1),
            "max {} vs p99 {}",
            p.max_fanout,
            p.fanout_percentiles[2]
        );
    }

    #[test]
    fn percentiles_are_monotone() {
        let net = generate(&GeneratorConfig::sized("mono", 8, 1_500));
        let p = profile(&net).unwrap();
        assert!(p.fanout_percentiles[0] <= p.fanout_percentiles[1]);
        assert!(p.fanout_percentiles[1] <= p.fanout_percentiles[2]);
        assert!(p.level_percentiles[0] <= p.level_percentiles[1]);
        assert!(p.level_percentiles[1] <= p.level_percentiles[2]);
        assert!(p.level_percentiles[2] <= p.depth);
    }

    #[test]
    fn empty_netlist_profile() {
        let net = Netlist::new("empty");
        let p = profile(&net).unwrap();
        assert_eq!(p.max_fanout, 0);
        assert_eq!(p.depth, 0);
    }

    #[test]
    fn display_is_readable() {
        let net = generate(&GeneratorConfig::sized("disp", 9, 400));
        let text = profile(&net).unwrap().to_string();
        assert!(text.contains("gate mix"));
        assert!(text.contains("depth"));
    }
}
