use crate::{Netlist, Result};

/// Computes the logic level `LL` of every node: primary inputs and scan
/// flip-flops are level 0, every other cell is one more than the maximum
/// level of its fanins.
///
/// This is the first component of the paper's node attribute vector
/// `[LL, C0, C1, O]` (§3.1). The result is indexed by `NodeId::index()`.
///
/// # Errors
///
/// Returns [`crate::NetlistError::CombinationalCycle`] if the netlist has a
/// combinational cycle.
///
/// # Examples
///
/// ```
/// use gcnt_netlist::{logic_levels, CellKind, Netlist};
///
/// let mut net = Netlist::new("chain");
/// let a = net.add_cell(CellKind::Input);
/// let g = net.add_cell(CellKind::Not);
/// let o = net.add_cell(CellKind::Output);
/// net.connect(a, g)?;
/// net.connect(g, o)?;
/// let levels = logic_levels(&net)?;
/// assert_eq!(levels, vec![0, 1, 2]);
/// # Ok::<(), gcnt_netlist::NetlistError>(())
/// ```
pub fn logic_levels(net: &Netlist) -> Result<Vec<u32>> {
    let order = net.topo_order()?;
    let mut levels = vec![0u32; net.node_count()];
    for id in order {
        if net.kind(id).is_pseudo_input() {
            levels[id.index()] = 0;
            continue;
        }
        let max_in = net
            .fanin(id)
            .iter()
            .map(|&f| levels[f.index()])
            .max()
            .unwrap_or(0);
        levels[id.index()] = max_in + 1;
    }
    Ok(levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellKind;

    #[test]
    fn diamond_takes_max() {
        // a -> b -> d, a -> c -> e -> d  => level(d) = 3
        let mut net = Netlist::new("diamond");
        let a = net.add_cell(CellKind::Input);
        let b = net.add_cell(CellKind::Buf);
        let c = net.add_cell(CellKind::Buf);
        let e = net.add_cell(CellKind::Buf);
        let d = net.add_cell(CellKind::And);
        net.connect(a, b).unwrap();
        net.connect(a, c).unwrap();
        net.connect(c, e).unwrap();
        net.connect(b, d).unwrap();
        net.connect(e, d).unwrap();
        let levels = logic_levels(&net).unwrap();
        assert_eq!(levels[d.index()], 3);
    }

    #[test]
    fn dff_resets_level() {
        let mut net = Netlist::new("seq");
        let a = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::Not);
        let d = net.add_cell(CellKind::Dff);
        let h = net.add_cell(CellKind::Not);
        net.connect(a, g).unwrap();
        net.connect(g, d).unwrap();
        net.connect(d, h).unwrap();
        let levels = logic_levels(&net).unwrap();
        assert_eq!(levels[g.index()], 1);
        assert_eq!(levels[d.index()], 0);
        assert_eq!(levels[h.index()], 1);
    }

    #[test]
    fn empty_netlist() {
        let net = Netlist::new("empty");
        assert!(logic_levels(&net).unwrap().is_empty());
    }
}
