//! SCOAP testability measures (Goldstein & Thigpen, DAC 1980).
//!
//! SCOAP assigns every signal three integer costs:
//!
//! * `CC0(v)` / `CC1(v)` — *controllability*: how many signal assignments it
//!   takes to force `v` to 0 / 1 from the (pseudo) primary inputs.
//! * `CO(v)` — *observability*: how many assignments it takes to propagate
//!   the value of `v` to a (pseudo) primary output.
//!
//! These three numbers, together with the logic level, are the node
//! attributes `[LL, C0, C1, O]` the paper feeds into the GCN (§3.1). The
//! iterative OP-insertion flow also relies on the *incremental* refresh
//! implemented by [`Scoap::observe`] (§4: "only the attributes of the nodes
//! in the fan-in cone of the new node should be updated based on SCOAP").

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::{CellKind, Netlist, NodeId, Result};

/// Saturation bound for SCOAP costs: effectively "uncontrollable" /
/// "unobservable". Kept far below `u32::MAX` so sums cannot overflow.
pub const SCOAP_INF: u32 = u32::MAX / 8;

/// Scan-chain access cost: controlling a flip-flop output or observing a
/// flip-flop input through the scan chain costs one shift operation.
const SCAN_COST: u32 = 1;

fn sat_add(a: u32, b: u32) -> u32 {
    a.saturating_add(b).min(SCOAP_INF)
}

/// SCOAP measures for every node of a netlist, indexed by
/// [`NodeId::index`].
///
/// # Examples
///
/// ```
/// use gcnt_netlist::{CellKind, Netlist, Scoap};
///
/// let mut net = Netlist::new("and2");
/// let a = net.add_cell(CellKind::Input);
/// let b = net.add_cell(CellKind::Input);
/// let g = net.add_cell(CellKind::And);
/// let o = net.add_cell(CellKind::Output);
/// net.connect(a, g)?;
/// net.connect(b, g)?;
/// net.connect(g, o)?;
/// let scoap = Scoap::compute(&net)?;
/// assert_eq!(scoap.cc1(g), 3); // both inputs must be 1: 1 + 1 + 1
/// assert_eq!(scoap.cc0(g), 2); // one controlling 0 suffices: 1 + 1
/// assert_eq!(scoap.co(g), 0);  // g drives a primary output directly
/// # Ok::<(), gcnt_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scoap {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
}

impl Scoap {
    /// Computes SCOAP measures for the whole netlist: controllability in
    /// topological order, then observability in reverse topological order.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NetlistError::CombinationalCycle`] if the netlist
    /// has a combinational cycle.
    pub fn compute(net: &Netlist) -> Result<Self> {
        gcnt_obs::global().incr(gcnt_obs::counters::NETLIST_SCOAP_COMPUTES);
        let order = net.topo_order()?;
        let n = net.node_count();
        let mut scoap = Scoap {
            cc0: vec![SCOAP_INF; n],
            cc1: vec![SCOAP_INF; n],
            co: vec![SCOAP_INF; n],
        };
        for &id in &order {
            let (c0, c1) = scoap.controllability_of(net, id);
            scoap.cc0[id.index()] = c0;
            scoap.cc1[id.index()] = c1;
        }
        for &id in order.iter().rev() {
            scoap.co[id.index()] = scoap.observability_of(net, id);
        }
        Ok(scoap)
    }

    /// Controllability-to-0 of node `v`.
    pub fn cc0(&self, v: NodeId) -> u32 {
        self.cc0[v.index()]
    }

    /// Controllability-to-1 of node `v`.
    pub fn cc1(&self, v: NodeId) -> u32 {
        self.cc1[v.index()]
    }

    /// Observability of node `v`.
    pub fn co(&self, v: NodeId) -> u32 {
        self.co[v.index()]
    }

    /// All CC0 values, indexed by node index.
    pub fn cc0_all(&self) -> &[u32] {
        &self.cc0
    }

    /// All CC1 values, indexed by node index.
    pub fn cc1_all(&self) -> &[u32] {
        &self.cc1
    }

    /// All CO values, indexed by node index.
    pub fn co_all(&self) -> &[u32] {
        &self.co
    }

    /// Reassembles a `Scoap` from raw measure vectors, e.g. ones loaded
    /// from a checkpoint. No validation is performed — run the lint pass
    /// (`gcnt-lint`'s `NL006 scoap-range`) to vet untrusted values before
    /// feeding them to the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the three vectors differ in length.
    pub fn from_raw_parts(cc0: Vec<u32>, cc1: Vec<u32>, co: Vec<u32>) -> Self {
        assert!(
            cc0.len() == cc1.len() && cc1.len() == co.len(),
            "SCOAP vectors must have equal lengths"
        );
        Scoap { cc0, cc1, co }
    }

    /// Incrementally updates observability after an observation point has
    /// been inserted at `target` (whose new `Output` cell is `op`).
    ///
    /// Appends entries for any nodes added to the netlist since this
    /// `Scoap` was computed (the OP cell itself), sets `CO(target) = 0`,
    /// and propagates the improvement through the fan-in cone with a
    /// worklist — observability can only decrease, so the propagation
    /// terminates. Returns the ids whose `CO` changed.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not an `Output` cell driven by `target`.
    pub fn observe(&mut self, net: &Netlist, target: NodeId, op: NodeId) -> Vec<NodeId> {
        assert_eq!(net.kind(op), CellKind::Output, "op must be an Output cell");
        assert_eq!(net.fanin(op), &[target], "op must be driven by target");
        // Extend the vectors for nodes created after the initial compute.
        while self.cc0.len() < net.node_count() {
            let id = NodeId::from_index(self.cc0.len());
            let (c0, c1) = self.controllability_of(net, id);
            self.cc0.push(c0);
            self.cc1.push(c1);
            self.co.push(SCOAP_INF);
        }
        self.co[op.index()] = 0;
        let mut changed = Vec::new();
        let mut queue = VecDeque::new();
        if self.co[target.index()] > 0 {
            self.co[target.index()] = 0;
            changed.push(target);
            queue.push_back(target);
        }
        while let Some(v) = queue.pop_front() {
            if net.kind(v).is_pseudo_input() {
                continue; // improvement does not cross scan cells / PIs
            }
            for &u in net.fanin(v) {
                let new_co = self.observability_of(net, u);
                if new_co < self.co[u.index()] {
                    self.co[u.index()] = new_co;
                    changed.push(u);
                    queue.push_back(u);
                }
            }
        }
        changed
    }

    /// Computes what [`Scoap::observe`] *would* change — `(node, new_co)`
    /// pairs for the fan-in cone of `target` — without mutating `self` and
    /// without requiring the observation point to exist in the netlist.
    ///
    /// This powers the paper's impact evaluation (Fig. 6): the iterative
    /// flow previews the observability improvement of a hypothetical OP at
    /// every candidate before committing to the highest-impact ones.
    ///
    /// The pairs are sorted by node index, so the result doubles as a
    /// deterministic dirty-row set for incremental inference.
    pub fn preview_observe(&self, net: &Netlist, target: NodeId) -> Vec<(NodeId, u32)> {
        use std::collections::HashMap;
        let mut overlay: HashMap<usize, u32> = HashMap::new();
        if self.co[target.index()] == 0 {
            return Vec::new();
        }
        overlay.insert(target.index(), 0);
        let mut queue = VecDeque::new();
        queue.push_back(target);
        while let Some(v) = queue.pop_front() {
            if net.kind(v).is_pseudo_input() {
                continue;
            }
            for &u in net.fanin(v) {
                let new_co = self.observability_with(net, u, |w| {
                    overlay
                        .get(&w.index())
                        .copied()
                        .unwrap_or(self.co[w.index()])
                });
                let cur = overlay
                    .get(&u.index())
                    .copied()
                    .unwrap_or(self.co[u.index()]);
                if new_co < cur {
                    overlay.insert(u.index(), new_co);
                    queue.push_back(u);
                }
            }
        }
        let mut out: Vec<(NodeId, u32)> = overlay
            .into_iter()
            .map(|(i, c)| (NodeId::from_index(i), c))
            .collect();
        out.sort_unstable_by_key(|&(v, _)| v.index());
        out
    }

    /// Controllability of a single node from its fanins' values.
    fn controllability_of(&self, net: &Netlist, id: NodeId) -> (u32, u32) {
        let fanin = net.fanin(id);
        let c0 = |f: &NodeId| self.cc0[f.index()];
        let c1 = |f: &NodeId| self.cc1[f.index()];
        match net.kind(id) {
            CellKind::Input | CellKind::Dff => (SCAN_COST, SCAN_COST),
            CellKind::Output => {
                // Sink marker: inherits its driver's controllability.
                let f = fanin[0];
                (self.cc0[f.index()], self.cc1[f.index()])
            }
            CellKind::Buf => (sat_add(c0(&fanin[0]), 1), sat_add(c1(&fanin[0]), 1)),
            CellKind::Not => (sat_add(c1(&fanin[0]), 1), sat_add(c0(&fanin[0]), 1)),
            CellKind::And => (
                sat_add(fanin.iter().map(c0).min().unwrap_or(SCOAP_INF), 1),
                sat_add(fanin.iter().map(c1).fold(0, sat_add), 1),
            ),
            CellKind::Nand => (
                sat_add(fanin.iter().map(c1).fold(0, sat_add), 1),
                sat_add(fanin.iter().map(c0).min().unwrap_or(SCOAP_INF), 1),
            ),
            CellKind::Or => (
                sat_add(fanin.iter().map(c0).fold(0, sat_add), 1),
                sat_add(fanin.iter().map(c1).min().unwrap_or(SCOAP_INF), 1),
            ),
            CellKind::Nor => (
                sat_add(fanin.iter().map(c1).min().unwrap_or(SCOAP_INF), 1),
                sat_add(fanin.iter().map(c0).fold(0, sat_add), 1),
            ),
            CellKind::Xor => {
                let (even, odd) = self.parity_costs(fanin);
                (sat_add(even, 1), sat_add(odd, 1))
            }
            CellKind::Xnor => {
                let (even, odd) = self.parity_costs(fanin);
                (sat_add(odd, 1), sat_add(even, 1))
            }
        }
    }

    /// Cheapest cost of driving the fanins to even / odd parity of ones
    /// (dynamic program over the inputs; exact for any arity).
    fn parity_costs(&self, fanin: &[NodeId]) -> (u32, u32) {
        let mut even = 0u32;
        let mut odd = SCOAP_INF;
        for f in fanin {
            let c0 = self.cc0[f.index()];
            let c1 = self.cc1[f.index()];
            let new_even = sat_add(even, c0).min(sat_add(odd, c1));
            let new_odd = sat_add(even, c1).min(sat_add(odd, c0));
            even = new_even;
            odd = new_odd;
        }
        (even, odd)
    }

    /// Observability of node `v` as the minimum over its fanout branches.
    fn observability_of(&self, net: &Netlist, v: NodeId) -> u32 {
        self.observability_with(net, v, |w| self.co[w.index()])
    }

    /// Observability of `v` with fanout observabilities supplied by a
    /// lookup (lets [`Scoap::preview_observe`] overlay hypothetical values).
    fn observability_with(&self, net: &Netlist, v: NodeId, co: impl Fn(NodeId) -> u32) -> u32 {
        if net.kind(v) == CellKind::Output {
            return 0;
        }
        let mut best = SCOAP_INF;
        for &u in net.fanout(v) {
            let branch = match net.kind(u) {
                CellKind::Output => 0,
                CellKind::Dff => SCAN_COST,
                CellKind::Buf | CellKind::Not => sat_add(co(u), 1),
                CellKind::And | CellKind::Nand => {
                    let side: u32 = net
                        .fanin(u)
                        .iter()
                        .filter(|&&w| w != v)
                        .map(|w| self.cc1[w.index()])
                        .fold(0, sat_add);
                    sat_add(sat_add(co(u), side), 1)
                }
                CellKind::Or | CellKind::Nor => {
                    let side: u32 = net
                        .fanin(u)
                        .iter()
                        .filter(|&&w| w != v)
                        .map(|w| self.cc0[w.index()])
                        .fold(0, sat_add);
                    sat_add(sat_add(co(u), side), 1)
                }
                CellKind::Xor | CellKind::Xnor => {
                    let side: u32 = net
                        .fanin(u)
                        .iter()
                        .filter(|&&w| w != v)
                        .map(|w| self.cc0[w.index()].min(self.cc1[w.index()]))
                        .fold(0, sat_add);
                    sat_add(sat_add(co(u), side), 1)
                }
                CellKind::Input => SCOAP_INF, // cannot drive an input; unreachable
            };
            best = best.min(branch);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(kinds: &[CellKind]) -> (Netlist, Vec<NodeId>) {
        let mut net = Netlist::new("chain");
        let mut ids = vec![net.add_cell(CellKind::Input)];
        for &k in kinds {
            let id = net.add_cell(k);
            let prev = *ids.last().unwrap();
            net.connect(prev, id).unwrap();
            ids.push(id);
        }
        (net, ids)
    }

    #[test]
    fn input_base_costs() {
        let (net, ids) = chain(&[CellKind::Output]);
        let s = Scoap::compute(&net).unwrap();
        assert_eq!(s.cc0(ids[0]), 1);
        assert_eq!(s.cc1(ids[0]), 1);
        assert_eq!(s.co(ids[0]), 0);
    }

    #[test]
    fn inverter_swaps_controllability() {
        let (net, ids) = chain(&[CellKind::Not, CellKind::Output]);
        let s = Scoap::compute(&net).unwrap();
        assert_eq!(s.cc0(ids[1]), 2); // needs input at 1
        assert_eq!(s.cc1(ids[1]), 2);
        assert_eq!(s.co(ids[0]), 1); // through the inverter
    }

    #[test]
    fn and_gate_scoap() {
        let mut net = Netlist::new("and3");
        let ins: Vec<_> = (0..3).map(|_| net.add_cell(CellKind::Input)).collect();
        let g = net.add_cell(CellKind::And);
        let o = net.add_cell(CellKind::Output);
        for &i in &ins {
            net.connect(i, g).unwrap();
        }
        net.connect(g, o).unwrap();
        let s = Scoap::compute(&net).unwrap();
        assert_eq!(s.cc1(g), 4); // 1+1+1 inputs + 1
        assert_eq!(s.cc0(g), 2); // min(1,1,1) + 1
                                 // Observing an input requires the two side inputs at 1.
        assert_eq!(s.co(ins[0]), 3); // co(g)=0 + two side inputs at 1 + 1
    }

    #[test]
    fn or_gate_scoap() {
        let mut net = Netlist::new("or2");
        let a = net.add_cell(CellKind::Input);
        let b = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::Or);
        let o = net.add_cell(CellKind::Output);
        net.connect(a, g).unwrap();
        net.connect(b, g).unwrap();
        net.connect(g, o).unwrap();
        let s = Scoap::compute(&net).unwrap();
        assert_eq!(s.cc0(g), 3);
        assert_eq!(s.cc1(g), 2);
        assert_eq!(s.co(a), 2); // side input at 0: cost 1, plus 1
    }

    #[test]
    fn xor_parity_dp_matches_two_input_formula() {
        let mut net = Netlist::new("xor2");
        let a = net.add_cell(CellKind::Input);
        let b = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::Xor);
        let o = net.add_cell(CellKind::Output);
        net.connect(a, g).unwrap();
        net.connect(b, g).unwrap();
        net.connect(g, o).unwrap();
        let s = Scoap::compute(&net).unwrap();
        // CC1 = min(cc0a+cc1b, cc1a+cc0b) + 1 = 2 + 1
        assert_eq!(s.cc1(g), 3);
        assert_eq!(s.cc0(g), 3);
        // Observing a through XOR: side input at min(cc0,cc1) = 1, +1.
        assert_eq!(s.co(a), 2);
    }

    #[test]
    fn nand_nor_duality() {
        let mut net = Netlist::new("nandnor");
        let a = net.add_cell(CellKind::Input);
        let b = net.add_cell(CellKind::Input);
        let nand = net.add_cell(CellKind::Nand);
        let nor = net.add_cell(CellKind::Nor);
        let o1 = net.add_cell(CellKind::Output);
        let o2 = net.add_cell(CellKind::Output);
        net.connect(a, nand).unwrap();
        net.connect(b, nand).unwrap();
        net.connect(a, nor).unwrap();
        net.connect(b, nor).unwrap();
        net.connect(nand, o1).unwrap();
        net.connect(nor, o2).unwrap();
        let s = Scoap::compute(&net).unwrap();
        assert_eq!(s.cc0(nand), 3); // all inputs 1
        assert_eq!(s.cc1(nand), 2); // one input 0
        assert_eq!(s.cc1(nor), 3); // all inputs 0
        assert_eq!(s.cc0(nor), 2); // one input 1
    }

    #[test]
    fn dff_is_scan_accessible() {
        let mut net = Netlist::new("scan");
        let a = net.add_cell(CellKind::Input);
        let d = net.add_cell(CellKind::Dff);
        let g = net.add_cell(CellKind::Not);
        let o = net.add_cell(CellKind::Output);
        net.connect(a, d).unwrap();
        net.connect(d, g).unwrap();
        net.connect(g, o).unwrap();
        let s = Scoap::compute(&net).unwrap();
        assert_eq!(s.cc0(d), 1);
        assert_eq!(s.cc1(d), 1);
        // `a` is observable through the scan chain at cost 1.
        assert_eq!(s.co(a), 1);
    }

    #[test]
    fn unobservable_dangling_node() {
        let mut net = Netlist::new("dangling");
        let a = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::Not);
        net.connect(a, g).unwrap();
        let s = Scoap::compute(&net).unwrap();
        assert_eq!(s.co(g), SCOAP_INF);
    }

    #[test]
    fn deep_and_tree_has_poor_observability() {
        // A chain of AND gates each with a fresh side input: observability
        // of the first signal grows with depth.
        let mut net = Netlist::new("deep");
        let mut cur = net.add_cell(CellKind::Input);
        let first = cur;
        for _ in 0..8 {
            let side = net.add_cell(CellKind::Input);
            let g = net.add_cell(CellKind::And);
            net.connect(cur, g).unwrap();
            net.connect(side, g).unwrap();
            cur = g;
        }
        let o = net.add_cell(CellKind::Output);
        net.connect(cur, o).unwrap();
        let s = Scoap::compute(&net).unwrap();
        assert!(s.co(first) >= 16, "co = {}", s.co(first));
    }

    #[test]
    fn observe_zeroes_target_and_improves_cone() {
        let mut net = Netlist::new("obs");
        let mut cur = net.add_cell(CellKind::Input);
        let first = cur;
        let mut mids = Vec::new();
        for _ in 0..5 {
            let side = net.add_cell(CellKind::Input);
            let g = net.add_cell(CellKind::And);
            net.connect(cur, g).unwrap();
            net.connect(side, g).unwrap();
            mids.push(g);
            cur = g;
        }
        let o = net.add_cell(CellKind::Output);
        net.connect(cur, o).unwrap();
        let mut s = Scoap::compute(&net).unwrap();
        let co_first_before = s.co(first);
        let target = mids[2];
        let op = net.insert_observation_point(target).unwrap();
        let changed = s.observe(&net, target, op);
        assert_eq!(s.co(target), 0);
        assert!(s.co(first) < co_first_before);
        assert!(changed.contains(&target));
        // Incremental result matches a full recompute.
        let full = Scoap::compute(&net).unwrap();
        assert_eq!(s, full);
    }

    #[test]
    fn observe_matches_full_recompute_with_reconvergence() {
        // Diamond with reconvergent fanout to stress the worklist.
        let mut net = Netlist::new("reconv");
        let a = net.add_cell(CellKind::Input);
        let b = net.add_cell(CellKind::Not);
        let c = net.add_cell(CellKind::Not);
        let d = net.add_cell(CellKind::And);
        let e = net.add_cell(CellKind::And);
        let side = net.add_cell(CellKind::Input);
        net.connect(a, b).unwrap();
        net.connect(a, c).unwrap();
        net.connect(b, d).unwrap();
        net.connect(c, d).unwrap();
        net.connect(d, e).unwrap();
        net.connect(side, e).unwrap();
        // No primary output at all: everything unobservable.
        let mut s = Scoap::compute(&net).unwrap();
        assert_eq!(s.co(a), SCOAP_INF);
        let op = net.insert_observation_point(e).unwrap();
        s.observe(&net, e, op);
        let full = Scoap::compute(&net).unwrap();
        assert_eq!(s, full);
        assert!(s.co(a) < SCOAP_INF);
    }

    #[test]
    fn preview_observe_matches_actual_observe() {
        let mut net = Netlist::new("preview");
        let mut cur = net.add_cell(CellKind::Input);
        let mut mids = Vec::new();
        for i in 0..6 {
            let side = net.add_cell(CellKind::Input);
            let g = net.add_cell(if i % 2 == 0 {
                CellKind::And
            } else {
                CellKind::Or
            });
            net.connect(cur, g).unwrap();
            net.connect(side, g).unwrap();
            mids.push(g);
            cur = g;
        }
        let o = net.add_cell(CellKind::Output);
        net.connect(cur, o).unwrap();
        let s = Scoap::compute(&net).unwrap();
        let target = mids[3];
        let mut preview = s.preview_observe(&net, target);
        preview.sort_unstable_by_key(|&(n, _)| n);

        let mut s2 = s.clone();
        let op = net.insert_observation_point(target).unwrap();
        let mut changed = s2.observe(&net, target, op);
        changed.sort_unstable();
        let mut actual: Vec<(NodeId, u32)> = changed.iter().map(|&n| (n, s2.co(n))).collect();
        actual.sort_unstable_by_key(|&(n, _)| n);
        assert_eq!(preview, actual);
    }

    #[test]
    fn preview_observe_on_already_observable_is_empty() {
        let (net, ids) = chain(&[CellKind::Output]);
        let s = Scoap::compute(&net).unwrap();
        assert!(s.preview_observe(&net, ids[0]).is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let (net, _) = chain(&[CellKind::Not, CellKind::Output]);
        let s = Scoap::compute(&net).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: Scoap = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
