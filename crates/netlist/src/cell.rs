use std::fmt;

use serde::{Deserialize, Serialize};

/// The kind of a netlist cell.
///
/// The set matches what a post-synthesis scan netlist contains: primary
/// I/O markers, simple combinational gates, and scan flip-flops. `Output`
/// cells are explicit sink nodes — an observation point inserted by the TPI
/// flow *is* an `Output` cell (a scan cell that makes its single fanin
/// directly observable, paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Primary input (no fanin).
    Input,
    /// Primary output / observation point (exactly one fanin, no fanout).
    Output,
    /// Non-inverting buffer (one fanin).
    Buf,
    /// Inverter (one fanin).
    Not,
    /// AND gate (two or more fanins).
    And,
    /// NAND gate (two or more fanins).
    Nand,
    /// OR gate (two or more fanins).
    Or,
    /// NOR gate (two or more fanins).
    Nor,
    /// XOR gate (two or more fanins, odd parity).
    Xor,
    /// XNOR gate (two or more fanins, even parity).
    Xnor,
    /// Scan D flip-flop (one fanin). Under the full-scan assumption its
    /// output is a pseudo primary input and its input a pseudo primary
    /// output.
    Dff,
}

impl CellKind {
    /// All cell kinds, in a fixed order.
    pub const ALL: [CellKind; 11] = [
        CellKind::Input,
        CellKind::Output,
        CellKind::Buf,
        CellKind::Not,
        CellKind::And,
        CellKind::Nand,
        CellKind::Or,
        CellKind::Nor,
        CellKind::Xor,
        CellKind::Xnor,
        CellKind::Dff,
    ];

    /// Inclusive fanin-arity bounds `(min, max)` for this cell kind.
    /// `usize::MAX` means unbounded.
    pub fn arity(self) -> (usize, usize) {
        match self {
            CellKind::Input => (0, 0),
            CellKind::Output | CellKind::Buf | CellKind::Not | CellKind::Dff => (1, 1),
            CellKind::And
            | CellKind::Nand
            | CellKind::Or
            | CellKind::Nor
            | CellKind::Xor
            | CellKind::Xnor => (2, usize::MAX),
        }
    }

    /// Whether the cell inverts its (reduced) input function.
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            CellKind::Not | CellKind::Nand | CellKind::Nor | CellKind::Xnor
        )
    }

    /// Whether the cell is a sequential element.
    pub fn is_sequential(self) -> bool {
        self == CellKind::Dff
    }

    /// Whether the cell is a combinational source in scan mode (primary
    /// input or scan flip-flop output).
    pub fn is_pseudo_input(self) -> bool {
        matches!(self, CellKind::Input | CellKind::Dff)
    }

    /// Whether the cell's fanin is directly observable in scan mode
    /// (primary output or scan flip-flop input).
    pub fn is_pseudo_output(self) -> bool {
        matches!(self, CellKind::Output | CellKind::Dff)
    }

    /// The controlling input value of the gate, if it has one.
    ///
    /// A controlling value at any input determines the output regardless of
    /// the other inputs (`0` for AND/NAND, `1` for OR/NOR). XOR-family gates
    /// and single-input cells have none.
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            CellKind::And | CellKind::Nand => Some(false),
            CellKind::Or | CellKind::Nor => Some(true),
            _ => None,
        }
    }

    /// Short lowercase mnemonic used by the text format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CellKind::Input => "input",
            CellKind::Output => "output",
            CellKind::Buf => "buf",
            CellKind::Not => "not",
            CellKind::And => "and",
            CellKind::Nand => "nand",
            CellKind::Or => "or",
            CellKind::Nor => "nor",
            CellKind::Xor => "xor",
            CellKind::Xnor => "xnor",
            CellKind::Dff => "dff",
        }
    }

    /// Parses a mnemonic (case-insensitive).
    pub fn from_mnemonic(s: &str) -> Option<CellKind> {
        let lower = s.to_ascii_lowercase();
        CellKind::ALL.into_iter().find(|k| k.mnemonic() == lower)
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_bounds() {
        assert_eq!(CellKind::Input.arity(), (0, 0));
        assert_eq!(CellKind::Not.arity(), (1, 1));
        assert_eq!(CellKind::And.arity().0, 2);
    }

    #[test]
    fn controlling_values() {
        assert_eq!(CellKind::And.controlling_value(), Some(false));
        assert_eq!(CellKind::Nor.controlling_value(), Some(true));
        assert_eq!(CellKind::Xor.controlling_value(), None);
        assert_eq!(CellKind::Buf.controlling_value(), None);
    }

    #[test]
    fn mnemonic_round_trip() {
        for kind in CellKind::ALL {
            assert_eq!(CellKind::from_mnemonic(kind.mnemonic()), Some(kind));
        }
        assert_eq!(CellKind::from_mnemonic("NAND"), Some(CellKind::Nand));
        assert_eq!(CellKind::from_mnemonic("bogus"), None);
    }

    #[test]
    fn pseudo_io_classification() {
        assert!(CellKind::Dff.is_pseudo_input());
        assert!(CellKind::Dff.is_pseudo_output());
        assert!(CellKind::Input.is_pseudo_input());
        assert!(!CellKind::Input.is_pseudo_output());
        assert!(CellKind::Output.is_pseudo_output());
        assert!(!CellKind::And.is_pseudo_input());
    }

    #[test]
    fn inverting_gates() {
        assert!(CellKind::Nand.is_inverting());
        assert!(CellKind::Xnor.is_inverting());
        assert!(!CellKind::And.is_inverting());
        assert!(!CellKind::Buf.is_inverting());
    }

    #[test]
    fn display_matches_mnemonic() {
        assert_eq!(CellKind::Xor.to_string(), "xor");
    }
}
