use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{CellKind, NetlistError, Result};

/// Identifier of a node (cell) inside a [`Netlist`].
///
/// Ids are dense indices assigned in insertion order, which gives every
/// netlist a canonical node numbering shared with the feature/adjacency
/// matrices built on top of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Aggregate statistics of a netlist (Table 1 of the paper reports these
/// for the benchmark designs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Total number of cells.
    pub nodes: usize,
    /// Total number of wires (edges).
    pub edges: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs (including inserted observation points).
    pub outputs: usize,
    /// Number of scan flip-flops.
    pub dffs: usize,
    /// Maximum logic level (combinational depth).
    pub max_level: u32,
}

/// A gate-level netlist represented as a directed graph.
///
/// Nodes are cells, edges are wires from a driver to a sink. Under the
/// full-scan assumption, DFFs act as pseudo primary inputs (their Q output
/// is controllable from the scan chain) and pseudo primary outputs (their D
/// input is observable through the scan chain); the combinational logic
/// between scan elements must be acyclic, which [`Netlist::validate`]
/// checks.
///
/// # Examples
///
/// ```
/// use gcnt_netlist::{CellKind, Netlist};
///
/// let mut net = Netlist::new("demo");
/// let a = net.add_cell(CellKind::Input);
/// let g = net.add_cell(CellKind::Not);
/// let o = net.add_cell(CellKind::Output);
/// net.connect(a, g)?;
/// net.connect(g, o)?;
/// net.validate()?;
/// # Ok::<(), gcnt_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    kinds: Vec<CellKind>,
    fanin: Vec<Vec<NodeId>>,
    fanout: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            kinds: Vec::new(),
            fanin: Vec::new(),
            fanout: Vec::new(),
            edge_count: 0,
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an unconnected cell and returns its id.
    pub fn add_cell(&mut self, kind: CellKind) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.fanin.push(Vec::new());
        self.fanout.push(Vec::new());
        id
    }

    /// Connects `from`'s output to one input of `to`.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::UnknownNode`] if either id is stale.
    /// * [`NetlistError::DuplicateEdge`] if the edge already exists.
    /// * [`NetlistError::OutputHasFanout`] if `from` is an `Output` cell.
    pub fn connect(&mut self, from: NodeId, to: NodeId) -> Result<()> {
        self.check_node(from)?;
        self.check_node(to)?;
        if self.kinds[from.index()] == CellKind::Output {
            return Err(NetlistError::OutputHasFanout(from));
        }
        if self.fanin[to.index()].contains(&from) {
            return Err(NetlistError::DuplicateEdge { from, to });
        }
        self.fanin[to.index()].push(from);
        self.fanout[from.index()].push(to);
        self.edge_count += 1;
        Ok(())
    }

    /// Number of cells.
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Number of wires.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The kind of cell `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn kind(&self, id: NodeId) -> CellKind {
        self.kinds[id.index()]
    }

    /// The fanin (driver) list of `id`, in connection order.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn fanin(&self, id: NodeId) -> &[NodeId] {
        &self.fanin[id.index()]
    }

    /// The fanout (sink) list of `id`, in connection order.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn fanout(&self, id: NodeId) -> &[NodeId] {
        &self.fanout[id.index()]
    }

    /// Iterates over all node ids in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.kinds.len()).map(NodeId::from_index)
    }

    /// Ids of all cells of the given kind.
    pub fn cells_of_kind(&self, kind: CellKind) -> Vec<NodeId> {
        self.nodes().filter(|&n| self.kind(n) == kind).collect()
    }

    /// Primary inputs.
    pub fn primary_inputs(&self) -> Vec<NodeId> {
        self.cells_of_kind(CellKind::Input)
    }

    /// Primary outputs (including observation points inserted later).
    pub fn primary_outputs(&self) -> Vec<NodeId> {
        self.cells_of_kind(CellKind::Output)
    }

    /// Scan flip-flops.
    pub fn flip_flops(&self) -> Vec<NodeId> {
        self.cells_of_kind(CellKind::Dff)
    }

    /// Validates arities and combinational acyclicity.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::BadArity`] if a cell's fanin count is outside the
    ///   bounds of [`CellKind::arity`].
    /// * [`NetlistError::CombinationalCycle`] if the combinational logic
    ///   (with DFFs cut) contains a cycle.
    pub fn validate(&self) -> Result<()> {
        for id in self.nodes() {
            let kind = self.kind(id);
            let (lo, hi) = kind.arity();
            let n = self.fanin(id).len();
            if n < lo || n > hi {
                return Err(NetlistError::BadArity {
                    node: id,
                    kind,
                    fanins: n,
                });
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Returns the cells in a combinational evaluation order: every non-DFF
    /// cell appears after all of its fanins, with DFFs and primary inputs
    /// first (their values are state, not computed).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if no such order exists.
    pub fn topo_order(&self) -> Result<Vec<NodeId>> {
        let n = self.node_count();
        let mut indegree = vec![0u32; n];
        for id in self.nodes() {
            if self.kind(id).is_pseudo_input() {
                continue; // sources: value known before evaluation
            }
            indegree[id.index()] = self.fanin(id).len() as u32;
        }
        let mut queue: VecDeque<NodeId> = self
            .nodes()
            .filter(|&id| indegree[id.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for &sink in self.fanout(id) {
                if self.kind(sink).is_pseudo_input() {
                    continue; // edge into a DFF does not gate evaluation
                }
                let d = &mut indegree[sink.index()];
                *d -= 1;
                if *d == 0 {
                    queue.push_back(sink);
                }
            }
        }
        if order.len() != n {
            let culprit = self
                .nodes()
                .find(|&id| indegree[id.index()] > 0)
                .expect("some node must remain in a cycle");
            return Err(NetlistError::CombinationalCycle { node: culprit });
        }
        Ok(order)
    }

    /// Collects the transitive fanin cone of `root` (excluding `root`
    /// itself), stopping the traversal at pseudo inputs but including them.
    ///
    /// `limit` caps the number of collected nodes; `usize::MAX` disables
    /// the cap. Used by impact evaluation (paper Fig. 6) and by the cone
    /// feature extraction for classical baselines (paper §5).
    pub fn fanin_cone(&self, root: NodeId, limit: usize) -> Vec<NodeId> {
        self.cone(root, limit, true)
    }

    /// Collects the transitive fanout cone of `root` (excluding `root`),
    /// stopping at pseudo outputs but including them.
    pub fn fanout_cone(&self, root: NodeId, limit: usize) -> Vec<NodeId> {
        self.cone(root, limit, false)
    }

    fn cone(&self, root: NodeId, limit: usize, backwards: bool) -> Vec<NodeId> {
        let mut seen = vec![false; self.node_count()];
        seen[root.index()] = true;
        let mut queue = VecDeque::new();
        queue.push_back(root);
        let mut out = Vec::new();
        while let Some(id) = queue.pop_front() {
            let stop = if backwards {
                id != root && self.kind(id).is_pseudo_input()
            } else {
                id != root && self.kind(id).is_pseudo_output()
            };
            if stop {
                continue;
            }
            let next = if backwards {
                self.fanin(id)
            } else {
                self.fanout(id)
            };
            for &nb in next {
                if !seen[nb.index()] {
                    seen[nb.index()] = true;
                    out.push(nb);
                    if out.len() >= limit {
                        return out;
                    }
                    queue.push_back(nb);
                }
            }
        }
        out
    }

    /// Inserts an observation point at `target`: a new `Output` cell `p`
    /// plus the wire `target -> p`. Returns the id of `p`.
    ///
    /// This is the graph-modification primitive of the paper's iterative
    /// flow (§4): the adjacency matrix of the modified graph differs from
    /// the original by exactly the three COO tuples `(w_pr, p, target)`,
    /// `(w_su, target, p)` and `(1, p, p)`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNode`] if `target` is stale, or
    /// [`NetlistError::OutputHasFanout`] if `target` is itself an `Output`
    /// cell.
    pub fn insert_observation_point(&mut self, target: NodeId) -> Result<NodeId> {
        self.check_node(target)?;
        if self.kind(target) == CellKind::Output {
            return Err(NetlistError::OutputHasFanout(target));
        }
        let op = self.add_cell(CellKind::Output);
        self.connect(target, op)?;
        Ok(op)
    }

    /// Inserts a control point on the wire driving `target`'s input number
    /// `pin`: the original driver is routed through a new 2-input gate of
    /// `kind` (usually `And` for control-0 or `Or` for control-1) whose
    /// second input is a fresh primary input. Returns
    /// `(gate, control_input)`.
    ///
    /// The paper's method is "generic and can be applied to both CPs
    /// insertion and OPs insertion" (§2.2); this primitive supports the CP
    /// variant.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::UnknownNode`] if `target` is stale or `pin` is out
    ///   of range.
    /// * [`NetlistError::BadArity`] if `kind` is not a 2-input-capable gate.
    pub fn insert_control_point(
        &mut self,
        target: NodeId,
        pin: usize,
        kind: CellKind,
    ) -> Result<(NodeId, NodeId)> {
        self.check_node(target)?;
        if pin >= self.fanin(target).len() {
            return Err(NetlistError::UnknownNode(target));
        }
        if kind.arity().0 > 2 || kind.arity().1 < 2 {
            return Err(NetlistError::BadArity {
                node: target,
                kind,
                fanins: 2,
            });
        }
        let driver = self.fanin[target.index()][pin];
        let gate = self.add_cell(kind);
        let ctrl = self.add_cell(CellKind::Input);
        // Rewire driver -> target into driver -> gate -> target.
        self.fanin[target.index()][pin] = gate;
        let pos = self.fanout[driver.index()]
            .iter()
            .position(|&s| s == target)
            .expect("fanout list is consistent with fanin list");
        self.fanout[driver.index()][pos] = gate;
        self.fanin[gate.index()].push(driver);
        self.fanout[gate.index()].push(target);
        // The rewired driver -> target edge became two edges
        // (driver -> gate -> target): one more wire in total.
        self.edge_count += 1;
        self.connect(ctrl, gate)?;
        Ok((gate, ctrl))
    }

    /// Computes aggregate statistics. `max_level` requires a valid
    /// topological order.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the netlist is
    /// cyclic.
    pub fn stats(&self) -> Result<NetlistStats> {
        let levels = crate::logic_levels(self)?;
        Ok(NetlistStats {
            nodes: self.node_count(),
            edges: self.edge_count(),
            inputs: self.primary_inputs().len(),
            outputs: self.primary_outputs().len(),
            dffs: self.flip_flops().len(),
            max_level: levels.iter().copied().max().unwrap_or(0),
        })
    }

    fn check_node(&self, id: NodeId) -> Result<()> {
        if id.index() >= self.kinds.len() {
            return Err(NetlistError::UnknownNode(id));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// in0 ─┬─ and ── out
    /// in1 ─┘
    fn and_net() -> (Netlist, NodeId, NodeId, NodeId, NodeId) {
        let mut net = Netlist::new("and2");
        let a = net.add_cell(CellKind::Input);
        let b = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::And);
        let o = net.add_cell(CellKind::Output);
        net.connect(a, g).unwrap();
        net.connect(b, g).unwrap();
        net.connect(g, o).unwrap();
        (net, a, b, g, o)
    }

    #[test]
    fn build_and_query() {
        let (net, a, b, g, o) = and_net();
        assert_eq!(net.node_count(), 4);
        assert_eq!(net.edge_count(), 3);
        assert_eq!(net.fanin(g), &[a, b]);
        assert_eq!(net.fanout(g), &[o]);
        assert_eq!(net.kind(o), CellKind::Output);
        net.validate().unwrap();
    }

    #[test]
    fn duplicate_edge_rejected() {
        let (mut net, a, _, g, _) = and_net();
        assert!(matches!(
            net.connect(a, g),
            Err(NetlistError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn output_cannot_drive() {
        let (mut net, _, _, _, o) = and_net();
        let g2 = net.add_cell(CellKind::Buf);
        assert!(matches!(
            net.connect(o, g2),
            Err(NetlistError::OutputHasFanout(_))
        ));
    }

    #[test]
    fn arity_violation_detected() {
        let mut net = Netlist::new("bad");
        let a = net.add_cell(CellKind::Input);
        let inv = net.add_cell(CellKind::Not);
        let b = net.add_cell(CellKind::Input);
        net.connect(a, inv).unwrap();
        net.connect(b, inv).unwrap();
        assert!(matches!(
            net.validate(),
            Err(NetlistError::BadArity { fanins: 2, .. })
        ));
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut net = Netlist::new("cyc");
        let g1 = net.add_cell(CellKind::Buf);
        let g2 = net.add_cell(CellKind::Buf);
        net.connect(g1, g2).unwrap();
        net.connect(g2, g1).unwrap();
        assert!(matches!(
            net.topo_order(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn dff_breaks_cycles() {
        // g -> dff -> g is a legal sequential loop.
        let mut net = Netlist::new("seq");
        let d = net.add_cell(CellKind::Dff);
        let a = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::And);
        net.connect(d, g).unwrap();
        net.connect(a, g).unwrap();
        net.connect(g, d).unwrap();
        let order = net.topo_order().unwrap();
        assert_eq!(order.len(), 3);
        // The DFF must appear before the gate it feeds.
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(d) < pos(g));
        net.validate().unwrap();
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let (net, a, b, g, o) = and_net();
        let order = net.topo_order().unwrap();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(a) < pos(g));
        assert!(pos(b) < pos(g));
        assert!(pos(g) < pos(o));
    }

    #[test]
    fn fanin_cone_collects_transitively() {
        let (net, a, b, g, o) = and_net();
        let cone = net.fanin_cone(o, usize::MAX);
        assert_eq!(cone.len(), 3);
        assert!(cone.contains(&a) && cone.contains(&b) && cone.contains(&g));
    }

    #[test]
    fn fanin_cone_stops_at_dff() {
        let mut net = Netlist::new("seq");
        let pi = net.add_cell(CellKind::Input);
        let d = net.add_cell(CellKind::Dff);
        let inv = net.add_cell(CellKind::Not);
        let o = net.add_cell(CellKind::Output);
        net.connect(pi, d).unwrap();
        net.connect(d, inv).unwrap();
        net.connect(inv, o).unwrap();
        let cone = net.fanin_cone(o, usize::MAX);
        // The DFF is included but the traversal does not pass through it.
        assert!(cone.contains(&d));
        assert!(!cone.contains(&pi));
    }

    #[test]
    fn fanin_cone_respects_limit() {
        let (net, _, _, _, o) = and_net();
        assert_eq!(net.fanin_cone(o, 1).len(), 1);
    }

    #[test]
    fn fanout_cone_collects_sinks() {
        let (net, a, _, g, o) = and_net();
        let cone = net.fanout_cone(a, usize::MAX);
        assert!(cone.contains(&g) && cone.contains(&o));
    }

    #[test]
    fn observation_point_insertion() {
        let (mut net, _, _, g, _) = and_net();
        let before_nodes = net.node_count();
        let before_edges = net.edge_count();
        let op = net.insert_observation_point(g).unwrap();
        assert_eq!(net.kind(op), CellKind::Output);
        assert_eq!(net.node_count(), before_nodes + 1);
        assert_eq!(net.edge_count(), before_edges + 1);
        assert!(net.fanout(g).contains(&op));
        net.validate().unwrap();
    }

    #[test]
    fn observation_point_on_output_rejected() {
        let (mut net, _, _, _, o) = and_net();
        assert!(net.insert_observation_point(o).is_err());
    }

    #[test]
    fn control_point_insertion_rewires() {
        let (mut net, a, _, g, _) = and_net();
        let (gate, ctrl) = net.insert_control_point(g, 0, CellKind::Or).unwrap();
        assert_eq!(net.kind(gate), CellKind::Or);
        assert_eq!(net.kind(ctrl), CellKind::Input);
        assert_eq!(net.fanin(g)[0], gate);
        assert_eq!(net.fanin(gate), &[a, ctrl]);
        assert!(net.fanout(a).contains(&gate));
        assert!(!net.fanout(a).contains(&g));
        net.validate().unwrap();
    }

    #[test]
    fn stats_reports_counts() {
        let (net, ..) = and_net();
        let stats = net.stats().unwrap();
        assert_eq!(stats.nodes, 4);
        assert_eq!(stats.edges, 3);
        assert_eq!(stats.inputs, 2);
        assert_eq!(stats.outputs, 1);
        assert_eq!(stats.dffs, 0);
        assert_eq!(stats.max_level, 2);
    }

    #[test]
    fn serde_round_trip() {
        let (net, ..) = and_net();
        let json = serde_json::to_string(&net).unwrap();
        let back: Netlist = serde_json::from_str(&json).unwrap();
        assert_eq!(net, back);
    }
}
