//! The analyzer must pass on the repository that ships it — and the
//! sabotage hook must prove the gate can still fail.

use std::path::PathBuf;

use gcnt_analyze::{analyze, registry::RuleId, AnalyzeConfig};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn repo_tree_is_clean() {
    let report = analyze(&AnalyzeConfig::new(repo_root())).expect("gate files parse");
    assert!(
        report.is_clean(),
        "the committed tree must analyze clean:\n{report}"
    );
    // The walk actually covered the workspace, not an empty dir.
    assert!(report.files_scanned > 100, "{} files", report.files_scanned);
}

#[test]
fn sabotage_injection_fails_the_gate() {
    let mut cfg = AnalyzeConfig::new(repo_root());
    cfg.sabotage = true;
    let report = analyze(&cfg).expect("gate files parse");
    assert!(report.has_errors());
    // The planted `.unwrap()` lands on a hot path with a full ratchet,
    // so SA101 must blow its budget and list the synthetic site.
    assert!(report.fired(RuleId::PanicUnwrap));
    assert!(report
        .findings
        .iter()
        .any(|f| f.path.contains("__sabotage")));
}
