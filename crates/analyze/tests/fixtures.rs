//! Planted-violation fixtures: one source snippet per rule family,
//! asserting the exact `SA###` id, severity, and exit semantics each
//! violation produces.

use gcnt_analyze::registry::RuleId;
use gcnt_analyze::report::Severity;
use gcnt_analyze::source::SourceFile;
use gcnt_analyze::{analyze_sources, hygiene, policy, report::AnalyzeReport};

fn run(path: &str, src: &str) -> AnalyzeReport {
    let files = vec![SourceFile::parse(path, src)];
    analyze_sources(&files, "", "").expect("empty gate parses")
}

fn codes(report: &AnalyzeReport) -> Vec<&'static str> {
    report
        .findings
        .iter()
        .map(|f| gcnt_analyze::registry::rule(f.rule).code)
        .collect()
}

#[test]
fn panic_family_fires_all_four_ids() {
    let src = "fn f(v: &[f32], i: usize) {\n\
               a.unwrap();\n\
               b.expect(\"why\");\n\
               unreachable!();\n\
               let x = v[i];\n\
               }\n";
    let report = run("crates/tensor/src/planted.rs", src);
    // With an empty ratchet every family is over budget: each rule
    // reports the planted site AND the budget breach at the ratchet file.
    let codes = codes(&report);
    assert_eq!(
        codes,
        vec!["SA101", "SA101", "SA102", "SA102", "SA103", "SA103", "SA104", "SA104"]
    );
    assert!(report.has_errors());
    assert!(report
        .findings
        .iter()
        .all(|f| f.severity() == Severity::Error));
    // Line numbers point at the planted sites, in rule order.
    let site_lines: Vec<usize> = report
        .findings
        .iter()
        .filter(|f| f.path.ends_with("planted.rs"))
        .map(|f| f.line)
        .collect();
    assert_eq!(site_lines, vec![2, 3, 4, 5]);
}

#[test]
fn panic_family_ignores_cold_paths_and_tests() {
    let src = "fn f() { x.unwrap(); }\n";
    assert!(run("crates/netlist/src/planted.rs", src).is_clean());
    assert!(run("crates/tensor/tests/planted.rs", src).is_clean());
    assert!(run("crates/tensor/benches/planted.rs", src).is_clean());
    let test_mod = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
    assert!(run("crates/tensor/src/planted.rs", test_mod).is_clean());
}

#[test]
fn unsafe_family_needs_safety_comment() {
    let report = run("crates/obs/src/planted.rs", "fn f() { unsafe { g() } }\n");
    assert_eq!(codes(&report), vec!["SA201"]);
    assert_eq!(report.findings[0].severity(), Severity::Error);
    let justified = run(
        "crates/obs/src/planted.rs",
        "// SAFETY: g has no preconditions\nfn f() { unsafe { g() } }\n",
    );
    assert!(justified.is_clean());
}

#[test]
fn atomics_family_seqcst_and_obs_orderings() {
    let seqcst = run(
        "crates/runtime/src/planted.rs",
        "x.store(1, Ordering::SeqCst);\n",
    );
    assert_eq!(codes(&seqcst), vec!["SA301"]);
    let obs_release = run(
        "crates/obs/src/planted.rs",
        "x.store(1, Ordering::Release);\n",
    );
    assert_eq!(codes(&obs_release), vec!["SA302"]);
    let justified = run(
        "crates/obs/src/planted.rs",
        "// ORDERING: publishes the enable flip\nx.store(1, Ordering::Release);\n",
    );
    assert!(justified.is_clean());
}

#[test]
fn cast_family_only_in_tensor_index_math() {
    let bad = run("crates/tensor/src/planted.rs", "let c = i as u32;\n");
    assert_eq!(codes(&bad), vec!["SA401"]);
    // The same cast outside crates/tensor/src is not SA401's business.
    assert!(run("crates/nn/src/planted.rs", "let c = i as u32;\n").is_clean());
    let justified = run(
        "crates/tensor/src/planted.rs",
        "// CAST: i < cols <= u32::MAX\nlet c = i as u32;\n",
    );
    assert!(justified.is_clean());
}

#[test]
fn feature_gate_family_flags_ungated_fault_state() {
    let src = "pub struct FaultPlan {\n    ungated: bool,\n}\n";
    let findings = hygiene::check_hygiene(&[SourceFile::parse("crates/runtime/src/fault.rs", src)]);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, RuleId::FaultInjectUngated);

    let gated = "pub struct FaultPlan {\n\
                 #[cfg(feature = \"fault-inject\")]\n\
                 gated: bool,\n\
                 }\n";
    let clean = hygiene::check_hygiene(&[SourceFile::parse("crates/runtime/src/fault.rs", gated)]);
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn allowlisted_site_is_excluded_and_stale_entries_error() {
    let files = vec![SourceFile::parse(
        "crates/tensor/src/planted.rs",
        "fn f() { x.unwrap(); }\n",
    )];
    let allow =
        "SA101 crates/tensor/src/planted.rs x.unwrap() -- documented-panic API\n".to_string();
    let report = analyze_sources(&files, &allow, "").expect("gate parses");
    assert!(report.is_clean(), "{report}");

    // The same entry with nothing to match is an SA605 error.
    let stale = analyze_sources(&[], &allow, "").expect("gate parses");
    assert_eq!(codes(&stale), vec!["SA605"]);
    assert!(stale.has_errors());
}

#[test]
fn ratchet_over_budget_lists_sites_and_under_budget_warns() {
    let files = vec![SourceFile::parse(
        "crates/serve/src/planted.rs",
        "fn f() { a.unwrap(); }\nfn g() { b.unwrap(); }\n",
    )];
    // Budget 1, actual 2: the rule errors at the ratchet file AND both
    // sites are listed so the offending addition is findable.
    let over = analyze_sources(&files, "", "SA101 1\n").expect("gate parses");
    assert_eq!(codes(&over), vec!["SA101", "SA101", "SA101"]);
    assert!(over.has_errors());
    assert!(over
        .findings
        .iter()
        .any(|f| f.path == gcnt_analyze::RATCHET_FILE));

    // Budget 5, actual 2: tolerated, but the unbanked drop warns.
    let under = analyze_sources(&files, "", "SA101 5\n").expect("gate parses");
    assert_eq!(codes(&under), vec!["SA606"]);
    assert!(!under.has_errors());

    // Budget 2, actual 2: silent.
    let exact = analyze_sources(&files, "", "SA101 2\n").expect("gate parses");
    assert!(exact.is_clean(), "{exact}");
}

#[test]
fn policy_totals_count_even_within_budget() {
    // Within-budget sites are not reported, but they are counted — the
    // ratchet file's numbers come from these totals.
    let files = vec![SourceFile::parse(
        "crates/dft/src/planted.rs",
        "fn f() { a.unwrap(); b.expect(\"x\"); }\n",
    )];
    let mut gate = gcnt_analyze::gate::Gate::parse("", "SA101 9\nSA102 9\n").expect("gate parses");
    let mut totals = std::collections::BTreeMap::new();
    let sites = policy::check_panic_policy(&files, &mut gate, &mut totals);
    assert_eq!(sites.len(), 2);
    assert_eq!(totals[&RuleId::PanicUnwrap], 1);
    assert_eq!(totals[&RuleId::PanicExpect], 1);
    assert!(gate.exceeded(&totals).is_empty());
}
