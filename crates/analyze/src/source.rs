//! The per-file source model the rules run against.
//!
//! A [`SourceFile`] is the scrubbed lines of one `.rs` file plus two
//! line masks the rules consult:
//!
//! * `test_lines` — lines that belong to test context: anything in a
//!   `tests/`, `benches/` or `examples/` directory, plus `#[cfg(test)]`
//!   and `#[test]` item spans. The panic policy only governs non-test
//!   code.
//! * `gated_lines` — item spans under a
//!   `#[cfg(feature = "fault-inject")]` (or its `not(...)` complement):
//!   the feature-gate rule requires fault-injection state to live here.
//!
//! Spans are found by brace tracking over the scrubbed code (so braces
//! inside strings and comments cannot derail it): from an attribute
//! line, skip any further attributes/blank lines, then mark through the
//! end of the next item — the close of its first top-level `{...}`
//! block, or the first `,`/`;` at nesting depth zero for field- and
//! statement-shaped items.

use crate::lexer::{scrub, ScrubbedLine};

/// One analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path with `/` separators, e.g.
    /// `crates/tensor/src/csr.rs`.
    pub path: String,
    /// Scrubbed lines (see [`crate::lexer`]).
    pub lines: Vec<ScrubbedLine>,
    /// Mask: line belongs to test context.
    pub test_lines: Vec<bool>,
    /// Mask: line is under a `fault-inject` feature gate.
    pub gated_lines: Vec<bool>,
}

impl SourceFile {
    /// Scrubs `text` and computes the line masks for `path`.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let lines = scrub(text);
        let n = lines.len();
        let all_test = is_test_path(path);
        let mut file = SourceFile {
            path: path.to_string(),
            test_lines: vec![all_test; n],
            gated_lines: vec![false; n],
            lines,
        };
        for i in 0..n {
            let code = file.lines[i].code.trim().to_string();
            if code.contains("#[cfg(test)]") || code == "#[test]" || code.contains("#[cfg(test)] ")
            {
                file.mark_item_span(i, Mask::Test);
            }
            // The feature name is a string literal, blanked in `code` —
            // match the attribute shape and the captured string.
            if (code.contains("#[cfg(feature") || code.contains("#[cfg(not(feature"))
                && file.lines[i].strings.iter().any(|s| s == "fault-inject")
            {
                file.mark_item_span(i, Mask::Gated);
            }
        }
        file
    }

    /// Whether the line at `i` (0-based) is non-test code.
    pub fn is_code_line(&self, i: usize) -> bool {
        !self.test_lines[i]
    }

    /// Whether any comment on lines `i-back ..= i` contains `marker` —
    /// the justification-comment check (`SAFETY:`, `ORDERING:`,
    /// `CAST:`).
    pub fn justified(&self, i: usize, back: usize, marker: &str) -> bool {
        let lo = i.saturating_sub(back);
        (lo..=i).any(|j| self.lines[j].comment.contains(marker))
    }

    /// Marks the item following the attribute at line `attr` (inclusive
    /// of the attribute itself) in the given mask.
    fn mark_item_span(&mut self, attr: usize, mask: Mask) {
        let end = self.item_end(attr);
        for i in attr..=end.min(self.lines.len() - 1) {
            match mask {
                Mask::Test => self.test_lines[i] = true,
                Mask::Gated => self.gated_lines[i] = true,
            }
        }
    }

    /// Finds the last line of the item that starts at (or after) line
    /// `attr`: tracks `{}`/`()`/`[]` depth through the scrubbed code and
    /// ends at the close of the first brace block, or at a top-level
    /// `,`/`;` reached before any brace opens.
    fn item_end(&self, attr: usize) -> usize {
        let mut depth: i64 = 0; // (), []
        let mut braces: i64 = 0; // {}
        let mut saw_brace = false;
        let mut started = false;
        for (i, line) in self.lines.iter().enumerate().skip(attr) {
            // The item header begins on the first line past the
            // attribute whose code is not itself another attribute.
            // (An item on the attribute's own line is caught by the
            // brace tracking below, which needs no `started`.)
            if i > attr && !started {
                let t = line.code.trim();
                if !t.is_empty() && !t.starts_with('#') {
                    started = true;
                }
            }
            for c in line.code.chars() {
                match c {
                    '(' | '[' => depth += 1,
                    ')' | ']' => depth -= 1,
                    '{' => {
                        braces += 1;
                        saw_brace = true;
                    }
                    '}' => {
                        braces -= 1;
                        if saw_brace && braces == 0 {
                            return i;
                        }
                    }
                    ',' | ';' if started && !saw_brace && depth == 0 => return i,
                    _ => {}
                }
            }
        }
        self.lines.len().saturating_sub(1)
    }
}

enum Mask {
    Test,
    Gated,
}

/// Whether every line of a file at this path is test context.
pub fn is_test_path(path: &str) -> bool {
    let p = path.trim_start_matches("./");
    p.starts_with("tests/")
        || p.starts_with("benches/")
        || p.starts_with("examples/")
        || p.contains("/tests/")
        || p.contains("/benches/")
        || p.contains("/examples/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_span_is_masked() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn inner() { y.unwrap(); }\n\
                   }\n\
                   fn also_live() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!f.test_lines[0]);
        assert!(f.test_lines[1] && f.test_lines[2] && f.test_lines[3] && f.test_lines[4]);
        assert!(!f.test_lines[5]);
    }

    #[test]
    fn test_attribute_masks_one_fn() {
        let src = "#[test]\nfn t() {\n  a();\n}\nfn live() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.test_lines[0] && f.test_lines[1] && f.test_lines[2] && f.test_lines[3]);
        assert!(!f.test_lines[4]);
    }

    #[test]
    fn tests_directory_is_all_test() {
        let f = SourceFile::parse("crates/x/tests/integration.rs", "fn t() { a.unwrap(); }\n");
        assert!(f.test_lines.iter().all(|&t| t));
    }

    #[test]
    fn fault_gate_marks_fields_and_fns() {
        let src = "pub struct FaultPlan {\n\
                       #[cfg(feature = \"fault-inject\")]\n\
                       nan_grad_epoch: Option<usize>,\n\
                       ungated: bool,\n\
                   }\n\
                   #[cfg(feature = \"fault-inject\")]\n\
                   pub fn with_nan_grads(mut self) -> Self {\n\
                       self\n\
                   }\n";
        let f = SourceFile::parse("crates/runtime/src/fault.rs", src);
        assert!(f.gated_lines[1] && f.gated_lines[2]);
        assert!(!f.gated_lines[3]);
        assert!(f.gated_lines[5] && f.gated_lines[6] && f.gated_lines[7] && f.gated_lines[8]);
    }

    #[test]
    fn braces_in_strings_do_not_derail_spans() {
        let src = "#[cfg(test)]\nfn t() {\n  let s = \"}\";\n  b();\n}\nfn live() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.test_lines[3] && f.test_lines[4]);
        assert!(!f.test_lines[5]);
    }

    #[test]
    fn justification_window_looks_back() {
        let src = "// SAFETY: fine here\n\n\nunsafe { x() }\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.justified(3, 3, "SAFETY:"));
        assert!(!f.justified(3, 2, "SAFETY:"));
    }
}
