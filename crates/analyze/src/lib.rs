//! `gcnt-analyze`: zero-dependency source & artifact static analysis.
//!
//! Where `gcnt-lint` checks *runtime data* (netlists, tensors, models,
//! checkpoints), this crate checks the *repository itself*: the source
//! tree and the committed artifacts next to it. It is the rustc-tidy of
//! the workspace — a lightweight line lexer (no `syn`), a registry of
//! `SA###` rules, and a report with stable codes and exit semantics,
//! run as `gcnt analyze` locally and as a required CI job.
//!
//! Rule families (see [`registry`]):
//!
//! * **Panic policy** (`SA101`–`SA104`) — no `unwrap`/`expect`/panicking
//!   macros/unchecked indexing in non-test code of the hot-path crates,
//!   governed by a committed allowlist and a ratchet so counts only go
//!   down ([`gate`]).
//! * **Unsafe hygiene** (`SA201`) — every `unsafe` carries `// SAFETY:`.
//! * **Atomics policy** (`SA301`/`SA302`) — `SeqCst` needs a written
//!   reason anywhere; obs record paths stay `Relaxed`.
//! * **Cast policy** (`SA401`) — no bare truncating `as` casts in
//!   tensor index math.
//! * **Feature-gate hygiene** (`SA501`) — fault-injection state stays
//!   behind its cargo feature.
//! * **Artifact consistency** (`SA601`–`SA604`) — metric golden list,
//!   bench baseline, README rule tables, and changelog numbering match
//!   their sources of truth.
//!
//! The crate deliberately has **no dependencies** — not even the
//! workspace shims — because it vets the tree that builds everything
//! else.

pub mod artifacts;
pub mod gate;
pub mod hygiene;
pub mod lexer;
pub mod policy;
pub mod registry;
pub mod report;
pub mod source;
mod walk;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use artifacts::Artifacts;
use gate::Gate;
use report::{AnalyzeReport, Finding};
use source::SourceFile;

/// Committed allowlist of justified panic-policy sites.
pub const ALLOWLIST_FILE: &str = "ANALYZE_allowlist.txt";
/// Committed ratcheted site counts.
pub const RATCHET_FILE: &str = "ANALYZE_ratchet.txt";

/// How a run is configured.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Repository root to analyze.
    pub root: PathBuf,
    /// Inject a synthetic violating file — CI uses this to prove the
    /// gate actually fails on a planted violation.
    pub sabotage: bool,
    /// Rewrite `ANALYZE_ratchet.txt` with the current (lower) counts
    /// instead of warning about them.
    pub update_ratchet: bool,
}

impl AnalyzeConfig {
    /// Analyze `root` with no sabotage and no ratchet rewrite.
    pub fn new(root: impl Into<PathBuf>) -> AnalyzeConfig {
        AnalyzeConfig {
            root: root.into(),
            sabotage: false,
            update_ratchet: false,
        }
    }
}

/// Why a run could not produce a report at all (findings are not
/// errors — this is for unusable inputs).
#[derive(Debug)]
pub enum AnalyzeError {
    /// A gate file is malformed; the message names the line.
    Gate(String),
    /// The ratchet rewrite failed.
    Io(String),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Gate(msg) => write!(f, "gate file: {msg}"),
            AnalyzeError::Io(msg) => write!(f, "io: {msg}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// The planted violation used by the sabotage self-check. Lives on a
/// hot path so the panic policy must catch it; the path cannot collide
/// with a real file (`__` prefix).
const SABOTAGE_PATH: &str = "crates/tensor/src/__sabotage.rs";
const SABOTAGE_SRC: &str = "fn planted() {\n    let x: Option<u32> = None;\n    x.unwrap();\n}\n";

/// Runs the full analysis over the repo at `cfg.root`.
///
/// # Errors
///
/// Returns [`AnalyzeError`] on malformed gate files or a failed ratchet
/// rewrite; rule violations are findings in the report, not errors.
pub fn analyze(cfg: &AnalyzeConfig) -> Result<AnalyzeReport, AnalyzeError> {
    let raw = walk::rust_sources(&cfg.root);
    let mut files: Vec<SourceFile> = raw
        .iter()
        .map(|(path, text)| SourceFile::parse(path, text))
        .collect();
    if cfg.sabotage {
        files.push(SourceFile::parse(SABOTAGE_PATH, SABOTAGE_SRC));
    }

    let allowlist = walk::read_rel(&cfg.root, ALLOWLIST_FILE).unwrap_or_default();
    let ratchet = walk::read_rel(&cfg.root, RATCHET_FILE).unwrap_or_default();
    let mut gate = Gate::parse(&allowlist, &ratchet).map_err(AnalyzeError::Gate)?;

    let mut totals = BTreeMap::new();
    let sites = policy::check_panic_policy(&files, &mut gate, &mut totals);
    let mut findings = over_budget_sites(sites, &gate, &totals);
    findings.extend(hygiene::check_hygiene(&files));
    findings.extend(artifacts::check_artifacts(&gather_artifacts(
        &cfg.root, &raw,
    )));
    findings.extend(gate.finish(&totals));

    if cfg.update_ratchet {
        let text = Gate::serialize_ratchet(&totals);
        std::fs::write(cfg.root.join(RATCHET_FILE), text)
            .map_err(|e| AnalyzeError::Io(format!("writing {RATCHET_FILE}: {e}")))?;
        // The rewrite makes the ratchet findings moot.
        findings.retain(|f| f.path != RATCHET_FILE);
    }

    Ok(AnalyzeReport::from_findings(findings, files.len()))
}

/// Pulls the artifact texts the `SA6xx` rules compare: `.rs` sources
/// come from the walked tree, the rest are read directly.
fn gather_artifacts(root: &Path, raw: &[(String, String)]) -> Artifacts {
    let source = |path: &str| {
        raw.iter()
            .find(|(p, _)| p == path)
            .map(|(_, text)| text.clone())
    };
    Artifacts {
        catalog: source("crates/obs/src/catalog.rs"),
        metrics_keys: walk::read_rel(root, "tests/golden/metrics_keys.txt"),
        bench_baseline: walk::read_rel(root, "BENCH_baseline.json"),
        bench_sources: raw
            .iter()
            .filter(|(p, _)| p.starts_with("crates/bench/benches/"))
            .cloned()
            .collect(),
        lint_registry: source("crates/lint/src/registry.rs"),
        readme: walk::read_rel(root, "README.md"),
        changes: walk::read_rel(root, "CHANGES.md"),
    }
}

/// Re-exported for tests and the CLI: analyze pre-parsed sources with
/// explicit gate texts and no artifact checks — the policy/hygiene core
/// without filesystem access.
pub fn analyze_sources(
    files: &[SourceFile],
    allowlist: &str,
    ratchet: &str,
) -> Result<AnalyzeReport, AnalyzeError> {
    let mut gate = Gate::parse(allowlist, ratchet).map_err(AnalyzeError::Gate)?;
    let mut totals = BTreeMap::new();
    let sites = policy::check_panic_policy(files, &mut gate, &mut totals);
    let mut findings = over_budget_sites(sites, &gate, &totals);
    findings.extend(hygiene::check_hygiene(files));
    findings.extend(gate.finish(&totals));
    Ok(AnalyzeReport::from_findings(findings, files.len()))
}

/// Keeps only the panic-policy sites of rules that blew their ratchet
/// budget: within-budget legacy debt is tolerated silently, over-budget
/// rules get every site listed so the offending addition is findable.
fn over_budget_sites(
    sites: Vec<Finding>,
    gate: &Gate,
    totals: &BTreeMap<registry::RuleId, usize>,
) -> Vec<Finding> {
    let exceeded = gate.exceeded(totals);
    sites
        .into_iter()
        .filter(|f| exceeded.contains(&f.rule))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sabotage_source_trips_the_policy() {
        let files = vec![SourceFile::parse(SABOTAGE_PATH, SABOTAGE_SRC)];
        let report = analyze_sources(&files, "", "").expect("gate parses");
        assert!(report.has_errors());
        assert!(report.fired(registry::RuleId::PanicUnwrap));
    }

    #[test]
    fn finding_vs_error_distinction() {
        let report = analyze_sources(&[], "", "").expect("gate parses");
        assert!(report.is_clean());
        let err = analyze_sources(&[], "not a valid line\n", "");
        assert!(matches!(err, Err(AnalyzeError::Gate(_))));
    }
}
