//! Findings, severities, and the analysis report.
//!
//! Mirrors the `gcnt-lint` report shape — stable rule codes, severity
//! ordering, `is_clean`/`has_errors`, capped per-rule findings — but is
//! dependency-free, so the JSON encoder is hand-rolled here rather than
//! borrowed from the serde shim.

use std::fmt;

use crate::registry::{rule, RuleId, RULES};

/// How many findings a single rule may report before the rest are
/// folded into a suppressed counter. Keeps a pathological tree (or the
/// sabotage fixture) from drowning the report.
pub const MAX_FINDINGS_PER_RULE: usize = 20;

/// Severity of a finding. Ordered so `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational only; never affects the exit code.
    Info,
    /// Worth fixing; does not fail the gate.
    Warning,
    /// Fails the gate (exit code 1).
    Error,
}

impl Severity {
    /// Stable lowercase name used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired.
    pub rule: RuleId,
    /// Repo-relative path of the offending file or artifact.
    pub path: String,
    /// 1-based line number, or 0 for whole-artifact findings.
    pub line: usize,
    /// Human-readable detail for this site.
    pub message: String,
}

impl Finding {
    /// Builds a finding for `rule` at `path:line`.
    pub fn new(rule: RuleId, path: &str, line: usize, message: impl Into<String>) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message: message.into(),
        }
    }

    /// Severity inherited from the rule's registry entry.
    pub fn severity(&self) -> Severity {
        rule(self.rule).severity
    }
}

/// The full result of one analysis run.
#[derive(Debug, Default)]
pub struct AnalyzeReport {
    /// Findings in rule/path/line order, capped per rule.
    pub findings: Vec<Finding>,
    /// Per-rule counts of findings dropped past the cap, `(code, n)`.
    pub suppressed: Vec<(&'static str, usize)>,
    /// Number of source files analyzed.
    pub files_scanned: usize,
}

impl AnalyzeReport {
    /// Folds raw findings into the report, applying the per-rule cap.
    /// Findings are sorted by rule code, then path, then line.
    pub fn from_findings(mut findings: Vec<Finding>, files_scanned: usize) -> AnalyzeReport {
        findings.sort_by(|a, b| {
            rule(a.rule)
                .code
                .cmp(rule(b.rule).code)
                .then_with(|| a.path.cmp(&b.path))
                .then_with(|| a.line.cmp(&b.line))
        });
        let mut report = AnalyzeReport {
            files_scanned,
            ..AnalyzeReport::default()
        };
        for desc in RULES {
            let total = findings.iter().filter(|f| f.rule == desc.id).count();
            if total > MAX_FINDINGS_PER_RULE {
                report
                    .suppressed
                    .push((desc.code, total - MAX_FINDINGS_PER_RULE));
            }
        }
        for desc in RULES {
            report.findings.extend(
                findings
                    .iter()
                    .filter(|f| f.rule == desc.id)
                    .take(MAX_FINDINGS_PER_RULE)
                    .cloned(),
            );
        }
        report
    }

    /// True when nothing fired at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.suppressed.is_empty()
    }

    /// True when any finding is `Severity::Error` — the gate fails.
    pub fn has_errors(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.severity() == Severity::Error)
    }

    /// Whether a given rule produced at least one finding.
    pub fn fired(&self, id: RuleId) -> bool {
        self.findings.iter().any(|f| f.rule == id)
    }

    /// Number of findings (pre-cap sites are not recoverable; this is
    /// the reported count) for a rule.
    pub fn count(&self, id: RuleId) -> usize {
        self.findings.iter().filter(|f| f.rule == id).count()
    }

    /// Renders the report as a stable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"files_scanned\": {},\n  \"clean\": {},\n  \"errors\": {},\n",
            self.files_scanned,
            self.is_clean(),
            self.has_errors()
        ));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let desc = rule(f.rule);
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"slug\": \"{}\", \"severity\": \"{}\", \
                 \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                desc.code,
                desc.slug,
                f.severity(),
                json_escape(&f.path),
                f.line,
                json_escape(&f.message)
            ));
        }
        if self.findings.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        out.push_str("  \"suppressed\": {");
        for (i, (code, n)) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{code}\": {n}"));
        }
        out.push_str("}\n}\n");
        out
    }
}

impl fmt::Display for AnalyzeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return writeln!(
                f,
                "analyze: clean ({} files scanned, {} rules)",
                self.files_scanned,
                RULES.len()
            );
        }
        for finding in &self.findings {
            let desc = rule(finding.rule);
            if finding.line == 0 {
                writeln!(
                    f,
                    "{}: {} [{} {}] {}",
                    finding.severity(),
                    finding.path,
                    desc.code,
                    desc.slug,
                    finding.message
                )?;
            } else {
                writeln!(
                    f,
                    "{}: {}:{} [{} {}] {}",
                    finding.severity(),
                    finding.path,
                    finding.line,
                    desc.code,
                    desc.slug,
                    finding.message
                )?;
            }
        }
        for (code, n) in &self.suppressed {
            writeln!(f, "note: {n} further {code} findings suppressed")?;
        }
        let errors = self
            .findings
            .iter()
            .filter(|x| x.severity() == Severity::Error)
            .count();
        writeln!(
            f,
            "analyze: {} finding(s), {} error(s), {} files scanned",
            self.findings.len(),
            errors,
            self.files_scanned
        )
    }
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn report_sorts_and_counts() {
        let findings = vec![
            Finding::new(RuleId::PanicExpect, "b.rs", 2, "x"),
            Finding::new(RuleId::PanicUnwrap, "z.rs", 9, "x"),
            Finding::new(RuleId::PanicUnwrap, "a.rs", 1, "x"),
        ];
        let report = AnalyzeReport::from_findings(findings, 3);
        assert_eq!(report.findings[0].path, "a.rs");
        assert_eq!(report.findings[1].path, "z.rs");
        assert_eq!(report.findings[2].path, "b.rs");
        assert!(report.has_errors());
        assert!(!report.is_clean());
        assert_eq!(report.count(RuleId::PanicUnwrap), 2);
        assert!(report.fired(RuleId::PanicExpect));
        assert!(!report.fired(RuleId::PanicMacro));
    }

    #[test]
    fn per_rule_cap_suppresses() {
        let findings: Vec<Finding> = (0..MAX_FINDINGS_PER_RULE + 5)
            .map(|i| Finding::new(RuleId::PanicUnwrap, "a.rs", i + 1, "x"))
            .collect();
        let report = AnalyzeReport::from_findings(findings, 1);
        assert_eq!(report.count(RuleId::PanicUnwrap), MAX_FINDINGS_PER_RULE);
        assert_eq!(report.suppressed, vec![("SA101", 5)]);
        assert!(!report.is_clean());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let findings = vec![Finding::new(
            RuleId::UnsafeMissingSafetyComment,
            "crates/x/src/a.rs",
            7,
            "unsafe with \"quotes\"",
        )];
        let report = AnalyzeReport::from_findings(findings, 1);
        let json = report.to_json();
        assert!(json.contains("\"rule\": \"SA201\""));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"errors\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn warning_only_report_has_no_errors() {
        let findings = vec![Finding::new(
            RuleId::RatchetStale,
            "ANALYZE_ratchet.txt",
            0,
            "x",
        )];
        let report = AnalyzeReport::from_findings(findings, 0);
        assert!(!report.has_errors());
        assert!(!report.is_clean());
    }
}
