//! The ratcheted panic policy (`SA101`–`SA104`) over the hot-path
//! crates.
//!
//! The serving and kernel crates must not abort: a panic in `spmm` or in
//! the admission queue takes the whole process (and every queued flow
//! job) with it, so fallible paths return typed errors instead. The four
//! rules here catch the panicking constructs in non-test code of those
//! crates; justified leftovers live in `ANALYZE_allowlist.txt` and the
//! total is capped by `ANALYZE_ratchet.txt` (see [`crate::gate`]).

use std::collections::BTreeMap;

use crate::gate::Gate;
use crate::registry::RuleId;
use crate::report::Finding;
use crate::source::SourceFile;

/// Crates whose `src/` trees the panic policy governs.
pub const HOT_PATHS: &[&str] = &[
    "crates/tensor/src/",
    "crates/core/src/",
    "crates/serve/src/",
    "crates/dft/src/",
    "crates/runtime/src/",
    "crates/store/src/",
    "crates/net/src/",
];

/// Whether the panic policy applies to this file at all.
pub fn is_hot_path(path: &str) -> bool {
    HOT_PATHS.iter().any(|p| path.starts_with(p))
}

const PANIC_MACROS: &[&str] = &["panic!", "unreachable!", "todo!", "unimplemented!"];

/// Runs `SA101`–`SA104` over `files`. Sites matching an allowlist entry
/// are excluded outright (and mark the entry used); every other site is
/// counted into `totals` and returned. The caller reports the returned
/// sites only for rules whose total exceeds the ratchet — legacy debt
/// within budget is tolerated silently, which is what lets the ratchet
/// start at today's counts and only ever go down.
pub fn check_panic_policy(
    files: &[SourceFile],
    gate: &mut Gate,
    totals: &mut BTreeMap<RuleId, usize>,
) -> Vec<Finding> {
    let mut sites = Vec::new();
    for file in files.iter().filter(|f| is_hot_path(&f.path)) {
        for i in 0..file.lines.len() {
            if !file.is_code_line(i) {
                continue;
            }
            let code = &file.lines[i].code;
            let mut site = |rule: RuleId, what: &str, sites: &mut Vec<Finding>| {
                if gate.allows(rule, &file.path, code) {
                    return;
                }
                *totals.entry(rule).or_insert(0) += 1;
                sites.push(Finding::new(
                    rule,
                    &file.path,
                    i + 1,
                    format!("{what} in non-test hot-path code"),
                ));
            };
            if code.contains(".unwrap()") {
                site(RuleId::PanicUnwrap, "`.unwrap()`", &mut sites);
            }
            if code.contains(".expect(") {
                site(RuleId::PanicExpect, "`.expect(...)`", &mut sites);
            }
            if let Some(mac) = panic_macro(code) {
                site(RuleId::PanicMacro, &format!("`{mac}`"), &mut sites);
            }
            if has_bare_index(code) {
                site(
                    RuleId::PanicIndex,
                    "unchecked `[...]` indexing (use `get`/checked helpers)",
                    &mut sites,
                );
            }
        }
    }
    sites
}

/// Which panicking macro (if any) this code line invokes. The char
/// before the name must not be part of an identifier, so
/// `epanic!`-style names don't match while `core::panic!` does.
fn panic_macro(code: &str) -> Option<&'static str> {
    for mac in PANIC_MACROS {
        for (pos, _) in code.match_indices(mac) {
            let before = code[..pos].chars().next_back();
            if !matches!(before, Some(c) if c.is_alphanumeric() || c == '_') {
                return Some(mac);
            }
        }
    }
    None
}

/// Whether the line contains `expr[...]` indexing: a `[` directly after
/// an identifier char, `)`, or `]`. Attribute lines (`#[...]`) never
/// have that shape after scrubbing, and slice *types* (`&[f32]`), array
/// literals (`[0; 4]`) and macro brackets (`vec![...]`) are preceded by
/// non-identifier chars, so they don't match.
fn has_bare_index(code: &str) -> bool {
    if code.trim_start().starts_with('#') {
        return false;
    }
    let chars: Vec<char> = code.chars().collect();
    chars.windows(2).any(|w| {
        w[1] == '[' && (w[0].is_alphanumeric() || w[0] == '_' || w[0] == ')' || w[0] == ']')
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> (Vec<Finding>, BTreeMap<RuleId, usize>) {
        let files = vec![SourceFile::parse(path, src)];
        let mut gate = Gate::parse("", "").expect("empty gate parses");
        let mut totals = BTreeMap::new();
        let findings = check_panic_policy(&files, &mut gate, &mut totals);
        (findings, totals)
    }

    #[test]
    fn fires_only_on_hot_paths() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(run("crates/tensor/src/a.rs", src).0.len(), 1);
        assert_eq!(run("crates/obs/src/a.rs", src).0.len(), 0);
        assert_eq!(run("crates/tensor/tests/a.rs", src).0.len(), 0);
    }

    #[test]
    fn each_rule_fires_with_its_id() {
        let src = "fn f(v: &[f32], i: usize) {\n\
                   a.unwrap();\n\
                   b.expect(\"msg\");\n\
                   panic!(\"boom\");\n\
                   let x = v[i];\n\
                   }\n";
        let (findings, totals) = run("crates/serve/src/a.rs", src);
        let rules: Vec<RuleId> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&RuleId::PanicUnwrap));
        assert!(rules.contains(&RuleId::PanicExpect));
        assert!(rules.contains(&RuleId::PanicMacro));
        assert!(rules.contains(&RuleId::PanicIndex));
        assert_eq!(totals[&RuleId::PanicUnwrap], 1);
    }

    #[test]
    fn test_code_and_strings_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n\
                   fn live() { log(\".unwrap()\"); }\n";
        let (findings, totals) = run("crates/core/src/a.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(totals.is_empty());
    }

    #[test]
    fn index_shapes() {
        assert!(has_bare_index("let x = v[i];"));
        assert!(has_bare_index("f(a)[0]"));
        assert!(has_bare_index("m[r][c]"));
        assert!(!has_bare_index("#[derive(Debug)]"));
        assert!(!has_bare_index("fn f(v: &[f32]) -> [u8; 4] {"));
        assert!(!has_bare_index("let a = vec![1, 2];"));
        assert!(!has_bare_index("let b = [0u8; 16];"));
    }

    #[test]
    fn macro_name_boundaries() {
        assert_eq!(panic_macro("core::panic!(\"x\")"), Some("panic!"));
        assert_eq!(panic_macro("my_panic!(\"x\")"), None);
        assert_eq!(panic_macro("unreachable!()"), Some("unreachable!"));
        assert_eq!(panic_macro("debug_assert!(x)"), None);
    }

    #[test]
    fn allowlisted_site_is_excluded_from_count_and_sites() {
        let files = vec![SourceFile::parse(
            "crates/tensor/src/a.rs",
            "fn f() { x.unwrap(); }\n",
        )];
        let allow = "SA101 crates/tensor/src/a.rs x.unwrap() -- documented-panic API\n";
        let mut gate = Gate::parse(allow, "").expect("gate parses");
        let mut totals = BTreeMap::new();
        let sites = check_panic_policy(&files, &mut gate, &mut totals);
        assert!(sites.is_empty());
        assert!(totals.is_empty());
        assert!(gate.finish(&totals).is_empty());
    }
}
