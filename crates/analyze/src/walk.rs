//! Deterministic repo walker.
//!
//! Collects the `.rs` files under a root in sorted, repo-relative order
//! (so reports and ratchet counts are stable across machines), skipping
//! build output, VCS metadata, and experiment results.

use std::fs;
use std::path::Path;

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &[".git", "target", "results", "node_modules", ".github"];

/// Returns `(repo_relative_path, contents)` for every `.rs` file under
/// `root`, sorted by path. Unreadable entries are skipped rather than
/// fatal — an analyzer must degrade, not crash, on a weird tree.
pub fn rust_sources(root: &Path) -> Vec<(String, String)> {
    let mut paths = Vec::new();
    collect(root, root, &mut paths);
    paths.sort();
    paths
        .into_iter()
        .filter_map(|rel| {
            let text = fs::read_to_string(root.join(&rel)).ok()?;
            Some((rel, text))
        })
        .collect()
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                collect(root, &path, out);
            }
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

/// Reads one repo-relative text file, `None` if absent or unreadable.
pub fn read_rel(root: &Path, rel: &str) -> Option<String> {
    fs::read_to_string(root.join(rel)).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn repo_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("workspace root exists")
    }

    #[test]
    fn walk_is_sorted_and_skips_target() {
        let files = rust_sources(&repo_root());
        assert!(files.len() > 10);
        let paths: Vec<&str> = files.iter().map(|(p, _)| p.as_str()).collect();
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted);
        assert!(paths.iter().all(|p| !p.starts_with("target/")));
        assert!(paths.contains(&"crates/analyze/src/walk.rs"));
    }
}
