//! A lightweight, line-oriented Rust scrubber.
//!
//! The analyzer's rules are substring checks over *code*, so the one
//! piece of real parsing needed is separating code from the places where
//! rule patterns may legitimately appear as data: comments, string
//! literals (plain, byte, raw), and char literals. [`scrub`] walks a
//! source text once and produces, per line:
//!
//! * `code` — the line with comments removed and literal *contents*
//!   blanked to spaces (the delimiting quotes stay, so `"x"[0]` still
//!   reads as an expression shape);
//! * `comment` — the concatenated text of `//`, `///`, `//!` and
//!   `/* ... */` comments touching the line (where justification markers
//!   like `SAFETY:` live);
//! * `strings` — the contents of string literals that *close* on the
//!   line (used by the artifact rules to read names out of macros).
//!
//! This is deliberately not a full lexer — no token stream, no `syn` —
//! because the workspace builds offline and the rules only need
//! line-level fidelity. The subtle cases it does get right: nested block
//! comments, raw strings with `#` fences, escaped quotes, and the
//! char-literal vs. lifetime ambiguity (`'a'` vs. `'a`).

/// One source line, separated into code, comment text, and string
/// contents.
#[derive(Debug, Default, Clone)]
pub struct ScrubbedLine {
    /// The line's code with comments stripped and literal contents
    /// blanked.
    pub code: String,
    /// Comment text on (or spanning) this line.
    pub comment: String,
    /// Contents of string literals that close on this line.
    pub strings: Vec<String>,
}

enum State {
    Code,
    LineComment,
    /// Nested block comment with its current depth.
    Block(u32),
    /// Inside `"..."` or `b"..."`.
    Str,
    /// Inside a raw string with this many `#` fence characters.
    RawStr(u32),
}

/// Splits `text` into scrubbed lines. Never fails: unterminated literals
/// or comments simply run to end of input, which is the right behaviour
/// for an analyzer that must not crash on the code it critiques.
pub fn scrub(text: &str) -> Vec<ScrubbedLine> {
    let chars: Vec<char> = text.chars().collect();
    let mut lines = vec![ScrubbedLine::default()];
    let mut state = State::Code;
    let mut literal = String::new();
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            match state {
                State::LineComment => state = State::Code,
                State::Str | State::RawStr(_) => literal.push('\n'),
                _ => {}
            }
            lines.push(ScrubbedLine::default());
            i += 1;
            continue;
        }
        let line = lines.last_mut().expect("lines starts non-empty");
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::Block(1);
                    i += 2;
                    continue;
                }
                // Raw (and raw byte) strings: r"..", r#".."#, br".."
                if let Some((fence, skip)) = raw_string_start(&chars, i) {
                    for _ in 0..skip {
                        line.code.push(' ');
                    }
                    line.code.push('"');
                    literal.clear();
                    state = State::RawStr(fence);
                    i += skip + 1;
                    continue;
                }
                if c == '"'
                    || (c == 'b' && chars.get(i + 1) == Some(&'"') && !ident_before(&chars, i))
                {
                    if c == 'b' {
                        line.code.push(' ');
                        i += 1;
                    }
                    line.code.push('"');
                    literal.clear();
                    state = State::Str;
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    if let Some(end) = char_literal_end(&chars, i) {
                        // Blank the whole literal, keeping the quotes.
                        line.code.push('\'');
                        for _ in i + 1..end {
                            line.code.push(' ');
                        }
                        line.code.push('\'');
                        i = end + 1;
                        continue;
                    }
                    // A lifetime: pass through untouched.
                    line.code.push('\'');
                    i += 1;
                    continue;
                }
                line.code.push(c);
                i += 1;
            }
            State::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            State::Block(depth) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::Block(depth + 1);
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    literal.push(c);
                    if let Some(&next) = chars.get(i + 1) {
                        if next != '\n' {
                            literal.push(next);
                            line.code.push(' ');
                        }
                    }
                    line.code.push(' ');
                    i += 2;
                } else if c == '"' {
                    line.code.push('"');
                    line.strings.push(std::mem::take(&mut literal));
                    state = State::Code;
                    i += 1;
                } else {
                    literal.push(c);
                    line.code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(fence) => {
                if c == '"' && closes_raw(&chars, i, fence) {
                    line.code.push('"');
                    for _ in 0..fence {
                        line.code.push(' ');
                    }
                    line.strings.push(std::mem::take(&mut literal));
                    state = State::Code;
                    i += 1 + fence as usize;
                } else {
                    literal.push(c);
                    line.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    lines
}

/// Whether the char before position `i` continues an identifier (so an
/// `r` or `b` there is part of a name, not a literal prefix).
fn ident_before(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Detects `r`/`br` + `#`-fence + `"` at `i`; returns the fence size and
/// how many chars precede the opening quote.
fn raw_string_start(chars: &[char], i: usize) -> Option<(u32, usize)> {
    if ident_before(chars, i) {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut fence = 0u32;
    while chars.get(j) == Some(&'#') {
        fence += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((fence, j - i))
    } else {
        None
    }
}

/// Whether the `"` at `i` is followed by `fence` `#` characters.
fn closes_raw(chars: &[char], i: usize, fence: u32) -> bool {
    (1..=fence as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// If position `i` (a `'`) starts a char literal, returns the index of
/// its closing quote; `None` means it is a lifetime.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char: scan to the closing quote.
            let mut j = i + 2;
            while j < chars.len() {
                match chars[j] {
                    '\'' => return Some(j),
                    '\n' => return None,
                    _ => j += 1,
                }
            }
            None
        }
        Some(&c) if c != '\'' && chars.get(i + 2) == Some(&'\'') => Some(i + 2),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_stripped_and_captured() {
        let lines = scrub("let x = 1; // trailing SAFETY: note\n/* block */ let y;");
        assert_eq!(lines[0].code.trim_end(), "let x = 1;");
        assert!(lines[0].comment.contains("SAFETY:"));
        assert_eq!(lines[1].code.trim(), "let y;");
        assert!(lines[1].comment.contains("block"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let lines = scrub("a /* outer /* inner */ still */ b");
        assert_eq!(lines[0].code.replace(' ', ""), "ab");
    }

    #[test]
    fn string_contents_are_blanked_but_captured() {
        let lines = scrub(r#"call(".unwrap()");"#);
        assert!(!lines[0].code.contains("unwrap"));
        assert_eq!(lines[0].strings, vec![".unwrap()".to_string()]);
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let lines = scrub(r#"let s = "a\"b.unwrap()"; x();"#);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("x();"));
        assert_eq!(lines[0].strings, vec!["a\\\"b.unwrap()".to_string()]);
    }

    #[test]
    fn raw_strings_with_fences() {
        let lines = scrub("let s = r#\"panic!(\"inner\")\"#; y();");
        assert!(!lines[0].code.contains("panic"));
        assert!(lines[0].code.contains("y();"));
        assert_eq!(lines[0].strings, vec!["panic!(\"inner\")".to_string()]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let lines = scrub("let c = '\"'; let s: &'static str = f::<'a>(); let n = '\\n';");
        // The quote char literal must not open a string state.
        assert!(lines[0].code.contains("&'static str"));
        assert!(lines[0].code.contains("<'a>"));
    }

    #[test]
    fn multiline_strings_span_lines() {
        let lines = scrub("let s = \"first\nsecond.unwrap()\";\nlet t = 1;");
        assert!(!lines[1].code.contains("unwrap"));
        assert_eq!(lines[1].strings, vec!["first\nsecond.unwrap()".to_string()]);
        assert_eq!(lines[2].code, "let t = 1;");
    }

    #[test]
    fn byte_strings_are_blanked() {
        let lines = scrub(r#"let b = b"panic!("; z();"#);
        assert!(!lines[0].code.contains("panic"));
        assert!(lines[0].code.contains("z();"));
    }

    #[test]
    fn line_comment_ends_at_newline() {
        let lines = scrub("// SAFETY: only line one\nlet x = 1;");
        assert!(lines[0].comment.contains("SAFETY:"));
        assert_eq!(lines[1].code, "let x = 1;");
        assert!(lines[1].comment.is_empty());
    }
}
