//! The allowlist + ratchet gate for the panic-policy rules.
//!
//! Two committed files govern legacy debt:
//!
//! * `ANALYZE_allowlist.txt` — one line per *permanently justified*
//!   site: `SA102 crates/tensor/src/coo.rs <code substring> -- <why>`
//!   (documented-panic APIs and the like). A matching site is excluded
//!   from analysis entirely; an entry matching no site is itself a
//!   finding (`SA605`), so fixed code must shed its exemption.
//! * `ANALYZE_ratchet.txt` — one line per ratcheted rule:
//!   `SA101 <count>`, the number of non-allowlisted legacy sites. Debt
//!   within the budget is tolerated silently; one site more and the rule
//!   errors (with the sites listed); falling below the budget is a
//!   `SA606` warning prompting `--ratchet-update` to bank the win. CI
//!   diffs the file, so the counts only move down in review.
//!
//! The split matters: the allowlist names the sites that will *never*
//! be fixed (with a written reason each), the ratchet squeezes the ones
//! that eventually should.

use std::collections::BTreeMap;

use crate::registry::{from_code, rule, RuleId};
use crate::report::Finding;

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule this entry exempts.
    pub rule: RuleId,
    /// Repo-relative path the exempted site lives in.
    pub path: String,
    /// Substring of the site's scrubbed code line.
    pub pattern: String,
    /// Required one-line justification.
    pub justification: String,
    /// 1-based line in the allowlist file (for stale reporting).
    pub line: usize,
}

/// The parsed gate files plus usage tracking for staleness.
#[derive(Debug, Default)]
pub struct Gate {
    entries: Vec<AllowEntry>,
    used: Vec<bool>,
    ratchet: BTreeMap<RuleId, usize>,
}

/// Rules whose site totals are ratcheted.
pub const RATCHETED: &[RuleId] = &[
    RuleId::PanicUnwrap,
    RuleId::PanicExpect,
    RuleId::PanicMacro,
    RuleId::PanicIndex,
];

impl Gate {
    /// Parses the two gate files. Either may be empty (missing files are
    /// passed through as `""`). Returns a message naming the bad line on
    /// malformed input.
    pub fn parse(allowlist: &str, ratchet: &str) -> Result<Gate, String> {
        let mut gate = Gate::default();
        for (i, raw) in allowlist.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (head, justification) = line
                .split_once(" -- ")
                .ok_or_else(|| format!("allowlist line {}: missing ` -- <why>`", i + 1))?;
            let mut toks = head.splitn(3, char::is_whitespace);
            let code = toks.next().unwrap_or("");
            let path = toks.next().unwrap_or("");
            let pattern = toks.next().unwrap_or("").trim();
            let rule_id = from_code(code)
                .ok_or_else(|| format!("allowlist line {}: unknown rule `{code}`", i + 1))?;
            if path.is_empty() || pattern.is_empty() || justification.trim().is_empty() {
                return Err(format!(
                    "allowlist line {}: want `RULE path pattern -- why`",
                    i + 1
                ));
            }
            gate.entries.push(AllowEntry {
                rule: rule_id,
                path: path.to_string(),
                pattern: pattern.to_string(),
                justification: justification.trim().to_string(),
                line: i + 1,
            });
        }
        gate.used = vec![false; gate.entries.len()];
        for (i, raw) in ratchet.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (code, count) = line
                .split_once(' ')
                .ok_or_else(|| format!("ratchet line {}: want `RULE count`", i + 1))?;
            let rule_id = from_code(code)
                .ok_or_else(|| format!("ratchet line {}: unknown rule `{code}`", i + 1))?;
            let n: usize = count
                .trim()
                .parse()
                .map_err(|_| format!("ratchet line {}: bad count `{count}`", i + 1))?;
            if !RATCHETED.contains(&rule_id) {
                return Err(format!("ratchet line {}: `{code}` is not ratcheted", i + 1));
            }
            gate.ratchet.insert(rule_id, n);
        }
        Ok(gate)
    }

    /// Whether an entry exempts this site; marks the entry used.
    pub fn allows(&mut self, rule_id: RuleId, path: &str, code_line: &str) -> bool {
        for (i, e) in self.entries.iter().enumerate() {
            if e.rule == rule_id && e.path == path && code_line.contains(&e.pattern) {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    /// The ratcheted rules whose current totals exceed their budgets —
    /// the caller reports those rules' individual sites.
    pub fn exceeded(&self, totals: &BTreeMap<RuleId, usize>) -> Vec<RuleId> {
        RATCHETED
            .iter()
            .copied()
            .filter(|id| {
                totals.get(id).copied().unwrap_or(0) > self.ratchet.get(id).copied().unwrap_or(0)
            })
            .collect()
    }

    /// Closes the gate: reports stale allowlist entries (`SA605`),
    /// ratchet regressions (error, attributed to the ratcheted rule) and
    /// unbanked improvements (`SA606`). `totals` are the per-rule counts
    /// of non-allowlisted sites.
    pub fn finish(&self, totals: &BTreeMap<RuleId, usize>) -> Vec<Finding> {
        let mut findings = Vec::new();
        for (i, e) in self.entries.iter().enumerate() {
            if !self.used[i] {
                findings.push(Finding::new(
                    RuleId::AllowlistStale,
                    "ANALYZE_allowlist.txt",
                    e.line,
                    format!(
                        "entry `{} {} {}` matches no current site — remove it",
                        rule(e.rule).code,
                        e.path,
                        e.pattern
                    ),
                ));
            }
        }
        for &id in RATCHETED {
            let actual = totals.get(&id).copied().unwrap_or(0);
            let budget = self.ratchet.get(&id).copied().unwrap_or(0);
            if actual > budget {
                findings.push(Finding::new(
                    id,
                    "ANALYZE_ratchet.txt",
                    0,
                    format!(
                        "{} sites of {} exceed the ratcheted budget of {}",
                        actual,
                        rule(id).slug,
                        budget
                    ),
                ));
            } else if actual < budget {
                findings.push(Finding::new(
                    RuleId::RatchetStale,
                    "ANALYZE_ratchet.txt",
                    0,
                    format!(
                        "{} is down to {} sites (ratchet says {}) — run `gcnt analyze --ratchet-update`",
                        rule(id).code,
                        actual,
                        budget
                    ),
                ));
            }
        }
        findings
    }

    /// Serializes current totals as the new ratchet file contents.
    pub fn serialize_ratchet(totals: &BTreeMap<RuleId, usize>) -> String {
        let mut out = String::from(
            "# Ratcheted panic-policy site counts (non-allowlisted legacy sites).\n\
             # Regenerate with `gcnt analyze --ratchet-update`; counts may only go down.\n",
        );
        for &id in RATCHETED {
            let n = totals.get(&id).copied().unwrap_or(0);
            out.push_str(&format!("{} {}\n", rule(id).code, n));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALLOW: &str = "# comment\n\
        SA102 crates/tensor/src/coo.rs self.try_push(r, c, v).expect -- documented-panic API\n";
    const RATCHET: &str = "# comment\nSA101 2\n";

    #[test]
    fn parses_and_matches() {
        let mut gate = Gate::parse(ALLOW, RATCHET).unwrap();
        assert!(gate.allows(
            RuleId::PanicExpect,
            "crates/tensor/src/coo.rs",
            "        self.try_push(r, c, v).expect(\"\");"
        ));
        assert!(!gate.allows(
            RuleId::PanicExpect,
            "crates/tensor/src/csr.rs",
            "self.try_push(r, c, v).expect(\"\");"
        ));
        let findings = gate.finish(&BTreeMap::from([(RuleId::PanicUnwrap, 2)]));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn stale_entry_is_reported() {
        let gate = Gate::parse(ALLOW, RATCHET).unwrap();
        let findings = gate.finish(&BTreeMap::from([(RuleId::PanicUnwrap, 2)]));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RuleId::AllowlistStale);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn ratchet_over_and_under() {
        let gate = Gate::parse("", "SA101 3\n").unwrap();
        let over = gate.finish(&BTreeMap::from([(RuleId::PanicUnwrap, 4)]));
        assert!(over.iter().any(|f| f.rule == RuleId::PanicUnwrap));
        assert_eq!(
            gate.exceeded(&BTreeMap::from([(RuleId::PanicUnwrap, 4)])),
            vec![RuleId::PanicUnwrap]
        );
        let under = gate.finish(&BTreeMap::from([(RuleId::PanicUnwrap, 1)]));
        assert!(under.iter().any(|f| f.rule == RuleId::RatchetStale));
        assert!(gate
            .exceeded(&BTreeMap::from([(RuleId::PanicUnwrap, 1)]))
            .is_empty());
    }

    #[test]
    fn malformed_lines_are_named() {
        assert!(Gate::parse("SA101 path pat\n", "").is_err());
        assert!(Gate::parse("SA999 p x -- y\n", "").is_err());
        assert!(Gate::parse("", "SA201 4\n").is_err());
        assert!(Gate::parse("", "SA101 many\n").is_err());
    }

    #[test]
    fn ratchet_serializes_all_ratcheted_rules() {
        let text = Gate::serialize_ratchet(&BTreeMap::from([(RuleId::PanicUnwrap, 7)]));
        assert!(text.contains("SA101 7"));
        assert!(text.contains("SA104 0"));
        // Round-trips through the parser.
        assert!(Gate::parse("", &text).is_ok());
    }
}
