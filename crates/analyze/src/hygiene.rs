//! Source-hygiene rules: `unsafe` comments (`SA201`), atomics orderings
//! (`SA301`/`SA302`), truncating casts (`SA401`), and fault-injection
//! feature gating (`SA501`).
//!
//! Unlike the panic policy these are not ratcheted — they hold
//! repo-wide (tests included, where noted) and a justification comment
//! on or just above the site is the only exemption:
//!
//! * `// SAFETY:` for `unsafe`,
//! * `// ORDERING:` for a non-default atomic ordering,
//! * `// CAST:` for a truncating `as` cast in index math.

use crate::registry::RuleId;
use crate::report::Finding;
use crate::source::SourceFile;

/// How many lines above a site a justification comment may sit.
const JUSTIFY_WINDOW: usize = 3;

/// Runs all hygiene rules over `files`.
pub fn check_hygiene(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        check_unsafe(file, &mut findings);
        check_atomics(file, &mut findings);
        if file.path.starts_with("crates/tensor/src/") {
            check_casts(file, &mut findings);
        }
        if file.path == "crates/runtime/src/fault.rs" {
            check_fault_gating(file, &mut findings);
        }
    }
    findings
}

/// `SA201`: every `unsafe` keyword (blocks, fns, impls — tests
/// included; unsoundness does not care where it lives) needs a
/// `// SAFETY:` comment on the line or within the window above it.
fn check_unsafe(file: &SourceFile, findings: &mut Vec<Finding>) {
    for i in 0..file.lines.len() {
        let code = &file.lines[i].code;
        if has_word(code, "unsafe") && !file.justified(i, JUSTIFY_WINDOW, "SAFETY:") {
            findings.push(Finding::new(
                RuleId::UnsafeMissingSafetyComment,
                &file.path,
                i + 1,
                "`unsafe` without an adjacent `// SAFETY:` comment",
            ));
        }
    }
}

/// `SA301` repo-wide: `SeqCst` is the sledgehammer ordering and nothing
/// in this workspace needs it — any use must say why with
/// `// ORDERING:`. `SA302` in `crates/obs/src`: the metric record paths
/// promise "a plain load and a predictable branch", so Acquire/Release
/// there also need an `// ORDERING:` justification. `SeqCst` inside obs
/// fires only `SA301` (the stronger complaint), not both.
fn check_atomics(file: &SourceFile, findings: &mut Vec<Finding>) {
    let in_obs = file.path.starts_with("crates/obs/src/");
    for i in 0..file.lines.len() {
        let code = &file.lines[i].code;
        let justified = file.justified(i, JUSTIFY_WINDOW, "ORDERING:");
        if code.contains("Ordering::SeqCst") && !justified {
            findings.push(Finding::new(
                RuleId::AtomicsSeqCstUnjustified,
                &file.path,
                i + 1,
                "`Ordering::SeqCst` without an adjacent `// ORDERING:` justification",
            ));
        } else if in_obs
            && !file.test_lines[i]
            && ["Ordering::Acquire", "Ordering::Release", "Ordering::AcqRel"]
                .iter()
                .any(|o| code.contains(o))
            && !justified
        {
            findings.push(Finding::new(
                RuleId::AtomicsObsNotRelaxed,
                &file.path,
                i + 1,
                "non-Relaxed ordering in an obs record path without `// ORDERING:`",
            ));
        }
    }
}

/// `SA401`: bare truncating `as` casts in tensor index math. The CSR/COO
/// structures store `u32` column indices; a silent `as u32` on an
/// unchecked `usize` wraps at 4Gi entries. Use `try_from` on fallible
/// paths, or justify the bound with `// CAST:`.
fn check_casts(file: &SourceFile, findings: &mut Vec<Finding>) {
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
    for i in 0..file.lines.len() {
        if !file.is_code_line(i) {
            continue;
        }
        let code = &file.lines[i].code;
        let truncating = code.split(" as ").skip(1).any(|after| {
            let ty: String = after
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric())
                .collect();
            NARROW.contains(&ty.as_str())
        });
        if truncating && !file.justified(i, JUSTIFY_WINDOW, "CAST:") {
            findings.push(Finding::new(
                RuleId::CastTruncatingIndex,
                &file.path,
                i + 1,
                "bare truncating `as` cast without `// CAST:` (prefer `try_from`)",
            ));
        }
    }
}

/// `SA501`: in `fault.rs`, every `FaultPlan` field and every `with_*`
/// builder must sit under `#[cfg(feature = "fault-inject")]` so
/// production builds carry no fault state at all.
fn check_fault_gating(file: &SourceFile, findings: &mut Vec<Finding>) {
    // Fields: lines inside the `struct FaultPlan { ... }` braces.
    if let Some(start) = file
        .lines
        .iter()
        .position(|l| l.code.contains("struct FaultPlan"))
    {
        let mut depth = 0i64;
        for i in start..file.lines.len() {
            for c in file.lines[i].code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            let t = file.lines[i].code.trim();
            let is_field = i > start && depth > 0 && !t.is_empty() && !t.starts_with('#');
            if is_field && !file.gated_lines[i] {
                findings.push(Finding::new(
                    RuleId::FaultInjectUngated,
                    &file.path,
                    i + 1,
                    "FaultPlan field outside `#[cfg(feature = \"fault-inject\")]`",
                ));
            }
            if i > start && depth == 0 {
                break;
            }
        }
    }
    // Builders: any `fn with_*` must be in a gated span.
    for i in 0..file.lines.len() {
        let code = &file.lines[i].code;
        if code.contains("fn with_") && !file.gated_lines[i] && !file.test_lines[i] {
            findings.push(Finding::new(
                RuleId::FaultInjectUngated,
                &file.path,
                i + 1,
                "fault builder outside `#[cfg(feature = \"fault-inject\")]`",
            ));
        }
    }
}

/// Whether `word` appears in `code` with non-identifier chars (or line
/// edges) on both sides.
fn has_word(code: &str, word: &str) -> bool {
    for (pos, _) in code.match_indices(word) {
        let before = code[..pos].chars().next_back();
        let after = code[pos + word.len()..].chars().next();
        let is_ident = |c: Option<char>| matches!(c, Some(x) if x.is_alphanumeric() || x == '_');
        if !is_ident(before) && !is_ident(after) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        check_hygiene(&[SourceFile::parse(path, src)])
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = run("crates/x/src/a.rs", "fn f() { unsafe { g() } }\n");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, RuleId::UnsafeMissingSafetyComment);
        let good = run(
            "crates/x/src/a.rs",
            "// SAFETY: g has no preconditions\nfn f() { unsafe { g() } }\n",
        );
        assert!(good.is_empty());
        // Fires in test files too.
        assert_eq!(run("crates/x/tests/t.rs", "unsafe { g() }\n").len(), 1);
        // `unsafe` as part of a longer identifier does not fire.
        assert!(run("crates/x/src/a.rs", "fn not_unsafe_fn() {}\n").is_empty());
    }

    #[test]
    fn seqcst_needs_ordering_comment() {
        let bad = run("crates/x/src/a.rs", "x.store(1, Ordering::SeqCst);\n");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, RuleId::AtomicsSeqCstUnjustified);
        let good = run(
            "crates/x/src/a.rs",
            "// ORDERING: total order needed across three flags\nx.store(1, Ordering::SeqCst);\n",
        );
        assert!(good.is_empty());
    }

    #[test]
    fn obs_must_stay_relaxed() {
        let bad = run("crates/obs/src/a.rs", "x.store(1, Ordering::Release);\n");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, RuleId::AtomicsObsNotRelaxed);
        // Outside obs, Release is fine.
        assert!(run("crates/serve/src/a.rs", "x.store(1, Ordering::Release);\n").is_empty());
        // Relaxed in obs is the expected case.
        assert!(run("crates/obs/src/a.rs", "x.load(Ordering::Relaxed);\n").is_empty());
        // SeqCst in obs fires SA301 only, not both.
        let seq = run("crates/obs/src/a.rs", "x.store(1, Ordering::SeqCst);\n");
        assert_eq!(seq.len(), 1);
        assert_eq!(seq[0].rule, RuleId::AtomicsSeqCstUnjustified);
    }

    #[test]
    fn truncating_casts_in_tensor() {
        let bad = run("crates/tensor/src/a.rs", "let c32 = c as u32;\n");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, RuleId::CastTruncatingIndex);
        let good = run(
            "crates/tensor/src/a.rs",
            "// CAST: c < ncols <= u32::MAX, checked above\nlet c32 = c as u32;\n",
        );
        assert!(good.is_empty());
        // Widening casts and f32 are not truncating index math.
        assert!(run(
            "crates/tensor/src/a.rs",
            "let w = x as u64; let f = n as f32;\n"
        )
        .is_empty());
        // Other crates are out of scope for SA401.
        assert!(run("crates/serve/src/a.rs", "let c32 = c as u32;\n").is_empty());
    }

    #[test]
    fn fault_plan_fields_must_be_gated() {
        let src = "pub struct FaultPlan {\n\
                       #[cfg(feature = \"fault-inject\")]\n\
                       gated: bool,\n\
                       ungated: bool,\n\
                   }\n\
                   impl FaultPlan {\n\
                       pub fn with_bad(mut self) -> Self { self }\n\
                   }\n";
        let findings = run("crates/runtime/src/fault.rs", src);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings
            .iter()
            .all(|f| f.rule == RuleId::FaultInjectUngated));
        assert_eq!(findings[0].line, 4);
        assert_eq!(findings[1].line, 7);
        // The same shapes in another file are not this rule's business.
        assert!(run("crates/runtime/src/other.rs", src).is_empty());
    }
}
