//! The analyzer's rule registry: one descriptor per `SA###` rule, with
//! stable codes, slugs, severities, and one-line summaries — the same
//! idiom as `gcnt-lint`'s registry, but for *source and artifact* checks
//! rather than runtime data.
//!
//! Code families:
//!
//! * `SA1xx` — panic policy over non-test code of the hot-path crates
//!   (`tensor`, `core`, `serve`, `dft`), ratcheted (see
//!   [`crate::gate`]).
//! * `SA2xx` — `unsafe` hygiene (repo-wide, tests included).
//! * `SA3xx` — atomics ordering policy.
//! * `SA4xx` — truncating-cast policy in index math.
//! * `SA5xx` — feature-gate hygiene for fault injection.
//! * `SA6xx` — cross-artifact consistency (catalogs, baselines, README
//!   tables, the changelog) and the allowlist/ratchet files themselves.

use crate::report::Severity;

/// Stable identifier of an analyzer rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// `SA101 panic-unwrap`: `.unwrap()` in non-test hot-path code.
    PanicUnwrap,
    /// `SA102 panic-expect`: `.expect(...)` in non-test hot-path code.
    PanicExpect,
    /// `SA103 panic-macro`: `panic!` / `unreachable!` / `todo!` /
    /// `unimplemented!` in non-test hot-path code.
    PanicMacro,
    /// `SA104 panic-index`: `x[i]` indexing (slicing included) in
    /// non-test hot-path code — prefer `get`/`get_mut` or checked
    /// helpers.
    PanicIndex,
    /// `SA201 unsafe-missing-safety-comment`: an `unsafe` block, fn, or
    /// impl without an adjacent `// SAFETY:` comment.
    UnsafeMissingSafetyComment,
    /// `SA301 atomics-seqcst-unjustified`: `Ordering::SeqCst` without an
    /// adjacent `// ORDERING:` justification.
    AtomicsSeqCstUnjustified,
    /// `SA302 atomics-obs-not-relaxed`: a non-`Relaxed` ordering inside
    /// `crates/obs/src` (the record paths must stay relaxed) without an
    /// `// ORDERING:` justification.
    AtomicsObsNotRelaxed,
    /// `SA401 cast-truncating-index`: a bare `as u32`-style truncating
    /// cast in tensor index math without an adjacent `// CAST:`
    /// justification.
    CastTruncatingIndex,
    /// `SA501 fault-inject-ungated`: fault-injection state (a
    /// `FaultPlan` field or `with_*` builder) not behind
    /// `#[cfg(feature = "fault-inject")]`.
    FaultInjectUngated,
    /// `SA601 artifact-metrics-keys`: the obs metric catalog and
    /// `tests/golden/metrics_keys.txt` disagree.
    ArtifactMetricsKeys,
    /// `SA602 artifact-bench-baseline`: `BENCH_baseline.json` entries
    /// and the gated bench suites disagree.
    ArtifactBenchBaseline,
    /// `SA603 artifact-rule-table`: the README rule tables and the
    /// lint/analyze registries disagree.
    ArtifactRuleTable,
    /// `SA604 artifact-changes-log`: `CHANGES.md` PR entries are not
    /// consecutively numbered from 1.
    ArtifactChangesLog,
    /// `SA605 allowlist-stale`: an `ANALYZE_allowlist.txt` entry matches
    /// no current site (fixed code must shed its exemption).
    AllowlistStale,
    /// `SA606 ratchet-stale`: a ratcheted count dropped below
    /// `ANALYZE_ratchet.txt` — run `gcnt analyze --ratchet-update` to
    /// bank the improvement.
    RatchetStale,
}

/// Static description of one analyzer rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleDescriptor {
    /// The rule's identifier.
    pub id: RuleId,
    /// Stable code, e.g. `"SA101"`.
    pub code: &'static str,
    /// Stable kebab-case slug.
    pub slug: &'static str,
    /// Severity carried by this rule's findings.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
}

/// Every rule the analyzer knows, in code order.
pub const RULES: &[RuleDescriptor] = &[
    RuleDescriptor {
        id: RuleId::PanicUnwrap,
        code: "SA101",
        slug: "panic-unwrap",
        severity: Severity::Error,
        summary: "`.unwrap()` in non-test hot-path code (ratcheted)",
    },
    RuleDescriptor {
        id: RuleId::PanicExpect,
        code: "SA102",
        slug: "panic-expect",
        severity: Severity::Error,
        summary: "`.expect(...)` in non-test hot-path code (ratcheted)",
    },
    RuleDescriptor {
        id: RuleId::PanicMacro,
        code: "SA103",
        slug: "panic-macro",
        severity: Severity::Error,
        summary: "panicking macro in non-test hot-path code (ratcheted)",
    },
    RuleDescriptor {
        id: RuleId::PanicIndex,
        code: "SA104",
        slug: "panic-index",
        severity: Severity::Error,
        summary: "unchecked `[...]` indexing in non-test hot-path code (ratcheted)",
    },
    RuleDescriptor {
        id: RuleId::UnsafeMissingSafetyComment,
        code: "SA201",
        slug: "unsafe-missing-safety-comment",
        severity: Severity::Error,
        summary: "`unsafe` without an adjacent `// SAFETY:` comment",
    },
    RuleDescriptor {
        id: RuleId::AtomicsSeqCstUnjustified,
        code: "SA301",
        slug: "atomics-seqcst-unjustified",
        severity: Severity::Error,
        summary: "`Ordering::SeqCst` without an adjacent `// ORDERING:` justification",
    },
    RuleDescriptor {
        id: RuleId::AtomicsObsNotRelaxed,
        code: "SA302",
        slug: "atomics-obs-not-relaxed",
        severity: Severity::Error,
        summary: "non-Relaxed ordering in obs record paths without `// ORDERING:`",
    },
    RuleDescriptor {
        id: RuleId::CastTruncatingIndex,
        code: "SA401",
        slug: "cast-truncating-index",
        severity: Severity::Error,
        summary: "bare truncating `as` cast in tensor index math without `// CAST:`",
    },
    RuleDescriptor {
        id: RuleId::FaultInjectUngated,
        code: "SA501",
        slug: "fault-inject-ungated",
        severity: Severity::Error,
        summary: "fault-injection state outside `#[cfg(feature = \"fault-inject\")]`",
    },
    RuleDescriptor {
        id: RuleId::ArtifactMetricsKeys,
        code: "SA601",
        slug: "artifact-metrics-keys",
        severity: Severity::Error,
        summary: "obs metric catalog and tests/golden/metrics_keys.txt disagree",
    },
    RuleDescriptor {
        id: RuleId::ArtifactBenchBaseline,
        code: "SA602",
        slug: "artifact-bench-baseline",
        severity: Severity::Error,
        summary: "BENCH_baseline.json and the gated bench suites disagree",
    },
    RuleDescriptor {
        id: RuleId::ArtifactRuleTable,
        code: "SA603",
        slug: "artifact-rule-table",
        severity: Severity::Error,
        summary: "README rule tables and the lint/analyze registries disagree",
    },
    RuleDescriptor {
        id: RuleId::ArtifactChangesLog,
        code: "SA604",
        slug: "artifact-changes-log",
        severity: Severity::Error,
        summary: "CHANGES.md PR entries are not consecutively numbered from 1",
    },
    RuleDescriptor {
        id: RuleId::AllowlistStale,
        code: "SA605",
        slug: "allowlist-stale",
        severity: Severity::Error,
        summary: "ANALYZE_allowlist.txt entry matches no current site",
    },
    RuleDescriptor {
        id: RuleId::RatchetStale,
        code: "SA606",
        slug: "ratchet-stale",
        severity: Severity::Warning,
        summary: "count dropped below ANALYZE_ratchet.txt; run --ratchet-update",
    },
];

/// Looks up the descriptor of a rule.
pub fn rule(id: RuleId) -> &'static RuleDescriptor {
    RULES
        .iter()
        .find(|r| r.id == id)
        .expect("every RuleId has a registry entry")
}

/// Resolves a rule code (`"SA101"`) or slug back to its id.
pub fn from_code(code: &str) -> Option<RuleId> {
    RULES
        .iter()
        .find(|r| r.code == code || r.slug == code)
        .map(|r| r.id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_slugs_are_unique() {
        for (i, a) in RULES.iter().enumerate() {
            for b in &RULES[i + 1..] {
                assert_ne!(a.code, b.code);
                assert_ne!(a.slug, b.slug);
                assert_ne!(a.id, b.id);
            }
        }
    }

    #[test]
    fn registry_covers_all_families() {
        for prefix in ["SA1", "SA2", "SA3", "SA4", "SA5", "SA6"] {
            assert!(RULES.iter().any(|r| r.code.starts_with(prefix)));
        }
        assert_eq!(RULES.len(), 15);
    }

    #[test]
    fn codes_resolve_both_ways() {
        for desc in RULES {
            assert_eq!(from_code(desc.code), Some(desc.id));
            assert_eq!(from_code(desc.slug), Some(desc.id));
            assert_eq!(rule(desc.id).code, desc.code);
        }
        assert_eq!(from_code("SA999"), None);
    }
}
