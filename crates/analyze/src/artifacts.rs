//! Cross-artifact consistency rules (`SA601`–`SA604`).
//!
//! The repo commits several generated-looking artifacts next to the code
//! that defines them: the golden metric-key list, the bench baseline,
//! the README rule tables, the changelog. Each pair can drift silently —
//! a metric renamed but the golden stale, a bench added but never gated,
//! a lint rule undocumented. These rules re-derive each artifact's
//! expected content from its source of truth and report the diff.
//!
//! Everything here parses *text* with the same light touch as the rest
//! of the analyzer: no serde, no syn — the formats are all
//! machine-written and line-regular, and a parse miss degrades into a
//! reported inconsistency rather than a crash.

use std::collections::BTreeSet;

use crate::registry::{RuleId, RULES};
use crate::report::Finding;

/// The artifact texts the rules compare. `None` means the file is
/// missing, which is itself reported.
#[derive(Debug, Default)]
pub struct Artifacts {
    /// `crates/obs/src/catalog.rs`.
    pub catalog: Option<String>,
    /// `tests/golden/metrics_keys.txt`.
    pub metrics_keys: Option<String>,
    /// `BENCH_baseline.json`.
    pub bench_baseline: Option<String>,
    /// `(path, text)` of every file under `crates/bench/benches/`.
    pub bench_sources: Vec<(String, String)>,
    /// `crates/lint/src/registry.rs`.
    pub lint_registry: Option<String>,
    /// `README.md`.
    pub readme: Option<String>,
    /// `CHANGES.md`.
    pub changes: Option<String>,
}

/// Runs all artifact rules.
pub fn check_artifacts(a: &Artifacts) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_metrics_keys(a, &mut findings);
    check_bench_baseline(a, &mut findings);
    check_rule_tables(a, &mut findings);
    check_changes_log(a, &mut findings);
    findings
}

fn missing(rule: RuleId, path: &str, findings: &mut Vec<Finding>) {
    findings.push(Finding::new(
        rule,
        path,
        0,
        "expected artifact file is missing",
    ));
}

/// `SA601`: the metric catalog re-derived from the `declare_*!` blocks
/// must equal the committed golden key list, entry for entry.
fn check_metrics_keys(a: &Artifacts, findings: &mut Vec<Finding>) {
    let (Some(catalog), Some(golden)) = (&a.catalog, &a.metrics_keys) else {
        if a.catalog.is_none() {
            missing(
                RuleId::ArtifactMetricsKeys,
                "crates/obs/src/catalog.rs",
                findings,
            );
        }
        if a.metrics_keys.is_none() {
            missing(
                RuleId::ArtifactMetricsKeys,
                "tests/golden/metrics_keys.txt",
                findings,
            );
        }
        return;
    };
    // Walk the catalog: entering a declare block sets the kind; an
    // `=> "gcnt_...` line declares one metric of that kind.
    let mut expected: BTreeSet<String> = BTreeSet::new();
    let mut kind: Option<&str> = None;
    for line in catalog.lines() {
        for (mac, k) in [
            ("declare_counters!", "counter"),
            ("declare_gauges!", "gauge"),
            ("declare_histograms!", "histogram"),
        ] {
            // The macro *definitions* mention these names too; only the
            // invocation line `declare_x! {` opens a block.
            if line.trim_start().starts_with(mac) && line.contains('{') {
                kind = Some(k);
            }
        }
        if line.trim_start().starts_with('}') && !line.contains('{') {
            kind = None;
        }
        if let (Some(k), Some(pos)) = (kind, line.find("=> \"gcnt_")) {
            let rest = &line[pos + 4..];
            if let Some(end) = rest.find('"') {
                expected.insert(format!("{k} {}", &rest[..end]));
            }
        }
    }
    let actual: BTreeSet<String> = golden
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(String::from)
        .collect();
    for key in expected.difference(&actual) {
        findings.push(Finding::new(
            RuleId::ArtifactMetricsKeys,
            "tests/golden/metrics_keys.txt",
            0,
            format!("catalog declares `{key}` but the golden list lacks it"),
        ));
    }
    for key in actual.difference(&expected) {
        findings.push(Finding::new(
            RuleId::ArtifactMetricsKeys,
            "tests/golden/metrics_keys.txt",
            0,
            format!("golden list has `{key}` but the catalog does not declare it"),
        ));
    }
}

/// `SA602`: every baseline entry must correspond to a bench the suites
/// can produce, and every literal bench in a *gated* group (one present
/// in the baseline) must be gated by a baseline entry.
///
/// Covers both `bench_function("name", ..)` (id `group/name`) and
/// `bench_with_input(BenchmarkId::new("name", param), ..)` (id
/// `group/name/param` — a literal *prefix*, since the param half is a
/// runtime value). A group whose `bench_with_input` calls outnumber its
/// literal `BenchmarkId::new("...")` ids has a dynamically named bench
/// and is exempt from per-name coverage, exactly like a dynamic
/// `bench_function` name.
fn check_bench_baseline(a: &Artifacts, findings: &mut Vec<Finding>) {
    let Some(baseline) = &a.bench_baseline else {
        missing(
            RuleId::ArtifactBenchBaseline,
            "BENCH_baseline.json",
            findings,
        );
        return;
    };
    let mut baseline_ids = BTreeSet::new();
    for line in baseline.lines() {
        if let Some(pos) = line.find("\"id\": \"") {
            let rest = &line[pos + 7..];
            if let Some(end) = rest.find('"') {
                baseline_ids.insert(rest[..end].to_string());
            }
        }
    }
    // Walk the bench sources: the last `benchmark_group("...")` literal
    // owns subsequent `bench_function` calls; a non-literal first
    // argument marks the group as dynamically named.
    let mut literal: BTreeSet<(String, String)> = BTreeSet::new();
    let mut prefixed: BTreeSet<(String, String)> = BTreeSet::new();
    let mut dynamic_groups: BTreeSet<String> = BTreeSet::new();
    let mut known_groups: BTreeSet<String> = BTreeSet::new();
    // `bench_with_input` calls are often rustfmt-wrapped with the
    // `BenchmarkId::new("...")` on the following line, so the two are
    // counted per group rather than matched per line: a surplus of calls
    // over literal ids means some id was built dynamically.
    let mut with_input_calls: std::collections::BTreeMap<String, usize> = Default::default();
    let mut with_input_literals: std::collections::BTreeMap<String, usize> = Default::default();
    for (_, text) in &a.bench_sources {
        let mut group = String::new();
        for line in text.lines() {
            if let Some(pos) = line.find("benchmark_group(\"") {
                let rest = &line[pos + 17..];
                if let Some(end) = rest.find('"') {
                    group = rest[..end].to_string();
                    known_groups.insert(group.clone());
                }
            }
            if let Some(pos) = line.find("bench_function(") {
                let rest = &line[pos + 15..];
                if let Some(name) = rest.strip_prefix('"') {
                    if let Some(end) = name.find('"') {
                        literal.insert((group.clone(), name[..end].to_string()));
                    }
                } else if !group.is_empty() {
                    dynamic_groups.insert(group.clone());
                }
            }
            if line.contains("bench_with_input(") && !group.is_empty() {
                *with_input_calls.entry(group.clone()).or_default() += 1;
            }
            if let Some(pos) = line.find("BenchmarkId::new(\"") {
                let rest = &line[pos + 18..];
                if let Some(end) = rest.find('"') {
                    if !group.is_empty() {
                        prefixed.insert((group.clone(), rest[..end].to_string()));
                        *with_input_literals.entry(group.clone()).or_default() += 1;
                    }
                }
            }
        }
    }
    for (group, calls) in &with_input_calls {
        if *calls > with_input_literals.get(group).copied().unwrap_or(0) {
            dynamic_groups.insert(group.clone());
        }
    }
    let gated_groups: BTreeSet<&str> = baseline_ids
        .iter()
        .filter_map(|id| id.split_once('/').map(|(g, _)| g))
        .collect();
    for id in &baseline_ids {
        let Some((group, name)) = id.split_once('/') else {
            findings.push(Finding::new(
                RuleId::ArtifactBenchBaseline,
                "BENCH_baseline.json",
                0,
                format!("entry `{id}` is not of the form group/name"),
            ));
            continue;
        };
        if !known_groups.contains(group) {
            findings.push(Finding::new(
                RuleId::ArtifactBenchBaseline,
                "BENCH_baseline.json",
                0,
                format!("entry `{id}`: no bench declares group `{group}`"),
            ));
        } else if !literal.contains(&(group.to_string(), name.to_string()))
            && !dynamic_groups.contains(group)
            && !prefixed.iter().any(|(g, p)| {
                g == group
                    && name
                        .strip_prefix(p.as_str())
                        .is_some_and(|r| r.starts_with('/'))
            })
        {
            findings.push(Finding::new(
                RuleId::ArtifactBenchBaseline,
                "BENCH_baseline.json",
                0,
                format!("entry `{id}`: group `{group}` has no such bench"),
            ));
        }
    }
    for (group, name) in &literal {
        if gated_groups.contains(group.as_str())
            && !baseline_ids.contains(&format!("{group}/{name}"))
        {
            findings.push(Finding::new(
                RuleId::ArtifactBenchBaseline,
                "BENCH_baseline.json",
                0,
                format!("bench `{group}/{name}` exists but the gated baseline lacks it"),
            ));
        }
    }
    for (group, name) in &prefixed {
        if gated_groups.contains(group.as_str())
            && !baseline_ids
                .iter()
                .any(|id| id.strip_prefix(&format!("{group}/{name}/")).is_some())
        {
            findings.push(Finding::new(
                RuleId::ArtifactBenchBaseline,
                "BENCH_baseline.json",
                0,
                format!("bench `{group}/{name}/*` exists but the gated baseline lacks it"),
            ));
        }
    }
}

/// `SA603`: every rule code in the lint registry and in this analyzer's
/// own registry must appear in a README table row, and every code-shaped
/// name in a README table must resolve to a real rule.
fn check_rule_tables(a: &Artifacts, findings: &mut Vec<Finding>) {
    let Some(readme) = &a.readme else {
        missing(RuleId::ArtifactRuleTable, "README.md", findings);
        return;
    };
    let mut known: BTreeSet<String> = RULES.iter().map(|r| r.code.to_string()).collect();
    if let Some(lint) = &a.lint_registry {
        for line in lint.lines() {
            if let Some(pos) = line.find("code: \"") {
                let rest = &line[pos + 7..];
                if let Some(end) = rest.find('"') {
                    let code = &rest[..end];
                    if is_rule_code(code) {
                        known.insert(code.to_string());
                    }
                }
            }
        }
    } else {
        missing(
            RuleId::ArtifactRuleTable,
            "crates/lint/src/registry.rs",
            findings,
        );
    }
    let mut documented: BTreeSet<String> = BTreeSet::new();
    for line in readme.lines() {
        if !line.trim_start().starts_with('|') {
            continue;
        }
        for chunk in line.split('`').skip(1).step_by(2) {
            if is_rule_code(chunk) {
                documented.insert(chunk.to_string());
            }
        }
    }
    for code in known.difference(&documented) {
        findings.push(Finding::new(
            RuleId::ArtifactRuleTable,
            "README.md",
            0,
            format!("rule `{code}` is not documented in a README table"),
        ));
    }
    for code in documented.difference(&known) {
        findings.push(Finding::new(
            RuleId::ArtifactRuleTable,
            "README.md",
            0,
            format!("README documents `{code}` but no registry defines it"),
        ));
    }
}

/// `SA604`: `- PR N` entries in the changelog must count 1, 2, 3, …
fn check_changes_log(a: &Artifacts, findings: &mut Vec<Finding>) {
    let Some(changes) = &a.changes else {
        missing(RuleId::ArtifactChangesLog, "CHANGES.md", findings);
        return;
    };
    let mut expected = 1usize;
    for (i, line) in changes.lines().enumerate() {
        let Some(rest) = line.strip_prefix("- PR ") else {
            continue;
        };
        let num: String = rest.chars().take_while(char::is_ascii_digit).collect();
        match num.parse::<usize>() {
            Ok(n) if n == expected => expected += 1,
            Ok(n) => findings.push(Finding::new(
                RuleId::ArtifactChangesLog,
                "CHANGES.md",
                i + 1,
                format!("PR entry numbered {n}, expected {expected}"),
            )),
            Err(_) => findings.push(Finding::new(
                RuleId::ArtifactChangesLog,
                "CHANGES.md",
                i + 1,
                "PR entry has no number".to_string(),
            )),
        }
    }
    if expected == 1 {
        findings.push(Finding::new(
            RuleId::ArtifactChangesLog,
            "CHANGES.md",
            0,
            "no `- PR N` entries found".to_string(),
        ));
    }
}

/// `XX###`-shaped rule code: two to three uppercase letters then three
/// digits.
fn is_rule_code(s: &str) -> bool {
    let letters = s.chars().take_while(char::is_ascii_uppercase).count();
    (2..=3).contains(&letters)
        && s.len() == letters + 3
        && s[letters..].chars().all(|c| c.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    const CATALOG: &str = "declare_counters! {\n\
        A => \"gcnt_a_total\", \"help\";\n\
        B => \"gcnt_b_total\", \"help\";\n\
        }\n\
        declare_gauges! {\n\
        G => \"gcnt_g\", \"help\";\n\
        }\n";

    fn base() -> Artifacts {
        Artifacts {
            catalog: Some(CATALOG.to_string()),
            metrics_keys: Some(
                "counter gcnt_a_total\ncounter gcnt_b_total\ngauge gcnt_g\n".to_string(),
            ),
            bench_baseline: Some(
                "\"id\": \"flow/fast\",\n\"id\": \"serve/dyn_deadline_10\",\n\
                 \"id\": \"spmm/csr/4000\",\n"
                    .to_string(),
            ),
            bench_sources: vec![
                (
                    "crates/bench/benches/flow.rs".to_string(),
                    "c.benchmark_group(\"flow\");\ngroup.bench_function(\"fast\", |b| {});\n"
                        .to_string(),
                ),
                (
                    "crates/bench/benches/serve.rs".to_string(),
                    "c.benchmark_group(\"serve\");\ngroup.bench_function(name, |b| {});\n\
                     c.benchmark_group(\"ungated\");\ngroup.bench_function(\"free\", |b| {});\n"
                        .to_string(),
                ),
                (
                    "crates/bench/benches/spmm.rs".to_string(),
                    "c.benchmark_group(\"spmm\");\n\
                     group.bench_with_input(BenchmarkId::new(\"csr\", n), &(), |b, ()| {});\n"
                        .to_string(),
                ),
            ],
            lint_registry: Some("code: \"NL001\",\ncode: \"JN002\",\n".to_string()),
            readme: Some(readme_with(&["NL001", "JN002"])),
            changes: Some("- PR 1 (x): a\n- PR 2 (y): b\n".to_string()),
        }
    }

    fn readme_with(extra: &[&str]) -> String {
        let mut s = String::from("| Rule | Checks |\n");
        for desc in RULES {
            s.push_str(&format!("| `{}` | x |\n", desc.code));
        }
        for code in extra {
            s.push_str(&format!("| `{code}` | x |\n"));
        }
        s
    }

    #[test]
    fn consistent_artifacts_are_clean() {
        let findings = check_artifacts(&base());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn metric_drift_fires_both_ways() {
        let mut a = base();
        a.metrics_keys = Some("counter gcnt_a_total\ncounter gcnt_stale_total\n".to_string());
        let findings = check_artifacts(&a);
        let msgs: Vec<&str> = findings
            .iter()
            .filter(|f| f.rule == RuleId::ArtifactMetricsKeys)
            .map(|f| f.message.as_str())
            .collect();
        assert_eq!(msgs.len(), 3, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("gcnt_b_total")));
        assert!(msgs.iter().any(|m| m.contains("gcnt_stale_total")));
        assert!(msgs.iter().any(|m| m.contains("gauge gcnt_g")));
    }

    #[test]
    fn bench_drift_is_caught() {
        // A baseline entry no bench can produce.
        let mut a = base();
        a.bench_baseline = Some("\"id\": \"flow/gone\",\n".to_string());
        assert!(check_artifacts(&a)
            .iter()
            .any(|f| f.rule == RuleId::ArtifactBenchBaseline && f.message.contains("flow/gone")));
        // A literal bench in a gated group missing from the baseline.
        let mut a = base();
        a.bench_baseline = Some("\"id\": \"flow/other\",\n".to_string());
        a.bench_sources[0]
            .1
            .push_str("group.bench_function(\"other\", |b| {});\n");
        assert!(check_artifacts(&a)
            .iter()
            .any(|f| f.message.contains("`flow/fast` exists")));
        // Dynamic names satisfy baseline entries; ungated groups are free.
        assert!(check_artifacts(&base()).is_empty());
    }

    #[test]
    fn with_input_coverage_is_checked() {
        // A literal BenchmarkId in a gated group with no `group/name/*`
        // baseline entry.
        let mut a = base();
        if let Some(src) = a.bench_sources.get_mut(2) {
            src.1.push_str(
                "group.bench_with_input(BenchmarkId::new(\"coo\", n), &(), |b, ()| {});\n",
            );
        }
        assert!(check_artifacts(&a)
            .iter()
            .any(|f| f.message.contains("`spmm/coo/*` exists")));
        // A wrapped call whose BenchmarkId lands on the next line still
        // pairs up (call count == literal count — not dynamic, and the
        // literal is seen).
        let mut a = base();
        if let Some(src) = a.bench_sources.get_mut(2) {
            src.1 = "c.benchmark_group(\"spmm\");\ngroup.bench_with_input(\n\
                     BenchmarkId::new(\"csr\", n),\n&(), |b, ()| {});\n"
                .to_string();
        }
        assert!(check_artifacts(&a).is_empty());
        // A dynamically built id (no literal) exempts the group.
        let mut a = base();
        if let Some(src) = a.bench_sources.get_mut(2) {
            src.1 = "c.benchmark_group(\"spmm\");\n\
                     group.bench_with_input(BenchmarkId::new(kind, n), &(), |b, ()| {});\n"
                .to_string();
        }
        assert!(check_artifacts(&a).is_empty());
        // A baseline entry whose prefix no bench declares.
        let mut a = base();
        a.bench_baseline = Some(
            "\"id\": \"flow/fast\",\n\"id\": \"serve/x\",\n\"id\": \"spmm/gone/4000\",\n"
                .to_string(),
        );
        assert!(check_artifacts(&a)
            .iter()
            .any(|f| f.message.contains("spmm/gone/4000")));
    }

    #[test]
    fn undocumented_rule_is_caught() {
        let mut a = base();
        a.readme = Some(readme_with(&["NL001"])); // JN002 row dropped
        let findings = check_artifacts(&a);
        assert!(findings
            .iter()
            .any(|f| f.rule == RuleId::ArtifactRuleTable && f.message.contains("JN002")));
        // And the reverse: a documented ghost rule.
        let mut a = base();
        a.readme = Some(readme_with(&["NL001", "JN002", "ZZ999"]));
        assert!(check_artifacts(&a)
            .iter()
            .any(|f| f.message.contains("ZZ999")));
    }

    #[test]
    fn changes_numbering_is_checked() {
        let mut a = base();
        a.changes = Some("- PR 1 (x): a\n- PR 3 (y): b\n".to_string());
        let findings = check_artifacts(&a);
        assert!(findings
            .iter()
            .any(|f| f.rule == RuleId::ArtifactChangesLog && f.line == 2));
    }

    #[test]
    fn missing_artifacts_are_reported() {
        let a = Artifacts::default();
        let findings = check_artifacts(&a);
        assert!(findings
            .iter()
            .any(|f| f.rule == RuleId::ArtifactMetricsKeys));
        assert!(findings
            .iter()
            .any(|f| f.rule == RuleId::ArtifactBenchBaseline));
        assert!(findings.iter().any(|f| f.rule == RuleId::ArtifactRuleTable));
        assert!(findings
            .iter()
            .any(|f| f.rule == RuleId::ArtifactChangesLog));
    }

    #[test]
    fn rule_code_shape() {
        assert!(is_rule_code("SA101"));
        assert!(is_rule_code("NL001"));
        assert!(!is_rule_code("gcnt_x"));
        assert!(!is_rule_code("SA1"));
        assert!(!is_rule_code("SAXX1"));
    }
}
