//! The disabled registry must be free in both senses: it records nothing,
//! and the record paths allocate nothing. A counting global allocator makes
//! the second claim testable — any heap traffic inside the measured window
//! is a regression in the "observability off" cost story.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use gcnt_obs::catalog::{counters, gauges, histograms};
use gcnt_obs::{MetricsRegistry, SpanTimer};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every call delegates to the `System` allocator unchanged; the
// only extra work is a counter bump, so `GlobalAlloc`'s layout/pointer
// contracts hold exactly as `System` upholds them.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: `layout` is forwarded to `System.alloc` untouched.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: `ptr`/`layout` came from `alloc` above, which returned
    // them from `System.alloc` — exactly what `System.dealloc` expects.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn disabled_registry_records_nothing_and_allocates_nothing() {
    let registry = MetricsRegistry::new();
    assert!(!registry.is_enabled(), "registries start disabled");

    let before = allocations();
    for i in 0..1_000u64 {
        registry.incr(counters::TENSOR_SPMM_CALLS);
        registry.add(counters::TENSOR_SPMM_ROWS, i);
        registry.gauge_set(gauges::CORE_TRAIN_LOSS, i as f64);
        registry.gauge_max(gauges::SERVE_QUEUE_DEPTH_HIGH_WATER, i as f64);
        registry.observe(histograms::DFT_FLOW_ITERATION_NS, i);
        let span = SpanTimer::start(&registry, histograms::SERVE_JOURNAL_FSYNC_NS);
        span.finish();
    }
    let after = allocations();

    assert_eq!(after, before, "disabled record paths must not allocate");
    assert_eq!(registry.counter(counters::TENSOR_SPMM_CALLS), 0);
    assert_eq!(registry.counter(counters::TENSOR_SPMM_ROWS), 0);
    assert_eq!(registry.gauge(gauges::CORE_TRAIN_LOSS), 0.0);
    assert_eq!(registry.gauge(gauges::SERVE_QUEUE_DEPTH_HIGH_WATER), 0.0);
    assert_eq!(
        registry.histogram_count(histograms::DFT_FLOW_ITERATION_NS),
        0
    );
    assert_eq!(registry.histogram_sum(histograms::DFT_FLOW_ITERATION_NS), 0);
    assert_eq!(
        registry.histogram_count(histograms::SERVE_JOURNAL_FSYNC_NS),
        0
    );
}

#[test]
fn enabled_record_paths_do_not_allocate_either() {
    // Not an acceptance requirement, but worth pinning: the hot record
    // paths are pure atomic ops even when enabled; only snapshotting
    // allocates.
    let registry = MetricsRegistry::new();
    registry.enable();

    let before = allocations();
    for i in 0..1_000u64 {
        registry.incr(counters::TENSOR_SPMM_CALLS);
        registry.add(counters::TENSOR_SPMM_ROWS, i);
        registry.gauge_set(gauges::CORE_TRAIN_LOSS, i as f64);
        registry.observe(histograms::DFT_FLOW_ITERATION_NS, i);
    }
    let after = allocations();

    assert_eq!(after, before, "enabled record paths must not allocate");
    assert_eq!(registry.counter(counters::TENSOR_SPMM_CALLS), 1_000);
}
