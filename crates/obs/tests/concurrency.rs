//! Concurrency soundness of the metrics registry: any interleaving of
//! counter and histogram updates from several threads must yield a snapshot
//! whose totals equal the serial sum of the same operations. The registry
//! uses only relaxed atomics, so this is exactly the guarantee it claims —
//! per-cell totals, not cross-metric consistency.

use gcnt_obs::catalog::{counters, histograms};
use gcnt_obs::{CounterId, HistogramId, MetricsRegistry, Snapshot};
use proptest::prelude::*;

const THREADS: usize = 4;

/// One recorded operation, pre-generated so every thread replays its own
/// deterministic slice while racing the others on the shared registry.
#[derive(Debug, Clone, Copy)]
enum Op {
    Add(CounterId, u64),
    Observe(HistogramId, u64),
}

const COUNTER_CHOICES: [CounterId; 3] = [
    counters::TENSOR_SPMM_ROWS,
    counters::DFT_FLOW_CANDIDATES_SCORED,
    counters::SERVE_REQUESTS,
];

const HISTOGRAM_CHOICES: [HistogramId; 2] = [
    histograms::DFT_FLOW_ITERATION_NS,
    histograms::SERVE_REQUEST_ROWS_SPENT,
];

fn op_strategy() -> impl Strategy<Value = Op> {
    (0usize..5, 0u64..1_000_000).prop_map(|(kind, value)| match kind {
        0..=2 => Op::Add(COUNTER_CHOICES[kind], value),
        3 => Op::Observe(HISTOGRAM_CHOICES[0], value),
        _ => Op::Observe(HISTOGRAM_CHOICES[1], value),
    })
}

fn apply(registry: &MetricsRegistry, op: Op) {
    match op {
        Op::Add(id, delta) => registry.add(id, delta),
        Op::Observe(id, value) => registry.observe(id, value),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn threaded_updates_sum_like_serial(
        ops in proptest::collection::vec(op_strategy(), 64..512),
    ) {
        // Serial reference on a private registry instance.
        let serial = MetricsRegistry::new();
        serial.enable();
        for &op in &ops {
            apply(&serial, op);
        }

        // The same ops round-robined over 4 threads racing on one registry.
        let threaded = MetricsRegistry::new();
        threaded.enable();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let ops = &ops;
                let threaded = &threaded;
                scope.spawn(move || {
                    for (_, &op) in
                        ops.iter().enumerate().filter(|(i, _)| i % THREADS == t)
                    {
                        apply(threaded, op);
                    }
                });
            }
        });

        let expect = Snapshot::capture(&serial);
        let got = Snapshot::capture(&threaded);
        for &id in &COUNTER_CHOICES {
            prop_assert_eq!(serial.counter(id), threaded.counter(id));
        }
        for &id in &HISTOGRAM_CHOICES {
            prop_assert_eq!(serial.histogram_count(id), threaded.histogram_count(id));
            prop_assert_eq!(serial.histogram_sum(id), threaded.histogram_sum(id));
        }
        // Snapshots agree wholesale too: same catalog order, same values,
        // including every bucket of every histogram.
        prop_assert_eq!(expect.to_json(), got.to_json());
    }
}
